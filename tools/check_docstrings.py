"""Docstring-coverage check for the public API of selected packages.

Imports every module of the audited packages and verifies that

* the module itself,
* every public class defined in it, and
* every public function / method / property defined in it (names not
  starting with ``_``; dunders exempt)

carry a docstring.  Inherited docstrings count (``inspect.getdoc`` walks the
MRO), so an override of a documented base method does not need to repeat the
prose.  Exits non-zero listing every undocumented object — wired into CI and
into ``tests/test_docs.py`` so the check also runs under tier-1.

Usage::

    PYTHONPATH=src python tools/check_docstrings.py [package ...]

Defaults to the packages named in :data:`DEFAULT_PACKAGES`.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys

#: The packages whose public API must be fully documented.
DEFAULT_PACKAGES = ("repro.distributed", "repro.experiments")


def _iter_modules(package_name: str):
    """Yield the package module and every submodule, imported."""
    package = importlib.import_module(package_name)
    yield package
    for info in pkgutil.walk_packages(package.__path__, prefix=package_name + "."):
        yield importlib.import_module(info.name)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _check_callable(owner: str, name: str, obj, problems: list[str]) -> None:
    """Record ``owner.name`` if the function/property lacks a docstring."""
    target = obj.fget if isinstance(obj, property) else obj
    if target is None or inspect.getdoc(target) in (None, ""):
        kind = "property" if isinstance(obj, property) else "function"
        problems.append(f"{owner}.{name} ({kind}: missing docstring)")


def audit_module(module, problems: list[str]) -> None:
    """Append one problem line per undocumented public object in ``module``."""
    mod_name = module.__name__
    if not (module.__doc__ or "").strip():
        problems.append(f"{mod_name} (module: missing docstring)")

    for name, obj in vars(module).items():
        if not _is_public(name):
            continue
        if inspect.isfunction(obj) and obj.__module__ == mod_name:
            _check_callable(mod_name, name, obj, problems)
        elif inspect.isclass(obj) and obj.__module__ == mod_name:
            if inspect.getdoc(obj) in (None, ""):
                problems.append(f"{mod_name}.{name} (class: missing docstring)")
            for attr, member in vars(obj).items():
                if not _is_public(attr):
                    continue
                if isinstance(member, property) or inspect.isfunction(member):
                    # getattr resolves classmethod/staticmethod wrappers and
                    # lets inspect.getdoc fall back to base-class docstrings.
                    bound = member if isinstance(member, property) else getattr(obj, attr)
                    _check_callable(f"{mod_name}.{name}", attr, bound, problems)
                elif isinstance(member, (classmethod, staticmethod)):
                    _check_callable(f"{mod_name}.{name}", attr, member.__func__, problems)


def run(packages=DEFAULT_PACKAGES) -> list[str]:
    """Audit ``packages`` and return the list of problem descriptions."""
    problems: list[str] = []
    for package_name in packages:
        for module in _iter_modules(package_name):
            audit_module(module, problems)
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: print problems, return non-zero if any exist."""
    packages = tuple(argv) if argv else DEFAULT_PACKAGES
    problems = run(packages)
    for line in problems:
        print(line)
    if problems:
        print(f"\n{len(problems)} undocumented public object(s)", file=sys.stderr)
        return 1
    print(f"docstring coverage OK for: {', '.join(packages)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
