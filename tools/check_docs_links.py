"""Markdown link checker for the repo's documentation.

Scans the markdown files at the repository root and under ``docs/`` for
inline links and verifies that every *relative* link target resolves to an
existing file or directory (fragments are stripped; ``http(s)``/``mailto``
targets are skipped — CI must not depend on the network).  Exits non-zero
listing every broken link — wired into CI and into ``tests/test_docs.py``.

Usage::

    python tools/check_docs_links.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links: ``[text](target)``, ignoring images' leading ``!``.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_doc_files(root: Path):
    """Yield the markdown files the checker audits (root level and docs/)."""
    yield from sorted(root.glob("*.md"))
    yield from sorted((root / "docs").glob("*.md"))


def check_file(path: Path, root: Path) -> list[str]:
    """Return one problem line per broken relative link in ``path``."""
    problems = []
    for target in _LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(_SKIP_PREFIXES):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            problems.append(
                f"{path.relative_to(root)}: broken link -> {target}"
            )
    return problems


def run(root: Path) -> list[str]:
    """Audit every doc file under ``root`` and return the broken links."""
    problems: list[str] = []
    for path in iter_doc_files(root):
        problems.extend(check_file(path, root))
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: print broken links, return non-zero if any exist."""
    root = Path(argv[0]).resolve() if argv else Path(__file__).resolve().parent.parent
    problems = run(root)
    for line in problems:
        print(line)
    if problems:
        print(f"\n{len(problems)} broken link(s)", file=sys.stderr)
        return 1
    checked = len(list(iter_doc_files(root)))
    print(f"docs links OK ({checked} markdown files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
