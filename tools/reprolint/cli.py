"""Command line for reprolint.

Examples (from the repository root)::

    python tools/reprolint src/repro                      # all rules, text
    python tools/reprolint --select REP002,REP006 src/repro
    python tools/reprolint --json src/repro > reprolint.json
    python tools/reprolint --json-out reprolint.json src/repro
    python tools/reprolint --baseline tools/reprolint/baseline.json src/repro
    python tools/reprolint --write-baseline debt.json src/repro
    python tools/reprolint --list-rules

Exit status is 0 when no (non-baselined, non-pragma'd) finding remains,
1 when findings exist, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from reprolint.engine import Baseline, all_rules, iter_python_files, lint_paths, registry
from reprolint.reporters import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for ``--help`` tests)."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based determinism & hot-path invariant checker",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to scan")
    parser.add_argument(
        "--select",
        default="all",
        metavar="RULES",
        help="comma-separated rule codes to run, or 'all' (default)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON baseline of grandfathered findings to suppress",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings to FILE as a baseline and exit 0",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the JSON report on stdout instead of text",
    )
    parser.add_argument(
        "--json-out",
        metavar="FILE",
        help="also write the JSON report to FILE (text still on stdout)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}: {rule.rationale}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("reprolint: no paths given", file=sys.stderr)
        return 2

    try:
        rules = registry.select(args.select) if all_rules() else []
    except KeyError as error:
        print(f"reprolint: {error.args[0]}", file=sys.stderr)
        return 2

    baseline = None
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            print(f"reprolint: baseline {baseline_path} not found", file=sys.stderr)
            return 2
        baseline = Baseline.load(baseline_path)

    scanned = len(list(iter_python_files(args.paths)))
    findings = lint_paths(args.paths, rules=rules, baseline=baseline)

    if args.write_baseline:
        Path(args.write_baseline).write_text(Baseline.dump(findings), encoding="utf-8")
        print(f"reprolint: wrote {len(findings)} finding(s) to {args.write_baseline}")
        return 0

    json_report = render_json(findings, rules, scanned)
    if args.json_out:
        Path(args.json_out).write_text(json_report, encoding="utf-8")
    if args.json:
        sys.stdout.write(json_report)
    else:
        print(render_text(findings))
    return 1 if findings else 0
