"""reprolint: AST-based determinism and hot-path invariant checker.

The repo's engine-parity guarantees (bit-for-bit identity across the
indexed/batch/columnar/targeted engines, seeded adversary determinism,
NumPy-optional kernel equality) are enforced *dynamically* by the
differential test suite.  ``reprolint`` is the *static* half of that
contract: a small, dependency-free framework that walks the Python AST of
``src/repro/`` and flags constructs that can silently break determinism or
regress the hot paths — unseeded global randomness, hash-order-dependent
iteration, wall-clock reads inside algorithm code, unguarded NumPy imports,
and per-message ``estimate_bits`` calls that bypass the size tables.

Layout
------

``engine``
    ``Rule`` base class, ``Finding`` record, registry, file walker,
    ``# reprolint: disable=...`` pragma handling and baseline files.
``rules``
    The shipped REP001-REP006 rules (see ``docs/linting.md``).
``reporters``
    Text and JSON output.
``cli``
    The ``python tools/reprolint`` command line.

Run it as::

    python tools/reprolint --select all src/repro

The checker is wired into tier-1 via ``tests/test_lint.py`` and into CI's
lint/docs job, mirroring how ``tools/check_docstrings.py`` gates the docs.
"""

from reprolint.engine import (  # noqa: F401  (re-exported convenience API)
    Baseline,
    FileContext,
    Finding,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    registry,
)

__version__ = "1.0"
