"""Rule framework: findings, pragmas, baselines, registry and file walker.

Everything here is deliberately stdlib-only (``ast``, ``re``, ``json``,
``pathlib``) so the checker runs in every CI leg — including the no-NumPy
one — without installing anything.

Suppression model
-----------------

Two escape hatches, both explicit and greppable:

* **Inline pragmas** — ``# reprolint: disable=REP001`` (comma-separated
  codes, or ``all``) on the *first physical line* of the flagged statement
  silences that line.  ``# reprolint: disable-file=REP004`` within the
  first ten lines of a module silences a rule for the whole file.  Pragmas
  are the right tool for a *deliberate, documented* exception (say why on
  the same line or the one above).
* **Baseline file** — a JSON list of grandfathered findings matched by
  ``(rule, path, snippet)``; see :class:`Baseline`.  The baseline is the
  right tool for *inherited debt you intend to burn down*: new code never
  matches old snippets, so the debt can only shrink.  The committed
  baseline (``tools/reprolint/baseline.json``) is empty and the tier-1
  test keeps it that way.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Iterator

#: Matches one inline pragma comment.  ``disable`` silences the line,
#: ``disable-file`` (near the top of the module) silences the whole file.
_PRAGMA = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable|disable-file)="
    r"(?P<codes>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

#: ``disable-file`` pragmas are only honoured within this many leading lines.
_FILE_PRAGMA_WINDOW = 10


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  #: rule code, e.g. ``"REP002"``
    path: str  #: file path as scanned (posix, relative when possible)
    line: int  #: 1-based line of the offending node
    col: int  #: 0-based column of the offending node
    message: str  #: human-oriented description with the suggested fix
    snippet: str  #: stripped source text of the offending line

    def key(self) -> tuple[str, str, str]:
        """Line-number-independent identity used for baseline matching."""
        return (self.rule, self.path, self.snippet)

    def as_dict(self) -> dict:
        """JSON-safe representation (the JSON reporter's row format)."""
        return asdict(self)


class FileContext:
    """Everything a rule may inspect about one source file."""

    __slots__ = ("path", "source", "lines", "tree")

    def __init__(self, path: str, source: str, tree: ast.AST) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree

    def line_text(self, lineno: int) -> str:
        """Source text of 1-based ``lineno`` (empty when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` for ``node`` with this file's coordinates."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.code,
            path=self.path,
            line=lineno,
            col=col,
            message=message,
            snippet=self.line_text(lineno).strip(),
        )


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`code` / :attr:`name` / :attr:`rationale` and
    implement :meth:`check`, yielding :class:`Finding` objects.  Rules are
    stateless across files — any per-file bookkeeping lives inside
    ``check`` — so one instance serves the whole run.
    """

    code: str = ""  #: stable identifier, e.g. ``"REP001"``
    name: str = ""  #: short kebab-case label for listings
    rationale: str = ""  #: one-line justification shown by ``--list-rules``

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield every violation of this rule in ``ctx``."""
        raise NotImplementedError

    def applies_to(self, path: str) -> bool:
        """Whether this rule scans ``path`` at all (default: every file)."""
        return True


class Registry:
    """Orders rules by code and resolves ``--select`` expressions."""

    def __init__(self) -> None:
        self._rules: dict[str, Rule] = {}

    def register(self, rule_cls: type[Rule]) -> type[Rule]:
        """Class decorator: instantiate and index a rule by its code."""
        rule = rule_cls()
        if not rule.code:
            raise ValueError(f"{rule_cls.__name__} has no code")
        if rule.code in self._rules:
            raise ValueError(f"duplicate rule code {rule.code}")
        self._rules[rule.code] = rule
        return rule_cls

    def rules(self) -> list[Rule]:
        """All registered rules, sorted by code."""
        return [self._rules[code] for code in sorted(self._rules)]

    def select(self, expr: str | None) -> list[Rule]:
        """Resolve a ``--select`` expression (``all``/``None`` = every rule)."""
        if expr is None or expr.strip().lower() == "all":
            return self.rules()
        chosen: list[Rule] = []
        for raw in expr.split(","):
            code = raw.strip().upper()
            if not code:
                continue
            if code not in self._rules:
                known = ", ".join(sorted(self._rules))
                raise KeyError(f"unknown rule {code!r}; known rules: {known}")
            chosen.append(self._rules[code])
        return sorted(chosen, key=lambda r: r.code)


#: The process-wide registry rules attach to via ``@registry.register``.
registry = Registry()


def all_rules() -> list[Rule]:
    """All registered rules (imports the rule module on first use)."""
    _ensure_rules_loaded()
    return registry.rules()


def _ensure_rules_loaded() -> None:
    # Deferred so ``engine`` never depends on ``rules`` at import time
    # (rules import engine for the base classes).
    import reprolint.rules  # noqa: F401


# --------------------------------------------------------------- suppression


class Baseline:
    """Grandfathered findings, matched by ``(rule, path, snippet)``.

    Matching ignores line numbers so unrelated edits above a grandfathered
    finding do not resurrect it; multiset semantics make two identical
    offending lines need two baseline entries.
    """

    def __init__(self, entries: Iterable[dict] | None = None) -> None:
        self._budget: dict[tuple[str, str, str], int] = {}
        for entry in entries or ():
            key = (entry["rule"], entry["path"], entry["snippet"])
            self._budget[key] = self._budget.get(key, 0) + 1

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file (``{"version": 1, "findings": [...]}``)."""
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("version") != 1:
            raise ValueError(f"unsupported baseline version in {path}")
        return cls(payload.get("findings", ()))

    @staticmethod
    def dump(findings: Iterable[Finding]) -> str:
        """Serialise ``findings`` as baseline-file JSON (for ``--write-baseline``)."""
        rows = [
            {"rule": f.rule, "path": f.path, "snippet": f.snippet}
            for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
        ]
        return json.dumps({"version": 1, "findings": rows}, indent=2) + "\n"

    def __len__(self) -> int:
        return sum(self._budget.values())

    def filter(self, findings: list[Finding]) -> list[Finding]:
        """Findings not covered by the baseline (consumes matched budget)."""
        budget = dict(self._budget)
        fresh: list[Finding] = []
        for finding in findings:
            key = finding.key()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
            else:
                fresh.append(finding)
        return fresh


def _pragma_tables(ctx: FileContext) -> tuple[dict[int, set[str]], set[str]]:
    """Per-line and per-file pragma codes for ``ctx`` (codes upper-cased)."""
    per_line: dict[int, set[str]] = {}
    per_file: set[str] = set()
    for lineno, text in enumerate(ctx.lines, start=1):
        if "reprolint" not in text:
            continue
        match = _PRAGMA.search(text)
        if match is None:
            continue
        codes = {c.strip().upper() for c in match.group("codes").split(",") if c.strip()}
        if match.group("kind") == "disable-file":
            if lineno <= _FILE_PRAGMA_WINDOW:
                per_file |= codes
        else:
            per_line.setdefault(lineno, set()).update(codes)
    return per_line, per_file


def _suppressed(finding: Finding, per_line: dict[int, set[str]], per_file: set[str]) -> bool:
    for codes in (per_file, per_line.get(finding.line, ())):
        if "ALL" in codes or finding.rule in codes:
            return True
    return False


# -------------------------------------------------------------------- driver


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Iterable[Rule] | None = None,
    honor_pragmas: bool = True,
) -> list[Finding]:
    """Lint one source string — the fixture-test entry point.

    ``path`` participates in path-scoped rules (timing whitelists, the
    ``distributed/`` hot-path scope), so fixtures pick their virtual
    location; posix separators are normalised.
    """
    path = path.replace("\\", "/")
    if rules is None:
        rules = all_rules()
    tree = ast.parse(source, filename=path)
    ctx = FileContext(path, source, tree)
    findings: list[Finding] = []
    for rule in rules:
        if rule.applies_to(path):
            findings.extend(rule.check(ctx))
    if honor_pragmas:
        per_line, per_file = _pragma_tables(ctx)
        findings = [f for f in findings if not _suppressed(f, per_line, per_file)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into the sorted ``*.py`` files to scan."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            yield path


def lint_paths(
    paths: Iterable[str | Path],
    rules: Iterable[Rule] | None = None,
    baseline: Baseline | None = None,
) -> list[Finding]:
    """Lint files/directories; returns findings not covered by ``baseline``."""
    if rules is None:
        rules = all_rules()
    rules = list(rules)
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        rel = file_path.as_posix()
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, path=rel, rules=rules))
    if baseline is not None:
        findings = baseline.filter(findings)
    return findings
