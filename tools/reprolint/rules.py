"""The shipped REP001-REP006 rules.

Each rule encodes one invariant the repo's dynamic test suite relies on but
cannot itself see (a nondeterministic construct may be hash-order-lucky for
every seed the tests use).  The catalogue, with worked examples and the
contract each rule protects, lives in ``docs/linting.md``.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterator

from reprolint.engine import FileContext, Finding, Rule, registry


def _walk_parents(tree: ast.AST) -> Iterator[tuple[ast.AST, tuple[ast.AST, ...]]]:
    """Yield ``(node, ancestors)`` pairs, ancestors ordered root-first."""
    stack: list[ast.AST] = []

    def rec(node: ast.AST) -> Iterator[tuple[ast.AST, tuple[ast.AST, ...]]]:
        yield node, tuple(stack)
        stack.append(node)
        for child in ast.iter_child_nodes(node):
            yield from rec(child)
        stack.pop()

    yield from rec(tree)


def _last_segment(node: ast.AST) -> str:
    """Trailing identifier of a decorator/base expression (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _module_aliases(tree: ast.AST, module: str) -> set[str]:
    """Names the module ``module`` is bound to by ``import`` statements."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name)
    return aliases


@registry.register
class UnseededRandomRule(Rule):
    """REP001 — algorithm randomness must flow through a seeded ``random.Random``.

    Module-level ``random.*`` calls draw from the interpreter-global RNG:
    any import-order change, library upgrade, or unrelated consumer shifts
    the stream, and no run can be replayed from a spec.  The repo's
    contract (PR 3/PR 5) is explicit seeded ``random.Random`` instances (or
    spec-hash seeding in the runner, pragma'd where deliberate).
    """

    code = "REP001"
    name = "unseeded-global-random"
    rationale = "global random.* calls are unreplayable; use seeded random.Random"

    #: constructors of self-contained generators — the blessed access points.
    _ALLOWED = frozenset({"Random", "SystemRandom"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = _module_aliases(ctx.tree, "random")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = [a.name for a in node.names if a.name not in self._ALLOWED]
                if bad:
                    yield ctx.finding(
                        self,
                        node,
                        f"from-import of global RNG function(s) {', '.join(bad)}; "
                        "import random.Random and seed it explicitly",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in aliases
                    and func.attr not in self._ALLOWED
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"call to module-level random.{func.attr}(); route all "
                        "algorithm randomness through a seeded random.Random",
                    )


@registry.register
class UnorderedIterationRule(Rule):
    """REP002 — never iterate an inline-built unordered set.

    ``for x in set(...)`` (and set displays/comprehensions used directly as
    an iterable) visit elements in ``PYTHONHASHSEED``-dependent order.  The
    moment the loop body draws randomness, emits messages, or appends to a
    result, two identical runs can diverge — and stay hash-order-lucky under
    every seed the tests happen to use.  Iterate ``sorted(...)`` or keep an
    ordered container instead; order-insensitive reductions (``sum``,
    ``max``, set algebra) are untouched because they are not ``for`` loops.
    """

    code = "REP002"
    name = "unordered-set-iteration"
    rationale = "set iteration order is hash-dependent; sort before iterating"

    @staticmethod
    def _is_inline_set(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            iters: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_inline_set(it):
                    yield ctx.finding(
                        self,
                        it,
                        "iteration over an unordered set expression; iterate "
                        "sorted(...) (or an ordered container) so element order "
                        "cannot depend on PYTHONHASHSEED",
                    )


@registry.register
class BuiltinHashOrderingRule(Rule):
    """REP003 — no builtin ``hash()``/``id()`` outside ``__hash__``.

    ``hash()`` is salted per process for strings and ``id()`` is an address:
    neither survives a restart, so any decision keyed on them (adversary
    choices, tie-breaks, orderings) silently varies between runs.  Fault
    decisions must stay keyed-BLAKE2 (``distributed/adversary.py``);
    ``__hash__`` implementations themselves are exempt, and deliberate
    identity-keying (e.g. ``BitsMemo``) carries a justified pragma.
    """

    code = "REP003"
    name = "builtin-hash-ordering"
    rationale = "hash()/id() are per-process values; key decisions on stable data"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node, ancestors in _walk_parents(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("hash", "id")
            ):
                continue
            if any(
                isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
                and a.name == "__hash__"
                for a in ancestors
            ):
                continue
            yield ctx.finding(
                self,
                node,
                f"builtin {node.func.id}() result is process-local; derive keys "
                "and orderings from stable values (keyed BLAKE2, labels, reprs)",
            )


@registry.register
class WallClockRule(Rule):
    """REP004 — no wall-clock reads outside the timing-whitelisted modules.

    Algorithm and engine code must be a pure function of ``(graph, seed,
    model)``; a clock read anywhere else either leaks into results (breaking
    the byte-identical serial/parallel report contract) or tempts
    time-dependent control flow.  Timing belongs to the whitelisted
    orchestration modules (``experiments/runner.py``, ``experiments/cli.py``,
    the ``defs_*`` experiment definitions) and ``benchmarks/``.
    """

    code = "REP004"
    name = "wall-clock-read"
    rationale = "clock reads outside runner/cli/defs_*/benchmarks break purity"

    _WHITELIST = (
        "*/experiments/runner.py",
        "*/experiments/cli.py",
        "*/experiments/defs_*.py",
        "*benchmarks/*",
    )
    _TIME_FNS = frozenset(
        {
            "time",
            "time_ns",
            "perf_counter",
            "perf_counter_ns",
            "monotonic",
            "monotonic_ns",
            "process_time",
            "process_time_ns",
            "sleep",
        }
    )
    _DATETIME_FNS = frozenset({"now", "utcnow", "today"})

    def applies_to(self, path: str) -> bool:
        return not any(fnmatch(path, pat) for pat in self._WHITELIST)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        time_aliases = _module_aliases(ctx.tree, "time")
        dt_module_aliases = _module_aliases(ctx.tree, "datetime")
        from_imported: set[str] = set()  # names from-imported out of time/datetime
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    from_imported.update(
                        (a.asname or a.name) for a in node.names if a.name in self._TIME_FNS
                    )
                elif node.module == "datetime":
                    from_imported.update(
                        (a.asname or a.name)
                        for a in node.names
                        if a.name in ("datetime", "date")
                    )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                # from time import perf_counter; perf_counter()
                if func.id in from_imported and func.id in self._TIME_FNS:
                    yield ctx.finding(self, node, self._message(func.id))
            elif isinstance(func, ast.Attribute):
                base = func.value
                if (
                    isinstance(base, ast.Name)
                    and base.id in time_aliases
                    and func.attr in self._TIME_FNS
                ):
                    yield ctx.finding(self, node, self._message(f"time.{func.attr}"))
                elif func.attr in self._DATETIME_FNS and (
                    (isinstance(base, ast.Name) and base.id in from_imported)
                    or (
                        isinstance(base, ast.Attribute)
                        and isinstance(base.value, ast.Name)
                        and base.value.id in dt_module_aliases
                        and base.attr in ("datetime", "date")
                    )
                ):
                    yield ctx.finding(self, node, self._message(f"datetime {func.attr}"))

    def _message(self, what: str) -> str:
        return (
            f"wall-clock read ({what}()) outside the timing whitelist; move "
            "timing into experiments/runner.py, experiments/cli.py, a defs_* "
            "module or benchmarks/"
        )


@registry.register
class NumpyImportDisciplineRule(Rule):
    """REP005 — NumPy only through the guarded ``_np`` module-global pattern.

    NumPy is an optional accelerator, never a dependency: the no-NumPy CI
    leg must import every module.  The one blessed shape is the
    ``distributed/columnar.py`` / ``distributed/targeted.py`` guard —
    ``import numpy as _np`` inside ``try/except ImportError`` (behind the
    ``REPRO_DISABLE_NUMPY`` gate) — because the ``_np`` global is also the
    fallback-parity tests' monkeypatch point.  ``TYPE_CHECKING`` imports
    are exempt; a hard-dependency module (SciPy-coupled analysis) documents
    itself with a pragma.
    """

    code = "REP005"
    name = "unguarded-numpy-import"
    rationale = "numpy must stay optional: guarded `import numpy as _np` only"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node, ancestors in _walk_parents(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy" or alias.name.startswith("numpy."):
                        if not self._allowed(alias, ancestors):
                            yield ctx.finding(self, node, self._message(alias.asname))
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "numpy" or module.startswith("numpy."):
                    if not self._type_checking_only(ancestors):
                        yield ctx.finding(self, node, self._message(None))

    @staticmethod
    def _type_checking_only(ancestors: tuple[ast.AST, ...]) -> bool:
        return any(
            isinstance(a, ast.If) and _last_segment(a.test) == "TYPE_CHECKING"
            for a in ancestors
        )

    def _allowed(self, alias: ast.alias, ancestors: tuple[ast.AST, ...]) -> bool:
        if self._type_checking_only(ancestors):
            return True
        if alias.asname != "_np":
            return False
        for a in ancestors:
            if isinstance(a, ast.Try):
                for handler in a.handlers:
                    caught = handler.type
                    names = (
                        [_last_segment(n) for n in caught.elts]
                        if isinstance(caught, ast.Tuple)
                        else [_last_segment(caught)] if caught is not None else [""]
                    )
                    if any(
                        n in ("ImportError", "ModuleNotFoundError", "Exception", "")
                        for n in names
                    ):
                        return True
        return False

    def _message(self, asname: str | None) -> str:
        spelled = f"as {asname}" if asname else "directly"
        return (
            f"numpy imported {spelled} without the optional-accelerator guard; "
            "use `try: import numpy as _np / except ImportError: _np = None` "
            "behind the REPRO_DISABLE_NUMPY gate (see distributed/columnar.py)"
        )


@registry.register
class HotPathDisciplineRule(Rule):
    """REP006 — ``distributed/`` hot-path discipline.

    Three checks on the engine package, whose objects are instantiated per
    node, per round or per message:

    * every class declares ``__slots__`` (instance dicts cost ~3x the
      memory and a dict probe per attribute on the hot path) — dataclass
      records, enums and exception types are exempt;
    * ``estimate_bits`` is never called inside a loop — per-message sizing
      must route through ``PayloadSizeTable``/``BitsMemo`` so a round costs
      one probe per distinct payload, not one recursive walk per message
      (``encoding.py`` itself, which implements those caches, is exempt);
    * ``estimate_bits`` is never called anywhere inside a ``vector_round``
      function — lowered whole-round kernels (E23) are the hottest path of
      all and must size payloads through the closed forms
      (``int_payload_bits`` / ``repetition_frame_bits``), loop or no loop.
    """

    code = "REP006"
    name = "hot-path-discipline"
    rationale = "distributed/ classes need __slots__; size via PayloadSizeTable"

    _EXEMPT_BASE_SUFFIXES = ("Error", "Exception", "Warning")
    _EXEMPT_BASES = frozenset({"Enum", "IntEnum", "Flag", "IntFlag", "Protocol"})
    _LOOPS = (ast.For, ast.AsyncFor, ast.While, ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)

    def applies_to(self, path: str) -> bool:
        return "distributed/" in path

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node, ancestors in _walk_parents(ctx.tree):
            if isinstance(node, ast.ClassDef):
                finding = self._check_class(ctx, node)
                if finding is not None:
                    yield finding
            elif (
                not ctx.path.endswith("distributed/encoding.py")
                and isinstance(node, ast.Call)
                and _last_segment(node.func) == "estimate_bits"
            ):
                if any(
                    isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and a.name == "vector_round"
                    for a in ancestors
                ):
                    yield ctx.finding(
                        self,
                        node,
                        "estimate_bits() called inside a vector_round kernel; "
                        "lowered whole-round kernels must size payloads with "
                        "the closed forms (int_payload_bits / "
                        "repetition_frame_bits) — estimate_bits is "
                        "per-message work",
                    )
                elif any(isinstance(a, self._LOOPS) for a in ancestors):
                    yield ctx.finding(
                        self,
                        node,
                        "estimate_bits() called inside a loop; size payloads through "
                        "a PayloadSizeTable (value-keyed, run-lifetime) or BitsMemo "
                        "(identity-keyed, one delivery pass) instead",
                    )

    def _check_class(self, ctx: FileContext, node: ast.ClassDef) -> Finding | None:
        if any(_last_segment(d) == "dataclass" for d in node.decorator_list):
            return None
        for base in node.bases:
            seg = _last_segment(base)
            if seg in self._EXEMPT_BASES or seg.endswith(self._EXEMPT_BASE_SUFFIXES):
                return None
        for stmt in node.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return None
        return ctx.finding(
            self,
            node,
            f"class {node.name} in distributed/ lacks __slots__; engine-package "
            "objects are instantiated per node/per message — declare __slots__ "
            "(dataclasses, enums and exceptions are exempt)",
        )
