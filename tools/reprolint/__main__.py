"""``python tools/reprolint`` entry point.

Running a directory puts that directory itself on ``sys.path``; the package
modules import each other as ``reprolint.*``, so the *parent* directory
(``tools/``) must be importable first.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from reprolint.cli import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
