"""Text and JSON rendering of lint findings.

The text reporter is the human/CI-log format (one ``path:line:col CODE
message`` row per finding, grouped output stable under re-runs).  The JSON
reporter is the machine format CI uploads as an artifact; its schema is
pinned by ``tests/test_lint.py`` so downstream tooling can rely on it.
"""

from __future__ import annotations

import json
from typing import Iterable

from reprolint.engine import Finding, Rule

#: Schema version stamped into every JSON report.
JSON_SCHEMA = 1


def render_text(findings: Iterable[Finding]) -> str:
    """One ``path:line:col CODE message`` line per finding, plus a summary."""
    findings = list(findings)
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}\n    {f.snippet}"
        for f in findings
    ]
    lines.append(
        "reprolint: clean"
        if not findings
        else f"reprolint: {len(findings)} finding(s)"
    )
    return "\n".join(lines)


def render_json(
    findings: Iterable[Finding], rules: Iterable[Rule], scanned_files: int
) -> str:
    """The artifact format: schema, rule catalogue, findings, summary."""
    findings = list(findings)
    payload = {
        "schema": JSON_SCHEMA,
        "tool": "reprolint",
        "rules": [
            {"code": r.code, "name": r.name, "rationale": r.rationale} for r in rules
        ],
        "scanned_files": scanned_files,
        "findings": [f.as_dict() for f in findings],
        "summary": {"total": len(findings), "clean": not findings},
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
