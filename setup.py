"""Setup shim: metadata lives in pyproject.toml; this file enables legacy editable installs."""
from setuptools import setup

setup()
