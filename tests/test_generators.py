"""Unit tests for the graph generators (structure, determinism, parameters)."""

import pytest

from repro.graphs import (
    assign_random_weights,
    assign_weights_from_choices,
    barabasi_albert_graph,
    bidirect,
    cluster_graph,
    complete_bipartite_graph,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    gnm_random_graph,
    gnp_random_graph,
    grid_graph,
    hypercube_graph,
    orient_randomly,
    overlapping_stars_graph,
    path_graph,
    random_digraph,
    random_regular_graph,
    random_tournament,
    star_graph,
)


class TestDeterministicGenerators:
    def test_path_graph(self):
        g = path_graph(5)
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 4
        assert g.is_connected()

    def test_cycle_graph(self):
        g = cycle_graph(6)
        assert g.number_of_edges() == 6
        assert all(g.degree(v) == 2 for v in g.nodes())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star_graph(self):
        g = star_graph(7)
        assert g.degree(0) == 7
        assert g.number_of_edges() == 7

    def test_complete_graph(self):
        g = complete_graph(6)
        assert g.number_of_edges() == 15
        assert g.max_degree() == 5

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(3, 4)
        assert g.number_of_nodes() == 7
        assert g.number_of_edges() == 12
        # Bipartite: adjacent vertices never share a neighbour.
        for u, v in g.edges():
            assert not (g.neighbors(u) & g.neighbors(v))

    def test_grid_graph(self):
        g = grid_graph(3, 4)
        assert g.number_of_nodes() == 12
        assert g.number_of_edges() == 3 * 3 + 2 * 4
        assert g.is_connected()

    def test_hypercube(self):
        g = hypercube_graph(4)
        assert g.number_of_nodes() == 16
        assert all(g.degree(v) == 4 for v in g.nodes())


class TestRandomGenerators:
    def test_gnp_bounds_and_determinism(self):
        g1 = gnp_random_graph(20, 0.3, seed=5)
        g2 = gnp_random_graph(20, 0.3, seed=5)
        assert g1 == g2
        assert g1.number_of_nodes() == 20
        assert 0 <= g1.number_of_edges() <= 190

    def test_gnp_invalid_p(self):
        with pytest.raises(ValueError):
            gnp_random_graph(5, 1.5)

    def test_gnp_extremes(self):
        assert gnp_random_graph(10, 0.0, seed=1).number_of_edges() == 0
        assert gnp_random_graph(10, 1.0, seed=1).number_of_edges() == 45

    def test_gnm_exact_edge_count(self):
        g = gnm_random_graph(15, 30, seed=2)
        assert g.number_of_edges() == 30

    def test_gnm_too_many_edges(self):
        with pytest.raises(ValueError):
            gnm_random_graph(4, 10)

    def test_connected_gnp_is_connected(self):
        for seed in range(5):
            g = connected_gnp_graph(25, 0.05, seed=seed)
            assert g.is_connected()

    def test_random_regular(self):
        g = random_regular_graph(12, 3, seed=3)
        assert all(g.degree(v) == 3 for v in g.nodes())

    def test_random_regular_parity(self):
        with pytest.raises(ValueError):
            random_regular_graph(5, 3)

    def test_barabasi_albert(self):
        g = barabasi_albert_graph(50, 2, seed=4)
        assert g.number_of_nodes() == 50
        assert g.is_connected()
        assert g.max_degree() >= 4

    def test_cluster_graph_connected(self):
        g = cluster_graph(3, 5, seed=6)
        assert g.number_of_nodes() == 15
        assert g.is_connected()

    def test_overlapping_stars(self):
        g = overlapping_stars_graph(4, 5, 2, seed=7)
        assert g.is_connected()
        assert g.number_of_nodes() > 4


class TestDirectedGenerators:
    def test_random_digraph(self):
        d = random_digraph(10, 0.5, seed=1)
        assert d.number_of_nodes() == 10
        assert all(u != v for u, v in d.edges())

    def test_tournament_has_one_arc_per_pair(self):
        d = random_tournament(9, seed=2)
        assert d.number_of_edges() == 36
        for u, v in d.edges():
            assert not d.has_edge(v, u)

    def test_orient_randomly_preserves_count(self):
        g = gnp_random_graph(12, 0.4, seed=3)
        d = orient_randomly(g, seed=4)
        assert d.number_of_edges() == g.number_of_edges()

    def test_bidirect_doubles(self):
        g = gnp_random_graph(12, 0.4, seed=5)
        d = bidirect(g)
        assert d.number_of_edges() == 2 * g.number_of_edges()


class TestWeightAssignment:
    def test_assign_random_weights_range(self):
        g = gnp_random_graph(10, 0.5, seed=1)
        assign_random_weights(g, 2.0, 5.0, seed=2)
        assert all(2.0 <= g.weight(u, v) <= 5.0 for u, v in g.edges())

    def test_assign_integer_weights(self):
        g = gnp_random_graph(10, 0.5, seed=1)
        assign_random_weights(g, 0, 3, seed=2, integer=True)
        assert all(g.weight(u, v) == int(g.weight(u, v)) for u, v in g.edges())

    def test_assign_from_choices(self):
        g = gnp_random_graph(10, 0.5, seed=1)
        assign_weights_from_choices(g, [1.0, 10.0], seed=3)
        assert all(g.weight(u, v) in (1.0, 10.0) for u, v in g.edges())

    def test_assign_from_empty_choices_raises(self):
        g = gnp_random_graph(5, 0.5, seed=1)
        with pytest.raises(ValueError):
            assign_weights_from_choices(g, [])

    def test_invalid_range(self):
        g = gnp_random_graph(5, 0.5, seed=1)
        with pytest.raises(ValueError):
            assign_random_weights(g, 5.0, 1.0)


class TestSparseGnpCsr:
    """The freeze-direct CSR generator: same sampler, no adjacency dicts."""

    def test_matches_dict_generator_on_connected_samples(self):
        # Identical randomness consumption: whenever the raw sample is
        # already connected (no patching), the two generators must produce
        # the exact same edge set.
        from repro.graphs import sparse_gnp_csr, sparse_gnp_graph

        csr = sparse_gnp_csr(400, 0.03, seed=11, connect=False)
        dict_based = sparse_gnp_graph(400, 0.03, seed=11, connect=False)
        assert csr.number_of_nodes() == dict_based.number_of_nodes() == 400
        assert sorted(map(tuple, map(sorted, csr.edges()))) == sorted(
            map(tuple, map(sorted, dict_based.edges()))
        )

    def test_deterministic_and_connected(self):
        from repro.graphs import sparse_gnp_csr

        a = sparse_gnp_csr(2000, 0.002, seed=5)
        b = sparse_gnp_csr(2000, 0.002, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())
        # connect=True default: one component, reachable by flooding.
        seen = {0}
        frontier = [0]
        while frontier:
            v = frontier.pop()
            for w in a.neighbors(v):
                if w not in seen:
                    seen.add(w)
                    frontier.append(w)
        assert len(seen) == 2000

    def test_freeze_is_identity_and_degrees_consistent(self):
        from repro.graphs import sparse_gnp_csr

        g = sparse_gnp_csr(300, 0.02, seed=2)
        topo = g.freeze()
        assert g.freeze() is topo  # already-built CSR, never re-walked
        assert sum(topo.degrees) == 2 * g.number_of_edges()

    def test_rejects_dense_p(self):
        from repro.graphs import sparse_gnp_csr

        with pytest.raises(ValueError):
            sparse_gnp_csr(10, 1.0, seed=1)

    def test_runs_through_the_columnar_engine(self):
        from repro.core import run_flood_max
        from repro.graphs import sparse_gnp_csr

        g = sparse_gnp_csr(1500, 0.004, seed=9)
        result = run_flood_max(g, rounds=8, seed=3, engine="columnar")
        assert result.converged
        assert result.leader == 1499
