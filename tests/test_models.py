"""Tests for the pluggable communication-model policy layer."""

import pytest

from repro.distributed import (
    BroadcastCongestModel,
    BroadcastNodeProgram,
    CongestModel,
    CongestedCliqueModel,
    FunctionProgram,
    LocalModel,
    MessageAdmissionError,
    Metrics,
    Model,
    ModelConfig,
    NodeProgram,
    NotANeighborError,
    broadcast_congest_model,
    congest_budget_bits,
    congest_model,
    congested_clique_model,
    local_model,
    run_program,
)
from repro.graphs import gnp_random_graph, path_graph, star_graph
from repro.graphs.topology import complete_overlay

ALL_MODELS = [local_model, congest_model, broadcast_congest_model, congested_clique_model]


class TestPolicyObjects:
    def test_factories_return_policy_subclasses(self):
        assert isinstance(local_model(10), LocalModel)
        assert isinstance(congest_model(10), CongestModel)
        assert isinstance(broadcast_congest_model(10), BroadcastCongestModel)
        assert isinstance(congested_clique_model(10), CongestedCliqueModel)

    def test_bandwidth_budgets(self):
        assert local_model(100).bandwidth_bits is None
        for factory in (congest_model, broadcast_congest_model, congested_clique_model):
            assert factory(100).bandwidth_bits == congest_budget_bits(100)
            assert factory(100, logn_factor=8).bandwidth_bits == congest_budget_bits(100, 8)

    def test_admission_and_overlay_flags(self):
        assert not local_model(5).broadcast_only and not local_model(5).uses_overlay
        assert not congest_model(5).broadcast_only and not congest_model(5).uses_overlay
        assert broadcast_congest_model(5).broadcast_only
        assert not broadcast_congest_model(5).uses_overlay
        assert congested_clique_model(5).uses_overlay
        assert not congested_clique_model(5).broadcast_only

    def test_model_config_compat_factory(self):
        for member, cls in [
            (Model.LOCAL, LocalModel),
            (Model.CONGEST, CongestModel),
            (Model.BROADCAST_CONGEST, BroadcastCongestModel),
            (Model.CONGESTED_CLIQUE, CongestedCliqueModel),
        ]:
            policy = ModelConfig(model=member, n=12, enforce=False)
            assert type(policy) is cls
            assert policy.model is member
            assert policy.n == 12 and policy.enforce is False

    def test_value_equality_and_hashing(self):
        # The pre-policy ModelConfig was a frozen dataclass; keep value
        # semantics so configs still work as cache keys.
        assert congest_model(10) == congest_model(10)
        assert hash(congest_model(10)) == hash(congest_model(10))
        assert congest_model(10) != congest_model(11)
        assert congest_model(10) != congest_model(10, logn_factor=8)
        assert congest_model(10) != broadcast_congest_model(10)
        assert local_model(10) != congest_model(10)
        assert len({congested_clique_model(5), congested_clique_model(5)}) == 1

    def test_clique_topology_is_complete_and_cached(self):
        g = gnp_random_graph(9, 0.2, seed=1)
        model = congested_clique_model(9)
        topo = model.communication_topology(g)
        assert topo is model.communication_topology(g)  # cached per label set
        assert topo.n == 9 and topo.arc_count == 9 * 8
        for i in range(topo.n):
            assert len(topo.neighbor_label_set(i)) == 8

    def test_complete_overlay_labels(self):
        topo = complete_overlay(["a", "b", "c"])
        assert topo.neighbor_label_set(0) == frozenset({"b", "c"})
        assert topo.edge_count == 3


class EchoOnce(NodeProgram):
    """Broadcast one payload at start, halt after one round."""

    def __init__(self, payload):
        self.payload = payload

    def on_start(self, ctx):
        ctx.broadcast(self.payload)

    def on_round(self, ctx, inbox):
        ctx.set_output(sorted(inbox, key=repr))
        ctx.halt()


class TestBroadcastAdmission:
    @pytest.mark.parametrize("engine", ["indexed", "reference"])
    def test_targeted_send_rejected(self, engine):
        def on_start(ctx):
            ctx.send(next(iter(ctx.neighbors)), 1)

        with pytest.raises(MessageAdmissionError):
            run_program(
                path_graph(4),
                lambda v: FunctionProgram(on_start, lambda ctx, inbox: None),
                model=broadcast_congest_model(4),
                engine=engine,
            )

    @pytest.mark.parametrize("engine", ["indexed", "reference"])
    def test_second_broadcast_in_round_rejected(self, engine):
        def on_start(ctx):
            ctx.broadcast(1)
            ctx.broadcast(2)

        with pytest.raises(MessageAdmissionError):
            run_program(
                path_graph(4),
                lambda v: FunctionProgram(on_start, lambda ctx, inbox: None),
                model=broadcast_congest_model(4),
                engine=engine,
            )

    @pytest.mark.parametrize("engine", ["indexed", "reference"])
    def test_double_broadcast_rejected_even_with_no_neighbors(self, engine):
        from repro.graphs import Graph

        g = Graph()
        g.add_node("lonely")

        def on_start(ctx):
            ctx.broadcast(1)  # queues nothing (degree 0) ...
            ctx.broadcast(2)  # ... but still violates one-per-round

        with pytest.raises(MessageAdmissionError):
            run_program(
                g,
                lambda v: FunctionProgram(on_start, lambda ctx, inbox: None),
                model=broadcast_congest_model(1),
                engine=engine,
            )

    def test_broadcast_program_rejects_multi_payload_inbox(self):
        class Listener(BroadcastNodeProgram):
            def on_start(self, ctx):
                pass

            def on_broadcast_round(self, ctx, heard):
                ctx.set_output(heard)
                ctx.halt()

        def noisy_start(ctx):
            ctx.broadcast(1)
            ctx.broadcast(2)  # legal under plain CONGEST ...

        def factory(v):
            if v == 0:
                return FunctionProgram(noisy_start, lambda ctx, inbox: None)
            return Listener()

        # ... but a BroadcastNodeProgram refuses the ambiguous inbox.
        with pytest.raises(MessageAdmissionError):
            run_program(path_graph(2), factory, model=congest_model(2))

    def test_one_broadcast_per_round_allowed_each_round(self):
        class TwoRounds(BroadcastNodeProgram):
            def on_start(self, ctx):
                ctx.broadcast(("hello", 1))

            def on_broadcast_round(self, ctx, heard):
                if ctx.round == 1:
                    assert all(not isinstance(p, list) for p in heard.values())
                    ctx.broadcast(("hello", 2))
                else:
                    ctx.set_output(sorted(heard.values()))
                    ctx.halt()

        result = run_program(
            path_graph(5), lambda v: TwoRounds(), model=broadcast_congest_model(5)
        )
        assert result.completed

    def test_broadcast_payload_counter_matches_engines(self):
        g = gnp_random_graph(20, 0.3, seed=4)
        runs = {
            engine: run_program(
                g,
                lambda v: EchoOnce(("x", 1)),
                model=broadcast_congest_model(20),
                seed=1,
                engine=engine,
            )
            for engine in ("indexed", "reference")
        }
        for run in runs.values():
            assert run.metrics.per_model["broadcast_payloads"] == 20
            assert run.metrics.as_dict()["broadcast_payloads"] == 20
        assert runs["indexed"].metrics.as_dict() == runs["reference"].metrics.as_dict()

    def test_counter_preseeded_even_when_silent(self):
        def on_start(ctx):
            ctx.set_output(None)
            ctx.halt()

        result = run_program(
            path_graph(3),
            lambda v: FunctionProgram(on_start, lambda ctx, inbox: None),
            model=broadcast_congest_model(3),
        )
        assert result.metrics.as_dict()["broadcast_payloads"] == 0


class TestCongestedClique:
    @pytest.mark.parametrize("engine", ["indexed", "reference"])
    def test_all_pairs_reachable_and_graph_neighbors_exposed(self, engine):
        g = path_graph(5)  # sparse input graph, complete communication graph

        class Probe(NodeProgram):
            def on_start(self, ctx):
                assert len(ctx.neighbors) == ctx.n - 1
                assert ctx.graph_neighbors < ctx.neighbors
                # Clique links exist even between non input-graph neighbours.
                for dst in ctx.neighbors:
                    ctx.send(dst, ("ping", 0))

            def on_round(self, ctx, inbox):
                ctx.set_output(len(inbox))
                ctx.halt()

        result = run_program(g, lambda v: Probe(), model=congested_clique_model(5), engine=engine)
        assert set(result.outputs.values()) == {4}

    def test_virtual_link_counter_matches_engines(self):
        g = path_graph(6)  # 5 graph arcs per direction, 30 overlay links
        runs = {
            engine: run_program(
                g,
                lambda v: EchoOnce(1),
                model=congested_clique_model(6),
                seed=0,
                engine=engine,
            )
            for engine in ("indexed", "reference")
        }
        for run in runs.values():
            metrics = run.metrics.as_dict()
            assert metrics["messages_sent"] == 30
            assert metrics["virtual_link_messages"] == 30 - 10
        assert runs["indexed"].metrics.as_dict() == runs["reference"].metrics.as_dict()

    def test_local_congest_have_no_per_model_keys(self):
        # The golden-run contract: legacy models keep the legacy dict shape.
        for factory in (local_model, congest_model):
            result = run_program(path_graph(4), lambda v: EchoOnce(1), model=factory(4))
            assert set(result.metrics.as_dict()) == {
                "rounds",
                "messages_sent",
                "bits_sent",
                "max_message_bits",
                "bandwidth_violations",
                "cut_messages",
                "cut_bits",
            }

    def test_non_overlay_send_still_restricted(self):
        def on_start(ctx):
            ctx.send("not-there", 1)

        with pytest.raises(NotANeighborError):
            run_program(
                path_graph(3),
                lambda v: FunctionProgram(on_start, lambda ctx, inbox: None),
                model=congest_model(3),
            )


class TestEnforcementAcrossModels:
    """enforce=False bandwidth-violation counting, all models, both engines."""

    OVERSIZED = tuple(range(10_000))

    def _factory(self):
        def on_start(ctx):
            ctx.broadcast(TestEnforcementAcrossModels.OVERSIZED)
            ctx.set_output(True)
            ctx.halt()

        return lambda v: FunctionProgram(on_start, lambda ctx, inbox: None)

    @pytest.mark.parametrize(
        "factory", [congest_model, broadcast_congest_model, congested_clique_model]
    )
    def test_unenforced_violations_differential(self, factory):
        g = gnp_random_graph(10, 0.4, seed=8)
        runs = {
            engine: run_program(
                g,
                self._factory(),
                model=factory(10, enforce=False),
                seed=3,
                engine=engine,
            )
            for engine in ("indexed", "reference")
        }
        assert runs["indexed"].metrics.bandwidth_violations > 0
        assert (
            runs["indexed"].metrics.bandwidth_violations
            == runs["reference"].metrics.bandwidth_violations
        )
        assert runs["indexed"].metrics.as_dict() == runs["reference"].metrics.as_dict()

    def test_local_never_violates(self):
        for engine in ("indexed", "reference"):
            result = run_program(
                path_graph(4), self._factory(), model=local_model(4), engine=engine
            )
            assert result.metrics.bandwidth_violations == 0

    @pytest.mark.parametrize(
        "factory", [congest_model, broadcast_congest_model, congested_clique_model]
    )
    @pytest.mark.parametrize("engine", ["indexed", "reference"])
    def test_enforced_violation_raises(self, factory, engine):
        from repro.distributed import BandwidthExceededError

        with pytest.raises(BandwidthExceededError):
            run_program(
                path_graph(4),
                self._factory(),
                model=factory(4, enforce=True),
                engine=engine,
            )


class TestMetricsRoundZero:
    def test_record_message_before_start_round_is_kept(self):
        m = Metrics()
        m.record_message(5, crosses_cut=False)
        assert m.bits_per_round == [5]
        assert m.bits_sent == 5
        m.start_round()
        m.record_message(3, crosses_cut=False)
        assert m.bits_per_round == [5, 3]

    @pytest.mark.parametrize("engine", ["indexed", "reference"])
    def test_bits_per_round_totals_match_bits_sent(self, engine):
        class Chatty(NodeProgram):
            def on_start(self, ctx):
                ctx.broadcast(("start", 123))  # round-0 traffic

            def on_round(self, ctx, inbox):
                if ctx.round < 3:
                    ctx.broadcast(("round", ctx.round))
                else:
                    ctx.set_output(True)
                    ctx.halt()

        result = run_program(star_graph(6), lambda v: Chatty(), engine=engine)
        bpr = result.metrics.bits_per_round
        assert bpr[0] > 0  # on_start messages no longer dropped
        assert sum(bpr) == result.metrics.bits_sent
        assert len(bpr) == result.metrics.rounds + 1

    @pytest.mark.parametrize("model_factory", ALL_MODELS)
    def test_round_zero_bits_on_all_models(self, model_factory):
        result = run_program(
            path_graph(4), lambda v: EchoOnce(("m", 7)), model=model_factory(4), seed=0
        )
        assert result.metrics.bits_per_round[0] == result.metrics.bits_sent - sum(
            result.metrics.bits_per_round[1:]
        )
        assert result.metrics.bits_per_round[0] > 0


class TestRunResultAsDict:
    def test_as_dict_summarises_run(self):
        result = run_program(path_graph(4), lambda v: EchoOnce(1), seed=0)
        summary = result.as_dict()
        assert summary["completed"] is True
        assert summary["rounds"] == result.rounds
        assert summary["nodes"] == 4
        assert summary["outputs_set"] == 4
        assert summary["metrics"] == result.metrics.as_dict()
