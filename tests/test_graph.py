"""Unit tests for the Graph and DiGraph containers."""

import pytest

from repro.graphs import DiGraph, Graph, edge_key


class TestEdgeKey:
    def test_orders_integers(self):
        assert edge_key(5, 2) == (2, 5)
        assert edge_key(2, 5) == (2, 5)

    def test_orders_tuples(self):
        assert edge_key(("b", 1), ("a", 2)) == (("a", 2), ("b", 1))

    def test_mixed_unorderable_types_are_normalised_consistently(self):
        assert edge_key("x", 3) == edge_key(3, "x")

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            edge_key(1, 1)


class TestGraphBasics:
    def test_empty_graph(self):
        g = Graph()
        assert g.number_of_nodes() == 0
        assert g.number_of_edges() == 0
        assert g.is_connected()
        assert list(g.edges()) == []

    def test_add_edge_adds_nodes(self):
        g = Graph()
        g.add_edge(1, 2)
        assert g.has_node(1) and g.has_node(2)
        assert g.has_edge(1, 2) and g.has_edge(2, 1)
        assert g.number_of_edges() == 1

    def test_add_edge_rejects_self_loop(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(3, 3)

    def test_duplicate_edge_not_double_counted(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.number_of_edges() == 1

    def test_constructor_from_edges(self):
        g = Graph([(1, 2), (2, 3)])
        assert g.number_of_edges() == 2
        assert g.neighbors(2) == {1, 3}

    def test_weights_default_and_set(self):
        g = Graph()
        g.add_edge(1, 2)
        assert g.weight(1, 2) == 1.0
        g.set_weight(1, 2, 3.5)
        assert g.weight(2, 1) == 3.5
        assert g.total_weight() == 3.5

    def test_weight_missing_edge_raises(self):
        g = Graph([(1, 2)])
        with pytest.raises(KeyError):
            g.weight(1, 3)

    def test_remove_edge_and_node(self):
        g = Graph([(1, 2), (2, 3), (1, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        g.remove_node(3)
        assert not g.has_node(3)
        assert g.number_of_edges() == 0
        assert g.has_node(1)

    def test_remove_missing_raises(self):
        g = Graph([(1, 2)])
        with pytest.raises(KeyError):
            g.remove_edge(1, 3)
        with pytest.raises(KeyError):
            g.remove_node(7)

    def test_degree_and_max_degree(self):
        g = Graph([(0, 1), (0, 2), (0, 3), (1, 2)])
        assert g.degree(0) == 3
        assert g.degree(3) == 1
        assert g.max_degree() == 3

    def test_incident_edges_canonical(self):
        g = Graph([(2, 1), (2, 5)])
        assert g.incident_edges(2) == {(1, 2), (2, 5)}

    def test_edges_reported_once(self):
        g = Graph([(1, 2), (2, 3), (3, 1)])
        edges = list(g.edges())
        assert len(edges) == 3
        assert len(set(edges)) == 3

    def test_copy_is_independent(self):
        g = Graph([(1, 2)])
        h = g.copy()
        h.add_edge(2, 3)
        assert not g.has_edge(2, 3)
        assert g != h

    def test_equality(self):
        assert Graph([(1, 2)]) == Graph([(2, 1)])
        assert Graph([(1, 2)]) != Graph([(1, 3)])


class TestGraphStructure:
    def test_subgraph_induced(self):
        g = Graph([(1, 2), (2, 3), (3, 4), (4, 1)])
        sub = g.subgraph({1, 2, 3})
        assert sub.edge_set() == {(1, 2), (2, 3)}
        assert sub.number_of_nodes() == 3

    def test_edge_subgraph(self):
        g = Graph([(1, 2), (2, 3), (3, 4)])
        sub = g.edge_subgraph([(2, 3)])
        assert sub.edge_set() == {(2, 3)}

    def test_bfs_distances(self):
        g = Graph([(0, 1), (1, 2), (2, 3)])
        assert g.bfs_distances(0) == {0: 0, 1: 1, 2: 2, 3: 3}
        assert g.bfs_distances(0, max_depth=2) == {0: 0, 1: 1, 2: 2}

    def test_ball(self):
        g = Graph([(0, 1), (1, 2), (2, 3)])
        assert g.ball(1, 1) == {0, 1, 2}

    def test_connectivity_and_components(self):
        g = Graph([(0, 1), (2, 3)])
        assert not g.is_connected()
        comps = g.connected_components()
        assert sorted(sorted(c) for c in comps) == [[0, 1], [2, 3]]

    def test_has_path_within(self):
        g = Graph([(0, 1), (1, 2), (2, 3)])
        assert g.has_path_within(0, 2, 2)
        assert not g.has_path_within(0, 3, 2)
        assert g.has_path_within(0, 0, 0)


class TestDiGraph:
    def test_arcs_are_directed(self):
        d = DiGraph([(1, 2)])
        assert d.has_edge(1, 2)
        assert not d.has_edge(2, 1)
        assert d.number_of_edges() == 1

    def test_successors_predecessors_neighbors(self):
        d = DiGraph([(1, 2), (3, 1)])
        assert d.successors(1) == {2}
        assert d.predecessors(1) == {3}
        assert d.neighbors(1) == {2, 3}
        assert d.degree(1) == 2

    def test_in_out_degree(self):
        d = DiGraph([(1, 2), (1, 3), (4, 1)])
        assert d.out_degree(1) == 2
        assert d.in_degree(1) == 1

    def test_remove_node_cleans_both_directions(self):
        d = DiGraph([(1, 2), (2, 3), (3, 1)])
        d.remove_node(2)
        assert d.edge_set() == {(3, 1)}

    def test_directed_bfs_follows_arcs(self):
        d = DiGraph([(0, 1), (1, 2), (2, 0)])
        assert d.bfs_distances(0) == {0: 0, 1: 1, 2: 2}
        assert d.has_path_within(0, 2, 2)
        assert not d.has_path_within(2, 1, 1)

    def test_to_undirected(self):
        d = DiGraph([(1, 2), (2, 1), (2, 3)])
        g = d.to_undirected()
        assert g.edge_set() == {(1, 2), (2, 3)}

    def test_weakly_connected(self):
        d = DiGraph([(1, 2), (3, 2)])
        assert d.is_weakly_connected()
        d.add_node(9)
        assert not d.is_weakly_connected()

    def test_incident_edges(self):
        d = DiGraph([(1, 2), (3, 1)])
        assert d.incident_edges(1) == {(1, 2), (3, 1)}

    def test_edge_subgraph_and_copy(self):
        d = DiGraph([(1, 2), (2, 3)])
        sub = d.edge_subgraph([(1, 2)])
        assert sub.edge_set() == {(1, 2)}
        c = d.copy()
        c.remove_edge(1, 2)
        assert d.has_edge(1, 2)
