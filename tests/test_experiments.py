"""Tests for the experiment orchestration subsystem (repro.experiments).

Covers the scenario registry (completeness, spec hashing, picklability),
the sharded runner (serial/parallel determinism, caching, report schema),
the global-random guard, and the CLI entry point.
"""

import json
import pickle
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import (
    ResultCache,
    ScenarioSpec,
    execute_scenario,
    experiment_ids,
    get_experiment,
    run_experiments,
    strip_timing,
)
from repro.experiments.families import build_graph
from repro.experiments.runner import SCHEMA

# Cheap experiments (sub-second apiece) used wherever scenarios must actually run.
FAST_IDS = ["E04", "E07", "E11"]
REPO_ROOT = Path(__file__).resolve().parent.parent


class TestRegistry:
    def test_all_twenty_three_experiments_registered(self):
        assert experiment_ids() == [f"E{i:02d}" for i in range(1, 24)]

    def test_every_experiment_has_scenarios_and_columns(self):
        for identifier in experiment_ids():
            experiment = get_experiment(identifier)
            assert experiment.scenarios, identifier
            assert experiment.columns, identifier
            names = [spec.name for spec in experiment.scenarios]
            assert len(set(names)) == len(names), f"{identifier}: duplicate scenario names"
            for spec in experiment.scenarios:
                assert spec.experiment == identifier

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="E99"):
            get_experiment("E99")

    def test_lookup_is_case_insensitive(self):
        assert get_experiment("e16").id == "E16"

    def test_specs_pickle_and_serialise(self):
        for identifier in experiment_ids():
            for spec in get_experiment(identifier).scenarios:
                clone = pickle.loads(pickle.dumps(spec))
                assert clone == spec
                assert clone.spec_hash() == spec.spec_hash()
                json.dumps(spec.as_dict())

    def test_spec_hashes_unique_across_registry(self):
        hashes = [
            spec.spec_hash()
            for identifier in experiment_ids()
            for spec in get_experiment(identifier).scenarios
        ]
        assert len(set(hashes)) == len(hashes)


class TestScenarioSpec:
    def test_hash_independent_of_keyword_order(self):
        a = ScenarioSpec.make("EXX", "s", alpha=1, graph=("gnp", 10, 0.5, 1))
        b = ScenarioSpec.make("EXX", "s", graph=["gnp", 10, 0.5, 1], alpha=1)
        assert a == b
        assert a.spec_hash() == b.spec_hash()

    def test_hash_changes_with_params(self):
        a = ScenarioSpec.make("EXX", "s", seed=1)
        b = ScenarioSpec.make("EXX", "s", seed=2)
        assert a.spec_hash() != b.spec_hash()

    def test_non_primitive_params_rejected(self):
        with pytest.raises(TypeError):
            ScenarioSpec.make("EXX", "s", bad={"nested": "dict"})

    def test_param_lookup(self):
        spec = ScenarioSpec.make("EXX", "s", k=3, weights=(1.0, 2.0))
        assert spec.param("k") == 3
        assert spec.param("weights") == (1.0, 2.0)
        assert spec.param("missing", 7) == 7


class TestEngineSelection:
    """The first-class ``engine`` field and its override plumbing."""

    def test_engine_round_trips(self):
        spec = ScenarioSpec.make("EXX", "s", engine="batch", seed=1)
        assert spec.engine == "batch"
        assert spec.as_dict()["engine"] == "batch"
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec and clone.engine == "batch"
        assert clone.spec_hash() == spec.spec_hash()

    def test_default_engine_omitted_from_canonical_json(self):
        # Specs predating the field keep their hashes: None never serialises.
        spec = ScenarioSpec.make("EXX", "s", seed=1)
        assert spec.engine is None
        assert "engine" not in spec.as_dict()
        assert "engine" not in spec.canonical_json()

    def test_engine_changes_spec_hash(self):
        base = ScenarioSpec.make("EXX", "s", seed=1)
        assert base.with_engine("batch").spec_hash() != base.spec_hash()
        assert base.with_engine("batch") != base.with_engine("indexed")
        assert base.with_engine(None) == base

    def test_runner_engine_override_reaches_report(self):
        report = run_experiments(["E17"], jobs=1, engine="batch")
        scenarios = report["experiments"][0]["scenarios"]
        assert scenarios, "E17 has scenarios"
        for scenario in scenarios:
            assert scenario["spec"]["engine"] == "batch"

    def test_batch_override_on_targeted_send_experiment_matches_indexed(self):
        # E16's two-spanner sends targeted messages; since the targeted
        # fast path the batch engine runs it bit-for-bit like the oracle.
        batch = run_experiments(["E16"], jobs=1, engine="batch")
        indexed = run_experiments(["E16"], jobs=1, engine="indexed")
        for b, i in zip(
            batch["experiments"][0]["scenarios"],
            indexed["experiments"][0]["scenarios"],
        ):
            b_result = {
                k: v for k, v in b["result"].items()
                if not k.startswith("timing.") and k != "engine"
            }
            i_result = {
                k: v for k, v in i["result"].items()
                if not k.startswith("timing.") and k != "engine"
            }
            assert b_result == i_result

    def test_e18_specs_carry_engines(self):
        engines = [spec.engine for spec in get_experiment("E18").scenarios]
        assert engines == ["batch", "indexed", "batch"]


class TestAdversarySelection:
    """The first-class ``adversary`` field and its override plumbing."""

    def test_adversary_round_trips(self):
        spec = ScenarioSpec.make("EXX", "s", adversary="drop:0.05", seed=1)
        assert spec.adversary == "drop:0.05"
        assert spec.as_dict()["adversary"] == "drop:0.05"
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec and clone.adversary == "drop:0.05"
        assert clone.spec_hash() == spec.spec_hash()

    def test_default_adversary_omitted_from_canonical_json(self):
        # Specs predating the field keep their hashes: None never serialises.
        spec = ScenarioSpec.make("EXX", "s", seed=1)
        assert spec.adversary is None
        assert "adversary" not in spec.as_dict()
        assert "adversary" not in spec.canonical_json()

    def test_adversary_changes_spec_hash(self):
        base = ScenarioSpec.make("EXX", "s", seed=1)
        assert base.with_adversary("drop:0.05").spec_hash() != base.spec_hash()
        assert base.with_adversary("drop:0.05") != base.with_adversary("drop:0.1")
        assert base.with_adversary(None) == base

    def test_runner_adversary_override_reaches_report(self):
        report = run_experiments(["E17"], jobs=1, adversary="drop:0.0")
        for scenario in report["experiments"][0]["scenarios"]:
            assert scenario["spec"]["adversary"] == "drop:0.0"

    def test_e19_specs_carry_adversaries(self):
        adversaries = [spec.adversary for spec in get_experiment("E19").scenarios]
        assert adversaries[0] is None  # fault-free baseline
        assert "drop:0.05" in adversaries
        assert any(a and a.startswith("crash:") for a in adversaries)

    @pytest.mark.parametrize("pin", ["drop:0.1", "crash:119@2", "budget:64", "none"])
    def test_e19_survives_a_global_adversary_pin(self, pin):
        # Pinning one fault policy onto the whole tier collapses the sweep
        # (and crash:119@2 names a node absent from the 64-node spanner
        # graph); the per-scenario checks and the verify hook must degrade
        # to the pin-independent invariants instead of failing on
        # sweep-shaped or curated-schedule assumptions.
        report = run_experiments(["E19"], jobs=1, adversary=pin)
        for scenario in report["experiments"][0]["scenarios"]:
            assert scenario["spec"]["adversary"] == pin


class TestFamilies:
    def test_known_families_build(self):
        graph = build_graph(("connected_gnp", 12, 0.4, 1))
        assert graph.number_of_nodes() == 12

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError, match="no-such-family"):
            build_graph(("no-such-family", 3))

    def test_same_tuple_same_graph(self):
        a = build_graph(("gnp", 30, 0.2, 9))
        b = build_graph(("gnp", 30, 0.2, 9))
        assert sorted(map(sorted, a.edges())) == sorted(map(sorted, b.edges()))


class TestRunnerDeterminism:
    def test_report_schema(self):
        report = run_experiments(["E11"], jobs=1)
        assert report["schema"] == SCHEMA
        (entry,) = report["experiments"]
        assert entry["id"] == "E11"
        for scenario in entry["scenarios"]:
            assert set(scenario) == {"spec", "spec_hash", "cached", "wall_time_s", "result"}
            assert scenario["cached"] is False
            json.dumps(scenario["result"])

    def test_serial_runs_identical(self):
        first = json.dumps(strip_timing(run_experiments(FAST_IDS, jobs=1)))
        second = json.dumps(strip_timing(run_experiments(FAST_IDS, jobs=1)))
        assert first == second

    def test_parallel_matches_serial(self):
        serial = json.dumps(strip_timing(run_experiments(FAST_IDS, jobs=1)))
        parallel = json.dumps(strip_timing(run_experiments(FAST_IDS, jobs=4)))
        assert serial == parallel

    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_experiments(["E11"], jobs=1, cache=cache)
        assert all(not s["cached"] for s in cold["experiments"][0]["scenarios"])
        warm = run_experiments(["E11"], jobs=1, cache=ResultCache(tmp_path / "cache"))
        assert all(s["cached"] for s in warm["experiments"][0]["scenarios"])
        assert json.dumps(strip_timing(cold)) == json.dumps(strip_timing(warm))

    def test_cache_ignores_corrupt_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = get_experiment("E11").scenarios[0]
        path = cache._path(spec)
        path.write_text("{not json")
        assert cache.get(spec) is None

    def test_cache_key_carries_schema_version(self, tmp_path):
        # Entries written under an older repro-experiments/* schema live at
        # a different filename, so they miss instead of silently replaying.
        cache = ResultCache(tmp_path)
        spec = get_experiment("E11").scenarios[0]
        cache.put(spec, {"rounds": 1})
        path = cache._path(spec)
        assert SCHEMA.replace("/", "-") in path.name
        old_payload = json.loads(path.read_text())
        old_payload["schema"] = "repro-experiments/1"
        (tmp_path / f"{spec.spec_hash()}.json").write_text(json.dumps(old_payload))
        path.unlink()  # only the legacy-keyed file remains
        assert cache.get(spec) is None

    def test_cache_rejects_stale_schema_field(self, tmp_path):
        # Belt and braces: even at the right filename, a stale stored schema
        # (e.g. a renamed file) is rejected on read.
        cache = ResultCache(tmp_path)
        spec = get_experiment("E11").scenarios[0]
        cache.put(spec, {"rounds": 1})
        path = cache._path(spec)
        payload = json.loads(path.read_text())
        payload["schema"] = "repro-experiments/1"
        path.write_text(json.dumps(payload))
        assert cache.get(spec) is None

    def test_strip_timing_removes_only_timing(self):
        report = run_experiments(["E16"], jobs=1)
        stripped = strip_timing(report)
        for scenario in stripped["experiments"][0]["scenarios"]:
            assert "wall_time_s" not in scenario
            assert "cached" not in scenario
            assert not any(k.startswith("timing.") for k in scenario["result"])
            assert "rounds" in scenario["result"]  # physics untouched
        # the original report still has its timing fields
        assert all(
            "wall_time_s" in s for s in report["experiments"][0]["scenarios"]
        )


class TestGlobalRandomGuard:
    # One representative cheap scenario per experiment family.
    SPECS = [
        ("E04", 0),  # weighted spanner
        ("E07", 0),  # one-plus-eps
        ("E11", 0),  # lower-bound construction
        ("E13", 3),  # Baswana-Sen (k=4, the cheapest)
    ]

    @pytest.mark.parametrize("experiment_id,index", SPECS)
    def test_scenarios_leave_global_random_untouched(self, experiment_id, index):
        experiment = get_experiment(experiment_id)
        spec = experiment.scenarios[index]
        random.seed(20260728)
        state = random.getstate()
        experiment.run_scenario(spec)
        assert random.getstate() == state, (
            f"{experiment_id}/{spec.name} mutated the global random state"
        )

    def test_execute_scenario_reseeds_deterministically(self):
        spec = get_experiment("E11").scenarios[0]
        random.seed(1)
        first = execute_scenario(spec)
        random.seed(99)  # a different ambient state must not matter
        second = execute_scenario(spec)
        assert first == second


class TestCLI:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.experiments", *argv],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_list(self):
        proc = self._run("list")
        assert proc.returncode == 0
        assert "E01" in proc.stdout and "E17" in proc.stdout

    def test_list_json_is_machine_readable(self):
        proc = self._run("list", "--json")
        assert proc.returncode == 0
        listing = json.loads(proc.stdout)
        assert listing["schema"] == SCHEMA
        by_id = {entry["id"]: entry for entry in listing["experiments"]}
        assert sorted(by_id) == [f"E{i:02d}" for i in range(1, 24)]
        e19 = by_id["E19"]
        assert e19["scenario_count"] == len(e19["scenarios"]) == 9
        for scenario in e19["scenarios"]:
            assert set(scenario) == {"name", "spec_hash"}
            assert len(scenario["spec_hash"]) == 16
        # The hashes must match the in-process registry exactly.
        expected = {
            spec.name: spec.spec_hash() for spec in get_experiment("E19").scenarios
        }
        assert {s["name"]: s["spec_hash"] for s in e19["scenarios"]} == expected

    def test_list_json_exposes_engines_and_max_n(self):
        proc = self._run("list", "--json")
        assert proc.returncode == 0
        by_id = {
            entry["id"]: entry for entry in json.loads(proc.stdout)["experiments"]
        }
        # Every experiment carries the tooling-discovery fields.
        for entry in by_id.values():
            assert "engines" in entry and "max_n" in entry
            assert entry["engines"] == sorted(entry["engines"])
        assert by_id["E20"]["engines"] == ["batch", "columnar"]
        assert by_id["E20"]["max_n"] == 1_000_000
        assert by_id["E18"]["engines"] == ["batch", "indexed"]
        assert by_id["E18"]["max_n"] == 50_000
        # Experiments whose specs carry no size stay discoverable as None.
        assert by_id["E10"]["max_n"] is None

    def test_list_json_exposes_targeted_flag_and_engine_capabilities(self):
        proc = self._run("list", "--json")
        assert proc.returncode == 0
        by_id = {
            entry["id"]: entry for entry in json.loads(proc.stdout)["experiments"]
        }
        for entry in by_id.values():
            assert isinstance(entry["targeted"], bool)
            # Since the targeted fast path every engine carries every
            # admission-legal workload; the map stays explicit so tooling
            # never hard-codes that.
            assert entry["engine_support"] == {
                engine: True
                for engine in ("indexed", "batch", "columnar", "reference")
            }
        assert by_id["E21"]["targeted"] is True
        assert by_id["E18"]["targeted"] is False
        assert by_id["E20"]["targeted"] is False

    def test_run_writes_json(self, tmp_path):
        out = tmp_path / "report.json"
        proc = self._run("run", "E11", "--jobs", "1", "--json", str(out), "--no-tables")
        assert proc.returncode == 0, proc.stderr
        report = json.loads(out.read_text())
        assert report["schema"] == SCHEMA
        assert report["experiments"][0]["id"] == "E11"

    def test_run_requires_ids_or_all(self):
        proc = self._run("run")
        assert proc.returncode != 0

    def test_run_engine_batch_works(self, tmp_path):
        out = tmp_path / "report.json"
        proc = self._run(
            "run", "E17", "--engine", "batch", "--jobs", "1",
            "--json", str(out), "--no-tables", "--strip-timing",
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(out.read_text())
        for scenario in report["experiments"][0]["scenarios"]:
            assert scenario["spec"]["engine"] == "batch"

    def test_run_engine_rejects_unknown(self):
        proc = self._run("run", "E17", "--engine", "warp")
        assert proc.returncode != 0
        assert "invalid choice" in proc.stderr

    def test_run_adversary_override_works(self, tmp_path):
        out = tmp_path / "report.json"
        proc = self._run(
            "run", "E11", "--adversary", "drop:0.0", "--jobs", "1",
            "--json", str(out), "--no-tables",
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(out.read_text())
        for scenario in report["experiments"][0]["scenarios"]:
            assert scenario["spec"]["adversary"] == "drop:0.0"

    def test_run_adversary_rejects_bad_spec(self):
        proc = self._run("run", "E11", "--adversary", "warp:9")
        assert proc.returncode == 2
        assert "adversary spec" in proc.stderr

    def test_run_scenario_filter_skips_verify_and_records_filter(self, tmp_path):
        out = tmp_path / "report.json"
        proc = self._run(
            "run", "E18", "--scenario", "n=20000", "--jobs", "1",
            "--json", str(out), "--no-tables", "--strip-timing",
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(out.read_text())
        assert report["scenario_filter"] == "n=20000"
        entry = report["experiments"][0]
        names = [scenario["spec"]["name"] for scenario in entry["scenarios"]]
        assert names == ["n=20000 batch", "n=20000 indexed"]
        # verify hooks are written against complete result lists: skipped.
        assert entry["summary"] == {}

    def test_run_scenario_filter_rejects_no_match(self):
        proc = self._run("run", "E18", "--scenario", "n=77777")
        assert proc.returncode == 2
        assert "matches no scenario" in proc.stderr


class TestScenarioFilter:
    """run_experiments(scenario_filter=...) — the in-process contract."""

    def test_filter_substring_selects_subset(self):
        report = run_experiments(["E11"], jobs=1, scenario_filter="")
        # Empty substring matches everything; filter still recorded and
        # verify still skipped (the filter was *active*).
        full = run_experiments(["E11"], jobs=1)
        assert report["scenario_filter"] == ""
        assert len(report["experiments"][0]["scenarios"]) == len(
            full["experiments"][0]["scenarios"]
        )
        assert report["experiments"][0]["summary"] == {}
        assert "scenario_filter" not in full

    def test_filter_without_match_raises(self):
        with pytest.raises(ValueError, match="matches no scenario"):
            run_experiments(["E11"], jobs=1, scenario_filter="bogus-name")


class TestE20Registration:
    """The mega-scale tier's registry shape (no mega runs here)."""

    def test_scenarios_and_anchor(self):
        e20 = get_experiment("E20")
        names = [spec.name for spec in e20.scenarios]
        assert names == [
            "n=20000 columnar", "n=20000 batch",
            "n=200000", "n=500000", "n=1000000",
        ]
        engines = {spec.name: spec.engine for spec in e20.scenarios}
        assert engines["n=20000 batch"] == "batch"
        assert all(
            engine == "columnar"
            for name, engine in engines.items()
            if name != "n=20000 batch"
        )
        # The twins anchor E20 to E18's exact differential graph.
        e18_graph = next(
            spec.param("graph")
            for spec in get_experiment("E18").scenarios
            if spec.name == "n=20000 batch"
        )
        for name in ("n=20000 columnar", "n=20000 batch"):
            spec = next(s for s in e20.scenarios if s.name == name)
            assert spec.param("graph") == e18_graph
        # Mega points stream their metrics (bounded bits_per_round history).
        for name in ("n=200000", "n=500000", "n=1000000"):
            spec = next(s for s in e20.scenarios if s.name == name)
            assert spec.param("streaming") is True
            assert spec.param("graph")[0] == "sparse_gnp_csr"

    def test_twin_scenarios_run_and_agree(self):
        # The two n=20000 anchors plus the cross-engine verify — the only
        # E20 slice cheap enough for tier-1.
        report = run_experiments(["E20"], jobs=1, scenario_filter="n=20000 ")
        entry = report["experiments"][0]
        results = {
            scenario["spec"]["name"]: scenario["result"]
            for scenario in entry["scenarios"]
        }
        assert set(results) == {"n=20000 columnar", "n=20000 batch"}
        columnar, batch = results["n=20000 columnar"], results["n=20000 batch"]
        for key in columnar:
            if key.startswith("timing.") or key in ("engine", "scenario"):
                continue
            assert columnar[key] == batch[key], key
        assert columnar["leader"] == 19999
        assert columnar["metrics.messages_sent"] == 10 * 2 * columnar["m"]
