"""Tests for the baseline algorithms (Kortsarz-Peleg, Baswana-Sen, MDS, trivial)."""

import math

import pytest

from repro.baselines import (
    baswana_sen_spanner,
    bfs_tree_edges,
    exact_dominating_set,
    expectation_randomized_mds,
    expected_size_bound,
    greedy_client_server_two_spanner,
    greedy_dominating_set,
    greedy_two_spanner,
    implied_approximation_ratio,
    take_all_spanner,
    trivial_approximation_ratio,
)
from repro.graphs import (
    all_edges_both,
    assign_random_weights,
    complete_bipartite_graph,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    is_dominating_set,
    log_m_over_n,
    path_graph,
    random_split_instance,
    star_graph,
)
from repro.spanner import (
    is_client_server_2_spanner,
    is_k_spanner,
    minimum_k_spanner_exact,
    spanner_cost,
)


class TestKortsarzPeleg:
    @pytest.mark.parametrize("seed", range(4))
    def test_valid_two_spanner(self, seed):
        g = connected_gnp_graph(18, 0.35, seed=seed)
        spanner = greedy_two_spanner(g)
        assert is_k_spanner(g, spanner, 2)

    def test_clique_gets_near_optimal_star(self):
        g = complete_graph(10)
        spanner = greedy_two_spanner(g)
        assert is_k_spanner(g, spanner, 2)
        assert len(spanner) <= 2 * 9

    def test_ratio_vs_exact(self):
        for seed in range(3):
            g = connected_gnp_graph(13, 0.45, seed=seed)
            spanner = greedy_two_spanner(g)
            opt = len(minimum_k_spanner_exact(g, 2))
            assert len(spanner) <= 8 * log_m_over_n(g) * opt

    def test_weighted_mode(self):
        g = connected_gnp_graph(13, 0.4, seed=5)
        assign_random_weights(g, 1, 6, seed=6, integer=True)
        spanner = greedy_two_spanner(g, weighted=True)
        assert is_k_spanner(g, spanner, 2)
        assert spanner_cost(g, spanner) <= spanner_cost(g, g.edge_set())

    def test_peeling_mode(self):
        g = connected_gnp_graph(16, 0.35, seed=7)
        spanner = greedy_two_spanner(g, method="peeling")
        assert is_k_spanner(g, spanner, 2)

    def test_client_server_greedy(self):
        inst = random_split_instance(connected_gnp_graph(14, 0.4, seed=8), seed=9)
        chosen = greedy_client_server_two_spanner(inst)
        assert is_client_server_2_spanner(inst, chosen)
        assert chosen <= inst.servers

    def test_client_server_greedy_all_both(self):
        inst = all_edges_both(connected_gnp_graph(12, 0.4, seed=10))
        chosen = greedy_client_server_two_spanner(inst)
        assert is_client_server_2_spanner(inst, chosen)


class TestBaswanaSen:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_stretch_guarantee(self, k):
        g = connected_gnp_graph(30, 0.25, seed=k)
        spanner = baswana_sen_spanner(g, k=k, seed=k)
        assert is_k_spanner(g, spanner, 2 * k - 1)

    def test_k1_keeps_all_edges(self):
        g = connected_gnp_graph(15, 0.3, seed=4)
        spanner = baswana_sen_spanner(g, k=1, seed=4)
        assert spanner == g.edge_set()

    def test_size_shrinks_with_k(self):
        g = connected_gnp_graph(60, 0.3, seed=5)
        sizes = [len(baswana_sen_spanner(g, k=k, seed=6)) for k in (1, 2, 3)]
        assert sizes[0] >= sizes[1] >= sizes[2] - 5

    def test_expected_size_bound_reasonable(self):
        g = connected_gnp_graph(60, 0.3, seed=7)
        spanner = baswana_sen_spanner(g, k=2, seed=8)
        assert len(spanner) <= 4 * expected_size_bound(60, 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            baswana_sen_spanner(path_graph(3), k=0)

    def test_implied_ratio(self):
        g = connected_gnp_graph(40, 0.4, seed=9)
        spanner = baswana_sen_spanner(g, k=2, seed=10)
        ratio = implied_approximation_ratio(g, len(spanner))
        assert ratio >= 1.0
        assert ratio <= g.number_of_edges() / (g.number_of_nodes() - 1) + 1e-9


class TestTrivialBaselines:
    def test_take_all(self):
        g = connected_gnp_graph(12, 0.4, seed=1)
        assert take_all_spanner(g) == g.edge_set()

    def test_bfs_tree_size(self):
        g = connected_gnp_graph(20, 0.3, seed=2)
        tree = bfs_tree_edges(g)
        assert len(tree) == g.number_of_nodes() - 1

    def test_bfs_tree_disconnected(self):
        g = path_graph(3)
        g.add_edge(10, 11)
        assert len(bfs_tree_edges(g)) == 3

    def test_trivial_ratio(self):
        g = complete_graph(10)
        assert math.isclose(trivial_approximation_ratio(g), 45 / 9)


class TestMDSBaselines:
    def test_greedy_dominates(self):
        g = connected_gnp_graph(30, 0.15, seed=3)
        assert is_dominating_set(g, greedy_dominating_set(g))

    def test_greedy_star_optimal(self):
        assert greedy_dominating_set(star_graph(9)) == {0}

    def test_exact_matches_known_optimum(self):
        assert len(exact_dominating_set(star_graph(6))) == 1
        assert len(exact_dominating_set(cycle_graph(6))) == 2
        assert len(exact_dominating_set(path_graph(7))) == 3

    def test_exact_not_larger_than_greedy(self):
        for seed in range(3):
            g = connected_gnp_graph(14, 0.25, seed=seed)
            assert len(exact_dominating_set(g)) <= len(greedy_dominating_set(g))

    def test_expectation_variant_dominates(self):
        g = connected_gnp_graph(40, 0.1, seed=4)
        dom = expectation_randomized_mds(g, seed=5)
        assert is_dominating_set(g, dom)

    def test_expectation_variant_is_random(self):
        g = connected_gnp_graph(40, 0.1, seed=6)
        a = expectation_randomized_mds(g, seed=1)
        b = expectation_randomized_mds(g, seed=1)
        assert a == b  # same seed, same result


class TestBipartiteHardCase:
    def test_all_methods_keep_bipartite_edges(self):
        g = complete_bipartite_graph(3, 4)
        assert greedy_two_spanner(g) == g.edge_set()
        assert take_all_spanner(g) == g.edge_set()
