"""Unit tests for the compiled CSR topology layer (`graphs/topology.py`)."""

import pytest

from repro.graphs import CompiledTopology, DiGraph, Graph
from repro.graphs.generators import (
    gnp_random_graph,
    grid_graph,
    random_digraph,
    star_graph,
)


class TestCompileUndirected:
    def test_csr_matches_adjacency(self):
        g = gnp_random_graph(40, 0.12, seed=1)
        topo = g.freeze()
        assert isinstance(topo, CompiledTopology)
        assert topo.n == 40
        assert topo.arc_count == 2 * g.number_of_edges()
        assert topo.edge_count == g.number_of_edges()
        for v in g.nodes():
            i = topo.index[v]
            assert topo.labels[i] == v
            assert topo.degree_of(i) == g.degree(v)
            assert set(topo.neighbor_labels(i)) == g.neighbors(v)
            assert topo.neighbor_label_set(i) == frozenset(g.neighbors(v))

    def test_weights_follow_csr_positions(self):
        g = Graph()
        g.add_edge("a", "b", 2.5)
        g.add_edge("b", "c", 7.0)
        topo = g.freeze()
        for u, v in g.edges():
            pos = topo.arc_position(topo.index[u], topo.index[v])
            assert topo.weights[pos] == g.weight(u, v)

    def test_arc_position_unique_and_dense(self):
        g = grid_graph(4, 4)
        topo = g.freeze()
        seen = set()
        for v in g.nodes():
            i = topo.index[v]
            for u in g.neighbors(v):
                seen.add(topo.arc_position(i, topo.index[u]))
        assert seen == set(range(topo.arc_count))

    def test_arc_position_rejects_non_neighbors(self):
        g = star_graph(3)
        topo = g.freeze()
        with pytest.raises(KeyError):
            topo.arc_position(topo.index[1], topo.index[2])


class TestFreezeCache:
    def test_freeze_is_cached(self):
        g = gnp_random_graph(20, 0.2, seed=2)
        assert g.freeze() is g.freeze()

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda g: g.add_edge(0, 19, 5.0),
            lambda g: g.add_node("fresh"),
            lambda g: g.remove_node(0),
            lambda g: g.set_weight(*next(iter(g.edges())), 9.0),
            lambda g: g.remove_edge(*next(iter(g.edges()))),
        ],
    )
    def test_mutation_invalidates(self, mutate):
        g = gnp_random_graph(20, 0.3, seed=3)
        before = g.freeze()
        mutate(g)
        after = g.freeze()
        assert after is not before
        assert after.n == g.number_of_nodes()
        assert after.edge_count == g.number_of_edges()

    def test_noop_add_existing_node_keeps_cache(self):
        g = star_graph(4)
        before = g.freeze()
        g.add_node(0)
        assert g.freeze() is before


class TestCompileDirected:
    def test_communication_neighbourhood(self):
        d = random_digraph(25, 0.1, seed=4)
        topo = d.freeze()
        assert topo.directed
        assert topo.edge_count == d.number_of_edges()
        for v in d.nodes():
            i = topo.index[v]
            assert topo.neighbor_label_set(i) == frozenset(d.neighbors(v))
            assert topo.degree_of(i) == d.degree(v)

    def test_digraph_freeze_invalidation(self):
        d = DiGraph()
        d.add_edge("x", "y")
        before = d.freeze()
        d.add_edge("y", "x")
        after = d.freeze()
        assert after is not before
        # anti-parallel arcs share one communication link per direction
        assert after.neighbor_label_set(after.index["x"]) == frozenset({"y"})


class TestTraversals:
    def test_bfs_levels_match_dict_bfs(self):
        g = gnp_random_graph(50, 0.08, seed=5)
        topo = g.freeze()
        for v in list(g.nodes())[:10]:
            dist = g.bfs_distances(v)
            levels = topo.bfs_levels(topo.index[v])
            for u in g.nodes():
                assert dist.get(u, -1) == levels[topo.index[u]]

    def test_bfs_reach_respects_depth(self):
        g = grid_graph(5, 5)
        topo = g.freeze()
        reach = topo.bfs_reach(topo.index[(0, 0)], max_depth=2)
        assert all(d <= 2 for _, d in reach)
        assert {topo.labels[i] for i, d in reach} == g.ball((0, 0), 2)

    def test_eccentricity_disconnected_is_negative(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_node(3)
        topo = g.freeze()
        assert topo.eccentricity(topo.index[1]) == -1
