"""Differential and unit tests for whole-round program lowering (E23).

The lowering layer (``repro.distributed.vectorize``) ships under the
tightest gate in the repo: a lowered run must be **bit-for-bit identical**
to the stepped columnar run and the indexed oracle — outputs,
``Metrics.as_dict()``, ``bits_per_round``, fault counters — across all four
communication models, under the drop/crash adversaries, with NumPy
monkeypatched away, and on negative-label instances that force the
non-monotone size path.  Every refusal seam (corruption, mixed program
classes, tampered state, heterogeneous config, non-int labels,
``vectorize=False``) must fall back to stepping, visibly
(``Simulator.lowered``) and exactly.  The closed-form payload sizes the
kernels use are pinned against ``estimate_bits``, and the satellite
infrastructure (graph memoization, the O(n + m) Barabási–Albert CSR
family) is covered here too.
"""

import pytest

from repro.core.flood_max import (
    FloodMaxProgram,
    RobustFloodMaxProgram,
    run_flood_max,
)
from repro.distributed import (
    Simulator,
    broadcast_congest_model,
    congest_model,
    congested_clique_model,
    local_model,
)
from repro.distributed import columnar as columnar_module
from repro.distributed import vectorize as vectorize_module
from repro.distributed.adversary import build_adversary
from repro.distributed.encoding import estimate_bits
from repro.distributed.vectorize import (
    _np_payload_bits,
    int_payload_bits,
    repetition_frame_bits,
)
from repro.core.robust_coding import CodedFloodMaxProgram, RedundantFloodMaxProgram
from repro.experiments import families
from repro.experiments.families import build_graph, clear_graph_memo, family_spec_hash
from repro.graphs import Graph, barabasi_albert_csr, gnp_random_graph

ALL_MODELS = [
    lambda n: local_model(n),
    lambda n: congest_model(n, enforce=False),
    lambda n: broadcast_congest_model(n, enforce=False),
    lambda n: congested_clique_model(n, enforce=False),
]

#: The three shipped lowerable workloads (redundant = repetition frames).
WORKLOADS = {
    "fixed": lambda v: FloodMaxProgram(v, 6),
    "robust": lambda v: RobustFloodMaxProgram(v, 3),
    "redundant": lambda v: RedundantFloodMaxProgram(v, 3, 3),
}


def _run(graph, factory, model, engine, seed=1, adversary=None, vectorize=True):
    """Run and return ``(simulator, result)`` so tests can read ``lowered``."""
    adv = build_adversary(adversary) if adversary else None
    sim = Simulator(
        graph,
        factory,
        model=model,
        seed=seed,
        engine=engine,
        adversary=adv,
        vectorize=vectorize,
    )
    return sim, sim.run()


def _assert_identical(a, b):
    assert a.outputs == b.outputs
    assert a.metrics.as_dict() == b.metrics.as_dict()
    assert list(a.metrics.bits_per_round) == list(b.metrics.bits_per_round)
    assert a.completed == b.completed
    assert a.rounds == b.rounds


class TestLoweredDifferential:
    """Lowered == stepped == indexed, all models, all lowerable workloads."""

    @pytest.mark.parametrize("model_factory", ALL_MODELS)
    @pytest.mark.parametrize("workload", sorted(WORKLOADS), ids=str)
    def test_identical_across_models(self, model_factory, workload):
        g = gnp_random_graph(40, 0.15, seed=5)
        factory = WORKLOADS[workload]
        lowered_sim, lowered = _run(g, factory, model_factory(40), "columnar", seed=9)
        stepped_sim, stepped = _run(
            g, factory, model_factory(40), "columnar", seed=9, vectorize=False
        )
        _, indexed = _run(g, factory, model_factory(40), "indexed", seed=9)
        assert lowered_sim.lowered
        assert not stepped_sim.lowered
        _assert_identical(lowered, stepped)
        _assert_identical(lowered, indexed)

    @pytest.mark.parametrize("adversary", ["drop:0.2", "crash:3@1,11@2,24@3"])
    @pytest.mark.parametrize("workload", sorted(WORKLOADS), ids=str)
    def test_identical_under_drop_and_crash(self, adversary, workload):
        # Fresh adversary per engine (they are stateful); same spec, same
        # seed, so delivery decisions and fault counters must coincide.
        g = gnp_random_graph(30, 0.2, seed=6)
        factory = WORKLOADS[workload]
        runs = {}
        for engine, vectorize in (("columnar", True), ("indexed", True)):
            sim, result = _run(
                g,
                factory,
                broadcast_congest_model(30, enforce=False),
                engine,
                seed=4,
                adversary=adversary,
                vectorize=vectorize,
            )
            runs[engine] = result
            if engine == "columnar":
                assert sim.lowered
        _assert_identical(runs["columnar"], runs["indexed"])

    @pytest.mark.parametrize("seed", range(5))
    def test_multi_seed_sweep_under_drop(self, seed):
        g = gnp_random_graph(35, 0.18, seed=seed)
        lowered_sim, lowered = _run(
            g,
            WORKLOADS["robust"],
            broadcast_congest_model(35),
            "columnar",
            seed=seed,
            adversary="drop:0.15",
        )
        _, stepped = _run(
            g,
            WORKLOADS["robust"],
            broadcast_congest_model(35),
            "columnar",
            seed=seed,
            adversary="drop:0.15",
            vectorize=False,
        )
        assert lowered_sim.lowered
        _assert_identical(lowered, stepped)

    def test_negative_labels_take_the_non_monotone_path(self):
        # Negative labels break wire-size monotonicity (bit_length(-5) >
        # bit_length(1)), so the kernel must refresh sizes per distinct
        # value instead of folding them — still lowered, still identical.
        g = Graph()
        labels = [-9, -7, -5, -3, -1, 0, 2, 4]
        for a, b in zip(labels, labels[1:]):
            g.add_edge(a, b)
        g.add_edge(labels[0], labels[-1])
        factory = lambda v: FloodMaxProgram(v, 6)  # noqa: E731
        lowered_sim, lowered = _run(
            g, factory, broadcast_congest_model(8), "columnar", seed=2
        )
        _, indexed = _run(g, factory, broadcast_congest_model(8), "indexed", seed=2)
        assert lowered_sim.lowered
        _assert_identical(lowered, indexed)
        assert set(lowered.outputs.values()) == {4}


class TestLoweringDecision:
    """Every refusal seam declines visibly and falls back exactly."""

    def _parity_with_indexed(self, g, factory, adversary=None, expect_lowered=False):
        sim, columnar = _run(
            g,
            factory,
            broadcast_congest_model(g.number_of_nodes(), enforce=False),
            "columnar",
            seed=3,
            adversary=adversary,
        )
        _, indexed = _run(
            g,
            factory,
            broadcast_congest_model(g.number_of_nodes(), enforce=False),
            "indexed",
            seed=3,
            adversary=adversary,
        )
        assert sim.lowered == expect_lowered
        _assert_identical(columnar, indexed)

    def test_vectorize_false_steps(self):
        g = gnp_random_graph(25, 0.25, seed=1)
        sim, _ = _run(
            g,
            WORKLOADS["fixed"],
            broadcast_congest_model(25),
            "columnar",
            vectorize=False,
        )
        assert not sim.lowered

    def test_transforming_adversary_declines(self):
        # Corruption mutates payloads in flight; the flat fold cannot model
        # that, so the run must step — and still match the oracle exactly.
        g = gnp_random_graph(25, 0.25, seed=1)
        self._parity_with_indexed(
            g, WORKLOADS["redundant"], adversary="corrupt:0.1"
        )

    def test_subclass_without_optin_declines(self):
        # CodedFloodMaxProgram subclasses RobustFloodMaxProgram but encodes
        # checksummed frames; the parent's vector_kernel guards on ``cls``
        # and must decline rather than lower with the parent's semantics.
        g = gnp_random_graph(25, 0.25, seed=1)
        self._parity_with_indexed(g, lambda v: CodedFloodMaxProgram(v, 3))

    def test_mixed_program_classes_decline(self):
        g = gnp_random_graph(24, 0.25, seed=2)
        factory = lambda v: (  # noqa: E731
            FloodMaxProgram(v, 6) if v % 2 == 0 else RobustFloodMaxProgram(v, 3)
        )
        self._parity_with_indexed(g, factory)

    def test_tampered_initial_state_declines(self):
        # best != own label means per-node state was touched before the run;
        # the kernel cannot reproduce it wholesale, so lowering declines.
        g = gnp_random_graph(20, 0.3, seed=4)
        self._parity_with_indexed(g, lambda v: FloodMaxProgram(min(v, 3), 6))

    def test_heterogeneous_config_declines(self):
        g = gnp_random_graph(20, 0.3, seed=4)
        self._parity_with_indexed(
            g, lambda v: FloodMaxProgram(v, 6 if v % 2 == 0 else 7)
        )

    def test_non_int_labels_decline(self):
        g = Graph()
        names = ["ant", "bee", "cat", "dog", "elk"]
        for a, b in zip(names, names[1:]):
            g.add_edge(a, b)
        self._parity_with_indexed(g, lambda v: FloodMaxProgram(v, 4))

    def test_labels_beyond_int64_decline(self):
        g = Graph()
        labels = [(1 << 70) + i for i in range(5)]
        for a, b in zip(labels, labels[1:]):
            g.add_edge(a, b)
        self._parity_with_indexed(g, lambda v: FloodMaxProgram(v, 4))

    def test_zero_round_budget_lowers_and_halts_in_on_start(self):
        g = gnp_random_graph(15, 0.3, seed=5)
        factory = lambda v: FloodMaxProgram(v, 0)  # noqa: E731
        sim, lowered = _run(g, factory, broadcast_congest_model(15), "columnar")
        _, indexed = _run(g, factory, broadcast_congest_model(15), "indexed")
        assert sim.lowered
        _assert_identical(lowered, indexed)
        assert lowered.metrics.messages_sent == 0


class TestNumpyAbsentLowering:
    """The stdlib-``array`` kernels lower too, bit-for-bit."""

    @pytest.mark.parametrize("workload", sorted(WORKLOADS), ids=str)
    def test_identical_without_numpy(self, monkeypatch, workload):
        monkeypatch.setattr(vectorize_module, "_np", None)
        monkeypatch.setattr(columnar_module, "_np", None)
        g = gnp_random_graph(30, 0.2, seed=12)
        factory = WORKLOADS[workload]
        sim, fallback = _run(
            g, factory, broadcast_congest_model(30), "columnar", seed=2
        )
        _, indexed = _run(g, factory, broadcast_congest_model(30), "indexed", seed=2)
        assert sim.lowered  # lowering engages without NumPy, just slower
        _assert_identical(fallback, indexed)

    @pytest.mark.parametrize("adversary", ["drop:0.2", "crash:3@1,11@2"])
    def test_adversaries_without_numpy(self, monkeypatch, adversary):
        monkeypatch.setattr(vectorize_module, "_np", None)
        monkeypatch.setattr(columnar_module, "_np", None)
        g = gnp_random_graph(28, 0.2, seed=7)
        sim, fallback = _run(
            g,
            WORKLOADS["robust"],
            broadcast_congest_model(28, enforce=False),
            "columnar",
            seed=5,
            adversary=adversary,
        )
        _, indexed = _run(
            g,
            WORKLOADS["robust"],
            broadcast_congest_model(28, enforce=False),
            "indexed",
            seed=5,
            adversary=adversary,
        )
        assert sim.lowered
        _assert_identical(fallback, indexed)


class TestClosedFormSizes:
    """The kernels' closed forms must equal ``estimate_bits`` everywhere."""

    VALUES = (
        list(range(-1025, 1026))
        + [2**k + d for k in range(10, 72, 6) for d in (-1, 0, 1)]
        + [-(2**40), 2**62, -(2**62)]
    )

    def test_int_payload_bits_matches_estimate_bits(self):
        for v in self.VALUES:
            assert int_payload_bits(v) == estimate_bits(v), v

    @pytest.mark.parametrize("copies", [3, 5, 7])
    def test_repetition_frame_bits_matches_estimate_bits(self, copies):
        for v in self.VALUES[:: 7]:
            assert repetition_frame_bits(v, copies) == estimate_bits(
                (v,) * copies
            ), (v, copies)

    def test_np_payload_bits_matches_scalar_forms(self):
        np = pytest.importorskip("numpy")
        values = np.array(
            [0, 1, 2, 3, 4, 255, 256, 1023, 1024, 2**40 - 1, 2**40, 2**62],
            dtype=np.int64,
        )
        plain = _np_payload_bits(np, values, None)
        assert plain.tolist() == [int_payload_bits(int(v)) for v in values]
        framed = _np_payload_bits(np, values, 3)
        assert framed.tolist() == [
            repetition_frame_bits(int(v), 3) for v in values
        ]


class TestBarabasiAlbertCSR:
    """The O(n + m) preferential-attachment family: exact and deterministic."""

    def test_deterministic_per_seed(self):
        a = barabasi_albert_csr(300, 4, seed=11)
        b = barabasi_albert_csr(300, 4, seed=11)
        other = barabasi_albert_csr(300, 4, seed=12)
        assert a.freeze().indptr == b.freeze().indptr
        assert a.freeze().indices == b.freeze().indices
        assert other.freeze().indices != a.freeze().indices

    def test_structure(self):
        n, m = 500, 3
        g = barabasi_albert_csr(n, m, seed=2)
        topo = g.freeze()
        assert g.number_of_nodes() == n
        # Seed clique on m+1 nodes, then every later node attaches to
        # exactly m distinct targets.
        assert g.number_of_edges() == (m + 1) * m // 2 + m * (n - m - 1)
        indptr, indices = topo.indptr, topo.indices
        for i in range(n):
            row = list(indices[indptr[i] : indptr[i + 1]])
            assert row == sorted(set(row)), f"row {i} not sorted/deduped"
            assert i not in row, f"self-loop at {i}"

    def test_connected_and_runs_lowered(self):
        g = barabasi_albert_csr(400, 3, seed=9)
        result = run_flood_max(g, rounds=12, seed=1, engine="columnar")
        assert result.converged
        assert result.leader == 399


class TestGraphMemoization:
    """Frozen-CSR families are memoized per worker; mutable ones never are."""

    @pytest.fixture(autouse=True)
    def fresh_memo(self):
        clear_graph_memo()
        yield
        clear_graph_memo()

    def test_frozen_family_memoized(self):
        spec = ("barabasi_albert_csr", 200, 3, 5)
        first = build_graph(spec)
        assert build_graph(spec) is first
        assert build_graph(list(spec)) is first  # tuple/list shape-agnostic
        clear_graph_memo()
        assert build_graph(spec) is not first

    def test_mutable_family_rebuilt(self):
        spec = ("gnp", 30, 0.2, 1)
        assert build_graph(spec) is not build_graph(spec)
        assert not families._TOPOLOGY_MEMO

    def test_memo_is_bounded(self):
        for seed in range(families._TOPOLOGY_MEMO_CAP + 2):
            build_graph(("barabasi_albert_csr", 100, 3, seed))
        assert len(families._TOPOLOGY_MEMO) <= families._TOPOLOGY_MEMO_CAP

    def test_spec_hash_is_content_only(self):
        spec = ("sparse_gnp_csr", 1000, 0.01, 7)
        assert family_spec_hash(spec) == family_spec_hash(list(spec))
        assert family_spec_hash(spec) != family_spec_hash(("sparse_gnp_csr", 1000, 0.01, 8))
