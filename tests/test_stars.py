"""Tests for star densities, rounded densities and densest-star computations."""

from fractions import Fraction
from itertools import chain, combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import complete_graph, connected_gnp_graph, edge_key, star_graph
from repro.spanner import (
    Star,
    densest_directed_star_approx,
    densest_star,
    densest_star_of_vertex,
    rounded_up_power_of_two,
    spanned_edges,
    star_density,
)
from repro.graphs.generators import random_digraph


class TestStarObject:
    def test_edges_and_size(self):
        s = Star(center=0, leaves=frozenset({1, 2, 3}))
        assert s.edges() == {(0, 1), (0, 2), (0, 3)}
        assert s.size() == 3

    def test_spans(self):
        s = Star(center=0, leaves=frozenset({1, 2}))
        assert s.spans(edge_key(1, 2))
        assert not s.spans(edge_key(1, 3))

    def test_weight(self):
        g = star_graph(3)
        g.set_weight(0, 1, 5.0)
        s = Star(center=0, leaves=frozenset({1, 2}))
        assert s.weight(g) == 6.0


class TestDensity:
    def test_spanned_edges(self):
        uncovered = {(1, 2), (2, 3), (1, 4)}
        assert spanned_edges({1, 2, 3}, uncovered) == {(1, 2), (2, 3)}

    def test_unweighted_density(self):
        uncovered = {(1, 2), (2, 3), (1, 3)}
        assert star_density({1, 2, 3}, uncovered) == Fraction(1)
        assert star_density({1, 2}, uncovered) == Fraction(1, 2)
        assert star_density(set(), uncovered) == 0

    def test_weighted_density(self):
        uncovered = {(1, 2)}
        weights = {1: Fraction(2), 2: Fraction(2)}
        assert star_density({1, 2}, uncovered, weights) == Fraction(1, 4)

    def test_rounded_up_power_of_two_values(self):
        assert rounded_up_power_of_two(Fraction(0)) == 0
        assert rounded_up_power_of_two(Fraction(1)) == 2
        assert rounded_up_power_of_two(Fraction(3, 2)) == 2
        assert rounded_up_power_of_two(Fraction(5)) == 8
        assert rounded_up_power_of_two(Fraction(1, 3)) == Fraction(1, 2)

    @settings(max_examples=60, deadline=None)
    @given(st.fractions(min_value=Fraction(1, 1000), max_value=Fraction(1000)))
    def test_rounded_density_bracket(self, value):
        rounded = rounded_up_power_of_two(value)
        assert rounded > value
        assert rounded / 2 <= value


def brute_force_densest_star(pool, candidate_edges):
    best = Fraction(0)
    subsets = chain.from_iterable(combinations(sorted(pool, key=repr), r) for r in range(1, len(pool) + 1))
    for subset in subsets:
        best = max(best, star_density(set(subset), candidate_edges))
    return best


class TestDensestStar:
    def test_full_star_of_clique_center(self):
        g = complete_graph(5)
        leaves, density = densest_star_of_vertex(g, 0, g.edge_set())
        assert leaves == frozenset({1, 2, 3, 4})
        assert density == Fraction(6, 4)

    def test_star_graph_center_has_zero_density(self):
        g = star_graph(6)
        _, density = densest_star_of_vertex(g, 0, g.edge_set())
        assert density == 0

    def test_empty_pool(self):
        leaves, density = densest_star(set(), set())
        assert leaves == frozenset()
        assert density == 0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**20))
    def test_matches_brute_force(self, seed):
        g = connected_gnp_graph(8, 0.45, seed=seed)
        uncovered = g.edge_set()
        for v in list(g.nodes())[:4]:
            nbrs = g.neighbors(v)
            candidate = {e for e in uncovered if e[0] in nbrs and e[1] in nbrs}
            _, density = densest_star(nbrs, candidate)
            assert density == brute_force_densest_star(nbrs, candidate)

    def test_peeling_mode_within_factor_two(self):
        g = connected_gnp_graph(12, 0.4, seed=9)
        uncovered = g.edge_set()
        for v in list(g.nodes())[:5]:
            nbrs = g.neighbors(v)
            candidate = {e for e in uncovered if e[0] in nbrs and e[1] in nbrs}
            _, exact = densest_star(nbrs, candidate, method="exact")
            _, approx = densest_star(nbrs, candidate, method="peeling")
            assert approx * 2 >= exact


class TestDirectedStar:
    def test_directed_density_within_factor_two(self):
        d = random_digraph(10, 0.4, seed=3)
        uncovered = d.edge_set()
        for v in list(d.nodes())[:5]:
            spannable = {
                (u, w)
                for (u, w) in uncovered
                if d.has_edge(u, v) and d.has_edge(v, w)
            }
            result = densest_directed_star_approx(d, v, uncovered)
            # Claim 4.10: the directed density of the chosen star is at least
            # half the undirected density (which upper-bounds the optimum).
            assert result.directed_density * 2 >= result.undirected_density
            if not spannable:
                assert result.directed_density == 0

    def test_arcs_use_existing_directions_only(self):
        d = random_digraph(8, 0.5, seed=4)
        for v in list(d.nodes())[:4]:
            result = densest_directed_star_approx(d, v, d.edge_set())
            for u, w in result.arcs:
                assert d.has_edge(u, w)
                assert v in (u, w)
