"""Differential and unit tests for the targeted-send fast path (PR 7).

The contract under test is the tentpole's: the ``batch`` and ``columnar``
engines carry ``ctx.send`` traffic bit-for-bit identically to the indexed
oracle — outputs, ``Metrics.as_dict()`` (hence per-round bit tallies) and
completion — across all four communication models, for pure-targeted and
mixed targeted/broadcast rounds, under every adversary class (whose keyed
hashes must therefore fire on exactly the same (src, dst, round) links on
every engine), and with NumPy monkeypatched away.  ``reference`` joins the
matrix at output/completion level (its metrics are the dict oracle's own).

Plus unit coverage for :class:`~repro.distributed.targeted.TargetedInbox`,
the lazy Mapping view the fault-free NumPy kernel hands receivers.
"""

import pytest

from repro.distributed import (
    BandwidthExceededError,
    MessageAdmissionError,
    NodeProgram,
    Simulator,
    TargetedInbox,
    broadcast_congest_model,
    congest_model,
    congested_clique_model,
    local_model,
)
from repro.distributed import targeted as targeted_module
from repro.distributed.adversary import build_adversary
from repro.graphs import gnp_random_graph, path_graph

N = 24

MODELS = {
    "local": lambda: local_model(N),
    "congest": lambda: congest_model(N, enforce=False),
    "congest-enforcing": lambda: congest_model(N, enforce=True),
    "clique": lambda: congested_clique_model(N, enforce=False),
}

#: One spec per fault class; the drop/crash salts land mid-run on N=24.
ADVERSARIES = [None, "drop:0.2:3", "crash:4@2,17@3", "budget:48"]


class FanoutProgram(NodeProgram):
    """Targeted fan-out with an optional mixed broadcast/targeted round.

    Even rounds of the mixed variant interleave pre-broadcast sends, a
    broadcast, and post-broadcast sends — the exact shape that exercises
    the engines' broadcast-position bookkeeping.
    """

    def __init__(self, node_id, k=3, rounds=5, mix_broadcast=False):
        self.k = k
        self.rounds = rounds
        self.best = 0
        self.mix = mix_broadcast

    def on_start(self, ctx):
        for dst in sorted(ctx.neighbors)[: self.k]:
            ctx.send(dst, ctx.node_id + 1)

    def on_round(self, ctx, inbox):
        for _, plist in sorted(inbox.items()):
            for p in plist:
                if p > self.best:
                    self.best = p
        if ctx.round >= self.rounds:
            ctx.set_output(self.best)
            ctx.halt()
            return
        nbrs = sorted(ctx.neighbors)
        if self.mix and ctx.round % 2 == 0:
            for dst in nbrs[: self.k // 2]:
                ctx.send(dst, self.best)
            ctx.broadcast(self.best + 1)
            for dst in nbrs[self.k // 2 : self.k]:
                ctx.send(dst, self.best + 2)
        else:
            for dst in nbrs[: self.k]:
                ctx.send(dst, self.best + ctx.round)


def _run(engine, model, mix, adversary=None):
    graph = gnp_random_graph(N, 0.3, seed=7)
    sim = Simulator(
        graph,
        lambda v: FanoutProgram(v, mix_broadcast=mix),
        model=model,
        seed=11,
        engine=engine,
        adversary=build_adversary(adversary) if adversary else None,
    )
    result = sim.run(max_rounds=50)
    return {
        "outputs": dict(sorted(result.outputs.items())),
        "metrics": result.metrics.as_dict(),
        "completed": result.completed,
    }


def _outcome(engine, model_key, mix, adversary):
    """Result dict, or the raised exception — compared across engines."""
    try:
        return _run(engine, MODELS[model_key](), mix, adversary)
    except (BandwidthExceededError, MessageAdmissionError) as error:
        return error


@pytest.mark.parametrize("adversary", ADVERSARIES, ids=lambda a: a or "fault-free")
@pytest.mark.parametrize("mix", [False, True], ids=["targeted", "mixed"])
@pytest.mark.parametrize("model_key", sorted(MODELS))
@pytest.mark.parametrize("engine", ["batch", "columnar"])
def test_engine_matches_indexed_bit_for_bit(engine, model_key, mix, adversary):
    expected = _outcome("indexed", model_key, mix, adversary)
    got = _outcome(engine, model_key, mix, adversary)
    if isinstance(expected, Exception):
        # Enforcement parity: same exception type AND same message (the
        # violating link is named identically).
        assert type(got) is type(expected)
        assert str(got) == str(expected)
    else:
        assert got == expected


@pytest.mark.parametrize("mix", [False, True], ids=["targeted", "mixed"])
@pytest.mark.parametrize("model_key", sorted(MODELS))
def test_reference_engine_agrees_on_outputs(model_key, mix):
    expected = _outcome("indexed", model_key, mix, None)
    got = _outcome("reference", model_key, mix, None)
    if isinstance(expected, Exception):
        assert type(got) is type(expected)
    else:
        assert got["outputs"] == expected["outputs"]
        assert got["completed"] == expected["completed"]


@pytest.mark.parametrize("adversary", ADVERSARIES, ids=lambda a: a or "fault-free")
@pytest.mark.parametrize("engine", ["batch", "columnar"])
def test_no_numpy_fallback_matches_numpy_path(engine, adversary, monkeypatch):
    with_numpy = _outcome(engine, "clique", True, adversary)
    monkeypatch.setattr(targeted_module, "_np", None)
    without = _outcome(engine, "clique", True, adversary)
    if isinstance(with_numpy, Exception):
        assert type(without) is type(with_numpy)
        assert str(without) == str(with_numpy)
    else:
        assert without == with_numpy


@pytest.mark.parametrize("engine", ["batch", "columnar"])
def test_broadcast_only_model_rejects_send_semantically(engine):
    class Sender(NodeProgram):
        def __init__(self, v):
            pass

        def on_start(self, ctx):
            ctx.send(min(ctx.neighbors), 1)

        def on_round(self, ctx, inbox):
            ctx.halt()

    sim = Simulator(
        path_graph(4),
        Sender,
        model=broadcast_congest_model(4),
        seed=0,
        engine=engine,
    )
    with pytest.raises(MessageAdmissionError, match="broadcast-only model"):
        sim.run(max_rounds=5)


class TestTargetedInbox:
    """Unit coverage for the lazy scatter-segment Mapping view."""

    def _view(self):
        # One receiver's segment [2, 6) of a round's scatter columns,
        # senders pre-sorted ascending with a run of repeats.
        srcs = [0, 0, 1, 1, 1, 4, 9, 9]
        pays = [10, 11, 20, 21, 22, 40, 90, 91]
        return TargetedInbox(srcs, pays, 2, 7)

    def test_items_groups_runs_in_sender_order(self):
        assert self._view().items() == [(1, [20, 21, 22]), (4, [40]), (9, [90])]

    def test_mapping_facade(self):
        view = self._view()
        assert list(view) == [1, 4, 9]
        assert len(view) == 3
        assert view[4] == [40]
        assert 1 in view and 0 not in view
        with pytest.raises(KeyError):
            view[0]
        assert view.values() == [[20, 21, 22], [40], [90]]
        assert dict(view) == {1: [20, 21, 22], 4: [40], 9: [90]}

    def test_empty_segment(self):
        view = TargetedInbox([], [], 0, 0)
        assert len(view) == 0
        assert view.items() == []
        assert view.max_heard(-5) == -5

    def test_max_heard_skips_facade(self):
        view = self._view()
        assert view.max_heard(0) == 90
        assert view.max_heard(1000) == 1000
        # Fold did not have to materialise the run list first.
        assert TargetedInbox([1], [7], 0, 1).max_heard(3) == 7
