"""Tests for the Section 2-3 lower-bound constructions and reductions."""

import pytest

from repro.lowerbounds import (
    SPANNER_CONSTANT_C,
    build_construction_g,
    build_construction_gw,
    build_construction_gw_undirected,
    build_mvc_reduction,
    claim_2_2_holds,
    disjoint_case_spanner,
    disjointness_lower_bound_bits,
    exact_vertex_cover,
    greedy_matching_vertex_cover,
    has_zero_cost_spanner,
    has_zero_cost_spanner_undirected,
    implied_round_lower_bound,
    is_vertex_cover,
    minimum_required_d_edges,
    random_disjoint_instance,
    random_far_from_disjoint_instance,
    random_intersecting_instance,
    simulate_reduction,
    spanner_to_vertex_cover,
    theorem_1_1_parameters,
    theorem_2_8_parameters,
    vertex_cover_to_spanner,
    zero_cost_spanner,
)
from repro.lowerbounds.mvc_reduction import spanner_cost as reduction_cost
from repro.lowerbounds.two_party import DisjointnessInstance
from repro.graphs import connected_gnp_graph, cycle_graph, path_graph, star_graph
from repro.spanner import (
    is_k_spanner,
    is_k_spanner_directed,
    minimum_k_spanner_exact,
)


class TestTwoPartyInstances:
    def test_disjoint_instance(self):
        inst = random_disjoint_instance(25, seed=1)
        assert inst.is_disjoint()
        assert inst.n_bits == 25

    def test_intersecting_instance(self):
        inst = random_intersecting_instance(25, intersections=3, seed=2)
        assert inst.intersection_size() == 3
        assert not inst.is_disjoint()

    def test_far_from_disjoint(self):
        inst = random_far_from_disjoint_instance(24, seed=3)
        assert inst.is_far_from_disjoint()

    def test_validation(self):
        with pytest.raises(ValueError):
            DisjointnessInstance((0, 1), (0,))
        with pytest.raises(ValueError):
            DisjointnessInstance((0, 2), (0, 1))
        with pytest.raises(ValueError):
            random_intersecting_instance(4, intersections=0)

    def test_lower_bound_formulas(self):
        assert disjointness_lower_bound_bits(100) == 100
        assert implied_round_lower_bound(1000, 10, 100) > implied_round_lower_bound(
            1000, 100, 100
        )


class TestConstructionG:
    def setup_method(self):
        self.ell = 3
        self.beta = 4
        self.disjoint = build_construction_g(
            self.ell, self.beta, random_disjoint_instance(9, seed=4)
        )
        self.intersecting = build_construction_g(
            self.ell, self.beta, random_intersecting_instance(9, intersections=2, seed=5)
        )

    def test_vertex_count(self):
        # 2*ell*beta block vertices + 5*ell layer vertices
        expected = 2 * self.ell * self.beta + 5 * self.ell
        assert self.disjoint.n == expected

    def test_d_component_size(self):
        assert len(self.disjoint.d_edges) == (self.ell * self.beta) ** 2

    def test_cut_is_theta_ell(self):
        cut = self.disjoint.cut_edges()
        assert len(cut) == 3 * self.ell  # 2*ell matching + ell edges (y2,y3)

    def test_input_edges_follow_bits(self):
        cg = self.intersecting
        for i in range(1, self.ell + 1):
            for j in range(1, self.ell + 1):
                assert cg.graph.has_edge(("x1", i), ("x2", j)) == (cg.bit("a", i, j) == 0)
                assert cg.graph.has_edge(("y1", i), ("y2", j)) == (cg.bit("b", i, j) == 0)

    def test_claim_2_2_all_pairs(self):
        for cg in (self.disjoint, self.intersecting):
            for i in range(1, self.ell + 1):
                for r in range(1, self.ell + 1):
                    assert claim_2_2_holds(cg, i, r)

    def test_lemma_2_3_disjoint_case(self):
        spanner = disjoint_case_spanner(self.disjoint)
        assert is_k_spanner_directed(self.disjoint.graph, spanner, 5)
        assert len(spanner) <= self.disjoint.sparse_spanner_bound()
        assert minimum_required_d_edges(self.disjoint) == 0

    def test_lemma_2_3_intersecting_case(self):
        cg = self.intersecting
        assert minimum_required_d_edges(cg) == len(cg.bad_pairs()) * self.beta**2
        # The non-D edges alone are NOT a spanner when inputs intersect.
        assert not is_k_spanner_directed(cg.graph, disjoint_case_spanner(cg), 5)
        # Adding the forced D edges fixes it.
        spanner = disjoint_case_spanner(cg) | cg.forced_d_edges()
        assert is_k_spanner_directed(cg.graph, spanner, 5)

    def test_gap_instance_forces_many_pairs(self):
        inst = random_far_from_disjoint_instance(9, seed=6)
        cg = build_construction_g(3, 2, inst)
        assert len(cg.bad_pairs()) >= 9 // 12 + 1 or inst.intersection_size() >= 1

    def test_input_length_validation(self):
        with pytest.raises(ValueError):
            build_construction_g(3, 2, random_disjoint_instance(8, seed=1))

    def test_theorem_parameter_helpers(self):
        ell, beta = theorem_1_1_parameters(5000, alpha=2.0)
        assert beta >= ell >= 1
        assert beta % ell == 0
        ell2, beta2 = theorem_2_8_parameters(5000, alpha=2.0)
        assert ell2 >= beta2 >= 1
        with pytest.raises(ValueError):
            theorem_1_1_parameters(20, alpha=10.0)


class TestReductionHarness:
    def test_disjoint_instance_decided_correctly(self):
        ell, beta = 3, 22  # beta > c*ell so a single bad pair exceeds the threshold
        cg = build_construction_g(ell, beta, random_disjoint_instance(9, seed=7))
        report = simulate_reduction(cg, alpha=1.0)
        assert report.ground_truth_disjoint
        assert report.decision_correct
        assert report.d_edges_in_spanner == 0
        assert report.cut_bits >= disjointness_lower_bound_bits(9) // 4

    def test_intersecting_instance_decided_correctly(self):
        ell, beta = 3, 22
        cg = build_construction_g(
            ell, beta, random_intersecting_instance(9, intersections=1, seed=8)
        )
        report = simulate_reduction(cg, alpha=1.0)
        assert not report.ground_truth_disjoint
        assert report.decision_correct
        assert report.d_edges_in_spanner == beta**2

    def test_reference_protocol_produces_valid_spanner(self):
        ell, beta = 3, 8
        cg = build_construction_g(
            ell, beta, random_intersecting_instance(9, intersections=2, seed=9)
        )
        report = simulate_reduction(cg, alpha=1.0)
        # The reference protocol keeps all non-D arcs plus the forced D arcs.
        assert report.spanner_size == len(cg.non_d_edges()) + minimum_required_d_edges(cg)

    def test_cut_traffic_scales_with_input_length(self):
        small = build_construction_g(3, 4, random_disjoint_instance(9, seed=10))
        large = build_construction_g(6, 4, random_disjoint_instance(36, seed=11))
        bits_small = simulate_reduction(small).cut_bits
        bits_large = simulate_reduction(large).cut_bits
        assert bits_large > bits_small

    def test_congest_budget_respected(self):
        cg = build_construction_g(4, 5, random_disjoint_instance(16, seed=12))
        report = simulate_reduction(cg)
        assert report.rounds >= 1


class TestConstructionGw:
    def test_zero_cost_spanner_iff_disjoint_directed(self):
        disjoint = build_construction_gw(4, random_disjoint_instance(16, seed=1))
        intersecting = build_construction_gw(
            4, random_intersecting_instance(16, intersections=1, seed=2)
        )
        assert has_zero_cost_spanner(disjoint, k=4)
        assert not has_zero_cost_spanner(intersecting, k=4)

    def test_zero_cost_spanner_is_valid_spanner(self):
        cg = build_construction_gw(3, random_disjoint_instance(9, seed=3))
        spanner = zero_cost_spanner(cg) | set()
        # Weight-0 arcs plus nothing else must cover all D arcs within 4 hops.
        assert has_zero_cost_spanner(cg, k=4)
        assert all(cg.graph.weight(*a) == 0 for a in spanner)

    def test_cut_small(self):
        cg = build_construction_gw(5, random_disjoint_instance(25, seed=4))
        assert len(cg.cut_edges()) == 3 * 5

    def test_undirected_variant_k4_and_k6(self):
        for k in (4, 6):
            disjoint = build_construction_gw_undirected(
                3, random_disjoint_instance(9, seed=5), k=k
            )
            intersecting = build_construction_gw_undirected(
                3, random_intersecting_instance(9, intersections=1, seed=6), k=k
            )
            assert has_zero_cost_spanner_undirected(disjoint)
            assert not has_zero_cost_spanner_undirected(intersecting)

    def test_undirected_variant_rejects_small_k(self):
        with pytest.raises(ValueError):
            build_construction_gw_undirected(3, random_disjoint_instance(9, seed=7), k=3)


class TestMVCReduction:
    @pytest.mark.parametrize(
        "graph",
        [path_graph(5), cycle_graph(5), star_graph(4), connected_gnp_graph(7, 0.4, seed=1)],
        ids=["path", "cycle", "star", "gnp"],
    )
    def test_claim_3_1_equality(self, graph):
        reduction = build_mvc_reduction(graph)
        mvc = exact_vertex_cover(graph)
        opt_spanner = minimum_k_spanner_exact(reduction.reduced, 2, use_weights=True)
        cost = sum(reduction.reduced.weight(*e) for e in opt_spanner)
        assert cost == pytest.approx(float(len(mvc)))

    def test_cover_to_spanner_direction(self):
        g = connected_gnp_graph(8, 0.35, seed=2)
        reduction = build_mvc_reduction(g)
        cover = greedy_matching_vertex_cover(g)
        spanner = vertex_cover_to_spanner(reduction, cover)
        assert is_k_spanner(reduction.reduced, spanner, 2)
        assert reduction_cost(reduction, spanner) == pytest.approx(float(len(cover)))

    def test_spanner_to_cover_direction(self):
        g = connected_gnp_graph(8, 0.35, seed=3)
        reduction = build_mvc_reduction(g)
        opt_spanner = minimum_k_spanner_exact(reduction.reduced, 2, use_weights=True)
        cover = spanner_to_vertex_cover(reduction, opt_spanner)
        assert is_vertex_cover(g, cover)
        assert len(cover) <= reduction_cost(reduction, opt_spanner) + 1e-9

    def test_reduction_graph_shape(self):
        g = path_graph(4)
        reduction = build_mvc_reduction(g)
        assert reduction.reduced.number_of_nodes() == 3 * 4
        assert reduction.reduced.number_of_edges() == 3 * 4 + 3 * 3

    def test_simulation_overhead_factor(self):
        from repro.lowerbounds import simulation_round_overhead

        assert simulation_round_overhead(10) == 30


class TestVertexCoverHelpers:
    def test_exact_known_values(self):
        assert len(exact_vertex_cover(star_graph(5))) == 1
        assert len(exact_vertex_cover(cycle_graph(5))) == 3
        assert len(exact_vertex_cover(path_graph(6))) == 3 or len(
            exact_vertex_cover(path_graph(6))
        ) == 2

    def test_greedy_is_2_approx(self):
        for seed in range(3):
            g = connected_gnp_graph(12, 0.3, seed=seed)
            greedy = greedy_matching_vertex_cover(g)
            exact = exact_vertex_cover(g)
            assert is_vertex_cover(g, greedy)
            assert len(greedy) <= 2 * len(exact)
