"""Documentation health checks: docstring coverage and markdown links.

Runs the same checkers CI invokes (``tools/check_docstrings.py`` and
``tools/check_docs_links.py``) so the documentation contract is enforced by
tier-1, not just by a separate workflow step.
"""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_tool(name):
    spec = importlib.util.spec_from_file_location(name, REPO_ROOT / "tools" / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_public_api_docstring_coverage():
    check_docstrings = _load_tool("check_docstrings")
    problems = check_docstrings.run()
    assert not problems, "undocumented public API:\n" + "\n".join(problems)


def test_docs_markdown_links_resolve():
    check_docs_links = _load_tool("check_docs_links")
    problems = check_docs_links.run(REPO_ROOT)
    assert not problems, "broken documentation links:\n" + "\n".join(problems)


def test_docs_pages_exist():
    # The README links into these; keep the docs suite from silently
    # regressing to a single page.
    for page in ("architecture.md", "performance.md", "experiments.md"):
        assert (REPO_ROOT / "docs" / page).is_file(), f"docs/{page} missing"
