"""Seed discipline of every generator in :mod:`repro.graphs.generators`.

Each randomised generator must produce the identical edge set when called
twice with the same seed, and a different edge set for a different seed (on
parameters where a collision is combinatorially implausible).  Deterministic
constructions must be identical across calls.  Benchmarks rely on this to be
reproducible row by row.
"""

import pytest

from repro.graphs import generators as gen


def _weighted_edges(graph):
    return {e: graph.weight(*e) for e in graph.edges()}


DETERMINISTIC = [
    lambda: gen.path_graph(9),
    lambda: gen.cycle_graph(8),
    lambda: gen.star_graph(7),
    lambda: gen.complete_graph(6),
    lambda: gen.complete_bipartite_graph(3, 4),
    lambda: gen.grid_graph(4, 5),
    lambda: gen.hypercube_graph(4),
    lambda: gen.bidirect(gen.cycle_graph(8)),
]

SEEDED = [
    lambda seed: gen.gnp_random_graph(30, 0.2, seed=seed),
    lambda seed: gen.gnm_random_graph(25, 60, seed=seed),
    lambda seed: gen.connected_gnp_graph(30, 0.05, seed=seed),
    lambda seed: gen.random_regular_graph(16, 3, seed=seed),
    lambda seed: gen.barabasi_albert_graph(40, 2, seed=seed),
    lambda seed: gen.cluster_graph(4, 6, seed=seed),
    lambda seed: gen.overlapping_stars_graph(4, 5, 2, seed=seed),
    lambda seed: gen.random_digraph(20, 0.15, seed=seed),
    lambda seed: gen.random_tournament(12, seed=seed),
    lambda seed: gen.orient_randomly(gen.complete_graph(10), seed=seed),
]


@pytest.mark.parametrize("factory", DETERMINISTIC)
def test_deterministic_constructions_are_stable(factory):
    assert factory().edge_set() == factory().edge_set()


@pytest.mark.parametrize("factory", SEEDED)
def test_same_seed_same_edges(factory):
    assert factory(123).edge_set() == factory(123).edge_set()


@pytest.mark.parametrize("factory", SEEDED)
def test_different_seed_different_edges(factory):
    assert factory(123).edge_set() != factory(321).edge_set()


@pytest.mark.parametrize(
    "assigner",
    [
        lambda g, seed: gen.assign_random_weights(g, 1.0, 10.0, seed=seed),
        lambda g, seed: gen.assign_random_weights(g, 1, 9, seed=seed, integer=True),
        lambda g, seed: gen.assign_weights_from_choices(g, [1.0, 2.5, 7.0], seed=seed),
    ],
)
def test_weight_assignment_determinism(assigner):
    def build(seed):
        g = gen.gnp_random_graph(20, 0.3, seed=5)
        assigner(g, seed)
        return _weighted_edges(g)

    assert build(11) == build(11)
    assert build(11) != build(12)


def test_rng_instance_is_accepted():
    import random

    rng = random.Random(7)
    a = gen.gnp_random_graph(20, 0.2, seed=rng)
    b = gen.gnp_random_graph(20, 0.2, seed=random.Random(7))
    assert a.edge_set() == b.edge_set()
