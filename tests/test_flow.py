"""Tests for Dinic max-flow and the densest-subgraph solvers."""

from fractions import Fraction
from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow import (
    MaxFlowNetwork,
    densest_subgraph_exact,
    densest_subgraph_peeling,
    max_flow_min_cut,
    subgraph_density,
)


def brute_force_densest(nodes, edges, weights=None):
    """Reference solver: enumerate all non-empty subsets."""
    best = Fraction(-1)
    best_set = set()
    for size in range(1, len(nodes) + 1):
        for subset in combinations(nodes, size):
            d = subgraph_density(subset, edges, weights)
            if d > best:
                best = d
                best_set = set(subset)
    return best_set, best


class TestDinic:
    def test_single_edge(self):
        value, cut = max_flow_min_cut([("s", "t", 5)], "s", "t")
        assert value == 5
        assert cut == {"s"}

    def test_classic_network(self):
        edges = [
            ("s", "a", 10),
            ("s", "b", 10),
            ("a", "b", 2),
            ("a", "t", 4),
            ("b", "t", 9),
        ]
        value, _ = max_flow_min_cut(edges, "s", "t")
        assert value == 13

    def test_disconnected_sink(self):
        value, cut = max_flow_min_cut([("s", "a", 3)], "s", "t")
        assert value == 0
        assert "a" in cut

    def test_fraction_capacities(self):
        edges = [("s", "a", Fraction(1, 3)), ("a", "t", Fraction(1, 2))]
        value, _ = max_flow_min_cut(edges, "s", "t")
        assert value == Fraction(1, 3)

    def test_parallel_paths(self):
        edges = [("s", "a", 1), ("a", "t", 1), ("s", "b", 1), ("b", "t", 1)]
        value, _ = max_flow_min_cut(edges, "s", "t")
        assert value == 2

    def test_source_equals_sink_rejected(self):
        net = MaxFlowNetwork()
        net.add_edge("s", "t", 1)
        with pytest.raises(ValueError):
            net.max_flow("s", "s")

    def test_negative_capacity_rejected(self):
        net = MaxFlowNetwork()
        with pytest.raises(ValueError):
            net.add_edge("a", "b", -1)


class TestDensestSubgraphExact:
    def test_triangle_with_pendant(self):
        nodes = [1, 2, 3, 4]
        edges = [(1, 2), (2, 3), (1, 3), (3, 4)]
        subset, density = densest_subgraph_exact(nodes, edges)
        assert density == Fraction(1)
        assert {1, 2, 3} <= subset

    def test_clique_plus_sparse_tail(self):
        # K4 (density 3/2) attached to a long path.
        nodes = list(range(10))
        edges = [(a, b) for a in range(4) for b in range(a + 1, 4)]
        edges += [(i, i + 1) for i in range(4, 9)] + [(3, 4)]
        subset, density = densest_subgraph_exact(nodes, edges)
        assert subset == {0, 1, 2, 3}
        assert density == Fraction(3, 2)

    def test_no_edges(self):
        subset, density = densest_subgraph_exact([1, 2, 3], [])
        assert density == 0
        assert len(subset) == 1

    def test_empty_input(self):
        subset, density = densest_subgraph_exact([], [])
        assert subset == set()
        assert density == 0

    def test_node_weights_shift_optimum(self):
        # Unweighted optimum is the triangle; making its nodes heavy moves the
        # optimum to the light pair of multiplicity-heavy structure.
        nodes = ["a", "b", "c", "d", "e"]
        edges = [("a", "b"), ("b", "c"), ("a", "c"), ("d", "e")]
        heavy = {"a": Fraction(10), "b": Fraction(10), "c": Fraction(10), "d": Fraction(1), "e": Fraction(1)}
        subset, density = densest_subgraph_exact(nodes, edges, heavy)
        assert subset == {"d", "e"}
        assert density == Fraction(1, 2)

    def test_zero_weight_nodes_allowed_without_internal_edges(self):
        nodes = ["a", "b", "z"]
        edges = [("a", "z"), ("a", "b")]
        weights = {"a": Fraction(1), "b": Fraction(1), "z": Fraction(0)}
        subset, density = densest_subgraph_exact(nodes, edges, weights)
        assert "z" in subset
        assert density == Fraction(2, 2)

    def test_zero_weight_edge_inside_rejected(self):
        with pytest.raises(ValueError):
            densest_subgraph_exact(
                ["a", "b"], [("a", "b")], {"a": Fraction(0), "b": Fraction(0)}
            )

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            densest_subgraph_exact(["a"], [], {"a": Fraction(-1)})

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=7), st.integers(min_value=0, max_value=2**20))
    def test_matches_brute_force_on_random_graphs(self, n, seed):
        import random

        rng = random.Random(seed)
        nodes = list(range(n))
        edges = [(a, b) for a in range(n) for b in range(a + 1, n) if rng.random() < 0.5]
        subset, density = densest_subgraph_exact(nodes, edges)
        _, best = brute_force_densest(nodes, edges)
        assert density == best
        assert subgraph_density(subset, edges) == best


class TestDensestSubgraphPeeling:
    def test_triangle_found(self):
        nodes = [1, 2, 3, 4, 5]
        edges = [(1, 2), (2, 3), (1, 3), (3, 4), (4, 5)]
        subset, density = densest_subgraph_peeling(nodes, edges)
        assert density >= Fraction(1, 2) * Fraction(1)  # 2-approximation of 1

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=7), st.integers(min_value=0, max_value=2**20))
    def test_within_factor_two_of_optimum(self, n, seed):
        import random

        rng = random.Random(seed)
        nodes = list(range(n))
        edges = [(a, b) for a in range(n) for b in range(a + 1, n) if rng.random() < 0.5]
        _, approx = densest_subgraph_peeling(nodes, edges)
        _, best = brute_force_densest(nodes, edges)
        assert approx * 2 >= best

    def test_dispatch(self):
        from repro.flow import densest_subgraph

        nodes = [1, 2, 3]
        edges = [(1, 2)]
        assert densest_subgraph(nodes, edges, method="exact")[1] == Fraction(1, 2)
        assert densest_subgraph(nodes, edges, method="peeling")[1] == Fraction(1, 2)
        with pytest.raises(ValueError):
            densest_subgraph(nodes, edges, method="bogus")
