"""Round-trip tests for edge-list I/O and networkx interop."""

import networkx as nx
import pytest

from repro.graphs import (
    DiGraph,
    Graph,
    assign_random_weights,
    complete_bipartite_graph,
    connected_gnp_graph,
    from_networkx,
    random_digraph,
    read_edge_list,
    to_networkx,
    write_edge_list,
)


class TestEdgeListIO:
    def test_undirected_roundtrip(self, tmp_path):
        g = connected_gnp_graph(12, 0.3, seed=1)
        assign_random_weights(g, 1, 5, seed=2)
        path = tmp_path / "g.jsonl"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert isinstance(back, Graph)
        assert back.edge_set() == g.edge_set()
        assert all(back.weight(u, v) == g.weight(u, v) for u, v in g.edges())

    def test_directed_roundtrip(self, tmp_path):
        d = random_digraph(8, 0.4, seed=3)
        path = tmp_path / "d.jsonl"
        write_edge_list(d, path)
        back = read_edge_list(path)
        assert isinstance(back, DiGraph)
        assert back.edge_set() == d.edge_set()

    def test_tuple_node_labels_roundtrip(self, tmp_path):
        g = complete_bipartite_graph(2, 3)
        path = tmp_path / "bip.jsonl"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.edge_set() == g.edge_set()

    def test_isolated_nodes_survive(self, tmp_path):
        g = Graph([(1, 2)])
        g.add_node(99)
        path = tmp_path / "iso.jsonl"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.has_node(99)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            read_edge_list(path)


class TestNetworkxInterop:
    def test_to_networkx_undirected(self):
        g = connected_gnp_graph(10, 0.4, seed=4)
        nxg = to_networkx(g)
        assert isinstance(nxg, nx.Graph)
        assert nxg.number_of_edges() == g.number_of_edges()

    def test_to_networkx_directed(self):
        d = random_digraph(8, 0.3, seed=5)
        nxd = to_networkx(d)
        assert isinstance(nxd, nx.DiGraph)
        assert nxd.number_of_edges() == d.number_of_edges()

    def test_roundtrip_with_weights(self):
        g = connected_gnp_graph(10, 0.4, seed=6)
        assign_random_weights(g, 1, 9, seed=7)
        back = from_networkx(to_networkx(g))
        assert back.edge_set() == g.edge_set()
        assert all(back.weight(u, v) == g.weight(u, v) for u, v in g.edges())

    def test_from_networkx_default_weight(self):
        nxg = nx.path_graph(4)
        g = from_networkx(nxg)
        assert g.weight(0, 1) == 1.0

    def test_multigraph_rejected(self):
        with pytest.raises(ValueError):
            from_networkx(nx.MultiGraph([(0, 1), (0, 1)]))
