"""Tests for the MDS algorithm (Section 5), network decomposition and the
(1+eps) LOCAL algorithm (Section 6)."""

import math

import pytest

from repro.baselines import exact_dominating_set, greedy_dominating_set
from repro.core import (
    MDSOptions,
    decomposition_round_bound,
    network_decomposition,
    one_plus_eps_spanner,
    radius_budget,
    run_mds,
)
from repro.graphs import (
    barabasi_albert_graph,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    grid_graph,
    is_dominating_set,
    log_max_degree,
    path_graph,
    power_graph,
    star_graph,
)
from repro.spanner import is_k_spanner, minimum_k_spanner_exact


class TestMDSValidity:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(10),
            cycle_graph(9),
            star_graph(8),
            complete_graph(7),
            grid_graph(4, 5),
            connected_gnp_graph(30, 0.15, seed=1),
            barabasi_albert_graph(40, 2, seed=2),
        ],
        ids=["path", "cycle", "star", "clique", "grid", "gnp", "ba"],
    )
    def test_output_dominates(self, graph):
        result = run_mds(graph, seed=7)
        assert is_dominating_set(graph, result.dominators)

    def test_isolated_vertices_dominate_themselves(self):
        g = path_graph(3)
        g.add_node(99)
        result = run_mds(g, seed=1)
        assert 99 in result.dominators
        assert is_dominating_set(g, result.dominators)

    def test_star_picks_single_center(self):
        g = star_graph(20)
        result = run_mds(g, seed=3)
        assert is_dominating_set(g, result.dominators)
        assert result.size <= 2

    def test_congest_messages_fit_budget(self):
        g = connected_gnp_graph(50, 0.1, seed=4)
        result = run_mds(g, seed=5)
        assert result.metrics.bandwidth_violations == 0

    def test_determinism(self):
        g = connected_gnp_graph(25, 0.2, seed=6)
        assert run_mds(g, seed=9).dominators == run_mds(g, seed=9).dominators

    def test_options_respected(self):
        g = connected_gnp_graph(20, 0.2, seed=7)
        result = run_mds(g, seed=8, options=MDSOptions(max_iterations=500))
        assert is_dominating_set(g, result.dominators)


class TestMDSQuality:
    @pytest.mark.parametrize("seed", range(3))
    def test_within_log_delta_of_exact(self, seed):
        g = connected_gnp_graph(16, 0.3, seed=seed)
        result = run_mds(g, seed=seed)
        opt = len(exact_dominating_set(g))
        envelope = 8 * log_max_degree(g) + 2
        assert result.size <= envelope * opt

    def test_comparable_to_greedy(self):
        g = connected_gnp_graph(60, 0.08, seed=9)
        distributed = run_mds(g, seed=10).size
        greedy = len(greedy_dominating_set(g))
        assert distributed <= 6 * greedy + 4

    def test_rounds_polylog_envelope(self):
        for seed in range(3):
            g = connected_gnp_graph(40, 0.12, seed=seed)
            result = run_mds(g, seed=seed)
            n, delta = g.number_of_nodes(), g.max_degree()
            envelope = 12 * max(1, math.log2(n)) * max(1, math.log2(delta)) + 12
            assert result.iterations <= envelope


class TestNetworkDecomposition:
    @pytest.mark.parametrize("seed", range(3))
    def test_partition_covers_all_vertices(self, seed):
        g = connected_gnp_graph(40, 0.1, seed=seed)
        dec = network_decomposition(g, seed=seed)
        assert set(dec.color_of) == set(g.nodes())
        assert set(dec.cluster_of) == set(g.nodes())

    @pytest.mark.parametrize("seed", range(3))
    def test_same_color_clusters_nonadjacent(self, seed):
        g = connected_gnp_graph(40, 0.1, seed=seed)
        dec = network_decomposition(g, seed=seed)
        assert dec.same_color_clusters_nonadjacent(g)

    def test_number_of_colors_logarithmic(self):
        g = connected_gnp_graph(80, 0.06, seed=5)
        dec = network_decomposition(g, seed=6)
        assert dec.num_colors <= 10 * math.log2(g.number_of_nodes()) + 10

    def test_cluster_diameter_logarithmic(self):
        g = grid_graph(8, 8)
        dec = network_decomposition(g, seed=7)
        assert dec.max_cluster_diameter <= 12 * math.log2(g.number_of_nodes()) + 12

    def test_clusters_helper(self):
        g = path_graph(10)
        dec = network_decomposition(g, seed=8)
        clusters = dec.clusters()
        assert sum(len(m) for m in clusters.values()) == 10

    def test_round_bound_monotone(self):
        assert decomposition_round_bound(1000) >= decomposition_round_bound(10)


class TestOnePlusEps:
    def test_radius_budget_shrinks_with_eps(self):
        assert radius_budget(100, 1.0, 2) < radius_budget(100, 0.1, 2)

    @pytest.mark.parametrize("epsilon", [1.0, 0.5, 0.25])
    def test_ratio_within_one_plus_eps(self, epsilon):
        g = connected_gnp_graph(11, 0.4, seed=3)
        result = one_plus_eps_spanner(g, k=2, epsilon=epsilon, seed=4)
        assert is_k_spanner(g, result.edges, 2)
        opt = len(minimum_k_spanner_exact(g, 2))
        assert len(result.edges) <= math.ceil((1 + epsilon) * opt) + 1

    def test_k3_spanner(self):
        g = connected_gnp_graph(10, 0.4, seed=5)
        result = one_plus_eps_spanner(g, k=3, epsilon=0.5, seed=6)
        assert is_k_spanner(g, result.edges, 3)
        opt = len(minimum_k_spanner_exact(g, 3))
        assert len(result.edges) <= math.ceil(1.5 * opt) + 1

    def test_weighted_mode(self):
        from repro.graphs import assign_random_weights

        g = connected_gnp_graph(9, 0.45, seed=7)
        assign_random_weights(g, 1, 5, seed=8, integer=True)
        result = one_plus_eps_spanner(g, k=2, epsilon=0.5, seed=9, use_weights=True)
        assert is_k_spanner(g, result.edges, 2)

    def test_rounds_estimate_polylog(self):
        g = connected_gnp_graph(12, 0.4, seed=10)
        result = one_plus_eps_spanner(g, k=2, epsilon=0.5, seed=11)
        n = g.number_of_nodes()
        assert result.rounds_estimate <= 10_000 * (math.log2(n) + 1) ** 3

    def test_invalid_parameters(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            one_plus_eps_spanner(g, k=2, epsilon=0.0)
        with pytest.raises(ValueError):
            one_plus_eps_spanner(g, k=0, epsilon=0.5)

    def test_power_graph_consistency(self):
        # The r used by the algorithm always reaches the whole graph on tiny inputs,
        # so the decomposition runs on (a supergraph of) the complete graph.
        g = path_graph(6)
        result = one_plus_eps_spanner(g, k=2, epsilon=0.5, seed=12)
        p = power_graph(g, result.r)
        assert p.number_of_edges() >= g.number_of_edges()
