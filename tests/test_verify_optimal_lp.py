"""Tests for spanner verification, the exact solver and the LP lower bound."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    DiGraph,
    all_edges_both,
    complete_bipartite_graph,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    path_graph,
    random_digraph,
    random_split_instance,
    star_graph,
)
from repro.spanner import (
    covering_options,
    covering_options_directed,
    is_client_server_2_spanner,
    is_k_spanner,
    is_k_spanner_directed,
    lp_lower_bound_2spanner,
    lp_lower_bound_2spanner_directed,
    lp_lower_bound_client_server,
    minimum_client_server_2_spanner_exact,
    minimum_k_spanner_exact,
    minimum_k_spanner_exact_directed,
    spanner_cost,
    spanner_size_lower_bound,
    stretch_of,
    uncovered_edges,
)


class TestVerify:
    def test_full_graph_is_spanner(self):
        g = connected_gnp_graph(12, 0.4, seed=1)
        assert is_k_spanner(g, g.edge_set(), 2)
        assert is_k_spanner(g, g.edge_set(), 5)

    def test_star_spans_clique(self):
        g = complete_graph(6)
        star = {(0, i) for i in range(1, 6)}
        assert is_k_spanner(g, star, 2)
        assert not is_k_spanner(g, star, 1)

    def test_path_cannot_drop_edges_for_k2(self):
        g = path_graph(5)
        assert not is_k_spanner(g, set(list(g.edges())[:-1]), 2)

    def test_cycle_k_spanner(self):
        g = cycle_graph(6)
        spanner = set(list(g.edges()))
        spanner.discard((0, 5))
        assert is_k_spanner(g, spanner, 5)
        assert not is_k_spanner(g, spanner, 4)

    def test_uncovered_edges_listed(self):
        g = cycle_graph(4)
        unc = uncovered_edges(g, {(0, 1)}, 2)
        assert (2, 3) in unc

    def test_spanner_edge_must_exist(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            is_k_spanner(g, {(0, 2)}, 2)

    def test_directed_verification(self):
        d = DiGraph([(0, 1), (1, 2), (0, 2)])
        assert is_k_spanner_directed(d, {(0, 1), (1, 2)}, 2)
        assert not is_k_spanner_directed(d, {(0, 1)}, 2)
        # Reverse path does not cover a directed edge.
        d2 = DiGraph([(0, 1), (1, 0)])
        assert not is_k_spanner_directed(d2, {(0, 1)}, 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            is_k_spanner(path_graph(3), set(), 0)

    def test_stretch_of(self):
        g = complete_graph(5)
        star = {(0, i) for i in range(1, 5)}
        assert stretch_of(g, star) == 2.0
        assert stretch_of(g, g.edge_set()) == 1.0
        assert stretch_of(g, set()) == math.inf

    def test_spanner_cost_weighted(self):
        g = path_graph(3)
        g.set_weight(0, 1, 4.0)
        assert spanner_cost(g, [(0, 1), (1, 2)]) == 5.0

    def test_client_server_verification(self):
        inst = random_split_instance(connected_gnp_graph(12, 0.4, seed=2), seed=3)
        assert is_client_server_2_spanner(inst, inst.servers)
        non_server = next(iter(inst.clients - inst.servers), None)
        if non_server is not None:
            assert not is_client_server_2_spanner(inst, {non_server})


class TestCoveringOptions:
    def test_options_for_triangle_edge(self):
        g = cycle_graph(3)
        opts = covering_options(g, (0, 1), 2)
        assert frozenset({(0, 1)}) in opts
        assert any(len(o) == 2 for o in opts)

    def test_dominated_options_removed(self):
        g = complete_graph(4)
        for opts in (covering_options(g, (0, 1), 2), covering_options(g, (0, 1), 3)):
            singles = [o for o in opts if len(o) == 1]
            assert singles == [frozenset({(0, 1)})]
            # No option is a superset of the single-edge option.
            assert all(len(o) <= 2 or not (frozenset({(0, 1)}) <= o) for o in opts)

    def test_directed_options(self):
        d = DiGraph([(0, 1), (0, 2), (2, 1)])
        opts = covering_options_directed(d, (0, 1), 2)
        assert frozenset({(0, 1)}) in opts
        assert frozenset({(0, 2), (2, 1)}) in opts


class TestExactSolver:
    def test_bipartite_needs_all_edges(self):
        g = complete_bipartite_graph(3, 3)
        opt = minimum_k_spanner_exact(g, 2)
        assert len(opt) == 9

    def test_clique_center_star_optimal(self):
        g = complete_graph(6)
        opt = minimum_k_spanner_exact(g, 2)
        assert len(opt) == 5
        assert is_k_spanner(g, opt, 2)

    def test_star_graph_optimum_is_itself(self):
        g = star_graph(7)
        assert len(minimum_k_spanner_exact(g, 2)) == 7

    def test_larger_k_gives_sparser_spanner(self):
        g = connected_gnp_graph(10, 0.5, seed=5)
        s2 = minimum_k_spanner_exact(g, 2)
        s3 = minimum_k_spanner_exact(g, 3)
        assert len(s3) <= len(s2)
        assert is_k_spanner(g, s3, 3)

    def test_weighted_objective(self):
        g = cycle_graph(3)
        g.set_weight(0, 1, 10.0)
        opt = minimum_k_spanner_exact(g, 2, use_weights=True)
        # The expensive edge is covered through the other two.
        assert (0, 1) not in opt
        assert is_k_spanner(g, opt, 2)

    def test_targets_subset(self):
        g = complete_graph(5)
        opt = minimum_k_spanner_exact(g, 2, targets=[(0, 1)])
        assert len(opt) == 1

    def test_infeasible_raises(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            minimum_k_spanner_exact(g, 2, targets=[(0, 1)], allowed_edges=[(1, 2)])

    def test_directed_exact(self):
        d = random_digraph(7, 0.4, seed=6)
        opt = minimum_k_spanner_exact_directed(d, 2)
        assert is_k_spanner_directed(d, opt, 2)
        assert len(opt) <= d.number_of_edges()

    def test_client_server_exact(self):
        inst = random_split_instance(connected_gnp_graph(9, 0.45, seed=7), seed=8)
        opt = minimum_client_server_2_spanner_exact(inst)
        assert is_client_server_2_spanner(inst, opt)

    def test_size_lower_bound(self):
        g = connected_gnp_graph(12, 0.3, seed=9)
        assert spanner_size_lower_bound(g) == 11
        assert len(minimum_k_spanner_exact(g, 2)) >= 11

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**20))
    def test_exact_is_valid_and_no_larger_than_graph(self, seed):
        g = connected_gnp_graph(9, 0.4, seed=seed)
        opt = minimum_k_spanner_exact(g, 2)
        assert is_k_spanner(g, opt, 2)
        assert len(opt) <= g.number_of_edges()


class TestLPBound:
    def test_lp_below_exact(self):
        for seed in range(4):
            g = connected_gnp_graph(10, 0.4, seed=seed)
            lp = lp_lower_bound_2spanner(g)
            opt = len(minimum_k_spanner_exact(g, 2))
            assert lp <= opt + 1e-6

    def test_lp_exact_on_bipartite(self):
        g = complete_bipartite_graph(3, 4)
        assert lp_lower_bound_2spanner(g) == pytest.approx(12.0)

    def test_weighted_lp(self):
        g = cycle_graph(3)
        g.set_weight(0, 1, 10.0)
        lp = lp_lower_bound_2spanner(g, use_weights=True)
        opt = minimum_k_spanner_exact(g, 2, use_weights=True)
        assert lp <= sum(g.weight(*e) for e in opt) + 1e-6

    def test_directed_lp(self):
        d = random_digraph(7, 0.4, seed=3)
        lp = lp_lower_bound_2spanner_directed(d)
        opt = minimum_k_spanner_exact_directed(d, 2)
        assert lp <= len(opt) + 1e-6

    def test_client_server_lp(self):
        inst = all_edges_both(connected_gnp_graph(8, 0.5, seed=4))
        lp = lp_lower_bound_client_server(inst)
        opt = minimum_client_server_2_spanner_exact(inst)
        assert lp <= len(opt) + 1e-6

    def test_lp_at_least_trivial_bound(self):
        g = connected_gnp_graph(10, 0.5, seed=5)
        assert lp_lower_bound_2spanner(g) >= 0
