"""Differential and unit tests for the corruption adversary (PR 9).

Three contracts under test:

* **Codec** — :func:`~repro.distributed.encoding.encode_payload` is an
  injective, canonical, platform-independent wire image over the payload
  vocabulary programs actually send; :func:`decode_payload` is its strict
  inverse; :func:`corrupt_payload` flips one bit and maps undecodable
  damage to the :data:`CORRUPTED` sentinel.
* **Parity** — all four engines deliver bit-for-bit identical runs under
  ``corrupt:0.05`` across the four communication models, for broadcast and
  targeted/mixed traffic, with and without NumPy: the keyed corruption
  hash must fire on exactly the same ``(round, src, dst)`` links and flip
  exactly the same bit everywhere (same oracle pattern as
  ``tests/test_corrupt_adversary.py``'s sibling ``test_targeted_engines``).
* **Determinism** — corruption decisions are a pure function of the
  simulator seed plus ``(round, src, dst)``: re-runs agree, salts
  decorrelate, ``corrupt:0.0`` is byte-identical to the fault-free run
  modulo its zeroed counters, and the E22 report is byte-identical under
  ``--jobs 1`` and ``--jobs 4``.
"""

import json

import pytest

from repro.core import FloodMaxProgram
from repro.distributed import (
    CORRUPTED,
    BandwidthExceededError,
    CorruptAdversary,
    CorruptedPayload,
    MessageAdmissionError,
    NodeProgram,
    PayloadDecodeError,
    Simulator,
    UnencodablePayloadError,
    build_adversary,
    congest_model,
    congested_clique_model,
    corrupt_payload,
    decode_payload,
    encode_payload,
    local_model,
    payload_checksum,
    run_program,
)
from repro.distributed import columnar as columnar_module
from repro.distributed import targeted as targeted_module
from repro.experiments.runner import run_experiments, strip_timing
from repro.graphs import gnp_random_graph

N = 24

MODELS = {
    "local": lambda: local_model(N),
    "congest": lambda: congest_model(N, enforce=False),
    "congest-enforcing": lambda: congest_model(N, enforce=True),
    "clique": lambda: congested_clique_model(N, enforce=False),
}

CORRUPT = "corrupt:0.05"


# --------------------------------------------------------------------- codec
#: Round-trip vocabulary: every exact type the codec covers, with the edge
#: values a single flipped bit is most likely to confuse.
VOCABULARY = [
    None,
    True,
    False,
    0,
    1,
    -1,
    255,
    256,
    1 << 70,
    -(1 << 70),
    0.0,
    -0.0,
    1.5,
    float("inf"),
    "",
    "héllo",
    "a" * 300,
    b"",
    b"\x00\xff",
    (),
    (1, "a", (True, None)),
    [],
    [1, [2.5, b"x"]],
    ("e",),
    ("a", 17),
]


class TestCodec:
    @pytest.mark.parametrize("value", VOCABULARY, ids=repr)
    def test_round_trip_is_exact(self, value):
        decoded = decode_payload(encode_payload(value))
        assert type(decoded) is type(value)
        # Canonical form: re-encoding the decode reproduces the image
        # byte-for-byte (catches -0.0 vs 0.0, True vs 1, tuple vs list).
        assert encode_payload(decoded) == encode_payload(value)

    def test_images_are_injective_across_aliasing_types(self):
        images = [encode_payload(v) for v in (1, True, 1.0, "1", b"1", (1,), [1])]
        assert len(set(images)) == len(images)

    def test_unencodable_types_raise(self):
        for bad in (object(), {1: 2}, {1, 2}, (1, {2})):
            with pytest.raises(UnencodablePayloadError):
                encode_payload(bad)

    def test_nesting_beyond_depth_limit_raises(self):
        deep = ()
        for _ in range(40):
            deep = (deep,)
        with pytest.raises(UnencodablePayloadError, match="depth"):
            encode_payload(deep)
        with pytest.raises(PayloadDecodeError, match="depth"):
            decode_payload(b"t\x01" * 40 + b"t\x00")

    @pytest.mark.parametrize(
        ("wire", "reason"),
        [
            (b"", "truncated"),
            (b"i\x00\x01\x07N", "trailing"),
            (b"\xff", "unknown tag"),
            (b"i\x02\x01\x07", "sign"),
            (b"i\x00\x02\x00\x07", "padding"),
            (b"i\x01\x01\x00", "negative zero"),
            (b"s\x80\x00", "padding"),
            (b"s\x01\xff", "utf-8"),
            (b"f\x00\x00", "truncated"),
            (b"t\x05N", "exceeds remaining"),
            (b"s" + b"\x81" * 10 + b"\x01", "10 bytes"),
        ],
        ids=lambda x: x if isinstance(x, str) else repr(x),
    )
    def test_strict_decode_rejects_malformed_wire(self, wire, reason):
        with pytest.raises(PayloadDecodeError, match=reason):
            decode_payload(wire)

    def test_corrupt_payload_is_deterministic_and_always_differs(self):
        for value in VOCABULARY:
            first = corrupt_payload(value, 0x1234)
            again = corrupt_payload(value, 0x1234)
            assert type(first) is type(again)
            if first is not CORRUPTED:
                # Wire-image equality also covers NaN results (NaN != NaN).
                assert encode_payload(first) == encode_payload(again)
            if first is not CORRUPTED and not isinstance(value, float):
                # The flip landed in the image, so the decode cannot be the
                # original (floats exempt: the -0.0 sign bit flips to an
                # ==-equal value).
                assert type(first) is not type(value) or first != value

    def test_corrupt_payload_reduces_bit_index_modulo_image(self):
        image_bits = 8 * len(encode_payload(7))
        assert corrupt_payload(7, 3) == corrupt_payload(7, 3 + image_bits)

    def test_unencodable_payload_corrupts_to_sentinel(self):
        assert corrupt_payload({1, 2}, 5) is CORRUPTED

    def test_checksum_detects_every_single_flip(self):
        value = ("a", 17)
        wire = encode_payload(value)
        reference = payload_checksum(value)
        for bit in range(8 * len(wire)):
            mutated = corrupt_payload(value, bit)
            if mutated is CORRUPTED:
                continue
            assert payload_checksum(mutated) != reference

    def test_checksum_requires_encodable_payload(self):
        assert payload_checksum((1, 2)) == payload_checksum((1, 2))
        with pytest.raises(UnencodablePayloadError):
            payload_checksum({1: 2})


class TestCorruptedSentinel:
    def test_orders_below_everything(self):
        for other in (0, -(10**9), float("-inf"), "", (), None):
            assert CORRUPTED < other
            assert not CORRUPTED > other
            assert not CORRUPTED >= other
        assert max([CORRUPTED, -5]) == -5
        assert max([-5, CORRUPTED]) == -5
        assert max([CORRUPTED]) is CORRUPTED

    def test_value_semantics_are_constant(self):
        assert CORRUPTED == CorruptedPayload()
        assert CORRUPTED != 5
        assert hash(CORRUPTED) == hash(CorruptedPayload())
        assert repr(CORRUPTED) == "CORRUPTED"
        assert CORRUPTED <= CorruptedPayload() and CORRUPTED >= CorruptedPayload()


# --------------------------------------------------- differential engine suite
class FanoutProgram(NodeProgram):
    """Targeted fan-out with an optional mixed broadcast/targeted round.

    Same traffic shape as the targeted-engine suite: even rounds of the
    mixed variant interleave pre-broadcast sends, a broadcast, and
    post-broadcast sends, exercising the engines' broadcast-position
    bookkeeping under per-edge corruption.  Folds guard on exact ints so
    forged/erased payloads cannot crash a node mid-differential.
    """

    def __init__(self, node_id, k=3, rounds=5, mix_broadcast=False):
        self.k = k
        self.rounds = rounds
        self.best = 0
        self.mix = mix_broadcast

    def on_start(self, ctx):
        for dst in sorted(ctx.neighbors)[: self.k]:
            ctx.send(dst, ctx.node_id + 1)

    def on_round(self, ctx, inbox):
        for _, plist in sorted(inbox.items()):
            for p in plist:
                if type(p) is int and p > self.best:
                    self.best = p
        if ctx.round >= self.rounds:
            ctx.set_output(self.best)
            ctx.halt()
            return
        nbrs = sorted(ctx.neighbors)
        if self.mix and ctx.round % 2 == 0:
            for dst in nbrs[: self.k // 2]:
                ctx.send(dst, self.best)
            ctx.broadcast(self.best + 1)
            for dst in nbrs[self.k // 2 : self.k]:
                ctx.send(dst, self.best + 2)
        else:
            for dst in nbrs[: self.k]:
                ctx.send(dst, self.best + ctx.round)


def _run(engine, model, mix, adversary=CORRUPT):
    graph = gnp_random_graph(N, 0.3, seed=7)
    sim = Simulator(
        graph,
        lambda v: FanoutProgram(v, mix_broadcast=mix),
        model=model,
        seed=11,
        engine=engine,
        adversary=build_adversary(adversary) if adversary else None,
    )
    result = sim.run(max_rounds=50)
    return {
        "outputs": dict(sorted(result.outputs.items())),
        "metrics": result.metrics.as_dict(),
        "completed": result.completed,
    }


def _outcome(engine, model_key, mix, adversary=CORRUPT):
    """Result dict, or the raised exception — compared across engines."""
    try:
        return _run(engine, MODELS[model_key](), mix, adversary)
    except (BandwidthExceededError, MessageAdmissionError) as error:
        return error


@pytest.mark.parametrize("mix", [False, True], ids=["targeted", "mixed"])
@pytest.mark.parametrize("model_key", sorted(MODELS))
@pytest.mark.parametrize("engine", ["batch", "columnar"])
def test_engine_matches_indexed_bit_for_bit_under_corruption(
    engine, model_key, mix
):
    expected = _outcome("indexed", model_key, mix)
    got = _outcome(engine, model_key, mix)
    if isinstance(expected, Exception):
        assert type(got) is type(expected)
        assert str(got) == str(expected)
    else:
        assert got == expected


@pytest.mark.parametrize("mix", [False, True], ids=["targeted", "mixed"])
@pytest.mark.parametrize("model_key", sorted(MODELS))
def test_reference_engine_agrees_on_outputs_under_corruption(model_key, mix):
    expected = _outcome("indexed", model_key, mix)
    got = _outcome("reference", model_key, mix)
    if isinstance(expected, Exception):
        assert type(got) is type(expected)
    else:
        assert got["outputs"] == expected["outputs"]
        assert got["completed"] == expected["completed"]


def test_reference_engine_full_metric_parity_on_broadcast_traffic():
    # Pure-broadcast programs share the dict-inbox path end to end, so the
    # reference oracle must agree on the whole metrics dictionary too.
    g = gnp_random_graph(30, 0.2, seed=3)
    runs = {
        engine: run_program(
            g,
            lambda v: FloodMaxProgram(v, 6),
            seed=5,
            engine=engine,
            adversary=build_adversary("corrupt:0.2"),
        )
        for engine in ("indexed", "batch", "columnar", "reference")
    }
    indexed = runs["indexed"]
    assert indexed.metrics.per_adversary["adversary_corrupted_messages"] > 0
    for engine in ("batch", "columnar", "reference"):
        assert runs[engine].outputs == indexed.outputs
        assert runs[engine].metrics.as_dict() == indexed.metrics.as_dict()
        assert runs[engine].completed is indexed.completed


@pytest.mark.parametrize("engine", ["batch", "columnar"])
def test_no_numpy_fallback_matches_numpy_path(engine, monkeypatch):
    with_numpy = _outcome(engine, "clique", True)
    monkeypatch.setattr(targeted_module, "_np", None)
    monkeypatch.setattr(columnar_module, "_np", None)
    without = _outcome(engine, "clique", True)
    if isinstance(with_numpy, Exception):
        assert type(without) is type(with_numpy)
        assert str(without) == str(with_numpy)
    else:
        assert without == with_numpy


# ----------------------------------------------------------------- determinism
class TestCorruptionDeterminism:
    """Decisions are a pure function of (seed, salt, round, src, dst)."""

    def test_same_seed_same_flips_different_seed_different_flips(self):
        g = gnp_random_graph(30, 0.2, seed=1)

        def signature(seed):
            result = run_program(
                g,
                lambda v: FloodMaxProgram(v, 5),
                seed=seed,
                adversary=CorruptAdversary(0.2),
            )
            return (
                result.outputs,
                result.metrics.per_adversary["adversary_corrupted_messages"],
            )

        assert signature(7) == signature(7)
        assert signature(7) != signature(8)

    def test_salt_decorrelates_corruption_streams_under_one_seed(self):
        g = gnp_random_graph(30, 0.2, seed=1)

        def outputs(salt):
            return run_program(
                g,
                lambda v: FloodMaxProgram(v, 5),
                seed=7,
                adversary=CorruptAdversary(0.3, salt=salt),
            ).outputs

        assert outputs(0) == outputs(0)
        assert outputs(0) != outputs(1)

    def test_corruption_charges_senders_in_full(self):
        # Faults act on delivery: the transform seam runs after send-side
        # accounting, so message counts match the fault-free run exactly
        # (the fixed-budget flood broadcasts every round regardless).
        g = gnp_random_graph(30, 0.25, seed=4)
        clean = run_program(g, lambda v: FloodMaxProgram(v, 4), seed=9)
        corrupted = run_program(
            g,
            lambda v: FloodMaxProgram(v, 4),
            seed=9,
            adversary=CorruptAdversary(0.2),
        )
        assert (
            corrupted.metrics.messages_sent == clean.metrics.messages_sent
        )
        faults = corrupted.metrics.per_adversary
        assert faults["adversary_corrupted_messages"] > 0
        assert faults["adversary_corrupted_bits"] >= (
            faults["adversary_corrupted_messages"]
        )
        assert 0 <= faults["adversary_erased_messages"] <= (
            faults["adversary_corrupted_messages"]
        )

    def test_zero_rate_corrupt_only_adds_zero_counters(self):
        g = gnp_random_graph(25, 0.2, seed=3)
        plain = run_program(g, lambda v: FloodMaxProgram(v, 4), seed=5)
        zero = run_program(
            g,
            lambda v: FloodMaxProgram(v, 4),
            seed=5,
            adversary=CorruptAdversary(0.0),
        )
        assert zero.outputs == plain.outputs
        assert zero.metrics.per_adversary == {
            "adversary_corrupted_messages": 0,
            "adversary_corrupted_bits": 0,
            "adversary_erased_messages": 0,
        }
        stripped = {
            k: v
            for k, v in zero.metrics.as_dict().items()
            if not k.startswith("adversary_")
        }
        assert stripped == plain.metrics.as_dict()


class TestE22Report:
    def test_e22_report_identical_across_job_counts(self):
        serial = json.dumps(strip_timing(run_experiments(["E22"], jobs=1)))
        parallel = json.dumps(strip_timing(run_experiments(["E22"], jobs=4)))
        assert serial == parallel
