"""Unit tests for the LOCAL / CONGEST round simulator."""

import pytest

from repro.distributed import (
    BandwidthExceededError,
    FunctionProgram,
    NodeProgram,
    NotANeighborError,
    RoundLimitExceededError,
    Simulator,
    congest_budget_bits,
    congest_model,
    congest_overhead_report,
    estimate_bits,
    local_model,
    run_program,
)
from repro.graphs import Graph, cycle_graph, path_graph, star_graph


class FloodMin(NodeProgram):
    """Every node learns the minimum identifier in its connected component."""

    def __init__(self):
        self.best = None

    def on_start(self, ctx):
        self.best = ctx.node_id
        ctx.broadcast(self.best)

    def on_round(self, ctx, inbox):
        improved = False
        for _, payloads in inbox.items():
            for value in payloads:
                if value < self.best:
                    self.best = value
                    improved = True
        if improved:
            ctx.broadcast(self.best)
        else:
            ctx.set_output(self.best)
            ctx.halt()


class TestSimulatorSemantics:
    def test_flood_min_on_path(self):
        g = path_graph(6)
        result = run_program(g, lambda v: FloodMin(), seed=1)
        assert result.completed
        assert all(value == 0 for value in result.outputs.values())

    def test_round_count_scales_with_diameter(self):
        short = run_program(path_graph(4), lambda v: FloodMin())
        long = run_program(path_graph(16), lambda v: FloodMin())
        assert long.rounds > short.rounds

    def test_messages_counted(self):
        g = cycle_graph(5)
        result = run_program(g, lambda v: FloodMin())
        assert result.metrics.messages_sent >= 10
        assert result.metrics.bits_sent > 0

    def test_send_to_non_neighbor_raises(self):
        def on_start(ctx):
            ctx.send("not-there", 1)

        g = path_graph(3)
        with pytest.raises(NotANeighborError):
            run_program(g, lambda v: FunctionProgram(on_start, lambda ctx, inbox: None))

    def test_round_limit(self):
        class Forever(NodeProgram):
            def on_start(self, ctx):
                ctx.broadcast(0)

            def on_round(self, ctx, inbox):
                ctx.broadcast(0)

        with pytest.raises(RoundLimitExceededError):
            Simulator(path_graph(3), lambda v: Forever()).run(max_rounds=5)

    def test_round_limit_soft(self):
        class Forever(NodeProgram):
            def on_start(self, ctx):
                ctx.broadcast(0)

            def on_round(self, ctx, inbox):
                ctx.broadcast(0)

        result = Simulator(path_graph(3), lambda v: Forever()).run(
            max_rounds=5, raise_on_limit=False
        )
        assert not result.completed
        assert result.rounds == 5

    def test_halted_nodes_receive_nothing(self):
        class HaltImmediately(NodeProgram):
            def on_start(self, ctx):
                ctx.set_output("done")
                ctx.halt()

            def on_round(self, ctx, inbox):  # pragma: no cover - never called
                raise AssertionError("halted node was woken up")

        result = run_program(path_graph(4), lambda v: HaltImmediately())
        assert result.completed
        assert set(result.outputs.values()) == {"done"}

    def test_per_node_randomness_is_seeded(self):
        class Roll(NodeProgram):
            def on_start(self, ctx):
                ctx.set_output(ctx.rng.randint(0, 10**9))
                ctx.halt()

            def on_round(self, ctx, inbox):
                pass

        g = star_graph(5)
        a = run_program(g, lambda v: Roll(), seed=42).outputs
        b = run_program(g, lambda v: Roll(), seed=42).outputs
        c = run_program(g, lambda v: Roll(), seed=43).outputs
        assert a == b
        assert a != c

    def test_cut_bit_accounting(self):
        g = path_graph(4)  # cut between {0,1} and {2,3} is the single edge (1,2)
        result = run_program(g, lambda v: FloodMin(), cut={0, 1})
        assert result.metrics.cut_bits > 0
        assert result.metrics.cut_bits < result.metrics.bits_sent

    def test_isolated_node_program(self):
        g = Graph()
        g.add_node(1)
        g.add_node(2)
        g.add_edge(1, 2)
        g.add_node(99)

        class OutputDegree(NodeProgram):
            def on_start(self, ctx):
                ctx.set_output(len(ctx.neighbors))
                ctx.halt()

            def on_round(self, ctx, inbox):
                pass

        result = run_program(g, lambda v: OutputDegree())
        assert result.outputs[99] == 0


class TestCongestEnforcement:
    def test_small_messages_pass(self):
        g = path_graph(6)
        result = run_program(g, lambda v: FloodMin(), model=congest_model(6))
        assert result.completed
        assert result.metrics.bandwidth_violations == 0

    def test_oversized_message_raises(self):
        payload = list(range(10_000))

        def on_start(ctx):
            ctx.broadcast(payload)

        g = path_graph(4)
        with pytest.raises(BandwidthExceededError):
            run_program(
                g,
                lambda v: FunctionProgram(on_start, lambda ctx, inbox: None),
                model=congest_model(4),
            )

    def test_oversized_message_recorded_when_not_enforced(self):
        payload = list(range(10_000))

        def on_start(ctx):
            ctx.broadcast(payload)
            ctx.halt()

        g = path_graph(4)
        result = run_program(
            g,
            lambda v: FunctionProgram(on_start, lambda ctx, inbox: None),
            model=congest_model(4, enforce=False),
        )
        assert result.metrics.bandwidth_violations > 0

    def test_local_model_unbounded(self):
        assert local_model(100).bandwidth_bits is None
        assert congest_model(100).bandwidth_bits == congest_budget_bits(100)


class TestCongestOverheadReport:
    """The LOCAL-vs-CONGEST message-size overhead helper (paper Section 1.3)."""

    def test_reports_budget_and_measured_maximum(self):
        n = 16
        payload = list(range(200))  # far beyond the CONGEST budget

        def on_start(ctx):
            ctx.broadcast(payload)
            ctx.set_output(True)
            ctx.halt()

        result = run_program(
            path_graph(n), lambda v: FunctionProgram(on_start, lambda ctx, inbox: None)
        )
        report = congest_overhead_report(result, n)
        assert report["budget_bits"] == float(congest_budget_bits(n))
        assert report["max_message_bits"] == float(result.metrics.max_message_bits)
        assert report["overhead_factor"] == pytest.approx(
            result.metrics.max_message_bits / congest_budget_bits(n)
        )
        assert report["overhead_factor"] > 1.0

    def test_small_messages_stay_under_budget(self):
        result = run_program(path_graph(8), lambda v: FloodMin())
        report = congest_overhead_report(result, 8)
        assert 0.0 < report["overhead_factor"] < 1.0

    def test_logn_factor_scales_the_budget(self):
        result = run_program(path_graph(8), lambda v: FloodMin())
        wide = congest_overhead_report(result, 8, logn_factor=64)
        narrow = congest_overhead_report(result, 8, logn_factor=32)
        assert wide["budget_bits"] == 2 * narrow["budget_bits"]
        assert wide["overhead_factor"] == pytest.approx(
            narrow["overhead_factor"] / 2
        )

    def test_zero_budget_reports_infinite_overhead(self):
        result = run_program(path_graph(4), lambda v: FloodMin())
        report = congest_overhead_report(result, 4, logn_factor=0)
        assert report["budget_bits"] == 0.0
        assert report["overhead_factor"] == float("inf")


class TestEncoding:
    def test_scalar_sizes(self):
        assert estimate_bits(None) == 1
        assert estimate_bits(True) == 1
        assert estimate_bits(0) == 2
        assert estimate_bits(255) == 9
        assert estimate_bits(3.14) == 64
        assert estimate_bits("ab") == 16

    def test_container_sizes_grow(self):
        assert estimate_bits([1, 2, 3]) > estimate_bits([1])
        assert estimate_bits({"a": 1}) > estimate_bits({})

    def test_budget_grows_with_n(self):
        assert congest_budget_bits(1_000) > congest_budget_bits(10)
        assert congest_budget_bits(2) == 32
