"""Unit tests for structural graph properties and the client-server instance."""

import math

import pytest

from repro.graphs import (
    ClientServerInstance,
    all_edges_both,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    degree_histogram,
    density_ratio,
    diameter,
    edges_between,
    gnp_random_graph,
    is_dominating_set,
    is_vertex_cover,
    log_m_over_n,
    log_max_degree,
    path_graph,
    power_graph,
    random_split_instance,
    star_graph,
    two_neighborhood,
)
from repro.graphs.properties import average_degree


class TestScalarProperties:
    def test_average_degree_and_density(self):
        g = cycle_graph(10)
        assert average_degree(g) == 2.0
        assert density_ratio(g) == 1.0

    def test_log_m_over_n_floor(self):
        g = path_graph(10)  # m/n < 1 -> clamp to 1
        assert log_m_over_n(g) == 1.0

    def test_log_m_over_n_dense(self):
        g = complete_graph(16)  # m/n = 7.5
        assert math.isclose(log_m_over_n(g), math.log2(7.5))

    def test_log_max_degree(self):
        g = star_graph(16)
        assert math.isclose(log_max_degree(g), 4.0)

    def test_diameter(self):
        assert diameter(path_graph(6)) == 5
        assert diameter(complete_graph(5)) == 1

    def test_diameter_requires_connected(self):
        g = gnp_random_graph(6, 0.0, seed=1)
        with pytest.raises(ValueError):
            diameter(g)

    def test_degree_histogram(self):
        g = star_graph(4)
        assert degree_histogram(g) == {4: 1, 1: 4}


class TestNeighborhoods:
    def test_two_neighborhood(self):
        g = path_graph(6)
        assert two_neighborhood(g, 0) == {1, 2}
        assert two_neighborhood(g, 2) == {0, 1, 3, 4}

    def test_edges_between(self):
        g = complete_graph(5)
        assert len(edges_between(g, {0, 1, 2})) == 3

    def test_power_graph_of_path(self):
        g = path_graph(5)
        p2 = power_graph(g, 2)
        assert p2.has_edge(0, 2)
        assert not p2.has_edge(0, 3)
        assert p2.number_of_edges() == 4 + 3

    def test_power_graph_radius_one_identity(self):
        g = connected_gnp_graph(12, 0.3, seed=2)
        assert power_graph(g, 1).edge_set() == g.edge_set()

    def test_power_graph_invalid(self):
        with pytest.raises(ValueError):
            power_graph(path_graph(3), 0)


class TestCoverPredicates:
    def test_is_dominating_set(self):
        g = star_graph(5)
        assert is_dominating_set(g, {0})
        assert not is_dominating_set(g, {1})

    def test_is_vertex_cover(self):
        g = cycle_graph(4)
        assert is_vertex_cover(g, {0, 2})
        assert not is_vertex_cover(g, {0, 1})


class TestClientServerInstance:
    def test_all_edges_both(self):
        g = connected_gnp_graph(10, 0.3, seed=3)
        inst = all_edges_both(g)
        assert inst.clients == g.edge_set()
        assert inst.servers == g.edge_set()
        assert inst.coverable_clients() <= inst.clients

    def test_random_split_covers_every_edge(self):
        g = connected_gnp_graph(15, 0.3, seed=4)
        inst = random_split_instance(g, seed=5)
        assert inst.clients | inst.servers == g.edge_set()

    def test_rejects_unknown_edges(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            ClientServerInstance(graph=g, clients={(0, 3)}, servers=g.edge_set())

    def test_rejects_unassigned_edges(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            ClientServerInstance(graph=g, clients={(0, 1)}, servers={(1, 2)})

    def test_client_vertices_and_server_degree(self):
        g = path_graph(4)
        inst = ClientServerInstance(
            graph=g, clients={(0, 1)}, servers=g.edge_set()
        )
        assert inst.client_vertices() == {0, 1}
        assert inst.server_max_degree() == 2

    def test_coverable_clients(self):
        # Triangle where the client edge {0,1} can be covered through vertex 2.
        g = cycle_graph(3)
        inst = ClientServerInstance(
            graph=g, clients={(0, 1)}, servers={(0, 2), (1, 2)}
        )
        assert inst.coverable_clients() == {(0, 1)}
        # Path where the client edge has no covering server path.
        g2 = path_graph(3)
        inst2 = ClientServerInstance(graph=g2, clients={(0, 1)}, servers={(1, 2)})
        assert inst2.coverable_clients() == set()
