"""Differential and admission tests for the batch simulator engine.

The batch engine must be bit-for-bit identical to the indexed engine (and
hence to the reference oracle) on fixed seeds for broadcast-only programs,
across all four communication models, including cut accounting, per-model
counters and bandwidth-violation counting; targeted traffic must be
rejected with a clear error instead of silently falling back to the general
path.
"""

import pytest

from repro.core import run_clique_two_spanner, run_flood_max
from repro.core.flood_max import FloodMaxProgram
from repro.distributed import (
    BandwidthExceededError,
    BroadcastNodeProgram,
    ENGINES,
    FunctionProgram,
    MessageAdmissionError,
    NodeProgram,
    Simulator,
    broadcast_congest_model,
    congest_model,
    congested_clique_model,
    local_model,
    run_program,
)
from repro.graphs import Graph, gnp_random_graph, path_graph, star_graph

ALL_MODELS = [
    lambda n: local_model(n),
    lambda n: congest_model(n, enforce=False),
    lambda n: broadcast_congest_model(n, enforce=False),
    lambda n: congested_clique_model(n, enforce=False),
]


class EchoOnce(BroadcastNodeProgram):
    """Broadcast one payload at start, record the senders heard, halt."""

    def __init__(self, payload):
        self.payload = payload

    def on_start(self, ctx):
        ctx.broadcast(self.payload)

    def on_broadcast_round(self, ctx, heard):
        ctx.set_output(sorted(heard, key=repr))
        ctx.halt()


def _run_all_engines(graph, factory, model, seed=1, cut=None):
    return {
        engine: Simulator(
            graph, factory, model=model, seed=seed, cut=cut, engine=engine
        ).run()
        for engine in ("indexed", "batch", "reference")
    }


class TestBatchDifferential:
    """Bit-for-bit identity with the indexed engine, all four models."""

    @pytest.mark.parametrize("model_factory", ALL_MODELS)
    def test_flood_max_identical_across_engines(self, model_factory):
        g = gnp_random_graph(40, 0.15, seed=5)
        runs = _run_all_engines(
            g, lambda v: FloodMaxProgram(v, 5), model_factory(40), seed=9
        )
        indexed, batch, reference = (
            runs["indexed"],
            runs["batch"],
            runs["reference"],
        )
        assert batch.outputs == indexed.outputs == reference.outputs
        assert (
            batch.metrics.as_dict()
            == indexed.metrics.as_dict()
            == reference.metrics.as_dict()
        )
        assert batch.metrics.bits_per_round == indexed.metrics.bits_per_round
        assert batch.completed is indexed.completed is True

    @pytest.mark.parametrize("model_factory", ALL_MODELS)
    def test_echo_program_identical_across_engines(self, model_factory):
        g = gnp_random_graph(25, 0.3, seed=2)
        runs = _run_all_engines(g, lambda v: EchoOnce(("x", 7)), model_factory(25))
        assert runs["batch"].outputs == runs["indexed"].outputs
        assert runs["batch"].metrics.as_dict() == runs["indexed"].metrics.as_dict()

    def test_cut_accounting_identical(self):
        g = gnp_random_graph(30, 0.25, seed=4)
        cut = set(range(15))
        runs = _run_all_engines(
            g, lambda v: FloodMaxProgram(v, 4), congest_model(30, enforce=False),
            cut=cut,
        )
        batch, indexed = runs["batch"].metrics, runs["indexed"].metrics
        assert batch.cut_bits == indexed.cut_bits > 0
        assert batch.cut_messages == indexed.cut_messages
        assert batch.as_dict() == indexed.as_dict()

    def test_violation_counting_identical(self):
        # Oversized payload under enforce=False: violations counted per link.
        big = tuple(range(500))

        def on_start(ctx):
            ctx.broadcast(big)
            ctx.set_output(True)
            ctx.halt()

        g = gnp_random_graph(12, 0.4, seed=8)
        runs = _run_all_engines(
            g,
            lambda v: FunctionProgram(on_start, lambda ctx, inbox: None),
            congest_model(12, enforce=False),
        )
        assert runs["batch"].metrics.bandwidth_violations > 0
        assert (
            runs["batch"].metrics.as_dict() == runs["indexed"].metrics.as_dict()
        )

    def test_clique_spanner_runs_under_batch(self):
        # The Parter-Yogev clique 2-spanner is pure broadcast: the batch
        # engine must reproduce the indexed engine's spanner exactly.
        g = gnp_random_graph(48, 0.2, seed=3)
        batch = run_clique_two_spanner(g, seed=2, engine="batch")
        indexed = run_clique_two_spanner(g, seed=2, engine="indexed")
        assert batch.edges == indexed.edges
        assert batch.rounds == indexed.rounds
        assert batch.metrics.as_dict() == indexed.metrics.as_dict()

    def test_early_halters_stop_receiving_but_traffic_is_counted(self):
        # The centre halts after round 1; leaf broadcasts keep being counted
        # (metrics) but no longer delivered — identical across engines.
        class Impatient(NodeProgram):
            def __init__(self, v):
                self.v = v

            def on_start(self, ctx):
                ctx.broadcast(("hi", self.v))

            def on_round(self, ctx, inbox):
                if self.v == 0 or ctx.round >= 3:
                    ctx.set_output(sorted(inbox, key=repr))
                    ctx.halt()
                else:
                    ctx.broadcast(("again", self.v))

        g = star_graph(6)
        runs = _run_all_engines(g, lambda v: Impatient(v), local_model(7), seed=0)
        assert runs["batch"].outputs == runs["indexed"].outputs
        assert runs["batch"].metrics.as_dict() == runs["indexed"].metrics.as_dict()

    def test_degree_zero_broadcast_is_a_no_op(self):
        g = Graph()
        g.add_node("lonely")

        def on_start(ctx):
            ctx.broadcast("into the void")
            ctx.set_output("done")
            ctx.halt()

        for engine in ("indexed", "batch"):
            result = run_program(
                g,
                lambda v: FunctionProgram(on_start, lambda ctx, inbox: None),
                model=broadcast_congest_model(1),
                engine=engine,
            )
            assert result.metrics.messages_sent == 0
            assert result.metrics.as_dict().get("broadcast_payloads", 0) == 0


class TestBatchAdmission:
    """Admission is the model's job: only semantic rejections remain."""

    def test_targeted_send_accepted_and_matches_indexed(self):
        # CONGEST admits targeted sends, and since the targeted fast path
        # the batch engine does too — bit-for-bit the indexed oracle.
        def on_start(ctx):
            ctx.send(min(ctx.neighbors), ctx.node_id + 1)
            ctx.set_output(ctx.node_id)
            ctx.halt()

        runs = {
            engine: run_program(
                path_graph(4),
                lambda v: FunctionProgram(on_start, lambda ctx, inbox: None),
                model=congest_model(4),
                engine=engine,
            )
            for engine in ("indexed", "batch")
        }
        assert runs["batch"].outputs == runs["indexed"].outputs
        assert runs["batch"].metrics.as_dict() == runs["indexed"].metrics.as_dict()

    def test_targeted_send_accepted_under_overlay_model_too(self):
        def on_start(ctx):
            ctx.send(min(ctx.neighbors), ctx.node_id + 1)
            ctx.set_output(ctx.node_id)
            ctx.halt()

        runs = {
            engine: run_program(
                path_graph(4),
                lambda v: FunctionProgram(on_start, lambda ctx, inbox: None),
                model=congested_clique_model(4),
                engine=engine,
            )
            for engine in ("indexed", "batch")
        }
        assert runs["batch"].outputs == runs["indexed"].outputs
        assert runs["batch"].metrics.as_dict() == runs["indexed"].metrics.as_dict()

    def test_broadcast_only_model_rejects_targeted_send_naming_model(self):
        # The semantic rejection survives on every engine and names the
        # model, not an engine capability.
        def on_start(ctx):
            ctx.send(next(iter(ctx.neighbors)), 1)

        with pytest.raises(MessageAdmissionError, match="broadcast-only model"):
            run_program(
                path_graph(4),
                lambda v: FunctionProgram(on_start, lambda ctx, inbox: None),
                model=broadcast_congest_model(4),
                engine="batch",
            )

    def test_second_broadcast_per_round_rejected(self):
        def on_start(ctx):
            ctx.broadcast(1)
            ctx.broadcast(2)

        # Legal under plain CONGEST on the indexed engine, but the batch
        # engine interns exactly one payload per sender per round.
        with pytest.raises(MessageAdmissionError, match="one"):
            run_program(
                path_graph(4),
                lambda v: FunctionProgram(on_start, lambda ctx, inbox: None),
                model=congest_model(4),
                engine="batch",
            )

    def test_enforced_bandwidth_violation_raises(self):
        big = tuple(range(10_000))

        def on_start(ctx):
            ctx.broadcast(big)

        with pytest.raises(BandwidthExceededError):
            run_program(
                path_graph(4),
                lambda v: FunctionProgram(on_start, lambda ctx, inbox: None),
                model=congest_model(4, enforce=True),
                engine="batch",
            )

    def test_unknown_engine_rejected_and_batch_registered(self):
        assert "batch" in ENGINES
        with pytest.raises(ValueError, match="unknown engine"):
            Simulator(path_graph(3), lambda v: FloodMaxProgram(v, 1), engine="bogus")


class TestFloodMax:
    """The E18 workload itself."""

    @pytest.mark.parametrize("engine", ["indexed", "batch", "reference"])
    def test_converges_to_max_label(self, engine):
        g = gnp_random_graph(50, 0.2, seed=11)
        result = run_flood_max(g, rounds=6, seed=1, engine=engine)
        assert result.converged
        assert result.leader == 49
        assert result.rounds == 6

    def test_insufficient_rounds_do_not_converge(self):
        g = path_graph(30)  # diameter 29 >> 2 rounds
        result = run_flood_max(g, rounds=2, seed=1, engine="batch")
        assert not result.converged
        assert result.leader is None

    def test_zero_rounds_outputs_own_label(self):
        g = path_graph(3)
        result = run_flood_max(g, rounds=0, seed=1, engine="batch")
        assert result.node_outputs == {0: 0, 1: 1, 2: 2}
        assert result.metrics.messages_sent == 0
