"""Tests for the weighted, client-server and directed 2-spanner variants."""

import math

import pytest

from repro.core import (
    ClientServerVariant,
    TwoSpannerOptions,
    WeightedVariant,
    client_server_two_spanner,
    run_directed_two_spanner,
    run_two_spanner,
)
from repro.graphs import (
    all_edges_both,
    assign_random_weights,
    assign_weights_from_choices,
    bidirect,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    log_max_degree,
    orient_randomly,
    random_digraph,
    random_split_instance,
    random_tournament,
)
from repro.spanner import (
    is_client_server_2_spanner,
    is_k_spanner,
    is_k_spanner_directed,
    minimum_client_server_2_spanner_exact,
    minimum_k_spanner_exact,
    minimum_k_spanner_exact_directed,
    spanner_cost,
)


def weighted_graph(n, p, seed, low=1, high=8):
    g = connected_gnp_graph(n, p, seed=seed)
    assign_random_weights(g, low, high, seed=seed + 1, integer=True)
    return g


class TestWeightedVariant:
    @pytest.mark.parametrize("seed", range(3))
    def test_validity(self, seed):
        g = weighted_graph(16, 0.4, seed)
        result = run_two_spanner(g, variant=WeightedVariant(), seed=seed)
        assert is_k_spanner(g, result.edges, 2)

    @pytest.mark.parametrize("seed", range(3))
    def test_cost_within_log_delta_envelope(self, seed):
        g = weighted_graph(13, 0.45, seed)
        result = run_two_spanner(g, variant=WeightedVariant(), seed=seed)
        opt = minimum_k_spanner_exact(g, 2, use_weights=True)
        opt_cost = spanner_cost(g, opt)
        # Theorem 4.12: O(log Delta) with a large hidden constant.
        assert result.cost(g) <= 16 * log_max_degree(g) * max(1.0, opt_cost)

    def test_zero_weight_edges_taken_upfront(self):
        g = connected_gnp_graph(14, 0.4, seed=5)
        assign_weights_from_choices(g, [0.0, 3.0], seed=6)
        result = run_two_spanner(g, variant=WeightedVariant(), seed=7)
        zero_edges = {e for e in g.edges() if g.weight(*e) == 0}
        assert zero_edges <= result.edges
        assert is_k_spanner(g, result.edges, 2)

    def test_uniform_weights_behave_like_unweighted(self):
        g = connected_gnp_graph(14, 0.4, seed=8)
        unweighted = run_two_spanner(g, seed=9)
        weighted = run_two_spanner(g, variant=WeightedVariant(), seed=9)
        assert is_k_spanner(g, weighted.edges, 2)
        # Same problem, same guarantee family: sizes stay comparable.
        assert len(weighted.edges) <= 2 * len(unweighted.edges) + 4

    def test_expensive_edge_avoided_in_triangle(self):
        g = cycle_graph(3)
        g.set_weight(0, 1, 100.0)
        result = run_two_spanner(g, variant=WeightedVariant(), seed=1)
        assert is_k_spanner(g, result.edges, 2)
        assert result.cost(g) <= 2.0

    def test_wide_weight_spread_terminates(self):
        g = connected_gnp_graph(12, 0.4, seed=10)
        assign_weights_from_choices(g, [0.5, 1.0, 64.0], seed=11)
        result = run_two_spanner(g, variant=WeightedVariant(), seed=12)
        assert is_k_spanner(g, result.edges, 2)
        n, delta = g.number_of_nodes(), g.max_degree()
        envelope = 12 * max(1, math.log2(n)) * max(1, math.log2(delta * 128)) + 10
        assert result.iterations <= envelope


class TestClientServerVariant:
    @pytest.mark.parametrize("seed", range(3))
    def test_validity(self, seed):
        inst = random_split_instance(connected_gnp_graph(16, 0.4, seed=seed), seed=seed + 50)
        result = client_server_two_spanner(inst, seed=seed)
        assert is_client_server_2_spanner(inst, result.edges)

    def test_only_server_edges_used(self):
        inst = random_split_instance(connected_gnp_graph(16, 0.4, seed=3), seed=4)
        result = client_server_two_spanner(inst, seed=5)
        assert result.edges <= inst.servers

    def test_all_edges_both_reduces_to_plain_spanner(self):
        g = connected_gnp_graph(14, 0.4, seed=6)
        inst = all_edges_both(g)
        result = client_server_two_spanner(inst, seed=7)
        assert is_k_spanner(g, result.edges, 2)

    def test_ratio_against_exact(self):
        g = connected_gnp_graph(11, 0.5, seed=8)
        inst = random_split_instance(g, seed=9)
        result = client_server_two_spanner(inst, seed=10)
        opt = minimum_client_server_2_spanner_exact(inst)
        if opt:
            clients = max(1, len(inst.clients))
            vc = max(1, len(inst.client_vertices()))
            bound = max(1.0, math.log2(max(2.0, clients / vc)))
            delta_s = max(2, inst.server_max_degree())
            envelope = 16 * min(bound, math.log2(delta_s)) + 4
            assert len(result.edges) <= envelope * max(1, len(opt))

    def test_variant_object_direct_use(self):
        g = connected_gnp_graph(12, 0.4, seed=11)
        inst = all_edges_both(g)
        result = run_two_spanner(g, variant=ClientServerVariant(inst), seed=12)
        assert is_client_server_2_spanner(inst, result.edges)


class TestDirectedVariant:
    @pytest.mark.parametrize("seed", range(3))
    def test_validity_random_digraph(self, seed):
        d = random_digraph(12, 0.3, seed=seed)
        result = run_directed_two_spanner(d, seed=seed)
        assert is_k_spanner_directed(d, result.arcs, 2)
        assert result.arcs <= d.edge_set()

    def test_validity_tournament(self):
        d = random_tournament(9, seed=4)
        result = run_directed_two_spanner(d, seed=5)
        assert is_k_spanner_directed(d, result.arcs, 2)

    def test_validity_oriented_gnp(self):
        d = orient_randomly(connected_gnp_graph(14, 0.4, seed=6), seed=7)
        result = run_directed_two_spanner(d, seed=8)
        assert is_k_spanner_directed(d, result.arcs, 2)

    def test_bidirected_clique_close_to_optimum(self):
        d = bidirect(complete_graph(7))
        result = run_directed_two_spanner(d, seed=9)
        assert is_k_spanner_directed(d, result.arcs, 2)
        opt = minimum_k_spanner_exact_directed(d, 2)
        assert len(result.arcs) <= 16 * max(1, len(opt))

    def test_ratio_against_exact_small(self):
        d = random_digraph(10, 0.35, seed=10)
        result = run_directed_two_spanner(d, seed=11)
        opt = minimum_k_spanner_exact_directed(d, 2)
        m, n = d.number_of_edges(), d.number_of_nodes()
        bound = max(1.0, math.log2(max(2.0, m / n)))
        assert len(result.arcs) <= 24 * bound * max(1, len(opt))

    def test_determinism(self):
        d = random_digraph(12, 0.3, seed=12)
        a = run_directed_two_spanner(d, seed=3)
        b = run_directed_two_spanner(d, seed=3)
        assert a.arcs == b.arcs

    def test_peeling_mode(self):
        d = random_digraph(12, 0.3, seed=13)
        result = run_directed_two_spanner(
            d, seed=1, options=TwoSpannerOptions(densest_method="peeling")
        )
        assert is_k_spanner_directed(d, result.arcs, 2)

    def test_empty_and_tiny_digraphs(self):
        from repro.graphs import DiGraph

        d = DiGraph([(0, 1)])
        result = run_directed_two_spanner(d, seed=1)
        assert result.arcs == {(0, 1)}
