"""Tests for the distributed minimum 2-spanner algorithm (Theorem 1.3)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TwoSpannerOptions, UnweightedVariant, run_two_spanner
from repro.core.two_spanner import ROUNDS_PER_ITERATION
from repro.graphs import (
    barabasi_albert_graph,
    cluster_graph,
    complete_bipartite_graph,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    log_m_over_n,
    overlapping_stars_graph,
    path_graph,
    star_graph,
)
from repro.spanner import is_k_spanner, lp_lower_bound_2spanner, minimum_k_spanner_exact

SMALL_GRAPHS = [
    ("path", path_graph(8)),
    ("cycle", cycle_graph(9)),
    ("star", star_graph(7)),
    ("clique", complete_graph(8)),
    ("bipartite", complete_bipartite_graph(3, 5)),
    ("gnp-sparse", connected_gnp_graph(18, 0.2, seed=1)),
    ("gnp-dense", connected_gnp_graph(14, 0.5, seed=2)),
    ("cluster", cluster_graph(3, 5, seed=3)),
    ("overlap-stars", overlapping_stars_graph(3, 5, 2, seed=4)),
    ("ba", barabasi_albert_graph(20, 2, seed=5)),
]


@pytest.mark.parametrize("name,graph", SMALL_GRAPHS, ids=[n for n, _ in SMALL_GRAPHS])
class TestValidity:
    def test_output_is_2_spanner(self, name, graph):
        result = run_two_spanner(graph, seed=11)
        assert is_k_spanner(graph, result.edges, 2)

    def test_output_edges_exist_in_graph(self, name, graph):
        result = run_two_spanner(graph, seed=11)
        assert result.edges <= graph.edge_set()

    def test_no_selection_fallbacks(self, name, graph):
        # Claim 4.4 says the fallback branch of the star-selection rule never fires.
        result = run_two_spanner(graph, seed=11)
        assert result.fallback_count == 0


class TestApproximation:
    @pytest.mark.parametrize("seed", range(4))
    def test_ratio_within_paper_bound_small(self, seed):
        graph = connected_gnp_graph(14, 0.45, seed=seed)
        result = run_two_spanner(graph, seed=seed + 100)
        opt = len(minimum_k_spanner_exact(graph, 2))
        # Theorem 1.3: O(log m/n).  The constant in the analysis is large
        # (8 * accounting constants); 16 * max(1, log2(m/n)) is a generous but
        # meaningful empirical envelope that would catch gross regressions.
        assert len(result.edges) <= 16 * log_m_over_n(graph) * opt

    def test_ratio_vs_lp_on_medium_graph(self):
        graph = connected_gnp_graph(40, 0.25, seed=7)
        result = run_two_spanner(graph, seed=8)
        lp = lp_lower_bound_2spanner(graph)
        assert len(result.edges) <= 16 * log_m_over_n(graph) * lp

    def test_clique_close_to_optimum(self):
        graph = complete_graph(12)
        result = run_two_spanner(graph, seed=3)
        # Optimum is a single full star (11 edges); the algorithm should be
        # within the O(log m/n) envelope of it.
        assert is_k_spanner(graph, result.edges, 2)
        assert len(result.edges) <= 16 * log_m_over_n(graph) * 11

    def test_bipartite_keeps_everything(self):
        graph = complete_bipartite_graph(4, 5)
        result = run_two_spanner(graph, seed=5)
        assert result.edges == graph.edge_set()

    def test_tree_keeps_everything(self):
        graph = path_graph(12)
        result = run_two_spanner(graph, seed=6)
        assert result.edges == graph.edge_set()


class TestRounds:
    def test_round_iteration_relationship(self):
        graph = connected_gnp_graph(20, 0.3, seed=9)
        result = run_two_spanner(graph, seed=10)
        assert result.rounds >= result.iterations * ROUNDS_PER_ITERATION
        assert result.iterations >= 1

    def test_iterations_within_polylog_envelope(self):
        for seed in range(3):
            graph = connected_gnp_graph(30, 0.3, seed=seed)
            result = run_two_spanner(graph, seed=seed)
            n = graph.number_of_nodes()
            delta = graph.max_degree()
            envelope = 10 * max(1, math.log2(n)) * max(1, math.log2(delta)) + 10
            assert result.iterations <= envelope

    def test_larger_graph_does_not_blow_up_iterations(self):
        small = run_two_spanner(connected_gnp_graph(20, 0.3, seed=1), seed=1)
        large = run_two_spanner(connected_gnp_graph(60, 0.1, seed=1), seed=1)
        # O(log n log Delta): tripling n must not triple iteration counts.
        assert large.iterations <= 3 * small.iterations + 10


class TestDeterminismAndOptions:
    def test_same_seed_same_output(self):
        graph = connected_gnp_graph(18, 0.35, seed=12)
        a = run_two_spanner(graph, seed=5)
        b = run_two_spanner(graph, seed=5)
        assert a.edges == b.edges
        assert a.rounds == b.rounds

    def test_different_seeds_can_differ(self):
        graph = connected_gnp_graph(18, 0.35, seed=12)
        sizes = {len(run_two_spanner(graph, seed=s).edges) for s in range(6)}
        assert len(sizes) >= 1  # all runs valid; sizes may or may not coincide

    def test_peeling_mode_still_valid(self):
        graph = connected_gnp_graph(20, 0.35, seed=13)
        result = run_two_spanner(
            graph, seed=1, options=TwoSpannerOptions(densest_method="peeling")
        )
        assert is_k_spanner(graph, result.edges, 2)

    def test_ablation_without_paper_rule_still_valid(self):
        graph = connected_gnp_graph(20, 0.35, seed=14)
        result = run_two_spanner(
            graph, seed=1, options=TwoSpannerOptions(follow_paper_rule=False)
        )
        assert is_k_spanner(graph, result.edges, 2)

    def test_vote_fraction_one_still_terminates(self):
        from fractions import Fraction

        graph = connected_gnp_graph(16, 0.35, seed=15)
        result = run_two_spanner(
            graph, seed=1, options=TwoSpannerOptions(vote_fraction=Fraction(1, 2))
        )
        assert is_k_spanner(graph, result.edges, 2)

    def test_explicit_variant_object(self):
        graph = connected_gnp_graph(12, 0.4, seed=16)
        result = run_two_spanner(graph, variant=UnweightedVariant(), seed=2)
        assert is_k_spanner(graph, result.edges, 2)


class TestEdgeCases:
    def test_single_edge_graph(self):
        graph = path_graph(2)
        result = run_two_spanner(graph, seed=1)
        assert result.edges == {(0, 1)}

    def test_graph_with_isolated_vertex(self):
        graph = path_graph(3)
        graph.add_node(99)
        result = run_two_spanner(graph, seed=1)
        assert is_k_spanner(graph, result.edges, 2)

    def test_disconnected_graph(self):
        graph = path_graph(4)
        graph.add_edge(10, 11)
        graph.add_edge(11, 12)
        result = run_two_spanner(graph, seed=1)
        assert is_k_spanner(graph, result.edges, 2)

    def test_triangle(self):
        graph = cycle_graph(3)
        result = run_two_spanner(graph, seed=1)
        assert is_k_spanner(graph, result.edges, 2)
        assert 2 <= len(result.edges) <= 3

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**20))
    def test_random_graphs_always_valid(self, seed):
        graph = connected_gnp_graph(12, 0.35, seed=seed)
        result = run_two_spanner(graph, seed=seed)
        assert is_k_spanner(graph, result.edges, 2)
