"""Differential, size-table and fallback tests for the columnar engine.

The columnar engine ships under the same gate as the batch engine, tightened
by PR scope: bit-for-bit identity with the indexed engine (outputs,
``Metrics.as_dict()``, ``bits_per_round``) for broadcast-only programs across
all four communication models *and* under the drop/crash/budget adversaries,
including an n=20000 differential on the mega-scale workload itself; the
payload size table must agree with ``estimate_bits`` on every payload shape;
and the stdlib-``array`` kernels must produce identical results with NumPy
monkeypatched away.
"""

import pytest

from repro.core import run_clique_two_spanner, run_flood_max
from repro.core.flood_max import FloodMaxProgram
from repro.distributed import (
    BandwidthExceededError,
    ENGINES,
    FunctionProgram,
    MessageAdmissionError,
    NodeProgram,
    Simulator,
    broadcast_congest_model,
    congest_model,
    congested_clique_model,
    local_model,
    run_program,
)
from repro.distributed import columnar as columnar_module
from repro.distributed.adversary import build_adversary
from repro.distributed.columnar import ColumnarInbox, have_numpy
from repro.distributed.encoding import PayloadSizeTable, estimate_bits
from repro.graphs import Graph, gnp_random_graph, path_graph, sparse_gnp_graph, star_graph

ALL_MODELS = [
    lambda n: local_model(n),
    lambda n: congest_model(n, enforce=False),
    lambda n: broadcast_congest_model(n, enforce=False),
    lambda n: congested_clique_model(n, enforce=False),
]

#: Canonical adversary specs: one per fault class of the PR-5 layer.
ADVERSARIES = ["drop:0.2", "crash:3@1,11@2,24@3", "budget:16"]


class MappingConsumer(NodeProgram):
    """Exercises the full Mapping facade of the inbox every round.

    Touches ``items()``, ``values()``, ``__getitem__``, ``__contains__``,
    ``__len__``, key iteration order and the RNG, with tuple payloads — the
    widest read surface a broadcast program can put on an inbox view.
    """

    def __init__(self, v):
        self.v = v
        self.seen = []

    def on_start(self, ctx):
        ctx.broadcast((self.v, "tag"))

    def on_round(self, ctx, inbox):
        keys = list(inbox)
        assert keys == sorted(keys), "inbox keys must come in ascending order"
        assert len(inbox) == len(keys)
        for src in keys:
            assert src in inbox
            payloads = inbox[src]
            assert payloads == [(src, "tag")] or payloads[0][0] == src
        assert [list(v) for v in inbox.values()] == [inbox[k] for k in keys]
        assert [(k, inbox[k]) for k in keys] == list(inbox.items())
        self.seen.append((tuple(keys), ctx.rng.random()))
        if ctx.round >= 3:
            ctx.set_output(self.seen)
            ctx.halt()
        else:
            ctx.broadcast((self.v, "tag"))


class BigLabelFloodMax(NodeProgram):
    """Flood-max over labels far above int64: the reduceat overflow fallback."""

    OFFSET = 1 << 70

    def __init__(self, v, rounds):
        self.best = v + self.OFFSET
        self.rounds = rounds

    def on_start(self, ctx):
        ctx.broadcast(self.best)

    def on_round(self, ctx, inbox):
        best = self.best
        if inbox.__class__ is dict:
            for payloads in inbox.values():
                for value in payloads:
                    if value > best:
                        best = value
        else:
            best = inbox.max_heard(best)
        self.best = best
        if ctx.round >= self.rounds:
            ctx.set_output(best)
            ctx.halt()
        else:
            ctx.broadcast(best)


def _run(graph, factory, model, engine, seed=1, cut=None, adversary=None):
    adv = build_adversary(adversary) if adversary else None
    return Simulator(
        graph, factory, model=model, seed=seed, cut=cut, engine=engine, adversary=adv
    ).run()


def _assert_identical(a, b):
    assert a.outputs == b.outputs
    assert a.metrics.as_dict() == b.metrics.as_dict()
    assert list(a.metrics.bits_per_round) == list(b.metrics.bits_per_round)
    assert a.completed == b.completed
    assert a.rounds == b.rounds


class TestColumnarDifferential:
    """Bit-for-bit identity with the indexed oracle, all models, all faults."""

    @pytest.mark.parametrize("model_factory", ALL_MODELS)
    def test_flood_max_identical_across_engines(self, model_factory):
        g = gnp_random_graph(40, 0.15, seed=5)
        runs = {
            engine: _run(
                g, lambda v: FloodMaxProgram(v, 5), model_factory(40), engine, seed=9
            )
            for engine in ("indexed", "columnar", "batch", "reference")
        }
        _assert_identical(runs["columnar"], runs["indexed"])
        _assert_identical(runs["columnar"], runs["batch"])
        _assert_identical(runs["columnar"], runs["reference"])

    @pytest.mark.parametrize("model_factory", ALL_MODELS)
    def test_mapping_consumer_identical_across_engines(self, model_factory):
        g = gnp_random_graph(25, 0.3, seed=2)
        runs = {
            engine: _run(g, lambda v: MappingConsumer(v), model_factory(25), engine)
            for engine in ("indexed", "columnar")
        }
        _assert_identical(runs["columnar"], runs["indexed"])

    @pytest.mark.parametrize("model_factory", ALL_MODELS)
    @pytest.mark.parametrize("adversary", ADVERSARIES)
    def test_adversaries_identical_across_engines(self, model_factory, adversary):
        # Fresh adversary per engine (they are stateful); same spec, same
        # seed, so decisions — and hence inboxes and fault counters — must
        # coincide exactly.
        g = gnp_random_graph(30, 0.2, seed=6)
        runs = {
            engine: _run(
                g,
                lambda v: FloodMaxProgram(v, 6),
                model_factory(30),
                engine,
                seed=4,
                adversary=adversary,
            )
            for engine in ("indexed", "columnar")
        }
        _assert_identical(runs["columnar"], runs["indexed"])

    def test_cut_accounting_identical(self):
        g = gnp_random_graph(30, 0.25, seed=4)
        cut = set(range(15))
        runs = {
            engine: _run(
                g,
                lambda v: FloodMaxProgram(v, 4),
                congest_model(30, enforce=False),
                engine,
                cut=cut,
            )
            for engine in ("indexed", "columnar")
        }
        assert runs["columnar"].metrics.cut_bits == runs["indexed"].metrics.cut_bits > 0
        _assert_identical(runs["columnar"], runs["indexed"])

    def test_violation_counting_identical(self):
        big = tuple(range(500))

        def on_start(ctx):
            ctx.broadcast(big)
            ctx.set_output(True)
            ctx.halt()

        g = gnp_random_graph(12, 0.4, seed=8)
        runs = {
            engine: _run(
                g,
                lambda v: FunctionProgram(on_start, lambda ctx, inbox: None),
                congest_model(12, enforce=False),
                engine,
            )
            for engine in ("indexed", "columnar")
        }
        assert runs["columnar"].metrics.bandwidth_violations > 0
        _assert_identical(runs["columnar"], runs["indexed"])

    def test_mixed_payload_classes_identical(self):
        # Even vertices broadcast ints, odd ones tuples: the round is not
        # ints-only, so the engine must fall off the int64 fold kernel and
        # still deliver identical inboxes.
        class Mixed(NodeProgram):
            def __init__(self, v):
                self.v = v

            def on_start(self, ctx):
                ctx.broadcast(self.v if self.v % 2 == 0 else (self.v, self.v))

            def on_round(self, ctx, inbox):
                ctx.set_output(sorted((k, tuple(map(repr, p))) for k, p in inbox.items()))
                ctx.halt()

        g = gnp_random_graph(24, 0.3, seed=3)
        runs = {
            engine: _run(g, lambda v: Mixed(v), local_model(24), engine)
            for engine in ("indexed", "columnar")
        }
        _assert_identical(runs["columnar"], runs["indexed"])

    def test_big_label_overflow_falls_back_identically(self):
        # Labels above 2^63 break the int64 lowering of the reduceat kernel;
        # the engine must memoise the failure and fold in pure Python with
        # identical results.
        g = gnp_random_graph(20, 0.3, seed=7)
        runs = {
            engine: _run(
                g, lambda v: BigLabelFloodMax(v, 4), broadcast_congest_model(20), engine
            )
            for engine in ("indexed", "columnar")
        }
        _assert_identical(runs["columnar"], runs["indexed"])
        leader = 19 + BigLabelFloodMax.OFFSET
        assert set(runs["columnar"].outputs.values()) == {leader}

    def test_clique_spanner_runs_under_columnar(self):
        g = gnp_random_graph(48, 0.2, seed=3)
        columnar = run_clique_two_spanner(g, seed=2, engine="columnar")
        indexed = run_clique_two_spanner(g, seed=2, engine="indexed")
        assert columnar.edges == indexed.edges
        assert columnar.rounds == indexed.rounds
        assert columnar.metrics.as_dict() == indexed.metrics.as_dict()

    def test_early_halters_stop_receiving_but_traffic_is_counted(self):
        class Impatient(NodeProgram):
            def __init__(self, v):
                self.v = v

            def on_start(self, ctx):
                ctx.broadcast(("hi", self.v))

            def on_round(self, ctx, inbox):
                if self.v == 0 or ctx.round >= 3:
                    ctx.set_output(sorted(inbox, key=repr))
                    ctx.halt()
                else:
                    ctx.broadcast(("again", self.v))

        g = star_graph(6)
        runs = {
            engine: _run(g, lambda v: Impatient(v), local_model(7), engine, seed=0)
            for engine in ("indexed", "columnar")
        }
        _assert_identical(runs["columnar"], runs["indexed"])

    def test_degree_zero_broadcast_is_a_no_op(self):
        g = Graph()
        g.add_node("lonely")

        def on_start(ctx):
            ctx.broadcast("into the void")
            ctx.set_output("done")
            ctx.halt()

        result = run_program(
            g,
            lambda v: FunctionProgram(on_start, lambda ctx, inbox: None),
            model=broadcast_congest_model(1),
            engine="columnar",
        )
        assert result.metrics.messages_sent == 0
        assert result.metrics.as_dict().get("broadcast_payloads", 0) == 0


@pytest.fixture(scope="module")
def scale_graph():
    """The n=20000 differential instance (sparse, so the oracle stays fast)."""
    return sparse_gnp_graph(20000, 1.5e-4, seed=7, connect=True)


class TestScaleDifferential:
    """The acceptance gate: columnar == indexed at n=20000, faults included.

    The congested-clique overlay is excluded *by physics*, not by engine: at
    n=20000 it materialises ~4*10^8 overlay arcs, infeasible for every
    engine alike.  The model matrix at n=20000 therefore covers the three
    graph-topology models; all four models are pinned at moderate n above.
    """

    MODELS = [
        lambda n: local_model(n),
        lambda n: congest_model(n, enforce=False),
        lambda n: broadcast_congest_model(n),
    ]

    @pytest.mark.parametrize("model_factory", MODELS)
    def test_flood_max_identical_at_scale(self, scale_graph, model_factory):
        runs = {
            engine: _run(
                scale_graph,
                lambda v: FloodMaxProgram(v, 4),
                model_factory(20000),
                engine,
                seed=3,
            )
            for engine in ("indexed", "columnar")
        }
        _assert_identical(runs["columnar"], runs["indexed"])

    @pytest.mark.parametrize(
        "adversary", ["drop:0.05", "crash:40@1,17000@2,9999@3", "budget:24"]
    )
    def test_adversaries_identical_at_scale(self, scale_graph, adversary):
        runs = {
            engine: _run(
                scale_graph,
                lambda v: FloodMaxProgram(v, 4),
                broadcast_congest_model(20000),
                engine,
                seed=3,
                adversary=adversary,
            )
            for engine in ("indexed", "columnar")
        }
        _assert_identical(runs["columnar"], runs["indexed"])


class Slotted:
    """A slotted payload (no ``__dict__``): two int fields."""

    __slots__ = ("a", "b")

    def __init__(self, a, b):
        self.a = a
        self.b = b


class DictPayload:
    """A plain ``__dict__`` payload."""

    def __init__(self, x, label):
        self.x = x
        self.label = label


class TestPayloadSizeTable:
    """The size table must agree with ``estimate_bits`` on every shape."""

    PRIMITIVES = [
        None, True, False, 0, 1, -5, 255, 2**40, -(2**70), 1.5, "abc", "", b"xy",
    ]

    @pytest.mark.parametrize("payload", PRIMITIVES, ids=repr)
    def test_primitives_match_estimate_bits(self, payload):
        table = PayloadSizeTable()
        expected = estimate_bits(payload)
        assert table.measure(payload) == expected
        assert table.measure(payload) == expected  # cached hit, same answer

    def test_bool_int_float_aliasing_kept_distinct(self):
        # True == 1 == 1.0 but their encodings differ; the value-keyed table
        # must key by exact type or one would poison the others.
        table = PayloadSizeTable()
        assert table.measure(True) == estimate_bits(True) == 1
        assert table.measure(1) == estimate_bits(1) == 2
        assert table.measure(1.0) == estimate_bits(1.0) == 64

    def test_slots_and_dict_payloads_match_estimate_bits(self):
        table = PayloadSizeTable()
        slotted = Slotted(7, 300)
        plain = DictPayload(9, "mds")
        assert table.measure(slotted) == estimate_bits(slotted)
        assert table.measure(plain) == estimate_bits(plain)
        # Slots are real fields: bigger than the opaque 64-bit fallback guess
        # would suggest for the larger field values.
        assert estimate_bits(slotted) == estimate_bits({"a": 7, "b": 300})

    def test_containers_match_estimate_bits(self):
        table = PayloadSizeTable()
        for payload in [(1, 2), [3, "x"], frozenset({4}), {"k": 5}]:
            assert table.measure(payload) == estimate_bits(payload)

    def test_cap_bounds_interning_without_changing_answers(self):
        table = PayloadSizeTable(cap=2)
        values = [10, 200, 3000, 40000, 2**33]
        assert [table.measure(v) for v in values] == [estimate_bits(v) for v in values]
        assert len(table.int_sizes) <= 2


class TestNumpyAbsentFallback:
    """The stdlib-``array`` kernels are exercised and bit-for-bit identical."""

    def test_flood_max_identical_without_numpy(self, monkeypatch):
        monkeypatch.setattr(columnar_module, "_np", None)
        assert not have_numpy()
        g = gnp_random_graph(35, 0.2, seed=12)
        fallback = _run(
            g, lambda v: FloodMaxProgram(v, 5), broadcast_congest_model(35),
            "columnar", seed=2,
        )
        indexed = _run(
            g, lambda v: FloodMaxProgram(v, 5), broadcast_congest_model(35),
            "indexed", seed=2,
        )
        _assert_identical(fallback, indexed)

    def test_mapping_consumer_and_adversary_without_numpy(self, monkeypatch):
        monkeypatch.setattr(columnar_module, "_np", None)
        g = gnp_random_graph(25, 0.3, seed=2)
        for adversary in [None, "drop:0.2"]:
            fallback = _run(
                g, lambda v: MappingConsumer(v), local_model(25), "columnar",
                adversary=adversary,
            )
            indexed = _run(
                g, lambda v: MappingConsumer(v), local_model(25), "indexed",
                adversary=adversary,
            )
            _assert_identical(fallback, indexed)

    def test_cut_and_violations_without_numpy(self, monkeypatch):
        monkeypatch.setattr(columnar_module, "_np", None)
        g = gnp_random_graph(30, 0.25, seed=4)
        runs = {
            engine: _run(
                g, lambda v: FloodMaxProgram(v, 4), congest_model(30, enforce=False),
                engine, cut=set(range(15)),
            )
            for engine in ("indexed", "columnar")
        }
        _assert_identical(runs["columnar"], runs["indexed"])


class TestColumnarAdmission:
    """Admission is the model's job: only semantic rejections remain."""

    def test_registered_engine(self):
        assert ENGINES == ("indexed", "batch", "columnar", "reference")

    def test_targeted_send_accepted_and_matches_indexed(self):
        # Since the targeted fast path the columnar engine admits targeted
        # sends on every targeted-capable model, matching the oracle.
        def on_start(ctx):
            ctx.send(min(ctx.neighbors), ctx.node_id + 1)
            ctx.set_output(ctx.node_id)
            ctx.halt()

        runs = {
            engine: run_program(
                path_graph(4),
                lambda v: FunctionProgram(on_start, lambda ctx, inbox: None),
                model=congest_model(4),
                engine=engine,
            )
            for engine in ("indexed", "columnar")
        }
        assert runs["columnar"].outputs == runs["indexed"].outputs
        assert runs["columnar"].metrics.as_dict() == runs["indexed"].metrics.as_dict()

    def test_broadcast_only_model_rejects_targeted_send_naming_model(self):
        def on_start(ctx):
            ctx.send(next(iter(ctx.neighbors)), 1)

        with pytest.raises(MessageAdmissionError, match="broadcast-only model"):
            run_program(
                path_graph(4),
                lambda v: FunctionProgram(on_start, lambda ctx, inbox: None),
                model=broadcast_congest_model(4),
                engine="columnar",
            )

    def test_second_broadcast_per_round_rejected(self):
        def on_start(ctx):
            ctx.broadcast(1)
            ctx.broadcast(2)

        with pytest.raises(MessageAdmissionError, match="one"):
            run_program(
                path_graph(4),
                lambda v: FunctionProgram(on_start, lambda ctx, inbox: None),
                model=congest_model(4),
                engine="columnar",
            )

    def test_enforced_bandwidth_violation_raises_like_batch(self):
        big = tuple(range(10_000))

        def on_start(ctx):
            ctx.broadcast(big)

        def attempt(engine):
            with pytest.raises(BandwidthExceededError) as info:
                run_program(
                    path_graph(4),
                    lambda v: FunctionProgram(on_start, lambda ctx, inbox: None),
                    model=congest_model(4, enforce=True),
                    engine=engine,
                )
            return str(info.value)

        assert attempt("columnar") == attempt("batch")


class TestStreamingMetrics:
    """Opt-in bounded history: scalars exact, default behaviour untouched."""

    def test_streaming_run_matches_scalar_counters(self):
        g = gnp_random_graph(40, 0.15, seed=5)
        plain = run_flood_max(g, rounds=5, seed=9, engine="columnar")
        streaming = run_flood_max(
            g, rounds=5, seed=9, engine="columnar", streaming_metrics=True
        )
        assert streaming.node_outputs == plain.node_outputs
        assert streaming.metrics.as_dict() == plain.metrics.as_dict()
        assert streaming.metrics.peak_round_bits() == plain.metrics.peak_round_bits()
        assert list(streaming.metrics.bits_per_round) == list(
            plain.metrics.bits_per_round
        )

    def test_default_history_is_a_plain_list(self):
        g = path_graph(5)
        result = run_flood_max(g, rounds=3, seed=1, engine="columnar")
        assert isinstance(result.metrics.bits_per_round, list)


class TestColumnarInboxUnit:
    """Direct checks of the view the engine hands to programs."""

    def test_max_heard_matches_generic_fold(self):
        # One program folds via max_heard, the control re-derives the same
        # maximum through the Mapping facade in the same round: both paths
        # observe the identical delivered set.
        class Probe(NodeProgram):
            def __init__(self, v):
                self.v = v

            def on_start(self, ctx):
                ctx.broadcast(self.v * 3)

            def on_round(self, ctx, inbox):
                assert isinstance(inbox, ColumnarInbox)
                generic = max(
                    (value for plist in inbox.values() for value in plist),
                    default=-1,
                )
                assert inbox.max_heard(-1) == generic
                assert inbox.max_heard(10**9) == 10**9
                ctx.set_output(generic)
                ctx.halt()

        g = gnp_random_graph(20, 0.3, seed=1)
        result = run_program(
            g, lambda v: Probe(v), model=broadcast_congest_model(20), engine="columnar"
        )
        assert result.completed

    def test_getitem_raises_for_silent_neighbours(self):
        class Half(NodeProgram):
            def __init__(self, v):
                self.v = v

            def on_start(self, ctx):
                if self.v % 2 == 0:
                    ctx.broadcast(self.v)

            def on_round(self, ctx, inbox):
                for src in ctx.neighbors:
                    if src % 2 == 0:
                        assert inbox[src] == [src]
                    else:
                        with pytest.raises(KeyError):
                            inbox[src]
                        assert src not in inbox
                ctx.set_output(len(inbox))
                ctx.halt()

        result = run_program(
            path_graph(6),
            lambda v: Half(v),
            model=broadcast_congest_model(6),
            engine="columnar",
        )
        assert result.completed
