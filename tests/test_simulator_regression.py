"""Golden-output regression tests for the indexed execution core.

``tests/data/golden_runs.json`` was captured by running the *seed* (pre-CSR)
simulator on fixed-seed G(n, p) instances.  The rebuilt engine must reproduce
every output edge set, round count, iteration count and metric counter
bit-for-bit; these tests pin that contract so future engine work cannot
silently change results.  A differential test additionally checks the
``indexed`` engine against the retained ``reference`` engine on fresh
workloads.

One deliberate re-capture: when ``estimate_bits`` learned to encode
``__slots__``-only payloads (it used to flat-bill 64 bits, under-billing the
``Fraction`` densities the spanner algorithm broadcasts), ``bits_sent`` /
``max_message_bits`` in the spanner goldens were regenerated under the
corrected accounting.  Every physics field — edges, rounds, iterations,
fallbacks, dominators — and the whole MDS record were verified unchanged
before the rewrite, and both engines still agree bit-for-bit.
"""

import json
import pathlib

import pytest

from repro.core.mds import MDSOptions, MDSProgram, run_mds
from repro.core.two_spanner import run_two_spanner
from repro.core.variants import WeightedVariant
from repro.distributed import NoAdversary, NodeProgram, Simulator, congest_model
from repro.graphs import assign_weights_from_choices, gnp_random_graph

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_runs.json"


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as f:
        return json.load(f)


def spanner_record(result):
    return {
        "edges": sorted([list(e) for e in result.edges]),
        "rounds": result.rounds,
        "iterations": result.iterations,
        "fallbacks": result.fallback_count,
        "metrics": result.metrics.as_dict(),
    }


class TestGoldenOutputs:
    def test_unweighted_n40(self, golden):
        g = gnp_random_graph(40, 0.15, seed=3)
        assert spanner_record(run_two_spanner(g, seed=1)) == golden["unweighted_n40_p015_s3_seed1"]

    def test_unweighted_n60(self, golden):
        g = gnp_random_graph(60, 0.10, seed=11)
        assert spanner_record(run_two_spanner(g, seed=7)) == golden["unweighted_n60_p010_s11_seed7"]

    def test_weighted_n40(self, golden):
        g = gnp_random_graph(40, 0.20, seed=5)
        assign_weights_from_choices(g, [1.0, 2.0, 4.0], seed=9)
        result = run_two_spanner(g, variant=WeightedVariant(), seed=2)
        assert spanner_record(result) == golden["weighted_n40_p020_s5_seed2"]

    def test_mds_n50(self, golden):
        g = gnp_random_graph(50, 0.10, seed=2)
        result = run_mds(g, seed=4)
        record = {
            "dominators": sorted(result.dominators),
            "rounds": result.rounds,
            "iterations": result.iterations,
            "metrics": result.metrics.as_dict(),
        }
        assert record == golden["mds_n50_p010_s2_seed4"]


class TestGoldenStabilityUnderNoAdversary:
    """Installing the identity adversary must not perturb a single golden bit.

    The adversary layer's contract is that ``NoAdversary`` (like passing no
    adversary) leaves every engine's hot path untouched and never merges
    fault counters into ``Metrics.as_dict()`` — so the LOCAL/CONGEST golden
    records, captured long before the layer existed, must still match
    bit-for-bit with the policy explicitly installed.
    """

    def test_spanner_golden_with_explicit_no_adversary(self, golden):
        g = gnp_random_graph(40, 0.15, seed=3)
        result = run_two_spanner(g, seed=1, adversary=NoAdversary())
        assert spanner_record(result) == golden["unweighted_n40_p015_s3_seed1"]
        assert result.metrics.per_adversary == {}

    def test_mds_golden_with_explicit_no_adversary(self, golden):
        g = gnp_random_graph(50, 0.10, seed=2)
        result = run_mds(g, seed=4, adversary=NoAdversary())
        record = {
            "dominators": sorted(result.dominators),
            "rounds": result.rounds,
            "iterations": result.iterations,
            "metrics": result.metrics.as_dict(),
        }
        assert record == golden["mds_n50_p010_s2_seed4"]


class FloodMax(NodeProgram):
    """Every node learns the maximum identifier in its component."""

    def on_start(self, ctx):
        self.best = ctx.node_id
        ctx.broadcast(self.best)

    def on_round(self, ctx, inbox):
        improved = False
        for _, payloads in inbox.items():
            for value in payloads:
                if value > self.best:
                    self.best = value
                    improved = True
        if improved:
            ctx.broadcast(self.best)
        else:
            ctx.set_output(self.best)
            ctx.halt()


class TestEngineEquivalence:
    """indexed vs reference engine on identical inputs."""

    def _run_both(self, graph, factory, **kwargs):
        runs = {}
        for engine in ("indexed", "reference"):
            sim = Simulator(graph, factory, engine=engine, **kwargs)
            runs[engine] = sim.run()
        return runs["indexed"], runs["reference"]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_flood_max(self, seed):
        g = gnp_random_graph(35, 0.12, seed=seed)
        new, ref = self._run_both(g, lambda v: FloodMax(), seed=seed)
        assert new.outputs == ref.outputs
        assert new.completed == ref.completed
        assert new.metrics.as_dict() == ref.metrics.as_dict()
        assert new.metrics.bits_per_round == ref.metrics.bits_per_round

    def test_mds_program_in_congest(self):
        g = gnp_random_graph(30, 0.15, seed=6)
        topo = g.freeze()
        options = MDSOptions()

        def factory(v):
            return MDSProgram(v, topo.neighbor_label_set(topo.index[v]), options)

        new, ref = self._run_both(
            g, factory, seed=3, model=congest_model(30, enforce=True)
        )
        assert new.outputs == ref.outputs
        assert new.metrics.as_dict() == ref.metrics.as_dict()

    def test_cut_accounting_matches(self):
        g = gnp_random_graph(24, 0.2, seed=9)
        cut = set(range(12))
        new, ref = self._run_both(g, lambda v: FloodMax(), seed=1, cut=cut)
        assert new.metrics.cut_bits == ref.metrics.cut_bits
        assert new.metrics.cut_messages == ref.metrics.cut_messages
