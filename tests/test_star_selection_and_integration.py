"""Tests for the Section 4.1 star-selection rule plus cross-module integration
and property-based checks."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import greedy_two_spanner, take_all_spanner
from repro.core import (
    StarSelectionState,
    choose_candidate_star,
    client_server_two_spanner,
    run_mds,
    run_two_spanner,
)
from repro.graphs import (
    all_edges_both,
    complete_graph,
    connected_gnp_graph,
    edge_key,
    is_dominating_set,
)
from repro.spanner import (
    is_k_spanner,
    minimum_k_spanner_exact,
    spanned_edges,
    star_density,
)


def neighborhood_instance(seed, n=9, p=0.5):
    """A (pool, candidate_edges) pair extracted from a random graph neighbourhood."""
    g = connected_gnp_graph(n, p, seed=seed)
    v = max(g.nodes(), key=lambda u: g.degree(u))
    pool = g.neighbors(v)
    candidate = {e for e in g.edge_set() if e[0] in pool and e[1] in pool}
    return pool, candidate


class TestStarSelection:
    def test_chosen_star_meets_threshold(self):
        pool, candidate = neighborhood_instance(1)
        state = StarSelectionState()
        rho = Fraction(2)
        leaves = choose_candidate_star(pool, candidate, rho, state, iteration=1)
        if candidate:
            assert star_density(leaves, candidate) >= rho / 4 or len(leaves) == len(pool)

    def test_containment_across_iterations_with_same_rho(self):
        pool, candidate = neighborhood_instance(2)
        state = StarSelectionState()
        rho = Fraction(2)
        first = choose_candidate_star(pool, candidate, rho, state, iteration=1)
        # Remove a chunk of the spanned edges (as if they were covered) and re-select.
        remaining = set(sorted(candidate, key=repr)[: max(1, len(candidate) // 2)])
        second = choose_candidate_star(pool, remaining, rho, state, iteration=2)
        assert second <= first or state.fallback_count == 0

    def test_rho_change_resets_selection(self):
        pool, candidate = neighborhood_instance(3)
        state = StarSelectionState()
        first = choose_candidate_star(pool, candidate, Fraction(4), state, iteration=1)
        second = choose_candidate_star(pool, candidate, Fraction(2), state, iteration=2)
        assert isinstance(first, frozenset) and isinstance(second, frozenset)
        assert state.last_rho == Fraction(2)

    def test_force_include_always_present(self):
        pool, candidate = neighborhood_instance(4)
        state = StarSelectionState()
        forced = {sorted(pool, key=repr)[0]}
        leaves = choose_candidate_star(
            pool, candidate, Fraction(2), state, iteration=1, force_include=forced
        )
        assert forced <= leaves

    def test_ablation_mode_ignores_history(self):
        pool, candidate = neighborhood_instance(5)
        state = StarSelectionState()
        choose_candidate_star(pool, candidate, Fraction(2), state, iteration=1)
        fresh = choose_candidate_star(
            pool, set(), Fraction(2), state, iteration=2, follow_paper_rule=False
        )
        assert isinstance(fresh, frozenset)

    def test_history_recorded(self):
        pool, candidate = neighborhood_instance(6)
        state = StarSelectionState()
        choose_candidate_star(pool, candidate, Fraction(2), state, iteration=1)
        choose_candidate_star(pool, candidate, Fraction(2), state, iteration=2)
        assert len(state.history) == 2


class TestCrossAlgorithmConsistency:
    @pytest.mark.parametrize("seed", range(3))
    def test_distributed_never_loses_to_take_all_badly(self, seed):
        g = connected_gnp_graph(20, 0.35, seed=seed)
        distributed = run_two_spanner(g, seed=seed).edges
        assert len(distributed) <= len(take_all_spanner(g))

    @pytest.mark.parametrize("seed", range(3))
    def test_distributed_comparable_to_sequential_greedy(self, seed):
        g = connected_gnp_graph(18, 0.4, seed=seed)
        distributed = run_two_spanner(g, seed=seed).edges
        greedy = greedy_two_spanner(g)
        assert is_k_spanner(g, distributed, 2) and is_k_spanner(g, greedy, 2)
        # Both are O(log m/n) approximations; they should be within a small
        # constant factor of one another.
        assert len(distributed) <= 4 * len(greedy) + 8

    def test_client_server_all_both_matches_plain_size_class(self):
        g = connected_gnp_graph(15, 0.4, seed=7)
        plain = run_two_spanner(g, seed=8).edges
        cs = client_server_two_spanner(all_edges_both(g), seed=8).edges
        assert is_k_spanner(g, cs, 2)
        assert len(cs) <= 3 * len(plain) + 8

    def test_mds_vs_spanner_machinery_share_simulator(self):
        g = complete_graph(9)
        spanner = run_two_spanner(g, seed=1)
        mds = run_mds(g, seed=1)
        assert is_k_spanner(g, spanner.edges, 2)
        assert is_dominating_set(g, mds.dominators)
        assert mds.size == 1

    def test_exact_never_beaten(self):
        for seed in range(3):
            g = connected_gnp_graph(11, 0.45, seed=seed)
            opt = len(minimum_k_spanner_exact(g, 2))
            assert len(run_two_spanner(g, seed=seed).edges) >= opt
            assert len(greedy_two_spanner(g)) >= opt


class TestPropertyBased:
    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(min_value=8, max_value=16),
        st.integers(min_value=0, max_value=2**20),
    )
    def test_distributed_spanner_valid_on_random_graphs(self, n, seed):
        g = connected_gnp_graph(n, 0.35, seed=seed)
        result = run_two_spanner(g, seed=seed)
        assert is_k_spanner(g, result.edges, 2)
        assert result.edges <= g.edge_set()

    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(min_value=8, max_value=20),
        st.integers(min_value=0, max_value=2**20),
    )
    def test_mds_valid_on_random_graphs(self, n, seed):
        g = connected_gnp_graph(n, 0.3, seed=seed)
        result = run_mds(g, seed=seed)
        assert is_dominating_set(g, result.dominators)

    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=0, max_value=2**20))
    def test_spanned_edges_subset_invariant(self, seed):
        g = connected_gnp_graph(10, 0.4, seed=seed)
        v = max(g.nodes(), key=lambda u: g.degree(u))
        pool = g.neighbors(v)
        candidate = {e for e in g.edge_set() if e[0] in pool and e[1] in pool}
        spanned = spanned_edges(pool, candidate)
        assert spanned == candidate
        for e in spanned:
            assert edge_key(*e) in g.edge_set()
