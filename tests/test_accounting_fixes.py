"""Regression tests for the accounting bugfixes shipped with the
experiment-orchestration PR:

* ``estimate_bits`` used to charge a flat 64 bits for ``__slots__``-only
  payload objects (no ``__dict__``), under-billing CONGEST accounting;
* ``Metrics.as_dict()`` used to let a ``per_model`` counter silently
  overwrite a core counter of the same name;
* ``benchmarks/common.py::record`` claimed to flatten ``as_dict()`` values
  but stored nested dicts, hiding per-model counters from flat JSON
  consumers.
"""

import importlib.util
from pathlib import Path

import pytest

from repro.distributed import Metrics, estimate_bits
from repro.experiments.reporting import flatten_info


class _DictPayload:
    def __init__(self, colour, weight):
        self.colour = colour
        self.weight = weight


class _SlottedPayload:
    __slots__ = ("colour", "weight")

    def __init__(self, colour, weight):
        self.colour = colour
        self.weight = weight


class _SlottedChild(_SlottedPayload):
    __slots__ = ("extra",)

    def __init__(self, colour, weight, extra):
        super().__init__(colour, weight)
        self.extra = extra


class _SingleStringSlot:
    __slots__ = "value"

    def __init__(self, value):
        self.value = value


class TestSlottedEstimateBits:
    def test_slotted_matches_dict_payload(self):
        # The whole regression: slot values must be billed like __dict__ ones.
        assert estimate_bits(_SlottedPayload("red", 1 << 40)) == estimate_bits(
            _DictPayload("red", 1 << 40)
        )

    def test_slotted_payload_not_flat_64(self):
        big = _SlottedPayload("x" * 64, 1 << 200)
        assert estimate_bits(big) > 64
        assert estimate_bits(big) == estimate_bits(
            {"colour": "x" * 64, "weight": 1 << 200}
        )

    def test_slots_collected_across_mro(self):
        child = _SlottedChild("blue", 7, (1, 2, 3))
        assert estimate_bits(child) == estimate_bits(
            {"colour": "blue", "weight": 7, "extra": (1, 2, 3)}
        )

    def test_single_string_slots_declaration(self):
        assert estimate_bits(_SingleStringSlot(255)) == estimate_bits({"value": 255})

    def test_unassigned_slot_is_skipped(self):
        empty = _SlottedPayload.__new__(_SlottedPayload)
        assert estimate_bits(empty) == estimate_bits({})

    def test_plain_object_still_flat_64(self):
        assert estimate_bits(object()) == 64

    def test_dict_payloads_unchanged(self):
        # The pre-fix path for __dict__ payloads must be byte-for-byte stable
        # (the golden-run contract depends on it).
        assert estimate_bits(_DictPayload("red", 3)) == estimate_bits(
            {"colour": "red", "weight": 3}
        )


class TestMetricsCollision:
    def test_per_model_counters_merge(self):
        metrics = Metrics()
        metrics.bump("broadcast_payloads", 5)
        assert metrics.as_dict()["broadcast_payloads"] == 5

    def test_core_counter_collision_raises(self):
        metrics = Metrics()
        metrics.bump("rounds")  # shadows the core counter
        with pytest.raises(ValueError, match="rounds"):
            metrics.as_dict()

    def test_collision_detected_for_every_core_key(self):
        for core_key in Metrics().as_dict():
            metrics = Metrics()
            metrics.per_model[core_key] = 1
            with pytest.raises(ValueError):
                metrics.as_dict()


class _FakeBenchmark:
    def __init__(self):
        self.extra_info = {}


def _load_benchmarks_common():
    path = Path(__file__).resolve().parent.parent / "benchmarks" / "common.py"
    spec = importlib.util.spec_from_file_location("benchmarks_common", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRecordFlattening:
    def test_flatten_info_uses_dotted_keys(self):
        flat = flatten_info({"metrics": {"rounds": 3, "per": {"x": 1}}, "n": 5})
        assert flat == {"metrics.rounds": 3, "metrics.per.x": 1, "n": 5}

    def test_flatten_info_calls_as_dict(self):
        metrics = Metrics(rounds=2, bits_sent=10)
        metrics.bump("virtual_link_messages", 4)
        flat = flatten_info(metrics, prefix="metrics")
        assert flat["metrics.rounds"] == 2
        assert flat["metrics.virtual_link_messages"] == 4

    def test_flatten_info_indexes_sequences_of_mappings(self):
        flat = flatten_info({"instances": [{"n": 48}, {"n": 96}]})
        assert flat == {"instances.0.n": 48, "instances.1.n": 96}

    def test_record_flattens_metrics(self):
        common = _load_benchmarks_common()
        metrics = Metrics(rounds=7, bits_sent=99)
        metrics.bump("broadcast_payloads", 2)
        benchmark = _FakeBenchmark()
        common.record(benchmark, metrics=metrics, n=10)
        assert benchmark.extra_info["n"] == 10
        assert benchmark.extra_info["metrics.rounds"] == 7
        # the per-model counter no longer vanishes into a nested dict
        assert benchmark.extra_info["metrics.broadcast_payloads"] == 2
        assert not any(
            isinstance(value, dict) for value in benchmark.extra_info.values()
        )
