"""reprolint health checks: the static determinism gate runs under tier-1.

Mirrors ``tests/test_docs.py``: the same checker CI invokes
(``tools/reprolint``) is executed here so the determinism/hot-path contract
is enforced by the test suite, not just by a separate workflow step.  Four
layers:

* the real tree is clean — ``src/repro`` lints with an **empty** baseline;
* every shipped rule demonstrably fires on a negative fixture and stays
  silent on the matching positive fixture;
* the suppression machinery (inline pragmas, baseline files) round-trips;
* the JSON reporter schema is pinned for artifact consumers.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from reprolint import Baseline, all_rules, lint_paths, lint_source, registry  # noqa: E402
from reprolint.reporters import JSON_SCHEMA, render_json, render_text  # noqa: E402

EXPECTED_RULES = ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006")

#: Per-rule fixture pairs.  ``bad`` must trigger exactly its rule; ``good``
#: is the idiomatic repair and must be silent.  ``path`` places the fixture
#: for the path-scoped rules (timing whitelist, distributed/ hot path).
FIXTURES = {
    "REP001": {
        "path": "src/repro/core/fixture.py",
        "bad": (
            "import random\n"
            "def pick(xs):\n"
            "    return random.choice(xs)\n"
        ),
        "good": (
            "import random\n"
            "def pick(xs, seed):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.choice(xs)\n"
        ),
    },
    "REP002": {
        "path": "src/repro/core/fixture.py",
        "bad": (
            "def emit(xs):\n"
            "    out = []\n"
            "    for x in set(xs):\n"
            "        out.append(x)\n"
            "    return out\n"
        ),
        "good": (
            "def emit(xs):\n"
            "    out = []\n"
            "    for x in sorted(set(xs)):\n"
            "        out.append(x)\n"
            "    return out\n"
        ),
    },
    "REP003": {
        "path": "src/repro/core/fixture.py",
        "bad": (
            "def order(items):\n"
            "    return sorted(items, key=lambda x: hash(x))\n"
        ),
        "good": (
            "class Key:\n"
            "    def _key(self):\n"
            "        return ()\n"
            "    def __hash__(self):\n"
            "        return hash(self._key())\n"
        ),
    },
    "REP004": {
        "path": "src/repro/core/fixture.py",
        "bad": (
            "import time\n"
            "def run():\n"
            "    return time.perf_counter()\n"
        ),
        "good": (
            "import math\n"
            "def run():\n"
            "    return math.pi\n"
        ),
    },
    "REP005": {
        "path": "src/repro/distributed/fixture.py",
        "bad": "import numpy as np\n",
        "good": (
            "import os\n"
            "if os.environ.get('REPRO_DISABLE_NUMPY'):\n"
            "    _np = None\n"
            "else:\n"
            "    try:\n"
            "        import numpy as _np\n"
            "    except ImportError:\n"
            "        _np = None\n"
        ),
    },
    "REP006": {
        "path": "src/repro/distributed/fixture.py",
        "bad": (
            "class PerMessage:\n"
            "    def __init__(self, payload):\n"
            "        self.payload = payload\n"
        ),
        "good": (
            "class PerMessage:\n"
            "    __slots__ = ('payload',)\n"
            "    def __init__(self, payload):\n"
            "        self.payload = payload\n"
        ),
    },
}


def lint(source: str, path: str) -> list:
    return lint_source(source, path=path)


class TestRuleCatalogue:
    def test_all_expected_rules_registered(self):
        assert tuple(r.code for r in all_rules()) == EXPECTED_RULES

    def test_rules_carry_metadata(self):
        for rule in all_rules():
            assert rule.name and rule.rationale, rule.code

    def test_select_subset_and_unknown(self):
        assert [r.code for r in registry.select("REP002,REP001")] == ["REP001", "REP002"]
        with pytest.raises(KeyError):
            registry.select("REP999")


class TestRuleFixtures:
    @pytest.mark.parametrize("code", EXPECTED_RULES)
    def test_negative_fixture_fires(self, code):
        fixture = FIXTURES[code]
        findings = lint(fixture["bad"], fixture["path"])
        assert [f.rule for f in findings] == [code], render_text(findings)

    @pytest.mark.parametrize("code", EXPECTED_RULES)
    def test_positive_fixture_is_silent(self, code):
        fixture = FIXTURES[code]
        findings = lint(fixture["good"], fixture["path"])
        assert findings == [], render_text(findings)

    def test_rep001_flags_from_import_of_global_rng(self):
        findings = lint("from random import shuffle\n", "src/repro/core/fixture.py")
        assert [f.rule for f in findings] == ["REP001"]

    def test_rep002_flags_comprehension_over_inline_set(self):
        src = "def centres(d):\n    return [c for c in set(d.values())]\n"
        assert [f.rule for f in lint(src, "src/repro/core/fixture.py")] == ["REP002"]

    def test_rep004_whitelists_timing_modules(self):
        bad = FIXTURES["REP004"]["bad"]
        for path in (
            "src/repro/experiments/runner.py",
            "src/repro/experiments/cli.py",
            "src/repro/experiments/defs_megascale.py",
            "benchmarks/bench_fixture.py",
        ):
            assert lint(bad, path) == [], path

    def test_rep004_flags_datetime_now(self):
        src = "from datetime import datetime\nSTAMP = datetime.now()\n"
        assert [f.rule for f in lint(src, "src/repro/core/fixture.py")] == ["REP004"]

    def test_rep005_allows_type_checking_import(self):
        src = (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    import numpy as np\n"
        )
        assert lint(src, "src/repro/distributed/fixture.py") == []

    def test_rep006_scope_is_distributed_only(self):
        bad = FIXTURES["REP006"]["bad"]
        assert lint(bad, "src/repro/core/fixture.py") == []

    def test_rep006_exempts_dataclasses_and_exceptions(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Record:\n"
            "    x: int\n"
            "class BoomError(RuntimeError):\n"
            "    pass\n"
        )
        assert lint(src, "src/repro/distributed/fixture.py") == []

    def test_rep006_flags_estimate_bits_in_loop(self):
        src = (
            "from repro.distributed.encoding import estimate_bits\n"
            "def tally(payloads):\n"
            "    return sum(estimate_bits(p) for p in payloads)\n"
        )
        findings = lint(src, "src/repro/distributed/fixture.py")
        assert [f.rule for f in findings] == ["REP006"]
        # ...but not in encoding.py itself, which implements the caches.
        assert lint(src, "src/repro/distributed/encoding.py") == []

    def test_rep006_flags_estimate_bits_anywhere_in_vector_round(self):
        # A straight-line call — no loop — still fires inside a lowered
        # whole-round kernel: vector_round is the hottest path of all.
        src = (
            "from repro.distributed.encoding import estimate_bits\n"
            "class Kernel:\n"
            "    __slots__ = ('bits',)\n"
            "    def vector_round(self, view):\n"
            "        self.bits = estimate_bits(view)\n"
        )
        findings = lint(src, "src/repro/distributed/fixture.py")
        assert [f.rule for f in findings] == ["REP006"]
        assert "vector_round" in findings[0].message
        # The same straight-line call outside vector_round stays legal.
        legal = src.replace("def vector_round", "def measure_once")
        assert lint(legal, "src/repro/distributed/fixture.py") == []


class TestSuppression:
    BAD = FIXTURES["REP002"]["bad"]

    def test_inline_pragma_silences_the_line(self):
        patched = self.BAD.replace(
            "for x in set(xs):", "for x in set(xs):  # reprolint: disable=REP002"
        )
        assert lint(patched, "src/repro/core/fixture.py") == []

    def test_pragma_is_rule_specific(self):
        patched = self.BAD.replace(
            "for x in set(xs):", "for x in set(xs):  # reprolint: disable=REP001"
        )
        assert [f.rule for f in lint(patched, "src/repro/core/fixture.py")] == ["REP002"]

    def test_disable_all_pragma(self):
        patched = self.BAD.replace(
            "for x in set(xs):", "for x in set(xs):  # reprolint: disable=all"
        )
        assert lint(patched, "src/repro/core/fixture.py") == []

    def test_file_level_pragma(self):
        patched = "# reprolint: disable-file=REP002\n" + self.BAD
        assert lint(patched, "src/repro/core/fixture.py") == []

    def test_baseline_roundtrip(self):
        findings = lint(self.BAD, "src/repro/core/fixture.py")
        assert findings
        baseline = Baseline(json.loads(Baseline.dump(findings))["findings"])
        assert baseline.filter(findings) == []
        # A *new* finding (different snippet) is not grandfathered.
        other = lint(
            self.BAD.replace("set(xs)", "set(ys)").replace("(xs)", "(ys)"),
            "src/repro/core/fixture.py",
        )
        assert baseline.filter(other) == other


class TestRealTreeIsClean:
    def test_src_repro_clean_with_empty_baseline(self):
        baseline_path = REPO_ROOT / "tools" / "reprolint" / "baseline.json"
        baseline = Baseline.load(baseline_path)
        assert len(baseline) == 0, "the committed baseline must stay empty"
        findings = lint_paths([REPO_ROOT / "src" / "repro"], baseline=baseline)
        assert findings == [], render_text(findings)

    def test_cli_acceptance_command(self):
        # The exact command the acceptance criteria and CI run.
        proc = subprocess.run(
            [sys.executable, "tools/reprolint", "--select", "all", "src/repro"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "reprolint: clean" in proc.stdout


class TestJsonReporter:
    def test_schema(self):
        findings = lint(FIXTURES["REP001"]["bad"], "src/repro/core/fixture.py")
        payload = json.loads(render_json(findings, all_rules(), scanned_files=1))
        assert payload["schema"] == JSON_SCHEMA
        assert payload["tool"] == "reprolint"
        assert payload["scanned_files"] == 1
        assert [r["code"] for r in payload["rules"]] == list(EXPECTED_RULES)
        assert payload["summary"] == {"total": len(findings), "clean": False}
        row = payload["findings"][0]
        assert set(row) == {"rule", "path", "line", "col", "message", "snippet"}
        assert row["rule"] == "REP001"
        assert row["line"] >= 1

    def test_clean_report(self):
        payload = json.loads(render_json([], all_rules(), scanned_files=3))
        assert payload["findings"] == []
        assert payload["summary"] == {"total": 0, "clean": True}
