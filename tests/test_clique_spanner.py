"""Tests for the Congested Clique 2-spanner workload (E17 algorithm)."""

import pytest

from repro.core import (
    clique_spanner_levels,
    clique_spanner_round_bound,
    run_clique_two_spanner,
)
from repro.graphs import Graph, complete_graph, gnp_random_graph, star_graph
from repro.spanner import is_k_spanner


class TestCliqueTwoSpanner:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_valid_2_spanner_on_gnp(self, seed):
        g = gnp_random_graph(40, 0.25, seed=seed)
        result = run_clique_two_spanner(g, seed=seed)
        assert is_k_spanner(g, result.edges, 2)
        assert result.rounds == clique_spanner_round_bound(40)

    def test_round_count_is_logarithmic(self):
        for n in (16, 33, 64):
            g = gnp_random_graph(n, 0.3, seed=7)
            result = run_clique_two_spanner(g, seed=1)
            assert result.rounds == 2 * clique_spanner_levels(n)
            assert result.rounds <= 2 * ((n - 1).bit_length() + 1)

    def test_engines_identical(self):
        g = gnp_random_graph(30, 0.3, seed=11)
        a = run_clique_two_spanner(g, seed=5, engine="indexed")
        b = run_clique_two_spanner(g, seed=5, engine="reference")
        assert a.edges == b.edges
        assert a.rounds == b.rounds
        assert a.metrics.as_dict() == b.metrics.as_dict()

    def test_fits_clique_bandwidth(self):
        # Default model enforces the O(log n) budget; a violation would raise.
        g = gnp_random_graph(50, 0.2, seed=3)
        result = run_clique_two_spanner(g, seed=9)
        assert result.metrics.bandwidth_violations == 0

    def test_compresses_dense_graphs(self):
        g = complete_graph(24)
        result = run_clique_two_spanner(g, seed=4)
        assert is_k_spanner(g, result.edges, 2)
        assert result.size < g.number_of_edges()

    def test_star_graph_kept_whole(self):
        # A star is its own unique 2-spanner: nothing can be dropped.
        g = star_graph(9)
        result = run_clique_two_spanner(g, seed=0)
        assert is_k_spanner(g, result.edges, 2)

    def test_isolated_and_tiny_graphs(self):
        g = Graph()
        g.add_node("a")
        result = run_clique_two_spanner(g, seed=0)
        assert result.edges == set()

        g2 = Graph()
        g2.add_edge(1, 2)
        g2.add_node(3)
        result2 = run_clique_two_spanner(g2, seed=0)
        assert result2.edges == {(1, 2)}

    def test_uses_virtual_links(self):
        g = gnp_random_graph(20, 0.15, seed=2)
        result = run_clique_two_spanner(g, seed=1)
        assert result.metrics.per_model["virtual_link_messages"] > 0
