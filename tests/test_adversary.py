"""Tests for the adversary layer: parity, semantics, counters, parsing.

The load-bearing contract: all three engines produce bit-for-bit identical
``RunResult``s *under the same adversary* across all four communication
models; a ``None``/``NoAdversary`` adversary is byte-for-byte the fault-free
behaviour (golden dictionary shape included); fault counters live in
``Metrics.per_adversary`` and appear in ``as_dict()`` only when an
adversary is active.
"""

import pytest

from repro.core import (
    robust_flood_max_round_bound,
    run_clique_two_spanner,
    run_flood_max,
    run_robust_flood_max,
)
from repro.core.flood_max import FloodMaxProgram, RobustFloodMaxProgram
from repro.distributed import (
    Adversary,
    CorruptAdversary,
    CrashAdversary,
    DropAdversary,
    Metrics,
    NoAdversary,
    RoundBudgetAdversary,
    Simulator,
    broadcast_congest_model,
    build_adversary,
    congest_model,
    congested_clique_model,
    local_model,
    run_program,
)
from repro.graphs import gnp_random_graph, path_graph

ALL_MODELS = [
    lambda n: local_model(n),
    lambda n: congest_model(n, enforce=False),
    lambda n: broadcast_congest_model(n, enforce=False),
    lambda n: congested_clique_model(n, enforce=False),
]

ADVERSARIES = [
    DropAdversary(0.1),
    CrashAdversary({3: 2, 11: 4}),
    RoundBudgetAdversary(40),
    CorruptAdversary(0.1),
]


def _run_all_engines(graph, factory, model, adversary, seed=9, cut=None):
    return {
        engine: Simulator(
            graph,
            factory,
            model=model,
            seed=seed,
            cut=cut,
            engine=engine,
            adversary=adversary,
        ).run()
        for engine in ("indexed", "batch", "reference")
    }


class TestEngineParityUnderFaults:
    """indexed == batch == reference under the same adversary, all models."""

    @pytest.mark.parametrize("model_factory", ALL_MODELS)
    @pytest.mark.parametrize("adversary", ADVERSARIES, ids=lambda a: a.spec())
    def test_flood_max_identical_across_engines(self, model_factory, adversary):
        g = gnp_random_graph(40, 0.15, seed=5)
        runs = _run_all_engines(
            g, lambda v: FloodMaxProgram(v, 6), model_factory(40), adversary
        )
        indexed, batch, reference = (
            runs["indexed"],
            runs["batch"],
            runs["reference"],
        )
        assert batch.outputs == indexed.outputs == reference.outputs
        assert (
            batch.metrics.as_dict()
            == indexed.metrics.as_dict()
            == reference.metrics.as_dict()
        )
        assert batch.metrics.bits_per_round == indexed.metrics.bits_per_round
        assert batch.completed is indexed.completed is reference.completed

    @pytest.mark.parametrize("adversary", ADVERSARIES, ids=lambda a: a.spec())
    def test_cut_accounting_identical_across_engines(self, adversary):
        g = gnp_random_graph(30, 0.25, seed=4)
        cut = set(range(15))
        faulty = _run_all_engines(
            g, lambda v: FloodMaxProgram(v, 4), congest_model(30, enforce=False),
            adversary, cut=cut,
        )
        assert (
            faulty["indexed"].metrics.as_dict()
            == faulty["batch"].metrics.as_dict()
            == faulty["reference"].metrics.as_dict()
        )
        assert faulty["indexed"].metrics.cut_bits > 0

    def test_drops_charge_senders_in_full(self):
        # Faults act on delivery: the drop adversary destroys messages in
        # flight, so every send-side counter (messages, bits, cut) must
        # match the fault-free run exactly.  (Crash faults differ: crashed
        # nodes legitimately stop *sending*.)
        g = gnp_random_graph(30, 0.25, seed=4)
        cut = set(range(15))
        clean = Simulator(
            g, lambda v: FloodMaxProgram(v, 4),
            model=congest_model(30, enforce=False), seed=9, cut=cut,
        ).run()
        dropped = Simulator(
            g, lambda v: FloodMaxProgram(v, 4),
            model=congest_model(30, enforce=False), seed=9, cut=cut,
            adversary=DropAdversary(0.2),
        ).run()
        # Message/round counts are send-side and payload-independent here
        # (every node broadcasts every round for the fixed budget); bit
        # totals may differ because drops change which *values* circulate.
        assert dropped.metrics.messages_sent == clean.metrics.messages_sent
        assert dropped.metrics.cut_messages == clean.metrics.cut_messages
        assert dropped.metrics.per_adversary["adversary_dropped_messages"] > 0

    def test_robust_flood_max_parity_under_drops(self):
        g = gnp_random_graph(36, 0.18, seed=2)
        results = [
            run_robust_flood_max(
                g, patience=5, seed=3, engine=engine, adversary=DropAdversary(0.15)
            )
            for engine in ("indexed", "batch", "reference")
        ]
        assert results[0].node_outputs == results[1].node_outputs == results[2].node_outputs
        assert (
            results[0].metrics.as_dict()
            == results[1].metrics.as_dict()
            == results[2].metrics.as_dict()
        )

    def test_same_seed_same_faults_different_seed_different_faults(self):
        g = gnp_random_graph(30, 0.2, seed=1)

        def dropped(seed):
            result = run_flood_max(
                g, rounds=5, seed=seed, adversary=DropAdversary(0.1)
            )
            return result.metrics.per_adversary["adversary_dropped_messages"]

        assert dropped(7) == dropped(7)
        assert dropped(7) != dropped(8)

    def test_salt_decorrelates_drop_streams_under_one_seed(self):
        g = gnp_random_graph(30, 0.2, seed=1)

        def outputs(salt):
            return run_flood_max(
                g, rounds=3, seed=7, adversary=DropAdversary(0.3, salt=salt)
            ).node_outputs

        assert outputs(0) == outputs(0)
        assert outputs(0) != outputs(1)


class TestNoAdversaryIdentity:
    """None and NoAdversary are byte-for-byte the fault-free behaviour."""

    @pytest.mark.parametrize("engine", ["indexed", "batch", "reference"])
    def test_metrics_dict_shape_unchanged(self, engine):
        g = gnp_random_graph(25, 0.2, seed=3)
        plain = run_program(
            g, lambda v: FloodMaxProgram(v, 4), seed=5, engine=engine
        )
        identity = run_program(
            g,
            lambda v: FloodMaxProgram(v, 4),
            seed=5,
            engine=engine,
            adversary=NoAdversary(),
        )
        assert identity.outputs == plain.outputs
        assert identity.metrics.as_dict() == plain.metrics.as_dict()
        assert identity.metrics.per_adversary == {}

    def test_zero_rate_drop_only_adds_zero_counters(self):
        g = gnp_random_graph(25, 0.2, seed=3)
        plain = run_program(g, lambda v: FloodMaxProgram(v, 4), seed=5)
        zero = run_program(
            g, lambda v: FloodMaxProgram(v, 4), seed=5, adversary=DropAdversary(0.0)
        )
        assert zero.outputs == plain.outputs
        assert zero.metrics.per_adversary == {
            "adversary_dropped_messages": 0,
            "adversary_dropped_bits": 0,
        }
        stripped = {
            k: v
            for k, v in zero.metrics.as_dict().items()
            if not k.startswith("adversary_")
        }
        assert stripped == plain.metrics.as_dict()


class TestCrashSemantics:
    def test_crashed_nodes_leave_active_set_and_run_completes(self):
        g = path_graph(6)
        result = run_robust_flood_max(
            g, patience=3, seed=1, adversary=CrashAdversary({2: 2})
        )
        # The run completes even though node 2 never calls halt() itself...
        assert result.node_outputs[2] is None
        # ...and its crash severs the path: side {0,1} cannot learn 5.
        assert result.node_outputs[0] == result.node_outputs[1]
        assert result.node_outputs[0] < 5
        assert result.node_outputs[5] == 5

    def test_in_flight_messages_from_crasher_are_delivered(self):
        # Node 1 crashes at round 2, but it executed round 1 — where it
        # folded node 2's label and rebroadcast it.  That in-flight relay
        # still arrives, so node 0 learns 2 even though the path is severed
        # before round 2 runs.
        g = path_graph(3)
        result = run_robust_flood_max(
            g, patience=2, seed=1, adversary=CrashAdversary({1: 2})
        )
        assert result.node_outputs[0] == 2

    def test_messages_to_crashed_node_are_lost_and_counted(self):
        g = path_graph(3)
        result = run_robust_flood_max(
            g, patience=2, seed=1, adversary=CrashAdversary({1: 1})
        )
        metrics = result.metrics.per_adversary
        assert metrics["adversary_crashed_nodes"] == 1
        # Round-0 broadcasts from 0 and 2 to node 1 arrive at round 1 — the
        # crash round — so both are destroyed.
        assert metrics["adversary_lost_messages"] >= 2
        assert result.node_outputs[1] is None

    def test_voluntarily_halted_node_is_not_counted_as_crashed(self):
        g = path_graph(3)
        # Patience 1: nodes halt quickly; schedule a crash long after.
        result = run_robust_flood_max(
            g, patience=1, seed=1, adversary=CrashAdversary({0: 50})
        )
        assert result.metrics.per_adversary["adversary_crashed_nodes"] == 0

    def test_crash_round_must_be_positive_int(self):
        with pytest.raises(ValueError, match=">= 1"):
            CrashAdversary({1: 0})
        with pytest.raises(ValueError, match=">= 1"):
            CrashAdversary({1: "soon"})


class TestRoundBudgetThrottle:
    def test_oversized_broadcast_is_destroyed_not_raised(self):
        g = path_graph(4)
        big = tuple(range(50))  # far beyond a 40-bit throttle
        from repro.distributed import FunctionProgram

        def on_start(ctx):
            ctx.broadcast(big)
            ctx.set_output(True)
            ctx.halt()

        result = run_program(
            g,
            lambda v: FunctionProgram(on_start, lambda ctx, inbox: None),
            seed=1,
            adversary=RoundBudgetAdversary(40),
        )
        metrics = result.metrics.per_adversary
        assert metrics["adversary_throttled_messages"] == result.metrics.messages_sent
        assert result.completed

    def test_small_messages_pass_untouched(self):
        g = path_graph(4)
        result = run_flood_max(
            g, rounds=4, seed=1, adversary=RoundBudgetAdversary(10_000)
        )
        assert result.converged
        assert result.metrics.per_adversary["adversary_throttled_messages"] == 0

    def test_throttle_below_model_budget_degrades_congest_run(self):
        g = gnp_random_graph(20, 0.3, seed=6)
        clean = run_flood_max(g, rounds=4, seed=2, model=congest_model(20))
        throttled = run_flood_max(
            g,
            rounds=4,
            seed=2,
            model=congest_model(20),
            adversary=RoundBudgetAdversary(4),  # << the CONGEST budget
        )
        assert clean.converged
        assert throttled.metrics.per_adversary["adversary_throttled_messages"] > 0
        # No enforcement error: throttling is a network fault, not a
        # protocol violation.
        assert throttled.metrics.bandwidth_violations == 0


class TestRobustFloodMax:
    def test_provable_termination_bound_holds_under_heavy_loss(self):
        g = gnp_random_graph(30, 0.2, seed=4)
        result = run_robust_flood_max(
            g, patience=2, seed=1, adversary=DropAdversary(0.6)
        )
        assert result.rounds <= robust_flood_max_round_bound(30, 2)

    def test_retransmission_recovers_where_fixed_budget_fails(self):
        # Same graph, same drop stream: the fixed-budget program misses the
        # diameter deadline under loss, the robust variant still converges.
        g = path_graph(12)
        adversary = DropAdversary(0.3)
        fixed = run_flood_max(g, rounds=11, seed=2, adversary=adversary)
        robust = run_robust_flood_max(g, patience=14, seed=2, adversary=adversary)
        assert not fixed.converged
        assert robust.converged
        assert robust.leader == 11

    def test_patience_validation(self):
        with pytest.raises(ValueError, match="patience"):
            RobustFloodMaxProgram(0, patience=0)


class TestAdversarySpecs:
    """String round-trips, value semantics, and metric plumbing."""

    @pytest.mark.parametrize(
        "text",
        [
            "none",
            "drop:0.05",
            "drop:0.05:3",
            "corrupt:0.05",
            "corrupt:0.05:3",
            "crash:4@2,17@5",
            "budget:64",
        ],
    )
    def test_spec_round_trips(self, text):
        adversary = build_adversary(text)
        assert isinstance(adversary, Adversary)
        assert build_adversary(adversary.spec()) == adversary

    @pytest.mark.parametrize(
        "adversary",
        [
            NoAdversary(),
            DropAdversary(0.25),
            DropAdversary(0.25, salt=7),
            CorruptAdversary(0.25),
            CorruptAdversary(0.25, salt=7),
            CrashAdversary({3: 2, 11: 4}),
            RoundBudgetAdversary(40),
        ],
        ids=lambda a: a.spec(),
    )
    def test_every_adversary_spec_is_lossless(self, adversary):
        # The canonical spec() string is a complete serialisation: parsing
        # it back yields a value-equal adversary (equal hash included).
        rebuilt = build_adversary(adversary.spec())
        assert rebuilt == adversary
        assert hash(rebuilt) == hash(adversary)
        assert rebuilt.spec() == adversary.spec()

    def test_value_semantics(self):
        assert DropAdversary(0.05) == DropAdversary(0.05)
        assert DropAdversary(0.05) != DropAdversary(0.06)
        assert CrashAdversary({1: 2}) == CrashAdversary({1: 2})
        assert hash(RoundBudgetAdversary(8)) == hash(RoundBudgetAdversary(8))
        assert NoAdversary() == NoAdversary()
        assert NoAdversary() != DropAdversary(0.0)
        assert CorruptAdversary(0.05) == CorruptAdversary(0.05)
        assert CorruptAdversary(0.05) != CorruptAdversary(0.05, salt=1)
        assert CorruptAdversary(0.0) != DropAdversary(0.0)

    def test_corrupt_rate_must_be_a_probability(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            CorruptAdversary(-0.1)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            CorruptAdversary(1.5)

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "warp",
            "drop:",
            "drop:2.0",
            "corrupt:",
            "corrupt:-0.1",
            "crash:",
            "crash:1",
            "budget:x",
        ],
    )
    def test_bad_specs_rejected(self, text):
        with pytest.raises(ValueError):
            build_adversary(text)

    @pytest.mark.parametrize(
        ("text", "message"),
        [
            ("drop:x", "rate token 'x' is not a number"),
            ("corrupt:x", "rate token 'x' is not a number"),
            ("corrupt:0.1:z", "salt token 'z' is not an integer"),
            ("crash:1", "crash entry '1' must look like NODE@ROUND"),
            ("budget:x", "bits token 'x' is not an integer"),
        ],
    )
    def test_bad_specs_name_the_offending_token(self, text, message):
        with pytest.raises(ValueError, match=message):
            build_adversary(text)

    def test_fault_counter_collision_raises(self):
        metrics = Metrics()
        metrics.bump("shared_name")
        metrics.bump_fault("shared_name")
        with pytest.raises(ValueError, match="collides"):
            metrics.as_dict()

    def test_clique_spanner_valid_under_drops_all_engines(self):
        g = gnp_random_graph(32, 0.2, seed=8)
        from repro.spanner import is_k_spanner

        runs = {
            engine: run_clique_two_spanner(
                g, seed=4, engine=engine, adversary=DropAdversary(0.1)
            )
            for engine in ("indexed", "batch", "reference")
        }
        assert runs["indexed"].edges == runs["batch"].edges == runs["reference"].edges
        assert is_k_spanner(g, runs["indexed"].edges, 2)
