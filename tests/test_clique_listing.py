"""Tests for the Lenzen-style routing primitive and the E21 listing tier.

Routing: the centrally computed schedule matches the instance (batches,
phase-2 loads, overflow cap), every payload reaches exactly its destination
in the planned number of rounds, and all engines agree.  Listing: both
delivery modes reproduce :func:`brute_force_triangles` exactly — the
verified-output contract of the E21 scenarios — and the group partition
helpers satisfy their arithmetic invariants.  Plus an E21 determinism
check: ``--jobs 1`` and ``--jobs 4`` reports are byte-identical once
timing is stripped.
"""

import json

import pytest

from repro.core.clique_listing import (
    brute_force_triangles,
    group_count,
    group_triples,
    run_clique_listing,
    vertex_group,
)
from repro.core.clique_routing import (
    RoutingOverflowError,
    plan_clique_routing,
    run_clique_routing,
    run_targeted_fanout,
)
from repro.experiments import registry
from repro.experiments.runner import run_experiments, strip_timing
from repro.graphs import complete_graph, gnp_random_graph


# ----------------------------------------------------------------- partition
def test_group_count_is_exact_cube_root_floor():
    for n in [1, 2, 7, 8, 9, 26, 27, 28, 63, 64, 65, 728, 729, 1000]:
        k = group_count(n)
        assert k**3 <= n < (k + 1) ** 3 or k == 1


def test_vertex_groups_are_contiguous_and_balanced():
    n, k = 100, group_count(100)
    groups = [vertex_group(i, n, k) for i in range(n)]
    assert groups == sorted(groups)
    assert set(groups) == set(range(k))


def test_group_triples_fit_in_n():
    for n in [27, 64, 125, 1000]:
        k = group_count(n)
        assert len(group_triples(k)) <= n


# ------------------------------------------------------------------- routing
def test_schedule_single_batch_round_robin():
    # 4 nodes, each sends one message to (i+1) % 4: phase 1 lands every
    # frame directly on its destination (mid == dst), so no phase-2 rounds.
    outboxes = {i: [(i + 1) % 4] for i in range(4)}
    schedule = plan_clique_routing(4, outboxes)
    assert schedule.num_batches == 1
    assert schedule.phase2_rounds == (0,)


def test_schedule_splits_oversized_sources_into_batches():
    n = 5
    outboxes = {0: [1] * 9}  # 9 routed messages, batches of n - 1 = 4
    schedule = plan_clique_routing(n, outboxes)
    assert schedule.num_batches == 3


def test_schedule_ignores_self_addressed_messages():
    schedule = plan_clique_routing(4, {2: [2, 2, 2]})
    assert schedule.num_batches == 0
    assert schedule.total_rounds == 1


def test_overflow_cap_raises_at_plan_time():
    # Every node funnels all its frames at destination 0: per-(mid, dst)
    # load grows past a cap of 1.
    n = 6
    outboxes = {i: [0] * (n - 1) for i in range(1, n)}
    with pytest.raises(RoutingOverflowError, match="phase-2 rounds"):
        plan_clique_routing(n, outboxes, max_phase2_rounds=1)
    # Without the cap the same instance plans fine.
    schedule = plan_clique_routing(n, outboxes)
    assert schedule.num_batches == 1


@pytest.mark.parametrize("engine", ["indexed", "batch", "columnar"])
def test_routing_delivers_exactly_the_sent_multiset(engine):
    n = 9
    graph = complete_graph(n)
    # Skewed all-to-one plus scattered traffic, with payloads naming their
    # (src, dst) so delivery is fully checkable.
    messages = {
        src: [((src * 3 + j) % n, (src, (src * 3 + j) % n, j)) for j in range(5)]
        for src in range(n)
    }
    result = run_clique_routing(graph, messages, engine=engine)
    assert result.rounds <= result.schedule.total_rounds
    got = {dst: sorted(result.outputs[dst]) for dst in result.outputs}
    want: dict[int, list] = {v: [] for v in range(n)}
    for src, msgs in messages.items():
        for dst, payload in msgs:
            want[dst].append(payload)
    assert got == {dst: sorted(plist) for dst, plist in want.items()}


def test_routing_engines_agree_bit_for_bit():
    n = 8
    graph = complete_graph(n)
    messages = {src: [((src + 2) % n, src * 100 + j) for j in range(10)] for src in range(n)}
    runs = {
        engine: run_clique_routing(graph, messages, engine=engine)
        for engine in ("indexed", "batch", "columnar")
    }
    base = runs["indexed"]
    for engine in ("batch", "columnar"):
        assert runs[engine].outputs == base.outputs
        assert runs[engine].metrics.as_dict() == base.metrics.as_dict()


def test_runtime_overflow_on_schedule_violation():
    # A hand-built schedule with too few phase-2 rounds: queues survive.
    from repro.core.clique_routing import (
        CliqueRoutingProgram,
        RoutingSchedule,
    )
    from repro.distributed import Simulator, congested_clique_model

    n = 5
    graph = complete_graph(n)
    topo = graph.freeze()
    labels = list(topo.labels)
    rank = dict(topo.index)
    # All four non-zero sources route one frame to 0 via distinct mids, but
    # source 4's frame (mid == dst == 0) skips its queue; the other three
    # park at three distinct intermediates. One phase-2 round would do; a
    # schedule claiming zero forces the runtime check to fire.
    bogus = RoutingSchedule(n=n, num_batches=1, phase2_rounds=(0,))
    messages = {src: [(0, src)] for src in range(1, n)}

    def factory(v):
        i = topo.index[v]
        return CliqueRoutingProgram(v, i, messages.get(i, []), bogus, labels, rank)

    sim = Simulator(
        graph, factory, model=congested_clique_model(n, enforce=False), seed=0
    )
    with pytest.raises(RoutingOverflowError, match="survived the schedule"):
        sim.run(max_rounds=bogus.total_rounds + 2)


# ------------------------------------------------------------------- listing
@pytest.mark.parametrize("mode", ["direct", "routed"])
@pytest.mark.parametrize("engine", ["indexed", "batch", "columnar"])
def test_listing_matches_brute_force(mode, engine):
    graph = gnp_random_graph(40, 0.3, seed=3)
    result = run_clique_listing(graph, mode=mode, engine=engine)
    assert result.triangles == brute_force_triangles(graph)


def test_listing_modes_agree_and_round_counts_differ_as_planned():
    graph = gnp_random_graph(50, 0.25, seed=11)
    direct = run_clique_listing(graph, mode="direct")
    routed = run_clique_listing(graph, mode="routed")
    assert direct.triangles == routed.triangles == brute_force_triangles(graph)
    assert direct.replicas == routed.replicas
    assert direct.k == routed.k == group_count(50)


def test_listing_rejects_unknown_mode():
    with pytest.raises(ValueError, match="unknown listing mode"):
        run_clique_listing(gnp_random_graph(10, 0.5, seed=0), mode="warp")


def test_triangle_free_graph_lists_nothing():
    from repro.graphs import star_graph

    result = run_clique_listing(star_graph(12))
    assert result.triangles == set()


# ----------------------------------------------------------------- E21 smoke
def test_fanout_checksum_agrees_across_engines():
    graph = gnp_random_graph(60, 0.2, seed=2)
    runs = {
        engine: run_targeted_fanout(graph, fanout=4, rounds=6, engine=engine)
        for engine in ("indexed", "batch", "columnar")
    }
    base = runs["indexed"]
    assert base.heard == base.metrics.messages_sent
    for engine in ("batch", "columnar"):
        assert runs[engine].checksum == base.checksum
        assert runs[engine].metrics.as_dict() == base.metrics.as_dict()


def test_e21_report_is_job_count_invariant():
    """``--jobs 1`` and ``--jobs 4`` agree byte-for-byte after strip-timing."""
    registry.load_all()
    reports = []
    for jobs in (1, 4):
        report = run_experiments(["E21"], jobs=jobs)
        reports.append(
            json.dumps(strip_timing(report), sort_keys=True, default=str)
        )
    assert reports[0] == reports[1]
