"""Two-party communication problems used by the Section 2 reductions.

Alice holds ``a`` and Bob holds ``b`` (bit strings of length N).  *Set
disjointness* asks whether some index has a_i = b_i = 1 and needs Omega(N)
bits even with randomness (Lemma 2.1).  *Gap disjointness* only asks to
distinguish disjoint inputs from inputs with at least N/12 common ones and
needs Omega(N) bits deterministically (Lemma 2.5).  The reductions charge all
communication of a simulated CONGEST algorithm that crosses the Alice/Bob
vertex cut against these bounds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class DisjointnessInstance:
    """A pair of equal-length bit strings for Alice and Bob."""

    a: tuple[int, ...]
    b: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.a) != len(self.b):
            raise ValueError("input strings must have equal length")
        if any(bit not in (0, 1) for bit in self.a + self.b):
            raise ValueError("inputs must be 0/1 strings")

    @property
    def n_bits(self) -> int:
        return len(self.a)

    def intersection_size(self) -> int:
        return sum(1 for x, y in zip(self.a, self.b) if x == 1 and y == 1)

    def is_disjoint(self) -> bool:
        return self.intersection_size() == 0

    def is_far_from_disjoint(self) -> bool:
        """At least N/12 common ones (the gap-disjointness promise)."""
        return 12 * self.intersection_size() >= self.n_bits


def _rng(seed: int | random.Random | None) -> random.Random:
    return seed if isinstance(seed, random.Random) else random.Random(seed)


def random_disjoint_instance(
    n_bits: int, density: float = 0.4, seed: int | random.Random | None = None
) -> DisjointnessInstance:
    """Random disjoint inputs: each index gets a one for at most one player."""
    rng = _rng(seed)
    a, b = [], []
    for _ in range(n_bits):
        roll = rng.random()
        if roll < density:
            a.append(1)
            b.append(0)
        elif roll < 2 * density:
            a.append(0)
            b.append(1)
        else:
            a.append(0)
            b.append(0)
    return DisjointnessInstance(tuple(a), tuple(b))


def random_intersecting_instance(
    n_bits: int,
    intersections: int = 1,
    density: float = 0.4,
    seed: int | random.Random | None = None,
) -> DisjointnessInstance:
    """Random inputs with exactly ``intersections`` indices set in both strings."""
    if intersections < 1 or intersections > n_bits:
        raise ValueError("intersections must be between 1 and n_bits")
    rng = _rng(seed)
    base = random_disjoint_instance(n_bits, density, rng)
    a, b = list(base.a), list(base.b)
    common = rng.sample(range(n_bits), intersections)
    for i in range(n_bits):
        if i in common:
            a[i] = b[i] = 1
        elif a[i] == 1 and b[i] == 1:
            b[i] = 0
    return DisjointnessInstance(tuple(a), tuple(b))


def random_far_from_disjoint_instance(
    n_bits: int, seed: int | random.Random | None = None
) -> DisjointnessInstance:
    """Random inputs with at least N/12 (in fact about N/6) common ones."""
    rng = _rng(seed)
    target = max(1, (n_bits + 5) // 6)
    return random_intersecting_instance(n_bits, intersections=target, seed=rng)


def disjointness_lower_bound_bits(n_bits: int) -> int:
    """The Omega(N) communication lower bound (reported with constant 1)."""
    return n_bits


def implied_round_lower_bound(n_bits: int, cut_edges: int, n_vertices: int, logn_factor: int = 32) -> float:
    """Rounds forced by the reduction: Omega(N / (cut * log n)).

    A CONGEST round moves at most ``cut_edges * logn_factor * log2(n)`` bits
    across the Alice/Bob cut, and solving (gap) disjointness needs ``n_bits``
    bits, so any correct simulated algorithm needs at least this many rounds.
    """
    import math

    per_round = max(1.0, cut_edges * logn_factor * math.log2(max(2, n_vertices)))
    return n_bits / per_round
