"""The Section 3 reduction from minimum vertex cover to weighted 2-spanner
(Figure 3).

Every vertex ``v`` of the MVC instance becomes a weight-{0,1} triangle
``v1, v2, v3``; every edge ``{v, u}`` becomes two weight-0 "rails"
``{v1, u1}, {v2, u2}`` plus one weight-2 "diagonal".  Claim 3.1: the minimum
weighted 2-spanner of the reduction graph costs exactly the minimum vertex
cover of the original graph, and any (approximate) 2-spanner converts locally
into a vertex cover of the same cost (Lemma 3.2).  Known MVC lower bounds
therefore transfer to the weighted 2-spanner problem (Theorems 3.3-3.5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.graph import Edge, Graph, Node, edge_key


@dataclass
class MVCReduction:
    """The reduction graph G_S together with bookkeeping maps."""

    original: Graph
    reduced: Graph
    diagonal_of: dict[Edge, Edge]  # original edge -> its weight-2 diagonal in G_S

    def triangle(self, v: Node) -> tuple[Node, Node, Node]:
        return (("v1", v), ("v2", v), ("v3", v))


def build_mvc_reduction(graph: Graph) -> MVCReduction:
    """Build the Figure 3 graph G_S for an (unweighted) MVC instance."""
    reduced = Graph()
    diagonal_of: dict[Edge, Edge] = {}
    for v in graph.nodes():
        v1, v2, v3 = ("v1", v), ("v2", v), ("v3", v)
        reduced.add_edge(v1, v2, 1.0)
        reduced.add_edge(v1, v3, 0.0)
        reduced.add_edge(v2, v3, 0.0)
    for u, v in graph.edges():
        a, b = edge_key(u, v)  # canonical order decides the diagonal's direction
        reduced.add_edge(("v1", a), ("v1", b), 0.0)
        reduced.add_edge(("v2", a), ("v2", b), 0.0)
        diagonal = edge_key(("v1", a), ("v2", b))
        reduced.add_edge(*diagonal, 2.0)
        diagonal_of[edge_key(u, v)] = diagonal
    return MVCReduction(original=graph, reduced=reduced, diagonal_of=diagonal_of)


def vertex_cover_to_spanner(reduction: MVCReduction, cover: set[Node]) -> set[Edge]:
    """Claim 3.1, forward direction: a cover of size |C| gives a 2-spanner of cost |C|.

    The spanner takes every weight-0 edge plus the weight-1 edge {v1, v2} of
    every cover vertex.
    """
    spanner = {
        e for e in reduction.reduced.edges() if reduction.reduced.weight(*e) == 0
    }
    for v in cover:
        spanner.add(edge_key(("v1", v), ("v2", v)))
    return spanner


def spanner_to_vertex_cover(reduction: MVCReduction, spanner: set[Edge]) -> set[Node]:
    """Claim 3.1, reverse direction: a 2-spanner of cost W gives a cover of size <= W.

    Weight-2 diagonals in the spanner are first replaced by the two weight-1
    triangle edges of their endpoints (never increasing the cost); the cover
    is then the set of original vertices whose {v1, v2} edge is kept.
    """
    normalised = {edge_key(*e) for e in spanner}
    cover: set[Node] = set()
    for e in list(normalised):
        weight = reduction.reduced.weight(*e)
        if weight == 2.0:
            (tag_a, va), (tag_b, vb) = e
            cover.add(va)
            cover.add(vb)
        elif weight == 1.0:
            (tag_a, va), _ = e
            cover.add(va)
    return cover


def spanner_cost(reduction: MVCReduction, spanner: set[Edge]) -> float:
    return sum(reduction.reduced.weight(*e) for e in spanner)


def simulation_round_overhead(rounds_on_reduced: int) -> int:
    """Lemma 3.2: one round on G_S costs at most three rounds on G.

    (Each original edge carries the traffic of its three reduction edges.)
    """
    return 3 * rounds_on_reduced
