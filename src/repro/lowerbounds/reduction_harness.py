"""Alice/Bob simulation harness for the Section 2 reductions (experiments E9/E10).

The reduction argument: Alice simulates the vertices of V_A, Bob the vertices
of V_B = Y1, and every bit a CONGEST algorithm sends across the cut is a bit
of two-party communication; since (gap) set disjointness needs Omega(N) bits,
any algorithm whose output reveals disjointness needs Omega(N / (cut * log n))
rounds.

Because no efficient CONGEST algorithm for directed k-spanner approximation
exists (that is the theorem), the harness ships a concrete *reference*
protocol, :class:`GSpannerDecisionProgram`, that computes a valid 5-spanner of
G(ell, beta) by shipping the b-input bits from Bob's side to Alice's side over
the matching edges.  It is essentially an optimal protocol for this family:
its measured cut communication is Theta(ell^2) = Theta(N) bits, matching the
lower bound, and its round count scales as predicted by Theorems 1.1 / 2.8.
The benchmark reports measured cut-bits and rounds next to the theoretical
formulas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.distributed.models import congest_model
from repro.distributed.node import NodeContext
from repro.distributed.program import Inbox, NodeProgram
from repro.distributed.simulator import Simulator
from repro.graphs.digraph import Arc
from repro.lowerbounds.construction_g import SPANNER_CONSTANT_C, ConstructionG
from repro.lowerbounds.two_party import (
    disjointness_lower_bound_bits,
    implied_round_lower_bound,
)


@dataclass
class ReductionReport:
    """Everything experiment E9/E10 reports for one simulated instance."""

    n: int
    ell: int
    beta: int
    ground_truth_disjoint: bool
    decided_disjoint: bool
    spanner_size: int
    d_edges_in_spanner: int
    sparse_bound: int
    rounds: int
    cut_edges: int
    cut_bits: int
    cut_messages: int
    disjointness_bits_needed: int
    implied_rounds_lower_bound: float
    theorem_rounds_lower_bound: float

    @property
    def decision_correct(self) -> bool:
        return self.decided_disjoint == self.ground_truth_disjoint


class GSpannerDecisionProgram(NodeProgram):
    """Reference CONGEST protocol building a minimal-shape 5-spanner of G(ell, beta).

    * every vertex keeps all of its outgoing non-D arcs;
    * each ``y1_i`` ships its input row ``b_{i,*}`` to ``x1_i`` in O(log n)-bit
      chunks (this is the only traffic crossing the Alice/Bob cut);
    * each ``x1_i`` forwards the conflict row ``a_{i,*} AND b_{i,*}`` to its
      X2-block, and block vertices keep the D arcs of conflicting pairs.
    """

    def __init__(self, node: Any, ell: int, beta: int, out_arcs: set[Arc], chunk_bits: int = 16) -> None:
        self.node = node
        self.ell = ell
        self.beta = beta
        self.out_arcs = out_arcs
        self.chunk_bits = max(1, chunk_bits)
        self.kind = node[0]
        self.received_bits: dict[int, int] = {}
        self.chunks_needed = math.ceil(ell / self.chunk_bits)
        self.chunks_sent = 0
        self.row: list[int] | None = None
        self.spanner: set[Arc] = set()

    # ------------------------------------------------------------------ helpers
    def _non_d_out_arcs(self) -> set[Arc]:
        return {(u, v) for (u, v) in self.out_arcs if not (u[0] == "x" and v[0] == "y")}

    def _pack(self, bits: list[int], start: int) -> int:
        value = 0
        for offset, bit in enumerate(bits[start : start + self.chunk_bits]):
            value |= bit << offset
        return value

    def _unpack_into(self, start: int, value: int) -> None:
        for offset in range(self.chunk_bits):
            index = start + offset
            if index < self.ell:
                self.received_bits[index] = (value >> offset) & 1

    # ------------------------------------------------------------------ rounds
    def on_start(self, ctx: NodeContext) -> None:
        self.spanner |= self._non_d_out_arcs()
        if self.kind == "y1":
            # Row b_{i,*}: bit j-1 is 1 exactly when the optional edge (y1_i, y2_j) is absent.
            _, i = self.node
            self.row = [
                0 if (self.node, ("y2", j)) in self.out_arcs else 1
                for j in range(1, self.ell + 1)
            ]
            self._send_next_chunk(ctx, target=("x1", i))
        elif self.kind in {"x2", "y2", "y3", "y"}:
            ctx.set_output(sorted(self.spanner, key=repr))
            ctx.halt()

    def _send_next_chunk(self, ctx: NodeContext, target: Any) -> None:
        assert self.row is not None
        start = self.chunks_sent * self.chunk_bits
        ctx.send(target, ("row", start, self._pack(self.row, start)))
        self.chunks_sent += 1
        if self.chunks_sent >= self.chunks_needed:
            ctx.set_output(sorted(self.spanner, key=repr))
            ctx.halt()

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        for _, payloads in inbox.items():
            for msg in payloads:
                if msg[0] == "row":
                    self._unpack_into(msg[1], msg[2])

        if self.kind == "y1":
            _, i = self.node
            self._send_next_chunk(ctx, target=("x1", i))
            return

        if self.kind == "x1":
            _, i = self.node
            if self.row is None and len(self.received_bits) >= self.ell:
                a_row = [
                    0 if (self.node, ("x2", j)) in self.out_arcs else 1
                    for j in range(1, self.ell + 1)
                ]
                self.row = [a_row[j] & self.received_bits[j] for j in range(self.ell)]
            if self.row is not None:
                start = self.chunks_sent * self.chunk_bits
                packed = self._pack(self.row, start)
                for j in range(1, self.beta + 1):
                    ctx.send(("x", i, j), ("row", start, packed))
                self.chunks_sent += 1
                if self.chunks_sent >= self.chunks_needed:
                    ctx.set_output(sorted(self.spanner, key=repr))
                    ctx.halt()
            return

        if self.kind == "x":
            _, i, j = self.node
            if len(self.received_bits) >= self.ell:
                for r in range(self.ell):
                    if self.received_bits[r] == 1:
                        for s in range(1, self.beta + 1):
                            self.spanner.add((self.node, ("y", r + 1, s)))
                ctx.set_output(sorted(self.spanner, key=repr))
                ctx.halt()
            return


def simulate_reduction(
    construction: ConstructionG,
    alpha: float = 1.0,
    chunk_bits: int = 16,
    seed: int | None = None,
) -> ReductionReport:
    """Run the reference protocol on a built G(ell, beta) and report cut traffic."""
    graph = construction.graph
    out_arcs = {v: graph.out_edges(v) for v in graph.nodes()}

    def factory(v: Any) -> GSpannerDecisionProgram:
        return GSpannerDecisionProgram(
            v, construction.ell, construction.beta, out_arcs[v], chunk_bits=chunk_bits
        )

    sim = Simulator(
        graph,
        factory,
        model=congest_model(graph.number_of_nodes(), enforce=True),
        seed=seed,
        cut=construction.bob_vertices,
    )
    run = sim.run()

    spanner: set[Arc] = set()
    for output in run.outputs.values():
        if output:
            spanner.update(tuple(a) for a in output)
    d_in_spanner = len(spanner & set(construction.d_edges))

    sparse_bound = construction.sparse_spanner_bound()
    decided_disjoint = d_in_spanner <= alpha * sparse_bound
    truth = construction.instance.is_disjoint()

    n = graph.number_of_nodes()
    n_bits = construction.instance.n_bits
    cut = construction.cut_edges()
    theorem_bound = math.sqrt(n) / (math.sqrt(max(1.0, alpha)) * math.log2(max(4, n)))
    return ReductionReport(
        n=n,
        ell=construction.ell,
        beta=construction.beta,
        ground_truth_disjoint=truth,
        decided_disjoint=decided_disjoint,
        spanner_size=len(spanner),
        d_edges_in_spanner=d_in_spanner,
        sparse_bound=sparse_bound,
        rounds=run.rounds,
        cut_edges=len(cut),
        cut_bits=run.metrics.cut_bits,
        cut_messages=run.metrics.cut_messages,
        disjointness_bits_needed=disjointness_lower_bound_bits(n_bits),
        implied_rounds_lower_bound=implied_round_lower_bound(n_bits, len(cut), n),
        theorem_rounds_lower_bound=theorem_bound,
    )


def deterministic_gap_threshold(construction: ConstructionG, alpha: float) -> tuple[int, float]:
    """The (t, alpha*t) threshold pair of Lemma 2.7 for the gap-disjointness case."""
    t = SPANNER_CONSTANT_C * construction.ell**2
    return t, alpha * t
