"""Lower-bound constructions (Figures 1-3) and the two-party reduction harness."""

from repro.lowerbounds.construction_g import (
    SPANNER_CONSTANT_C,
    ConstructionG,
    build_construction_g,
    claim_2_2_holds,
    disjoint_case_spanner,
    minimum_required_d_edges,
    theorem_1_1_parameters,
    theorem_2_8_parameters,
)
from repro.lowerbounds.construction_gw import (
    ConstructionGw,
    ConstructionGwUndirected,
    build_construction_gw,
    build_construction_gw_undirected,
    has_zero_cost_spanner,
    has_zero_cost_spanner_undirected,
    zero_cost_spanner,
)
from repro.lowerbounds.mvc_reduction import (
    MVCReduction,
    build_mvc_reduction,
    simulation_round_overhead,
    spanner_cost,
    spanner_to_vertex_cover,
    vertex_cover_to_spanner,
)
from repro.lowerbounds.reduction_harness import (
    GSpannerDecisionProgram,
    ReductionReport,
    deterministic_gap_threshold,
    simulate_reduction,
)
from repro.lowerbounds.two_party import (
    DisjointnessInstance,
    disjointness_lower_bound_bits,
    implied_round_lower_bound,
    random_disjoint_instance,
    random_far_from_disjoint_instance,
    random_intersecting_instance,
)
from repro.lowerbounds.vertex_cover import (
    exact_vertex_cover,
    greedy_matching_vertex_cover,
    is_vertex_cover,
)

__all__ = [
    "SPANNER_CONSTANT_C",
    "ConstructionG",
    "ConstructionGw",
    "ConstructionGwUndirected",
    "DisjointnessInstance",
    "GSpannerDecisionProgram",
    "MVCReduction",
    "ReductionReport",
    "build_construction_g",
    "build_construction_gw",
    "build_construction_gw_undirected",
    "build_mvc_reduction",
    "claim_2_2_holds",
    "deterministic_gap_threshold",
    "disjoint_case_spanner",
    "disjointness_lower_bound_bits",
    "exact_vertex_cover",
    "greedy_matching_vertex_cover",
    "has_zero_cost_spanner",
    "has_zero_cost_spanner_undirected",
    "implied_round_lower_bound",
    "is_vertex_cover",
    "minimum_required_d_edges",
    "random_disjoint_instance",
    "random_far_from_disjoint_instance",
    "random_intersecting_instance",
    "simulate_reduction",
    "simulation_round_overhead",
    "spanner_cost",
    "spanner_to_vertex_cover",
    "theorem_1_1_parameters",
    "theorem_2_8_parameters",
    "vertex_cover_to_spanner",
    "zero_cost_spanner",
]
