"""Minimum vertex cover helpers used by the Section 3 reduction (Figure 3).

Claim 3.1 equates the cost of a minimum weighted 2-spanner of the reduction
graph ``G_S`` with the size of a minimum vertex cover of ``G``; Lemma 3.2
turns any alpha-approximate distributed weighted 2-spanner algorithm into an
alpha-approximate MVC algorithm.  These helpers provide the exact and
approximate MVC solvers the benchmark compares against.
"""

from __future__ import annotations

from repro.graphs.graph import Graph, Node, edge_key


def greedy_matching_vertex_cover(graph: Graph) -> set[Node]:
    """The classic maximal-matching 2-approximation of minimum vertex cover."""
    cover: set[Node] = set()
    matched: set[Node] = set()
    for u, v in sorted(graph.edges(), key=repr):
        if u in matched or v in matched:
            continue
        matched.add(u)
        matched.add(v)
        cover.add(u)
        cover.add(v)
    return cover


def exact_vertex_cover(graph: Graph, node_budget: int = 2_000_000) -> set[Node]:
    """Exact minimum vertex cover by branch and bound (small graphs only)."""
    edges = sorted(graph.edges(), key=repr)
    best: list[set[Node]] = [set(greedy_matching_vertex_cover(graph))]
    explored = [0]

    def uncovered_edge(cover: set[Node]):
        for u, v in edges:
            if u not in cover and v not in cover:
                return (u, v)
        return None

    def search(cover: set[Node]) -> None:
        explored[0] += 1
        if explored[0] > node_budget:
            raise RuntimeError("exact MVC search exceeded its node budget")
        if len(cover) >= len(best[0]):
            return
        edge = uncovered_edge(cover)
        if edge is None:
            best[0] = set(cover)
            return
        u, v = edge
        # Branch: either endpoint is in the cover.
        search(cover | {u})
        search(cover | {v})

    search(set())
    return best[0]


def is_vertex_cover(graph: Graph, cover: set[Node]) -> bool:
    """True iff every edge of the graph has an endpoint in ``cover``."""
    return all(u in cover or v in cover for u, v in graph.edges())


def cover_from_edges(graph: Graph, edge_list) -> set[Node]:
    """Endpoints of a set of edges (useful when converting matchings)."""
    cover: set[Node] = set()
    for u, v in edge_list:
        e = edge_key(u, v)
        cover.add(e[0])
        cover.add(e[1])
    return cover
