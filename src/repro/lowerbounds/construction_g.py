"""The Section 2 lower-bound construction G(ell, beta) (Figure 1).

The graph has two input-independent gadgets — a matching layer
X1 -> Y1 and a complete bipartite "dense component" D between X2 and Y2 —
wired so that a directed k-spanner (k >= 5) can avoid the Theta(n^2) edges of
D exactly when, for every pair of indices (i, r), at least one of the input
bits a_{ir}, b_{ir} is zero (Claim 2.2).  Disjoint inputs therefore admit a
spanner of c*ell*beta edges while every intersecting pair forces beta^2 edges
of D into any spanner (Lemma 2.3), and far-from-disjoint inputs force
(beta^2/12)*ell^2 edges (Lemma 2.6).

Vertex labels:

* ``("x1", i)`` / ``("x2", i)``   — the X1 layer
* ``("y1", i)`` / ``("y2", i)``   — the Y1 layer (Bob's side, V_B)
* ``("x", i, j)`` / ``("y", i, j)`` — the X2 / Y2 blocks of size beta
* ``("y3", i)``                   — the Y3 relay layer
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graphs.digraph import Arc, DiGraph
from repro.lowerbounds.two_party import DisjointnessInstance

SPANNER_CONSTANT_C = 7  # the constant c of Lemmas 2.3 and 2.6


@dataclass
class ConstructionG:
    """The built graph together with the pieces the reduction needs."""

    ell: int
    beta: int
    instance: DisjointnessInstance
    graph: DiGraph
    d_edges: frozenset[Arc]
    alice_vertices: frozenset
    bob_vertices: frozenset

    @property
    def n(self) -> int:
        return self.graph.number_of_nodes()

    def cut_edges(self) -> set[Arc]:
        """Arcs with one endpoint on each side of the Alice/Bob partition."""
        cut = set()
        for u, v in self.graph.edges():
            if (u in self.bob_vertices) != (v in self.bob_vertices):
                cut.add((u, v))
        return cut

    def bit(self, which: str, i: int, j: int) -> int:
        """Input bit a_{ij} or b_{ij} (1-based indices)."""
        index = (i - 1) * self.ell + (j - 1)
        return self.instance.a[index] if which == "a" else self.instance.b[index]

    def bad_pairs(self) -> set[tuple[int, int]]:
        """Index pairs (i, r) with a_{ir} = b_{ir} = 1 (forcing D edges)."""
        return {
            (i, r)
            for i in range(1, self.ell + 1)
            for r in range(1, self.ell + 1)
            if self.bit("a", i, r) == 1 and self.bit("b", i, r) == 1
        }

    def forced_d_edges(self) -> set[Arc]:
        """The D edges every k-spanner (k >= 5) must contain (Claim 2.2)."""
        forced = set()
        for i, r in self.bad_pairs():
            for j in range(1, self.beta + 1):
                for s in range(1, self.beta + 1):
                    forced.add((("x", i, j), ("y", r, s)))
        return forced

    def non_d_edges(self) -> set[Arc]:
        return set(self.graph.edges()) - set(self.d_edges)

    def sparse_spanner_bound(self) -> int:
        """c * ell * beta, the Lemma 2.3 size of the disjoint-input spanner."""
        return SPANNER_CONSTANT_C * self.ell * self.beta


def build_construction_g(
    ell: int, beta: int, instance: DisjointnessInstance
) -> ConstructionG:
    """Build G(ell, beta) for the given 2-party inputs of length ell^2."""
    if ell < 1 or beta < 1:
        raise ValueError("ell and beta must be positive")
    if instance.n_bits != ell * ell:
        raise ValueError(f"inputs must have ell^2 = {ell * ell} bits, got {instance.n_bits}")

    g = DiGraph()
    x1 = [("x1", i) for i in range(1, ell + 1)]
    x2 = [("x2", i) for i in range(1, ell + 1)]
    y1 = [("y1", i) for i in range(1, ell + 1)]
    y2 = [("y2", i) for i in range(1, ell + 1)]
    y3 = [("y3", i) for i in range(1, ell + 1)]
    xs = {(i, j): ("x", i, j) for i in range(1, ell + 1) for j in range(1, beta + 1)}
    ys = {(i, j): ("y", i, j) for i in range(1, ell + 1) for j in range(1, beta + 1)}
    for v in x1 + x2 + y1 + y2 + y3 + list(xs.values()) + list(ys.values()):
        g.add_node(v)

    # Matching between X1 and Y1.
    for i in range(1, ell + 1):
        g.add_edge(("x1", i), ("y1", i))
        g.add_edge(("x2", i), ("y2", i))
    # The dense component D: complete bipartite from X2-blocks to Y2-blocks.
    d_edges = set()
    for (i, j), x_node in xs.items():
        for (r, s), y_node in ys.items():
            g.add_edge(x_node, y_node)
            d_edges.add((x_node, y_node))
    # Block-to-layer wiring.
    for (i, j), x_node in xs.items():
        g.add_edge(x_node, ("x1", i))
    for (i, j), y_node in ys.items():
        g.add_edge(("y3", i), y_node)
    for i in range(1, ell + 1):
        g.add_edge(("y2", i), ("y3", i))
    # Input-dependent edges: a_{ij} = 0 adds (x1_i -> x2_j); b_{ij} = 0 adds (y1_i -> y2_j).
    for i in range(1, ell + 1):
        for j in range(1, ell + 1):
            index = (i - 1) * ell + (j - 1)
            if instance.a[index] == 0:
                g.add_edge(("x1", i), ("x2", j))
            if instance.b[index] == 0:
                g.add_edge(("y1", i), ("y2", j))

    # Bob simulates the paper's Y1 = {y1_i} union {y2_i}; Alice simulates the rest,
    # so the only cut edges are the 2*ell matching edges and the ell edges (y2_i, y3_i).
    bob = frozenset(y1) | frozenset(y2)
    alice = frozenset(v for v in g.nodes() if v not in bob)
    return ConstructionG(
        ell=ell,
        beta=beta,
        instance=instance,
        graph=g,
        d_edges=frozenset(d_edges),
        alice_vertices=alice,
        bob_vertices=bob,
    )


# ----------------------------------------------------------------- properties
def claim_2_2_holds(construction: ConstructionG, i: int, r: int) -> bool:
    """Check Claim 2.2 for the index pair (i, r) on the built graph.

    If one of the edges (x1_i, x2_r), (y1_i, y2_r) exists there is a directed
    path of length 5 from x_{i,j} to y_{r,s} avoiding D; otherwise the only
    directed path is the D edge itself.
    """
    g = construction.graph
    has_shortcut = g.has_edge(("x1", i), ("x2", r)) or g.has_edge(("y1", i), ("y2", r))
    without_d = g.edge_subgraph(construction.non_d_edges())
    source = ("x", i, 1)
    target = ("y", r, 1)
    reachable = without_d.has_path_within(source, target, max_len=5)
    if has_shortcut:
        return reachable
    # No shortcut: no path of any length avoiding D may exist.
    any_path = target in without_d.bfs_distances(source)
    return not any_path


def disjoint_case_spanner(construction: ConstructionG) -> set[Arc]:
    """Lemma 2.3's sparse spanner for disjoint inputs: all edges outside D."""
    return construction.non_d_edges()


def minimum_required_d_edges(construction: ConstructionG) -> int:
    """Lower bound on D edges in *any* k-spanner (k >= 5): beta^2 per bad pair."""
    return len(construction.bad_pairs()) * construction.beta**2


def theorem_1_1_parameters(n_target: int, alpha: float) -> tuple[int, int]:
    """The (ell, beta) choice from the proof of Theorem 1.1 (randomised bound).

    ``q = ceil(alpha * c) + 1``, ``ell = floor(sqrt(n'/(c q)))``, ``beta = q * ell``.
    Requires alpha <= n'/100 so that ell is positive.
    """
    c = SPANNER_CONSTANT_C
    q = int(math.ceil(alpha * c)) + 1
    ell = int(math.floor(math.sqrt(n_target / (c * q))))
    if ell < 1:
        raise ValueError("n_target too small for this alpha (need alpha <= n/100)")
    return ell, q * ell


def theorem_2_8_parameters(n_target: int, alpha: float) -> tuple[int, int]:
    """The (ell, beta) choice from the proof of Theorem 2.8 (deterministic bound).

    ``beta = ceil(sqrt(12 alpha c)) + 1``, ``ell = floor(n'/(c beta))`` (requires beta <= ell).
    """
    c = SPANNER_CONSTANT_C
    beta = int(math.ceil(math.sqrt(12 * alpha * c))) + 1
    ell = int(math.floor(n_target / (c * beta)))
    if ell < beta:
        raise ValueError("n_target too small for this alpha (need beta <= ell)")
    return ell, beta
