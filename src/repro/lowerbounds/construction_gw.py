"""The weighted lower-bound constructions of Section 2.3 (Figure 2).

``G_w(ell)`` is the beta = 1 specialisation of G(ell, beta) with the Y3 layer
removed and weights: 0 on every edge outside the dense component D and 1 on
the edges of D.  A weighted directed k-spanner (k >= 4) of cost zero exists
iff the inputs are disjoint (Theorem 2.9).  The undirected variant replaces
the (y2_i, y_i) edge by a path of length k-3 so that the same characterisation
holds for undirected k-spanners (Theorem 2.10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.digraph import Arc, DiGraph
from repro.graphs.graph import Edge, Graph, edge_key
from repro.lowerbounds.two_party import DisjointnessInstance


@dataclass
class ConstructionGw:
    """The weighted directed construction G_w(ell)."""

    ell: int
    instance: DisjointnessInstance
    graph: DiGraph
    d_edges: frozenset[Arc]
    alice_vertices: frozenset
    bob_vertices: frozenset

    def cut_edges(self) -> set[Arc]:
        cut = set()
        for u, v in self.graph.edges():
            if (u in self.bob_vertices) != (v in self.bob_vertices):
                cut.add((u, v))
        return cut

    def zero_weight_arcs(self) -> set[Arc]:
        return {a for a in self.graph.edges() if self.graph.weight(*a) == 0}


def build_construction_gw(ell: int, instance: DisjointnessInstance) -> ConstructionGw:
    """Build the weighted directed construction for inputs of length ell^2."""
    if ell < 1:
        raise ValueError("ell must be positive")
    if instance.n_bits != ell * ell:
        raise ValueError(f"inputs must have ell^2 = {ell * ell} bits, got {instance.n_bits}")

    g = DiGraph()
    for i in range(1, ell + 1):
        for label in ("x1", "x2", "y1", "y2", "x", "y"):
            g.add_node((label, i))

    d_edges = set()
    for i in range(1, ell + 1):
        g.add_edge(("x1", i), ("y1", i), 0.0)
        g.add_edge(("x2", i), ("y2", i), 0.0)
        g.add_edge(("x", i), ("x1", i), 0.0)
        g.add_edge(("y2", i), ("y", i), 0.0)
        for j in range(1, ell + 1):
            g.add_edge(("x", i), ("y", j), 1.0)
            d_edges.add((("x", i), ("y", j)))
    for i in range(1, ell + 1):
        for j in range(1, ell + 1):
            index = (i - 1) * ell + (j - 1)
            if instance.a[index] == 0:
                g.add_edge(("x1", i), ("x2", j), 0.0)
            if instance.b[index] == 0:
                g.add_edge(("y1", i), ("y2", j), 0.0)

    # Bob's side is the paper's Y1 = {y1_i} union {y2_i}, keeping the cut at Theta(ell).
    bob = frozenset(("y1", i) for i in range(1, ell + 1)) | frozenset(
        ("y2", i) for i in range(1, ell + 1)
    )
    alice = frozenset(v for v in g.nodes() if v not in bob)
    return ConstructionGw(
        ell=ell,
        instance=instance,
        graph=g,
        d_edges=frozenset(d_edges),
        alice_vertices=alice,
        bob_vertices=bob,
    )


def has_zero_cost_spanner(construction: ConstructionGw, k: int = 4) -> bool:
    """True iff every D edge is covered by a weight-0 directed path of length <= k.

    Theorem 2.9: this holds exactly when the input strings are disjoint, so a
    single D edge in the output of any alpha-approximation betrays an
    intersection.
    """
    zero_graph = construction.graph.edge_subgraph(construction.zero_weight_arcs())
    for u, v in construction.d_edges:
        if not zero_graph.has_path_within(u, v, k):
            return False
    return True


def zero_cost_spanner(construction: ConstructionGw) -> set[Arc]:
    """The candidate zero-cost spanner (all weight-0 arcs)."""
    return construction.zero_weight_arcs()


# ------------------------------------------------------- undirected variant
@dataclass
class ConstructionGwUndirected:
    """The undirected weighted construction of Theorem 2.10 for stretch k."""

    ell: int
    k: int
    instance: DisjointnessInstance
    graph: Graph
    d_edges: frozenset[Edge]
    bob_vertices: frozenset

    def zero_weight_edges(self) -> set[Edge]:
        return {e for e in self.graph.edges() if self.graph.weight(*e) == 0}


def build_construction_gw_undirected(
    ell: int, instance: DisjointnessInstance, k: int = 4
) -> ConstructionGwUndirected:
    """Undirected variant: the (y2_i, y_i) link becomes a weight-0 path of length k-3."""
    if k < 4:
        raise ValueError("the undirected construction needs k >= 4")
    if instance.n_bits != ell * ell:
        raise ValueError(f"inputs must have ell^2 = {ell * ell} bits, got {instance.n_bits}")

    g = Graph()
    for i in range(1, ell + 1):
        for label in ("x1", "x2", "y1", "y2", "x", "y"):
            g.add_node((label, i))

    d_edges = set()
    for i in range(1, ell + 1):
        g.add_edge(("x1", i), ("y1", i), 0.0)
        g.add_edge(("x2", i), ("y2", i), 0.0)
        g.add_edge(("x", i), ("x1", i), 0.0)
        # Path of length k-3 from y2_i to y_i through fresh relay vertices.
        previous = ("y2", i)
        for step in range(1, k - 3):
            relay = ("yr", i, step)
            g.add_node(relay)
            g.add_edge(previous, relay, 0.0)
            previous = relay
        g.add_edge(previous, ("y", i), 0.0)
        for j in range(1, ell + 1):
            g.add_edge(("x", i), ("y", j), 1.0)
            d_edges.add(edge_key(("x", i), ("y", j)))
    for i in range(1, ell + 1):
        for j in range(1, ell + 1):
            index = (i - 1) * ell + (j - 1)
            if instance.a[index] == 0:
                g.add_edge(("x1", i), ("x2", j), 0.0)
            if instance.b[index] == 0:
                g.add_edge(("y1", i), ("y2", j), 0.0)

    bob = frozenset(("y1", i) for i in range(1, ell + 1)) | frozenset(
        ("y2", i) for i in range(1, ell + 1)
    )
    return ConstructionGwUndirected(
        ell=ell, k=k, instance=instance, graph=g, d_edges=frozenset(d_edges), bob_vertices=bob
    )


def has_zero_cost_spanner_undirected(construction: ConstructionGwUndirected) -> bool:
    """True iff every D edge is covered by a weight-0 path of length <= k."""
    zero_graph = construction.graph.edge_subgraph(construction.zero_weight_edges())
    for u, v in construction.d_edges:
        if not zero_graph.has_path_within(u, v, construction.k):
            return False
    return True
