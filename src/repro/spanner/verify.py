"""Spanner verification: is a chosen edge set a valid k-spanner?

Definitions follow Section 1.5 of the paper.  An edge ``{u, v}`` (or directed
edge ``(u, v)``) is *covered* by an edge subset ``S`` if ``S`` contains a
path (directed path) of length at most ``k`` between ``u`` and ``v``.  A
k-spanner of ``G`` is a subgraph covering all edges of ``G``; a k-spanner of
a subgraph ``G'`` covers all edges of ``G'`` (possibly using edges of ``G``
outside ``G'``).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graphs.client_server import ClientServerInstance
from repro.graphs.digraph import Arc, DiGraph
from repro.graphs.graph import Edge, Graph, Node, edge_key


def _spanner_subgraph(graph: Graph, spanner_edges: Iterable[Edge]) -> Graph:
    sub = Graph()
    sub.add_nodes_from(graph.nodes())
    for u, v in spanner_edges:
        if not graph.has_edge(u, v):
            raise ValueError(f"spanner edge {(u, v)!r} is not an edge of the graph")
        sub.add_edge(u, v, graph.weight(u, v))
    return sub


def _spanner_subdigraph(graph: DiGraph, spanner_arcs: Iterable[Arc]) -> DiGraph:
    sub = DiGraph()
    sub.add_nodes_from(graph.nodes())
    for u, v in spanner_arcs:
        if not graph.has_edge(u, v):
            raise ValueError(f"spanner arc {(u, v)!r} is not an arc of the graph")
        sub.add_edge(u, v, graph.weight(u, v))
    return sub


def edge_covered(spanner: Graph, u: Node, v: Node, k: int) -> bool:
    """Is the (undirected) edge {u, v} covered by the spanner subgraph?"""
    if k == 2:
        # Fast path used constantly by the 2-spanner algorithms.
        if spanner.has_edge(u, v):
            return True
        return bool(spanner.neighbors(u) & spanner.neighbors(v))
    return spanner.has_path_within(u, v, k)


def arc_covered(spanner: DiGraph, u: Node, v: Node, k: int) -> bool:
    """Is the directed edge (u, v) covered by the spanner subgraph?"""
    if k == 2:
        if spanner.has_edge(u, v):
            return True
        return bool(spanner.successors(u) & spanner.predecessors(v))
    return spanner.has_path_within(u, v, k)


def uncovered_edges(
    graph: Graph, spanner_edges: Iterable[Edge], k: int, targets: Iterable[Edge] | None = None
) -> set[Edge]:
    """Target edges (default: all edges) not covered by ``spanner_edges``."""
    sub = _spanner_subgraph(graph, spanner_edges)
    target_list = list(graph.edges()) if targets is None else [edge_key(u, v) for u, v in targets]
    return {e for e in target_list if not edge_covered(sub, e[0], e[1], k)}


def uncovered_arcs(
    graph: DiGraph, spanner_arcs: Iterable[Arc], k: int, targets: Iterable[Arc] | None = None
) -> set[Arc]:
    """Target arcs (default: all arcs) not covered by ``spanner_arcs``."""
    sub = _spanner_subdigraph(graph, spanner_arcs)
    target_list = list(graph.edges()) if targets is None else list(targets)
    return {a for a in target_list if not arc_covered(sub, a[0], a[1], k)}


def is_k_spanner(
    graph: Graph, spanner_edges: Iterable[Edge], k: int, targets: Iterable[Edge] | None = None
) -> bool:
    """True iff ``spanner_edges`` is a k-spanner of ``graph`` (or of ``targets``)."""
    if k < 1:
        raise ValueError("k must be at least 1")
    return not uncovered_edges(graph, spanner_edges, k, targets)


def is_k_spanner_directed(
    graph: DiGraph, spanner_arcs: Iterable[Arc], k: int, targets: Iterable[Arc] | None = None
) -> bool:
    """True iff ``spanner_arcs`` is a directed k-spanner of ``graph`` (or ``targets``)."""
    if k < 1:
        raise ValueError("k must be at least 1")
    return not uncovered_arcs(graph, spanner_arcs, k, targets)


def is_client_server_2_spanner(
    instance: ClientServerInstance, chosen_edges: Iterable[Edge]
) -> bool:
    """True iff ``chosen_edges`` are server edges covering every coverable client edge.

    Client edges that *cannot* be covered by any server edges are excluded
    (the paper's algorithm, Section 4.3.3, covers "all the edges that may be
    covered by server edges").
    """
    chosen = {edge_key(u, v) for u, v in chosen_edges}
    if not chosen <= instance.servers:
        return False
    targets = instance.coverable_clients()
    sub = _spanner_subgraph(instance.graph, chosen)
    return all(edge_covered(sub, u, v, 2) for u, v in targets)


def spanner_cost(graph: Graph | DiGraph, edges: Iterable) -> float:
    """Total weight of an edge set (equals its cardinality for unit weights)."""
    return sum(graph.weight(u, v) for u, v in edges)


def stretch_of(graph: Graph, spanner_edges: Iterable[Edge]) -> float:
    """The actual stretch of a spanner: max over edges of the spanner distance.

    Useful in tests to show that the produced 2-spanners frequently achieve
    stretch exactly 2 (and never more).
    """
    sub = _spanner_subgraph(graph, spanner_edges)
    worst = 0
    for u, v in graph.edges():
        if sub.has_edge(u, v):
            worst = max(worst, 1)
            continue
        dist = sub.bfs_distances(u).get(v)
        if dist is None:
            return float("inf")
        worst = max(worst, dist)
    return float(worst)
