"""LP-relaxation lower bounds on the minimum 2-spanner cost.

Exact optima (``repro.spanner.optimal``) are only tractable on small graphs.
For medium graphs the benchmarks estimate approximation ratios against the
standard path-based LP relaxation of the 2-spanner problem, whose optimum
never exceeds the true optimum:

    minimise   sum_e  c_e x_e
    subject to sum_{P covers t} y_{t,P} >= 1        for every target edge t
               y_{t,P} <= x_f                        for every option P of t, f in P
               0 <= x, y <= 1

where the covering options P are single edges or 2-paths (the same options as
the exact solver).  The LP is solved with ``scipy.optimize.linprog`` (HiGHS).
"""

from __future__ import annotations

from collections.abc import Iterable

# Hard dependency by design: this module is SciPy-coupled analysis (HiGHS
# via linprog), not engine code.  NumPy arrives with SciPy either way, so
# the engines' optional-accelerator ``_np`` guard would only obscure the
# real requirement here.
import numpy as np  # reprolint: disable=REP005
from scipy.optimize import linprog
from scipy.sparse import coo_matrix

from repro.graphs.client_server import ClientServerInstance
from repro.graphs.digraph import Arc, DiGraph
from repro.graphs.graph import Edge, Graph, edge_key
from repro.spanner.optimal import covering_options, covering_options_directed


def lp_cover_lower_bound(
    targets: list,
    options: dict,
    edge_cost: dict,
) -> float:
    """Generic LP lower bound for "pick edges so each target has a full option".

    ``options[t]`` is a list of frozensets of edge keys; ``edge_cost`` maps
    every edge appearing in any option to its cost.  Returns the LP optimum
    (0.0 when there are no targets).
    """
    if not targets:
        return 0.0
    for t in targets:
        if not options[t]:
            raise ValueError(f"target {t!r} has no covering option; instance infeasible")

    edge_index = {e: i for i, e in enumerate(sorted(edge_cost, key=repr))}
    n_x = len(edge_index)
    y_index: dict[tuple[int, int], int] = {}
    for ti, t in enumerate(targets):
        for oi, _ in enumerate(options[t]):
            y_index[(ti, oi)] = n_x + len(y_index)
    n_vars = n_x + len(y_index)

    cost = np.zeros(n_vars)
    for e, i in edge_index.items():
        cost[i] = edge_cost[e]

    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    rhs: list[float] = []
    row = 0
    # Coverage constraints: -sum_P y_{t,P} <= -1
    for ti, t in enumerate(targets):
        for oi, _ in enumerate(options[t]):
            rows.append(row)
            cols.append(y_index[(ti, oi)])
            data.append(-1.0)
        rhs.append(-1.0)
        row += 1
    # Linking constraints: y_{t,P} - x_f <= 0
    for ti, t in enumerate(targets):
        for oi, option in enumerate(options[t]):
            for f in option:
                rows.append(row)
                cols.append(y_index[(ti, oi)])
                data.append(1.0)
                rows.append(row)
                cols.append(edge_index[f])
                data.append(-1.0)
                rhs.append(0.0)
                row += 1

    a_ub = coo_matrix((data, (rows, cols)), shape=(row, n_vars))
    result = linprog(
        cost,
        A_ub=a_ub,
        b_ub=np.array(rhs),
        bounds=[(0.0, 1.0)] * n_vars,
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"LP solver failed: {result.message}")
    return float(result.fun)


def lp_lower_bound_2spanner(graph: Graph, use_weights: bool = False) -> float:
    """LP lower bound for the (possibly weighted) undirected minimum 2-spanner."""
    targets = list(graph.edges())
    options = {t: covering_options(graph, t, 2) for t in targets}
    cost = {e: (graph.weight(*e) if use_weights else 1.0) for e in graph.edges()}
    return lp_cover_lower_bound(targets, options, cost)


def lp_lower_bound_2spanner_directed(graph: DiGraph, use_weights: bool = False) -> float:
    """LP lower bound for the (possibly weighted) directed minimum 2-spanner."""
    targets: list[Arc] = list(graph.edges())
    options = {t: covering_options_directed(graph, t, 2) for t in targets}
    cost = {a: (graph.weight(*a) if use_weights else 1.0) for a in graph.edges()}
    return lp_cover_lower_bound(targets, options, cost)


def lp_lower_bound_client_server(instance: ClientServerInstance) -> float:
    """LP lower bound for the client-server 2-spanner (coverable clients only)."""
    targets = sorted(instance.coverable_clients(), key=repr)
    allowed = instance.servers
    options = {}
    for t in targets:
        opts = [o for o in covering_options(instance.graph, t, 2) if o <= allowed]
        options[t] = opts
    cost = {e: 1.0 for e in allowed}
    return lp_cover_lower_bound(targets, options, cost)


def lp_lower_bound_targets(
    graph: Graph, targets: Iterable[Edge], k: int = 2, use_weights: bool = False
) -> float:
    """LP lower bound for covering only ``targets`` with paths of length <= k."""
    target_list = [edge_key(u, v) for u, v in targets]
    options = {t: covering_options(graph, t, k) for t in target_list}
    cost = {e: (graph.weight(*e) if use_weights else 1.0) for e in graph.edges()}
    return lp_cover_lower_bound(target_list, options, cost)
