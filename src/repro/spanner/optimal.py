"""Exact minimum k-spanner solvers for small instances (branch and bound).

The paper's (1+eps) LOCAL algorithm (Section 6) explicitly assumes unbounded
local computation and solves optimal spanners of polylogarithmic-size balls;
this module is that oracle.  It is also used by the benchmarks to measure the
true approximation ratio of the distributed algorithms on small graphs, and
by the Figure-3 reduction experiment (Claim 3.1), which equates an exact
weighted 2-spanner with an exact minimum vertex cover.

The solver works with *covering options*: for each target edge, every minimal
edge set that would cover it (for k = 2: the edge itself, or a pair of edges
through a common neighbour).  Branch and bound then picks the cheapest edge
set containing at least one full option per target.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graphs.client_server import ClientServerInstance
from repro.graphs.digraph import Arc, DiGraph
from repro.graphs.graph import Edge, Graph, Node, edge_key


# ------------------------------------------------------------------ options
def covering_options(graph: Graph, target: Edge, k: int) -> list[frozenset[Edge]]:
    """All minimal edge sets forming a u-v path of length <= k (u, v = target).

    Each option is a frozenset of canonical edge keys.  For k = 2 this is the
    edge itself plus one pair per common neighbour; for larger k all simple
    paths of length <= k are enumerated (small graphs only).
    """
    u, v = target
    options: list[frozenset[Edge]] = []
    if graph.has_edge(u, v):
        options.append(frozenset({edge_key(u, v)}))
    if k >= 2:
        options.extend(
            frozenset({edge_key(u, x), edge_key(x, v)})
            for x in sorted(graph.neighbors(u) & graph.neighbors(v), key=repr)
        )
    if k >= 3:
        options.extend(_long_path_options(graph, u, v, k))
    return _drop_dominated(options)


def _long_path_options(graph: Graph, u: Node, v: Node, k: int) -> list[frozenset[Edge]]:
    """Simple u-v paths of length 3..k as edge sets (DFS enumeration)."""
    results: list[frozenset[Edge]] = []

    def dfs(current: Node, visited: list[Node]) -> None:
        if len(visited) - 1 >= k:
            return
        for nxt in sorted(graph.neighbors(current), key=repr):
            if nxt == v and len(visited) >= 3:
                path = visited + [v]
                results.append(
                    frozenset(edge_key(a, b) for a, b in zip(path, path[1:]))
                )
            elif nxt not in visited and nxt != v:
                dfs(nxt, visited + [nxt])

    dfs(u, [u])
    return results


def covering_options_directed(graph: DiGraph, target: Arc, k: int) -> list[frozenset[Arc]]:
    """All minimal arc sets forming a directed u->v path of length <= k."""
    u, v = target
    options: list[frozenset[Arc]] = []
    if graph.has_edge(u, v):
        options.append(frozenset({(u, v)}))
    if k >= 2:
        options.extend(
            frozenset({(u, x), (x, v)})
            for x in sorted(graph.successors(u) & graph.predecessors(v), key=repr)
        )
    if k >= 3:
        results: list[frozenset[Arc]] = []

        def dfs(current: Node, visited: list[Node]) -> None:
            if len(visited) - 1 >= k:
                return
            for nxt in sorted(graph.successors(current), key=repr):
                if nxt == v and len(visited) >= 3:
                    path = visited + [v]
                    results.append(frozenset(zip(path, path[1:])))
                elif nxt not in visited and nxt != v:
                    dfs(nxt, visited + [nxt])

        dfs(u, [u])
        options.extend(results)
    return _drop_dominated(options)


def _drop_dominated(options: list[frozenset]) -> list[frozenset]:
    """Remove options that are supersets of another option (never optimal to use)."""
    kept: list[frozenset] = []
    for opt in sorted(set(options), key=lambda o: (len(o), sorted(map(repr, o)))):
        if not any(other <= opt for other in kept):
            kept.append(opt)
    return kept


# ---------------------------------------------------------- branch and bound
class _CoverSolver:
    """Minimum-cost edge set containing a full covering option per target."""

    def __init__(
        self,
        targets: list,
        options: dict,
        edge_cost: dict,
        node_budget: int = 2_000_000,
    ) -> None:
        self.targets = targets
        self.options = options
        self.edge_cost = edge_cost
        self.node_budget = node_budget
        self.nodes_explored = 0
        self.best_cost = float("inf")
        self.best_set: set | None = None

    def solve(self) -> tuple[set, float]:
        for t in self.targets:
            if not self.options[t]:
                raise ValueError(f"target {t!r} has no covering option; instance infeasible")
        greedy_set, greedy_cost = self._greedy()
        self.best_set, self.best_cost = greedy_set, greedy_cost
        self._search(set(), 0.0)
        assert self.best_set is not None
        return set(self.best_set), self.best_cost

    # -- helpers
    def _added_cost(self, chosen: set, option: frozenset) -> float:
        return sum(self.edge_cost[e] for e in option if e not in chosen)

    def _covered(self, chosen: set, target) -> bool:
        return any(opt <= chosen for opt in self.options[target])

    def _greedy(self) -> tuple[set, float]:
        chosen: set = set()
        order = sorted(self.targets, key=lambda t: (len(self.options[t]), repr(t)))
        for t in order:
            if self._covered(chosen, t):
                continue
            best_opt = min(self.options[t], key=lambda o: (self._added_cost(chosen, o), sorted(map(repr, o))))
            chosen |= best_opt
        cost = sum(self.edge_cost[e] for e in chosen)
        return chosen, cost

    def _search(self, chosen: set, cost: float) -> None:
        self.nodes_explored += 1
        if self.nodes_explored > self.node_budget:
            raise RuntimeError(
                "exact spanner search exceeded its node budget; "
                "instance too large for the exact solver"
            )
        if cost >= self.best_cost:
            return
        pending = [t for t in self.targets if not self._covered(chosen, t)]
        if not pending:
            self.best_cost = cost
            self.best_set = set(chosen)
            return
        # Branch on the most constrained target.
        target = min(pending, key=lambda t: (len(self.options[t]), repr(t)))
        branches = sorted(
            self.options[target],
            key=lambda o: (self._added_cost(chosen, o), sorted(map(repr, o))),
        )
        for option in branches:
            added = self._added_cost(chosen, option)
            if cost + added >= self.best_cost:
                continue
            new_chosen = chosen | option
            self._search(new_chosen, cost + added)


# -------------------------------------------------------------- public API
def minimum_k_spanner_exact(
    graph: Graph,
    k: int = 2,
    targets: Iterable[Edge] | None = None,
    use_weights: bool = False,
    allowed_edges: Iterable[Edge] | None = None,
) -> set[Edge]:
    """Exact minimum k-spanner (of ``targets``, default all edges) of a small graph.

    ``allowed_edges`` restricts which edges may be used by the spanner (needed
    for the client-server variant); by default all graph edges are allowed.
    ``use_weights`` switches the objective from cardinality to total weight.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    target_list = (
        [edge_key(u, v) for u, v in targets] if targets is not None else list(graph.edges())
    )
    allowed = (
        {edge_key(u, v) for u, v in allowed_edges}
        if allowed_edges is not None
        else graph.edge_set()
    )
    options: dict[Edge, list[frozenset[Edge]]] = {}
    for t in target_list:
        opts = [o for o in covering_options(graph, t, k) if o <= allowed]
        options[t] = opts
    cost = {
        e: (graph.weight(*e) if use_weights else 1.0) for e in allowed
    }
    solver = _CoverSolver(target_list, options, cost)
    best, _ = solver.solve()
    return best


def minimum_k_spanner_exact_directed(
    graph: DiGraph,
    k: int = 2,
    targets: Iterable[Arc] | None = None,
    use_weights: bool = False,
) -> set[Arc]:
    """Exact minimum directed k-spanner of a small digraph."""
    if k < 1:
        raise ValueError("k must be at least 1")
    target_list = list(targets) if targets is not None else list(graph.edges())
    options = {t: covering_options_directed(graph, t, k) for t in target_list}
    cost = {a: (graph.weight(*a) if use_weights else 1.0) for a in graph.edges()}
    solver = _CoverSolver(target_list, options, cost)
    best, _ = solver.solve()
    return best


def minimum_client_server_2_spanner_exact(instance: ClientServerInstance) -> set[Edge]:
    """Exact optimum for the client-server 2-spanner problem (coverable clients only)."""
    targets = instance.coverable_clients()
    return minimum_k_spanner_exact(
        instance.graph, k=2, targets=targets, allowed_edges=instance.servers
    )


def spanner_size_lower_bound(graph: Graph) -> int:
    """Any spanner of a graph contains at least n - (#components) edges.

    For connected graphs this is the paper's repeatedly-used ``n - 1`` bound
    (the reason a trivial n-approximation needs no communication).
    """
    return graph.number_of_nodes() - len(graph.connected_components())
