"""Stars, star densities and densest-star computations (paper Section 4).

A *v-star* is a non-empty subset of the edges between ``v`` and some of its
neighbours; we represent it by its set of *leaves*.  An edge ``{u, w}`` is
*2-spanned* by a v-star with leaf set ``T`` if ``u, w`` are both in ``T``
(the star then contains the path u-v-w).  The density of a star with respect
to a set ``H`` of still-uncovered edges is::

    rho(S, H) = |{edges of H 2-spanned by S}| / |S|          (unweighted)
    rho(S, H) = |{edges of H 2-spanned by S}| / w(S)          (weighted)

Densest stars reduce to (node-weighted) densest subgraph on the neighbourhood
of ``v`` and are computed exactly with :mod:`repro.flow.densest`.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from fractions import Fraction

from repro.flow.densest import densest_subgraph, subgraph_density
from repro.graphs.digraph import Arc, DiGraph
from repro.graphs.graph import Edge, Graph, Node, edge_key


@dataclass(frozen=True)
class Star:
    """A v-star, identified by its centre and its leaf set."""

    center: Node
    leaves: frozenset[Node]

    def edges(self) -> set[Edge]:
        """The canonical keys of the star's edges {center, leaf}."""
        return {edge_key(self.center, leaf) for leaf in self.leaves}

    def size(self) -> int:
        return len(self.leaves)

    def weight(self, graph: Graph) -> float:
        return sum(graph.weight(self.center, leaf) for leaf in self.leaves)

    def spans(self, edge: Edge) -> bool:
        u, v = edge
        return u in self.leaves and v in self.leaves


# ---------------------------------------------------------------- densities
def spanned_edges(leaves: Iterable[Node], candidate_edges: Iterable[Edge]) -> set[Edge]:
    """The candidate edges with both endpoints in ``leaves`` (i.e. 2-spanned)."""
    leaf_set = set(leaves)
    return {e for e in candidate_edges if e[0] in leaf_set and e[1] in leaf_set}


def star_density(
    leaves: Iterable[Node],
    candidate_edges: Iterable[Edge],
    leaf_weights: dict[Node, Fraction] | None = None,
) -> Fraction:
    """Density of the star with the given leaves w.r.t. ``candidate_edges``."""
    leaf_set = set(leaves)
    if not leaf_set:
        return Fraction(0)
    weights = None if leaf_weights is None else {v: Fraction(leaf_weights[v]) for v in leaf_set}
    return subgraph_density(leaf_set, list(candidate_edges), weights)


def rounded_up_power_of_two(value: Fraction) -> Fraction:
    """The smallest power of two strictly greater than ``value`` (0 for value <= 0).

    This is the paper's "rounded density": powers may have negative exponents
    (needed in the weighted case, where densities can be below 1).
    """
    value = Fraction(value)
    if value <= 0:
        return Fraction(0)
    power = Fraction(1)
    if power > value:
        while power / 2 > value:
            power /= 2
    else:
        while power <= value:
            power *= 2
    return power


def rounded_density(
    leaves: Iterable[Node],
    candidate_edges: Iterable[Edge],
    leaf_weights: dict[Node, Fraction] | None = None,
) -> Fraction:
    """rho~ = the density rounded up to the next power of two."""
    return rounded_up_power_of_two(star_density(leaves, candidate_edges, leaf_weights))


# ------------------------------------------------------------ densest stars
def densest_star(
    pool: Iterable[Node],
    candidate_edges: Iterable[Edge],
    leaf_weights: dict[Node, Fraction] | None = None,
    method: str = "exact",
) -> tuple[frozenset[Node], Fraction]:
    """The densest star whose leaves are drawn from ``pool``.

    ``candidate_edges`` are the uncovered edges that could be 2-spanned
    (callers pass the edges of ``H_v`` restricted to the pool).  Returns the
    leaf set and its exact density; the leaf set is empty only if the pool is.
    """
    pool_list = list(dict.fromkeys(pool))
    if not pool_list:
        return frozenset(), Fraction(0)
    pool_set = set(pool_list)
    edges = [e for e in candidate_edges if e[0] in pool_set and e[1] in pool_set]
    weights = (
        None
        if leaf_weights is None
        else {v: Fraction(leaf_weights.get(v, 1)) for v in pool_list}
    )
    subset, density = densest_subgraph(pool_list, edges, weights, method=method)
    return frozenset(subset), density


def densest_star_of_vertex(
    graph: Graph,
    v: Node,
    uncovered: set[Edge],
    weighted: bool = False,
    method: str = "exact",
) -> tuple[frozenset[Node], Fraction]:
    """Densest v-star of ``graph`` with respect to the ``uncovered`` edge set.

    In the weighted mode, leaf ``u`` carries weight ``w({v, u})`` so that the
    star's denominator is its total edge weight (paper Section 4.3.2).
    """
    neighbors = graph.neighbors(v)
    candidate = {e for e in uncovered if e[0] in neighbors and e[1] in neighbors}
    weights = None
    if weighted:
        weights = {u: Fraction(graph.weight(v, u)).limit_denominator(10**9) for u in neighbors}
    return densest_star(neighbors, candidate, weights, method=method)


# ----------------------------------------------------------- directed stars
@dataclass(frozen=True)
class DirectedStarResult:
    """Outcome of the directed densest-star 2-approximation (Section 4.3.1)."""

    leaves: frozenset[Node]
    arcs: frozenset[Arc]
    directed_density: Fraction
    undirected_density: Fraction


def directed_star_arcs(graph: DiGraph, v: Node, leaves: Iterable[Node]) -> frozenset[Arc]:
    """Arcs between ``v`` and each leaf: both directions when both exist."""
    arcs: set[Arc] = set()
    for u in leaves:
        if graph.has_edge(v, u):
            arcs.add((v, u))
        if graph.has_edge(u, v):
            arcs.add((u, v))
    return frozenset(arcs)


def directed_spanned_arcs(
    graph: DiGraph, v: Node, leaves: Iterable[Node], candidate_arcs: Iterable[Arc]
) -> set[Arc]:
    """Candidate arcs (u, w) 2-spanned by the directed star: need (u,v),(v,w) in the star's arcs."""
    leaf_set = set(leaves)
    spanned = set()
    for u, w in candidate_arcs:
        if u in leaf_set and w in leaf_set and graph.has_edge(u, v) and graph.has_edge(v, w):
            spanned.add((u, w))
    return spanned


def directed_star_density(
    graph: DiGraph, v: Node, leaves: Iterable[Node], candidate_arcs: Iterable[Arc]
) -> Fraction:
    """Directed density: #spanned candidate arcs / #arcs of the directed star."""
    arcs = directed_star_arcs(graph, v, leaves)
    if not arcs:
        return Fraction(0)
    spanned = directed_spanned_arcs(graph, v, leaves, candidate_arcs)
    return Fraction(len(spanned), len(arcs))


def densest_directed_star_approx(
    graph: DiGraph,
    v: Node,
    uncovered_arcs: set[Arc],
    method: str = "exact",
) -> DirectedStarResult:
    """2-approximate densest directed v-star, following Section 4.3.1.

    Arcs of ``uncovered_arcs`` that cannot be 2-spanned by any v-star (i.e.
    missing (u, v) or (v, w)) are discarded; directions are then ignored and
    the undirected densest star is computed.  Claims 4.10-4.11 show the
    resulting directed density is within a factor 2 of the optimum.
    """
    spannable = {
        (u, w)
        for (u, w) in uncovered_arcs
        if graph.has_edge(u, v) and graph.has_edge(v, w)
    }
    pool = graph.neighbors(v)
    undirected_candidates = {edge_key(u, w) for u, w in spannable}
    leaves, undirected = densest_star(pool, undirected_candidates, method=method)
    arcs = directed_star_arcs(graph, v, leaves)
    directed = directed_star_density(graph, v, leaves, spannable)
    return DirectedStarResult(
        leaves=leaves,
        arcs=arcs,
        directed_density=directed,
        undirected_density=undirected,
    )


# -------------------------------------------------------- client-server stars
def densest_server_star(
    instance_graph: Graph,
    server_neighbors: Iterable[Node],
    uncovered_clients: set[Edge],
    method: str = "exact",
) -> tuple[frozenset[Node], Fraction]:
    """Densest star made of server edges, 2-spanning uncovered *client* edges.

    ``server_neighbors`` must be the neighbours of the centre reachable by a
    server edge; only client edges with both endpoints in that pool count.
    """
    return densest_star(server_neighbors, uncovered_clients, method=method)
