"""Baswana-Sen randomised (2k-1)-spanner with O(k * n^{1+1/k}) expected edges.

The paper repeatedly contrasts its hardness results with the *undirected*
CONGEST world, where a k-round construction of (2k-1)-spanners with
O(n^{1+1/k}) edges exists and immediately yields an O(n^{1/k})-approximation
of the minimum (2k-1)-spanner (any spanner of a connected graph has at least
n-1 edges).  Experiment E13 measures that implied ratio.

The algorithm is the classical clustering construction: k-1 sampling phases
where cluster centres survive with probability n^{-1/k}, followed by a final
phase joining every vertex to each adjacent cluster.  The distributed version
runs in O(k) rounds; this implementation is the standard centralised
transcription of those rounds (per-vertex decisions only).
"""

from __future__ import annotations

import random

from repro.graphs.graph import Edge, Graph, Node, edge_key


def baswana_sen_spanner(
    graph: Graph, k: int, seed: int | None = None
) -> set[Edge]:
    """A (2k-1)-spanner with O(k n^{1+1/k}) edges in expectation.

    Weights are respected in the sense of the weighted Baswana-Sen variant:
    whenever one representative edge towards a cluster is kept, the lightest
    such edge is chosen.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    rng = random.Random(seed)
    n = max(2, graph.number_of_nodes())
    sample_p = n ** (-1.0 / k)

    spanner: set[Edge] = set()
    # cluster_of[v] = centre of the cluster containing v (None = vertex discarded)
    cluster_of: dict[Node, Node | None] = {v: v for v in graph.nodes()}

    def lightest_edge_to(v: Node, members: set[Node]) -> Edge | None:
        best: Edge | None = None
        best_w = float("inf")
        for u in sorted(graph.neighbors(v) & members, key=repr):
            w = graph.weight(v, u)
            if w < best_w:
                best, best_w = edge_key(v, u), w
        return best

    for _phase in range(k - 1):
        # Sorted centres: the Bernoulli draws below consume one rng value per
        # centre, so the iteration order *is* the sampling outcome.  A plain
        # set here would tie the spanner to PYTHONHASHSEED for any node type
        # whose hash is salted (e.g. strings).
        centres = sorted({c for c in cluster_of.values() if c is not None}, key=repr)
        sampled = {c for c in centres if rng.random() < sample_p}
        new_cluster: dict[Node, Node | None] = {}
        for v in graph.nodes():
            current = cluster_of[v]
            if current is None:
                new_cluster[v] = None
                continue
            if current in sampled:
                new_cluster[v] = current
                continue
            # Group the neighbours of v by their current cluster.
            nbr_clusters: dict[Node, set[Node]] = {}
            for u in graph.neighbors(v):
                c = cluster_of[u]
                if c is not None:
                    nbr_clusters.setdefault(c, set()).add(u)
            adjacent_sampled = sorted(
                (c for c in nbr_clusters if c in sampled), key=repr
            )
            if adjacent_sampled:
                # Join the sampled cluster reachable by the lightest edge.
                best_c = None
                best_edge = None
                best_w = float("inf")
                for c in adjacent_sampled:
                    e = lightest_edge_to(v, nbr_clusters[c])
                    if e is not None and graph.weight(*e) < best_w:
                        best_c, best_edge, best_w = c, e, graph.weight(*e)
                assert best_edge is not None and best_c is not None
                spanner.add(best_edge)
                new_cluster[v] = best_c
            else:
                # No adjacent sampled cluster: keep one edge per adjacent cluster
                # and leave the clustering process.
                for c in sorted(nbr_clusters, key=repr):
                    e = lightest_edge_to(v, nbr_clusters[c])
                    if e is not None:
                        spanner.add(e)
                new_cluster[v] = None
        cluster_of = new_cluster

    # Final phase: every surviving vertex connects to each adjacent cluster.
    for v in graph.nodes():
        nbr_clusters: dict[Node, set[Node]] = {}
        for u in graph.neighbors(v):
            c = cluster_of[u]
            if c is not None:
                nbr_clusters.setdefault(c, set()).add(u)
        for c in sorted(nbr_clusters, key=repr):
            if cluster_of[v] is not None and c == cluster_of[v]:
                continue
            e = lightest_edge_to(v, nbr_clusters[c])
            if e is not None:
                spanner.add(e)

    # Intra-cluster edges towards the centre (the clustering keeps a BFS-star
    # towards each centre: the edge used when joining was already added in the
    # sampling phases; the initial singleton clusters need nothing).
    return spanner


def implied_approximation_ratio(graph: Graph, spanner_size: int) -> float:
    """Spanner size divided by the n-1 lower bound: an upper bound on the
    approximation ratio of using the sparse spanner as a minimum-spanner proxy."""
    lower = max(1, graph.number_of_nodes() - 1)
    return spanner_size / lower


def expected_size_bound(n: int, k: int) -> float:
    """The O(k * n^{1+1/k}) expected-size yardstick used by experiment E13."""
    return k * n ** (1.0 + 1.0 / k)
