"""Dominating-set baselines: exact, sequential greedy, and an expectation-only
randomised variant in the style of Jia, Rajaraman & Suel (2002).

The paper's MDS contribution (Section 5) is that its O(log Delta) ratio is
*guaranteed*, whereas previous CONGEST algorithms achieve O(log Delta) only in
expectation.  Experiment E6 compares the three.
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.graphs.graph import Graph, Node
from repro.spanner.stars import rounded_up_power_of_two


def greedy_dominating_set(graph: Graph) -> set[Node]:
    """Classic sequential greedy: repeatedly take the vertex covering the most
    uncovered vertices (ln(Delta)+1 approximation)."""
    uncovered = set(graph.nodes())
    chosen: set[Node] = set()
    while uncovered:
        best = max(
            graph.nodes(),
            key=lambda v: (
                len(({v} | graph.neighbors(v)) & uncovered),
                repr(v),
            ),
        )
        chosen.add(best)
        uncovered -= {best} | graph.neighbors(best)
    return chosen


def exact_dominating_set(graph: Graph, node_budget: int = 2_000_000) -> set[Node]:
    """Exact minimum dominating set by branch and bound (small graphs only)."""
    nodes = sorted(graph.nodes(), key=repr)
    closed: dict[Node, set[Node]] = {v: {v} | graph.neighbors(v) for v in nodes}
    best: list[set[Node]] = [set(greedy_dominating_set(graph))]
    explored = [0]

    def search(chosen: set[Node], uncovered: set[Node]) -> None:
        explored[0] += 1
        if explored[0] > node_budget:
            raise RuntimeError("exact MDS search exceeded its node budget")
        if len(chosen) >= len(best[0]):
            return
        if not uncovered:
            best[0] = set(chosen)
            return
        # Branch on a vertex of minimum remaining coverage options.
        target = min(uncovered, key=lambda v: (len(closed[v]), repr(v)))
        for candidate in sorted(
            closed[target], key=lambda v: (-len(closed[v] & uncovered), repr(v))
        ):
            search(chosen | {candidate}, uncovered - closed[candidate])

    search(set(), set(nodes))
    return best[0]


def expectation_randomized_mds(graph: Graph, seed: int | None = None) -> set[Node]:
    """A Jia-et-al.-style LRG variant whose O(log Delta) ratio holds only in
    expectation: locally-maximal vertices join the set with probability
    1/(number of competing locally-maximal dominators), iterating until all
    vertices are covered.

    This is the comparison point for the paper's *guaranteed*-ratio algorithm;
    it is intentionally simple and can produce noticeably larger sets on
    unlucky runs, which is what experiment E6 visualises.
    """
    rng = random.Random(seed)
    uncovered = set(graph.nodes())
    chosen: set[Node] = set()
    guard = 0
    while uncovered:
        guard += 1
        if guard > 50 * max(4, graph.number_of_nodes()):
            # Extremely unlikely; finish deterministically rather than loop.
            chosen |= uncovered
            break
        span = {
            v: len(({v} | graph.neighbors(v)) & uncovered) for v in graph.nodes()
        }
        rounded = {v: rounded_up_power_of_two(Fraction(span[v])) for v in graph.nodes()}
        joined: set[Node] = set()
        for v in graph.nodes():
            if span[v] == 0:
                continue
            two_hop = {v}
            for u in graph.neighbors(v):
                two_hop.add(u)
                two_hop |= graph.neighbors(u)
            if rounded[v] < max(rounded[u] for u in two_hop):
                continue
            competitors = sum(
                1
                for u in two_hop
                if span[u] > 0 and rounded[u] == rounded[v]
            )
            if rng.random() < 1.0 / max(1, competitors):
                joined.add(v)
        for v in joined:
            chosen.add(v)
            uncovered -= {v} | graph.neighbors(v)
    return chosen
