"""Sequential greedy minimum 2-spanner of Kortsarz & Peleg (1994).

The paper's distributed algorithm (Section 4) is designed to match this
baseline's O(log(m/n)) approximation ratio; the benchmarks compare the two
head-to-head (experiment E14).  The greedy algorithm repeatedly adds the
globally densest star to the spanner until no star has density at least one
(at least ``1/w_max`` in the weighted case), then adds every still-uncovered
edge directly.
"""

from __future__ import annotations

from fractions import Fraction

from repro.graphs.graph import Edge, Graph, Node, edge_key
from repro.spanner.stars import densest_star_of_vertex, spanned_edges


def _coverage_update(
    graph: Graph, spanner: set[Edge], covered: set[Edge], new_edges: set[Edge]
) -> None:
    """Mark edges covered by the newly added spanner edges (2-paths only)."""
    covered |= new_edges
    adjacency: dict[Node, set[Node]] = {}
    for u, v in spanner:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    for u, v in list(graph.edges()):
        e = edge_key(u, v)
        if e in covered:
            continue
        if adjacency.get(u, set()) & adjacency.get(v, set()):
            covered.add(e)


def greedy_two_spanner(
    graph: Graph, weighted: bool = False, method: str = "exact"
) -> set[Edge]:
    """Kortsarz-Peleg greedy 2-spanner (O(log m/n) unweighted, O(log Delta) weighted).

    ``method`` selects the densest-star solver ('exact' or 'peeling').
    """
    spanner: set[Edge] = set()
    covered: set[Edge] = set()
    all_edges = graph.edge_set()

    if weighted:
        zero = {e for e in all_edges if graph.weight(*e) == 0}
        if zero:
            spanner |= zero
            _coverage_update(graph, spanner, covered, zero)
        wmax = max((graph.weight(*e) for e in all_edges), default=1.0)
        stop_threshold = Fraction(1) / Fraction(wmax) if wmax > 0 else Fraction(1)
    else:
        stop_threshold = Fraction(1)

    while True:
        uncovered = all_edges - covered
        if not uncovered:
            break
        best_vertex = None
        best_leaves: frozenset[Node] = frozenset()
        best_density = Fraction(-1)
        for v in sorted(graph.nodes(), key=repr):
            leaves, density = densest_star_of_vertex(
                graph, v, uncovered, weighted=weighted, method=method
            )
            if density > best_density:
                best_vertex, best_leaves, best_density = v, leaves, density
        if best_vertex is None or best_density < stop_threshold:
            spanner |= uncovered
            covered |= uncovered
            break
        star_edges = {edge_key(best_vertex, leaf) for leaf in best_leaves}
        spanner |= star_edges
        _coverage_update(graph, spanner, covered, star_edges)
    return spanner


def greedy_two_spanner_size_bound(graph: Graph) -> float:
    """Kortsarz-Peleg's O(log(m/n)) yardstick, exposed for benchmark reporting."""
    from repro.graphs.properties import log_m_over_n

    return log_m_over_n(graph)


def greedy_client_server_two_spanner(instance, method: str = "exact") -> set[Edge]:
    """Greedy baseline for the client-server variant (Elkin-Peleg style).

    Stars are built from server edges only and 2-span client edges; once the
    best density falls below 1/2, remaining coverable clients that are also
    servers are added directly, and remaining clients are covered by a
    cheapest 2-path of server edges.
    """
    from repro.spanner.stars import densest_server_star

    graph = instance.graph
    chosen: set[Edge] = set()
    targets = set(instance.coverable_clients())
    covered: set[Edge] = set()

    def update_cover() -> None:
        adjacency: dict[Node, set[Node]] = {}
        for u, v in chosen:
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        for e in targets:
            if e in covered:
                continue
            u, v = e
            if e in chosen or adjacency.get(u, set()) & adjacency.get(v, set()):
                covered.add(e)

    while True:
        uncovered = targets - covered
        if not uncovered:
            break
        best_vertex = None
        best_leaves: frozenset[Node] = frozenset()
        best_density = Fraction(-1)
        for v in sorted(graph.nodes(), key=repr):
            server_nbrs = {
                u for u in graph.neighbors(v) if edge_key(v, u) in instance.servers
            }
            pool_edges = {
                e for e in uncovered if e[0] in server_nbrs and e[1] in server_nbrs
            }
            leaves, density = densest_server_star(graph, server_nbrs, pool_edges, method=method)
            if density > best_density:
                best_vertex, best_leaves, best_density = v, leaves, density
        if best_vertex is None or best_density < Fraction(1, 2):
            for e in sorted(uncovered, key=repr):
                if e in instance.servers:
                    chosen.add(e)
                else:
                    u, v = e
                    commons = sorted(
                        (
                            x
                            for x in graph.neighbors(u) & graph.neighbors(v)
                            if edge_key(x, u) in instance.servers
                            and edge_key(x, v) in instance.servers
                        ),
                        key=repr,
                    )
                    if commons:
                        x = commons[0]
                        chosen.add(edge_key(x, u))
                        chosen.add(edge_key(x, v))
            update_cover()
            break
        chosen |= {edge_key(best_vertex, leaf) for leaf in best_leaves}
        update_cover()
    return chosen
