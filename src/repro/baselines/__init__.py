"""Baseline algorithms the paper compares against (sequential and distributed)."""

from repro.baselines.baswana_sen import (
    baswana_sen_spanner,
    expected_size_bound,
    implied_approximation_ratio,
)
from repro.baselines.kortsarz_peleg import (
    greedy_client_server_two_spanner,
    greedy_two_spanner,
    greedy_two_spanner_size_bound,
)
from repro.baselines.mds_baselines import (
    exact_dominating_set,
    expectation_randomized_mds,
    greedy_dominating_set,
)
from repro.baselines.trivial import (
    bfs_tree_edges,
    take_all_spanner,
    trivial_approximation_ratio,
)

__all__ = [
    "baswana_sen_spanner",
    "bfs_tree_edges",
    "exact_dominating_set",
    "expectation_randomized_mds",
    "expected_size_bound",
    "greedy_client_server_two_spanner",
    "greedy_dominating_set",
    "greedy_two_spanner",
    "greedy_two_spanner_size_bound",
    "implied_approximation_ratio",
    "take_all_spanner",
    "trivial_approximation_ratio",
]
