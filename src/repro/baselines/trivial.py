"""Trivial baselines the paper uses as reference points.

Taking the whole graph is a valid k-spanner for every k and requires no
communication; because every spanner of a connected graph has at least n-1
edges, this is an n-approximation (the paper contrasts its lower bounds with
exactly this observation).  A BFS tree is the other extreme: it is *not* a
k-spanner in general but is the sparsest connected subgraph, useful as a
size floor in benchmark tables.
"""

from __future__ import annotations

from repro.graphs.digraph import Arc, DiGraph
from repro.graphs.graph import Edge, Graph, edge_key


def take_all_spanner(graph: Graph | DiGraph) -> set:
    """The whole edge set: a k-spanner for every k, an n-approximation."""
    return set(graph.edges())


def bfs_tree_edges(graph: Graph, root=None) -> set[Edge]:
    """Edges of a BFS forest (a size floor: any spanner has at least this many edges)."""
    remaining = set(graph.nodes())
    edges: set[Edge] = set()
    while remaining:
        start = root if root in remaining else sorted(remaining, key=repr)[0]
        frontier = [start]
        seen = {start}
        while frontier:
            nxt = []
            for u in frontier:
                for w in sorted(graph.neighbors(u), key=repr):
                    if w not in seen:
                        seen.add(w)
                        edges.add(edge_key(u, w))
                        nxt.append(w)
            frontier = nxt
        remaining -= seen
        root = None
    return edges


def trivial_approximation_ratio(graph: Graph) -> float:
    """m / (n - 1): the approximation ratio of taking the whole graph."""
    n = graph.number_of_nodes()
    if n <= 1:
        return 1.0
    return graph.number_of_edges() / (n - 1)
