"""repro: reproduction of "Distributed Spanner Approximation" (PODC 2018).

The package implements, on top of a synchronous LOCAL / CONGEST round
simulator:

* the paper's distributed minimum 2-spanner approximation with a guaranteed
  O(log m/n) ratio (Theorem 1.3) and its directed, weighted and client-server
  variants (Section 4.3);
* the guaranteed O(log Delta) minimum dominating set algorithm (Section 5);
* the (1+eps)-approximate minimum k-spanner LOCAL algorithm (Section 6);
* the hardness-of-approximation constructions of Sections 2-3 (Figures 1-3)
  together with a two-party (Alice/Bob) simulation harness measuring the
  communication the reductions charge;
* the baselines the paper compares against (Kortsarz-Peleg greedy,
  Baswana-Sen sparse spanners, greedy / expectation-only MDS, trivial
  n-approximation).

Quickstart::

    from repro import connected_gnp_graph, run_two_spanner, is_k_spanner

    graph = connected_gnp_graph(60, 0.2, seed=7)
    result = run_two_spanner(graph, seed=1)
    assert is_k_spanner(graph, result.edges, 2)
    print(result.size, result.rounds)
"""

from repro.baselines import (
    baswana_sen_spanner,
    exact_dominating_set,
    expectation_randomized_mds,
    greedy_dominating_set,
    greedy_two_spanner,
    take_all_spanner,
)
from repro.core import (
    ClientServerVariant,
    MDSOptions,
    TwoSpannerOptions,
    UnweightedVariant,
    WeightedVariant,
    client_server_two_spanner,
    network_decomposition,
    one_plus_eps_spanner,
    run_clique_two_spanner,
    run_directed_two_spanner,
    run_mds,
    run_two_spanner,
)
from repro.distributed import (
    BroadcastNodeProgram,
    CommunicationModel,
    NodeContext,
    NodeProgram,
    Simulator,
    broadcast_congest_model,
    congest_model,
    congested_clique_model,
    local_model,
    run_program,
)
from repro.graphs import (
    ClientServerInstance,
    DiGraph,
    Graph,
    assign_random_weights,
    barabasi_albert_graph,
    cluster_graph,
    complete_bipartite_graph,
    connected_gnp_graph,
    gnp_random_graph,
    random_digraph,
    random_split_instance,
)
from repro.lowerbounds import (
    build_construction_g,
    build_construction_gw,
    build_mvc_reduction,
    random_disjoint_instance,
    random_intersecting_instance,
    simulate_reduction,
)
from repro.spanner import (
    is_client_server_2_spanner,
    is_k_spanner,
    is_k_spanner_directed,
    lp_lower_bound_2spanner,
    minimum_k_spanner_exact,
    spanner_cost,
)

__version__ = "1.0.0"

__all__ = [
    "BroadcastNodeProgram",
    "ClientServerInstance",
    "ClientServerVariant",
    "CommunicationModel",
    "DiGraph",
    "Graph",
    "MDSOptions",
    "NodeContext",
    "NodeProgram",
    "Simulator",
    "TwoSpannerOptions",
    "UnweightedVariant",
    "WeightedVariant",
    "__version__",
    "assign_random_weights",
    "barabasi_albert_graph",
    "baswana_sen_spanner",
    "broadcast_congest_model",
    "build_construction_g",
    "build_construction_gw",
    "build_mvc_reduction",
    "client_server_two_spanner",
    "cluster_graph",
    "complete_bipartite_graph",
    "congest_model",
    "congested_clique_model",
    "connected_gnp_graph",
    "exact_dominating_set",
    "expectation_randomized_mds",
    "gnp_random_graph",
    "greedy_dominating_set",
    "greedy_two_spanner",
    "is_client_server_2_spanner",
    "is_k_spanner",
    "is_k_spanner_directed",
    "local_model",
    "lp_lower_bound_2spanner",
    "minimum_k_spanner_exact",
    "network_decomposition",
    "one_plus_eps_spanner",
    "random_digraph",
    "random_disjoint_instance",
    "random_intersecting_instance",
    "random_split_instance",
    "run_clique_two_spanner",
    "run_directed_two_spanner",
    "run_mds",
    "run_program",
    "run_two_spanner",
    "simulate_reduction",
    "spanner_cost",
    "take_all_spanner",
]
