"""Graph generators used by the examples, tests and benchmark workloads.

Every generator takes an explicit ``seed`` (or ``rng``) so that benchmark
workloads are reproducible.  Generators that the paper's motivation relies on
(dense bipartite graphs where 2-spanners are the interesting regime, random
graphs, power-law graphs) are all provided, for undirected, directed and
weighted variants.
"""

from __future__ import annotations

import math
import random
from array import array
from collections.abc import Sequence

from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph
from repro.graphs.topology import CompiledTopology, FrozenGraph


def _rng(seed: int | random.Random | None) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


# --------------------------------------------------------------------- basics
def path_graph(n: int) -> Graph:
    """Path on nodes ``0..n-1``."""
    g = Graph()
    g.add_nodes_from(range(n))
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def cycle_graph(n: int) -> Graph:
    """Cycle on nodes ``0..n-1`` (requires n >= 3)."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 nodes")
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


def star_graph(n_leaves: int) -> Graph:
    """Star with centre 0 and leaves ``1..n_leaves``."""
    g = Graph()
    g.add_node(0)
    for i in range(1, n_leaves + 1):
        g.add_edge(0, i)
    return g


def complete_graph(n: int) -> Graph:
    g = Graph()
    g.add_nodes_from(range(n))
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(i, j)
    return g


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """Complete bipartite graph K_{a,b}.

    This is the paper's canonical example of a graph whose sparsest 2-spanner
    has Theta(n^2) edges in the worst case, i.e. where *approximating the
    minimum* 2-spanner (rather than targeting worst-case sparsity) matters.
    Left side: ``('L', i)``; right side: ``('R', j)``.
    """
    g = Graph()
    left = [("L", i) for i in range(a)]
    right = [("R", j) for j in range(b)]
    g.add_nodes_from(left)
    g.add_nodes_from(right)
    for u in left:
        for v in right:
            g.add_edge(u, v)
    return g


def grid_graph(rows: int, cols: int) -> Graph:
    """2D grid; nodes are ``(r, c)`` tuples."""
    g = Graph()
    for r in range(rows):
        for c in range(cols):
            g.add_node((r, c))
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                g.add_edge((r, c), (r + 1, c))
            if c + 1 < cols:
                g.add_edge((r, c), (r, c + 1))
    return g


def hypercube_graph(dim: int) -> Graph:
    """Hypercube on ``2**dim`` nodes (nodes are integers, edges flip one bit)."""
    g = Graph()
    n = 1 << dim
    g.add_nodes_from(range(n))
    for v in range(n):
        for b in range(dim):
            u = v ^ (1 << b)
            if u > v:
                g.add_edge(v, u)
    return g


# -------------------------------------------------------------- random graphs
def _chain_components(g: Graph, rng: random.Random) -> None:
    """Connect ``g`` in place by a random spanning path over component reps.

    Representatives (smallest-by-``repr`` member of each component) are
    shuffled and chained; a single-component graph consumes no randomness,
    so adding this patch never perturbs an already-connected fixed-seed
    instance.
    """
    components = g.connected_components()
    if len(components) > 1:
        reps = [sorted(comp, key=repr)[0] for comp in components]
        rng.shuffle(reps)
        for a, b in zip(reps, reps[1:]):
            g.add_edge(a, b)


def gnp_random_graph(n: int, p: float, seed: int | random.Random | None = None) -> Graph:
    """Erdos-Renyi G(n, p)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = _rng(seed)
    g = Graph()
    g.add_nodes_from(range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j)
    return g


def gnm_random_graph(n: int, m: int, seed: int | random.Random | None = None) -> Graph:
    """Uniform random graph with exactly ``m`` edges (m <= n*(n-1)/2)."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"m={m} exceeds the maximum {max_edges} for n={n}")
    rng = _rng(seed)
    g = Graph()
    g.add_nodes_from(range(n))
    added = 0
    while added < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
            added += 1
    return g


def sparse_gnp_graph(
    n: int, p: float, seed: int | random.Random | None = None, connect: bool = False
) -> Graph:
    """Erdos-Renyi G(n, p) in expected O(n + m) time via geometric skipping.

    :func:`gnp_random_graph` flips one coin per vertex pair — O(n^2) work
    that dominates everything else once n reaches the tens of thousands.
    This generator (Batagelj-Brandes 2005) walks the pairs in lexicographic
    order and jumps straight to the next edge with a geometric skip length,
    so the cost is proportional to the number of edges actually produced.
    It samples the *same distribution* as :func:`gnp_random_graph` but not
    the same graph for a given seed (the two consume randomness
    differently); large-n scenarios should treat it as its own family.

    With ``connect=True`` the components are afterwards chained by a random
    spanning path over component representatives, as in
    :func:`connected_gnp_graph` — the E18 scale scenarios use this so that
    flooding workloads provably converge.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = _rng(seed)
    g = Graph()
    g.add_nodes_from(range(n))
    if p > 0.0:
        if p >= 1.0:
            return complete_graph(n)
        log_q = math.log(1.0 - p)
        v, w = 1, -1
        while v < n:
            w += 1 + int(math.log(1.0 - rng.random()) / log_q)
            while w >= v and v < n:
                w -= v
                v += 1
            if v < n:
                g.add_edge(v, w)
    if connect:
        _chain_components(g, rng)
    return g


def sparse_gnp_csr(
    n: int, p: float, seed: int | random.Random | None = None, connect: bool = True
) -> FrozenGraph:
    """G(n, p) built straight into CSR form — the mega-scale generator path.

    :func:`sparse_gnp_graph` runs the same geometric-skip sampler but stores
    the edges in a mutable :class:`~repro.graphs.graph.Graph`
    (dict-of-dicts adjacency) that ``freeze()`` then re-walks: at n = 10^6
    the intermediate adjacency costs gigabytes of peak RSS and most of the
    build time.  This generator streams the sampled edge endpoints into flat
    ``array("q")`` buffers and scatters them directly into the
    :class:`~repro.graphs.topology.CompiledTopology` CSR arrays — peak
    memory is O(m) machine words, no per-edge dict entries ever exist, and
    the result is returned as an immutable
    :class:`~repro.graphs.topology.FrozenGraph` the simulator stack consumes
    as-is (``freeze()`` is the identity).

    The sampler consumes randomness *identically* to
    :func:`sparse_gnp_graph`, so for the same seed the sampled edge set is
    the same; when that sample is already connected, the two generators
    produce exactly the same graph.  Connectivity patching differs (a
    union-find over the edge stream instead of a component scan of the
    built graph), so disconnected samples are chained along a different —
    but equally random — spanning path; treat ``connect=True`` instances as
    their own scenario family, as E20 does.  ``connect`` defaults to True
    because the mega-scale flooding workloads require it.

    Dense regimes are out of scope: ``p`` must be in ``[0, 1)`` (a complete
    graph in CSR form at this scale would be astronomically large).  Nodes
    are labelled ``0..n-1`` and every edge has weight 1.0.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError("p must be in [0, 1) for the CSR generator")
    rng = _rng(seed)
    esrc = array("q")
    edst = array("q")
    if p > 0.0:
        # Batagelj-Brandes geometric skipping, bit-for-bit the recipe of
        # sparse_gnp_graph: pairs walked in lexicographic (v, w) order with
        # w < v, one log per sampled edge.
        log_q = math.log(1.0 - p)
        v, w = 1, -1
        esrc_append = esrc.append
        edst_append = edst.append
        rand = rng.random
        log = math.log
        while v < n:
            w += 1 + int(log(1.0 - rand()) / log_q)
            while w >= v and v < n:
                w -= v
                v += 1
            if v < n:
                esrc_append(v)
                edst_append(w)

    chain: list[tuple[int, int]] = []
    if connect and n > 1:
        # Union-find with path halving; attaching the larger root under the
        # smaller makes each final root the minimum member of its component,
        # so representatives come out identical to a component scan.
        parent = array("q", range(n))
        for k in range(len(esrc)):
            a, b = esrc[k], edst[k]
            while parent[a] != a:
                parent[a] = a = parent[parent[a]]
            while parent[b] != b:
                parent[b] = b = parent[parent[b]]
            if a != b:
                if a < b:
                    parent[b] = a
                else:
                    parent[a] = b
        reps = [i for i in range(n) if parent[i] == i]
        if len(reps) > 1:
            rng.shuffle(reps)
            chain = list(zip(reps, reps[1:]))

    # Two-pass counting scatter into CSR.  Core edges arrive in lex (v, w)
    # order with w < v: scattering all the w-into-row-v entries first and
    # all the v-into-row-w entries second leaves every row sorted ascending
    # (smaller-than-i neighbours, each batch ascending) with no sort pass —
    # the order :meth:`CompiledTopology.sorted_neighbor_rows` would impose.
    degrees = array("q", [0]) * n
    for k in range(len(esrc)):
        degrees[esrc[k]] += 1
        degrees[edst[k]] += 1
    for a, b in chain:
        degrees[a] += 1
        degrees[b] += 1

    indptr = array("q", [0]) * (n + 1)
    total = 0
    for i in range(n):
        indptr[i] = total
        total += degrees[i]
    indptr[n] = total

    indices = array("q", [0]) * total
    cursor = array("q", indptr[:n])
    for k in range(len(esrc)):
        v = esrc[k]
        indices[cursor[v]] = edst[k]
        cursor[v] += 1
    for k in range(len(esrc)):
        w = edst[k]
        indices[cursor[w]] = esrc[k]
        cursor[w] += 1
    if chain:
        touched = set()
        for a, b in chain:
            indices[cursor[a]] = b
            cursor[a] += 1
            indices[cursor[b]] = a
            cursor[b] += 1
            touched.add(a)
            touched.add(b)
        for i in touched:
            row = sorted(indices[indptr[i] : indptr[i + 1]])
            indices[indptr[i] : indptr[i + 1]] = array("q", row)

    weights = array("d", [1.0]) * total
    edge_count = len(esrc) + len(chain)
    topo = CompiledTopology(
        list(range(n)), indptr, indices, weights, edge_count, directed=False
    )
    return FrozenGraph(topo)


def barabasi_albert_csr(
    n: int, m: int, seed: int | random.Random | None = None
) -> FrozenGraph:
    """Preferential attachment built straight into CSR form, in O(n + m) time.

    :func:`barabasi_albert_graph` stores the growing graph in a mutable
    dict-of-dicts adjacency and samples targets with ``rng.choice`` over a
    Python list — fine at demo sizes, but the intermediate adjacency and
    per-edge dict entries dominate once n reaches the hundreds of thousands.
    This generator keeps the classic repeated-endpoints trick (one uniform
    index into the endpoint multiset is a degree-proportional draw) but
    streams every sampled edge into flat ``array("q")`` buffers and scatters
    them directly into :class:`~repro.graphs.topology.CompiledTopology` CSR
    arrays, exactly like :func:`sparse_gnp_csr`: total work and peak memory
    are O(n + m_attach) machine words, and the result is an immutable
    :class:`~repro.graphs.topology.FrozenGraph`.

    Same distribution as :func:`barabasi_albert_graph`, *not* the same graph
    for a given seed (targets are drawn by index rather than ``choice`` and
    deduplicated per node in sorted order) — treat it as its own scenario
    family, as the E23 tier does.  The graph is always connected (the seed
    clique on ``m + 1`` vertices plus one attachment batch per later
    vertex), nodes are labelled ``0..n-1`` and every edge has weight 1.0.
    The seeded-determinism contract of this module applies: the same
    ``(n, m, seed)`` always yields byte-identical CSR arrays.
    """
    if m < 1 or m >= n:
        raise ValueError("need 1 <= m < n")
    rng = _rng(seed)
    esrc = array("q")
    edst = array("q")
    # Endpoint multiset: each undirected edge contributes both endpoints, so
    # a uniform index draw lands on vertex v with probability deg(v)/2E.
    repeated = array("q")
    # Seed clique on 0..m, streamed in lex (src, dst) order with dst < src —
    # the order the scatter below relies on to leave CSR rows sorted.
    for src in range(1, m + 1):
        for dst in range(src):
            esrc.append(src)
            edst.append(dst)
            repeated.append(src)
            repeated.append(dst)
    randrange = rng.randrange
    repeated_append = repeated.append
    esrc_append = esrc.append
    edst_append = edst.append
    for new in range(m + 1, n):
        # Degree-proportional draws against the multiset as it stood before
        # ``new`` arrived; set-dedup retries cost expected O(1) per edge.
        targets: set[int] = set()
        size = len(repeated)
        while len(targets) < m:
            targets.add(repeated[randrange(size)])
        for t in sorted(targets):
            esrc_append(new)
            edst_append(t)
            repeated_append(t)
            repeated_append(new)

    # Two-pass counting scatter into CSR (the sparse_gnp_csr recipe): edges
    # arrive in lex (src, dst) order with dst < src, so scattering all the
    # dst-into-row-src entries first and the src-into-row-dst entries second
    # leaves every row sorted ascending with no sort pass.
    degrees = array("q", [0]) * n
    for k in range(len(esrc)):
        degrees[esrc[k]] += 1
        degrees[edst[k]] += 1

    indptr = array("q", [0]) * (n + 1)
    total = 0
    for i in range(n):
        indptr[i] = total
        total += degrees[i]
    indptr[n] = total

    indices = array("q", [0]) * total
    cursor = array("q", indptr[:n])
    for k in range(len(esrc)):
        v = esrc[k]
        indices[cursor[v]] = edst[k]
        cursor[v] += 1
    for k in range(len(esrc)):
        w = edst[k]
        indices[cursor[w]] = esrc[k]
        cursor[w] += 1

    weights = array("d", [1.0]) * total
    topo = CompiledTopology(
        list(range(n)), indptr, indices, weights, len(esrc), directed=False
    )
    return FrozenGraph(topo)


def connected_gnp_graph(
    n: int, p: float, seed: int | random.Random | None = None
) -> Graph:
    """G(n, p) made connected by adding a random spanning path over components.

    Spanner problems in the paper are stated for connected graphs; this
    generator guarantees connectivity without significantly biasing density.
    """
    rng = _rng(seed)
    g = gnp_random_graph(n, p, rng)
    _chain_components(g, rng)
    return g


def random_regular_graph(
    n: int, d: int, seed: int | random.Random | None = None, max_tries: int = 200
) -> Graph:
    """Random d-regular graph via the configuration model with restarts."""
    if (n * d) % 2 != 0:
        raise ValueError("n * d must be even")
    if d >= n:
        raise ValueError("d must be smaller than n")
    rng = _rng(seed)
    for _ in range(max_tries):
        stubs = [v for v in range(n) for _ in range(d)]
        rng.shuffle(stubs)
        g = Graph()
        g.add_nodes_from(range(n))
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            if u == v or g.has_edge(u, v):
                ok = False
                break
            g.add_edge(u, v)
        if ok:
            return g
    raise RuntimeError("failed to generate a simple regular graph; try another seed")


def barabasi_albert_graph(
    n: int, m: int, seed: int | random.Random | None = None
) -> Graph:
    """Preferential-attachment (power-law degree) graph.

    Each new node attaches to ``m`` existing nodes chosen proportionally to
    their degree.  Produces the skewed-degree topologies where the paper's
    O(log Delta) factors differ visibly from O(log n).
    """
    if m < 1 or m >= n:
        raise ValueError("need 1 <= m < n")
    rng = _rng(seed)
    g = Graph()
    g.add_nodes_from(range(m + 1))
    for i in range(m + 1):
        for j in range(i + 1, m + 1):
            g.add_edge(i, j)
    repeated: list[int] = [v for v in range(m + 1) for _ in range(m)]
    for new in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for t in targets:
            g.add_edge(new, t)
            repeated.append(t)
            repeated.append(new)
    return g


def cluster_graph(
    n_clusters: int,
    cluster_size: int,
    p_intra: float = 0.8,
    p_inter: float = 0.02,
    seed: int | random.Random | None = None,
) -> Graph:
    """Planted-partition graph: dense clusters, sparse inter-cluster edges.

    A natural workload for 2-spanners: the optimum keeps roughly one star per
    cluster while a naive solution keeps all intra-cluster edges.
    """
    rng = _rng(seed)
    n = n_clusters * cluster_size
    g = Graph()
    g.add_nodes_from(range(n))
    for i in range(n):
        for j in range(i + 1, n):
            same = (i // cluster_size) == (j // cluster_size)
            p = p_intra if same else p_inter
            if rng.random() < p:
                g.add_edge(i, j)
    components = g.connected_components()
    if len(components) > 1:
        reps = [sorted(comp)[0] for comp in components]
        for a, b in zip(reps, reps[1:]):
            g.add_edge(a, b)
    return g


def overlapping_stars_graph(
    n_centres: int, leaves_per_centre: int, overlap: int, seed: int | random.Random | None = None
) -> Graph:
    """Centres sharing ``overlap`` leaves with the next centre, plus leaf-leaf edges.

    Designed so that dense stars overlap in the edges they 2-span, exercising
    the paper's symmetry-breaking voting scheme.
    """
    rng = _rng(seed)
    if overlap >= leaves_per_centre:
        raise ValueError("overlap must be smaller than leaves_per_centre")
    g = Graph()
    leaf_id = 0
    prev_leaves: list[tuple[str, int]] = []
    for c in range(n_centres):
        centre = ("C", c)
        g.add_node(centre)
        leaves = list(prev_leaves[-overlap:]) if prev_leaves else []
        while len(leaves) < leaves_per_centre:
            leaf = ("V", leaf_id)
            leaf_id += 1
            leaves.append(leaf)
        for leaf in leaves:
            g.add_edge(centre, leaf)
        for i in range(len(leaves)):
            for j in range(i + 1, len(leaves)):
                if rng.random() < 0.5:
                    g.add_edge(leaves[i], leaves[j])
        prev_leaves = leaves
    components = g.connected_components()
    if len(components) > 1:
        reps = [sorted(comp, key=repr)[0] for comp in components]
        for a, b in zip(reps, reps[1:]):
            g.add_edge(a, b)
    return g


# ---------------------------------------------------------------- directed
def random_digraph(n: int, p: float, seed: int | random.Random | None = None) -> DiGraph:
    """Each ordered pair (u, v), u != v, is an arc independently with prob. p."""
    rng = _rng(seed)
    g = DiGraph()
    g.add_nodes_from(range(n))
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                g.add_edge(u, v)
    return g


def random_tournament(n: int, seed: int | random.Random | None = None) -> DiGraph:
    """Complete graph with each edge oriented uniformly at random."""
    rng = _rng(seed)
    g = DiGraph()
    g.add_nodes_from(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.5:
                g.add_edge(u, v)
            else:
                g.add_edge(v, u)
    return g


def orient_randomly(graph: Graph, seed: int | random.Random | None = None) -> DiGraph:
    """Orient each undirected edge in a random direction (keeping weights)."""
    rng = _rng(seed)
    d = DiGraph()
    d.add_nodes_from(graph.nodes())
    for u, v in graph.edges():
        w = graph.weight(u, v)
        if rng.random() < 0.5:
            d.add_edge(u, v, w)
        else:
            d.add_edge(v, u, w)
    return d


def bidirect(graph: Graph) -> DiGraph:
    """Replace each undirected edge by two anti-parallel arcs."""
    d = DiGraph()
    d.add_nodes_from(graph.nodes())
    for u, v in graph.edges():
        w = graph.weight(u, v)
        d.add_edge(u, v, w)
        d.add_edge(v, u, w)
    return d


# ---------------------------------------------------------------- weights
def assign_random_weights(
    graph: Graph | DiGraph,
    low: float = 1.0,
    high: float = 10.0,
    seed: int | random.Random | None = None,
    integer: bool = False,
) -> None:
    """Assign i.i.d. uniform weights in ``[low, high]`` to every edge, in place."""
    if low > high:
        raise ValueError("low must not exceed high")
    rng = _rng(seed)
    for u, v in list(graph.edges()):
        w = rng.uniform(low, high)
        if integer:
            w = float(rng.randint(int(low), int(high)))
        graph.set_weight(u, v, w)


def assign_weights_from_choices(
    graph: Graph | DiGraph,
    choices: Sequence[float],
    seed: int | random.Random | None = None,
) -> None:
    """Assign each edge a weight drawn uniformly from ``choices``, in place."""
    if not choices:
        raise ValueError("choices must be non-empty")
    rng = _rng(seed)
    for u, v in list(graph.edges()):
        graph.set_weight(u, v, float(rng.choice(list(choices))))
