"""Compiled CSR topology: the indexed execution core of the repo.

A :class:`CompiledTopology` is an immutable, array-based snapshot of a
:class:`~repro.graphs.graph.Graph` or :class:`~repro.graphs.digraph.DiGraph`:
nodes are mapped to dense ``0..n-1`` integers and the adjacency structure is
stored in compressed-sparse-row (CSR) form —

* ``indptr`` — ``n + 1`` offsets; the *communication* neighbours of node ``i``
  occupy positions ``indptr[i]:indptr[i + 1]`` of ``indices``;
* ``indices`` — neighbour indices, concatenated per node in the graph's
  insertion order (for digraphs: successors first, then the predecessors that
  are not also successors);
* ``weights`` — the weight carried at the same CSR position (for the extra
  predecessor entries of a digraph this is the weight of the reverse arc);
* ``degrees`` — per-node communication degree (``indptr`` deltas).

Hash-based containers make every neighbour scan pay dict overhead and every
per-link table pay tuple hashing; the CSR view replaces both with array
slices and integer arithmetic.  The round simulator, the structural property
helpers and the variant setup code all share one compiled view per graph via
:meth:`~repro.graphs.base.BaseGraph.freeze`.
"""

from __future__ import annotations

from array import array
from collections.abc import Hashable, Iterator

Node = Hashable

_INDEX_TYPECODE = "q"  # 64-bit signed: node indices and CSR offsets
_WEIGHT_TYPECODE = "d"


class CompiledTopology:
    """Frozen CSR snapshot of a graph's communication topology."""

    __slots__ = (
        "n",
        "directed",
        "labels",
        "index",
        "indptr",
        "indices",
        "weights",
        "degrees",
        "arc_count",
        "edge_count",
        "_label_sets",
        "_position_maps",
        "_sorted_rows",
    )

    def __init__(
        self,
        labels: list[Node],
        indptr: array,
        indices: array,
        weights: array,
        edge_count: int,
        directed: bool,
    ) -> None:
        self.n = len(labels)
        self.directed = directed
        self.labels = labels
        self.index: dict[Node, int] = {v: i for i, v in enumerate(labels)}
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.degrees = array(
            _INDEX_TYPECODE,
            (indptr[i + 1] - indptr[i] for i in range(self.n)),
        )
        self.arc_count = len(indices)
        self.edge_count = edge_count
        self._label_sets: list[frozenset[Node] | None] = [None] * self.n
        self._position_maps: list[dict[int, int] | None] = [None] * self.n
        self._sorted_rows: list[tuple[int, ...]] | None = None

    # ------------------------------------------------------------- neighbours
    def neighbor_indices(self, i: int) -> array:
        """The CSR slice of communication neighbours of node index ``i``."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def neighbor_labels(self, i: int) -> list[Node]:
        labels = self.labels
        return [labels[j] for j in self.neighbor_indices(i)]

    def neighbor_label_set(self, i: int) -> frozenset[Node]:
        """Frozen label set of node ``i``'s neighbours (cached per node)."""
        cached = self._label_sets[i]
        if cached is None:
            cached = self._label_sets[i] = frozenset(self.neighbor_labels(i))
        return cached

    def neighbor_items(self, i: int) -> Iterator[tuple[Node, float]]:
        """Yield ``(neighbour label, weight)`` pairs in CSR order."""
        labels = self.labels
        lo, hi = self.indptr[i], self.indptr[i + 1]
        for pos in range(lo, hi):
            yield labels[self.indices[pos]], self.weights[pos]

    def degree_of(self, i: int) -> int:
        return self.degrees[i]

    def sorted_neighbor_rows(self) -> list[tuple[int, ...]]:
        """Per-node neighbour index rows, each sorted ascending (cached).

        CSR rows keep the graph's insertion order; consumers that must
        observe neighbours in ascending index order — the columnar engine's
        lazy inboxes replicate the indexed engine's inbox key order with
        these — get the sorted rows materialised once per compiled view and
        shared across runs.
        """
        rows = self._sorted_rows
        if rows is None:
            indptr, indices = self.indptr, self.indices
            rows = self._sorted_rows = [
                tuple(sorted(indices[indptr[i] : indptr[i + 1]]))
                for i in range(self.n)
            ]
        return rows

    # ----------------------------------------------------------- flat buffers
    def flat_csr(self) -> tuple[memoryview, memoryview, memoryview]:
        """Zero-copy typed views of the ``(indptr, indices, weights)`` arrays.

        The views expose the CSR arrays through the buffer protocol with
        their native item types (64-bit signed offsets/indices, 64-bit float
        weights), so array-kernel consumers can wrap them without copying —
        e.g. ``numpy.frombuffer(indices_view, dtype=numpy.int64)`` — while
        the stdlib ``array`` objects remain the single source of truth.
        """
        return memoryview(self.indptr), memoryview(self.indices), memoryview(self.weights)

    def arc_position(self, src: int, dst: int) -> int:
        """Global CSR position of the link ``src -> dst``.

        Positions are unique per ordered link, dense in ``0..arc_count-1``,
        and stable for the lifetime of the compiled view — exactly what a
        preallocated per-link accounting array needs.  Raises ``KeyError``
        for non-adjacent pairs.
        """
        posmap = self._position_maps[src]
        if posmap is None:
            lo, hi = self.indptr[src], self.indptr[src + 1]
            posmap = self._position_maps[src] = {
                self.indices[pos]: pos for pos in range(lo, hi)
            }
        return posmap[dst]

    # ------------------------------------------------------------- traversals
    def bfs_levels(self, source: int, max_depth: int | None = None) -> array:
        """Hop distances from ``source`` over the CSR arrays (-1 = unreached)."""
        dist = array(_INDEX_TYPECODE, [-1]) * self.n
        dist[source] = 0
        frontier = [source]
        depth = 0
        indptr, indices = self.indptr, self.indices
        while frontier and (max_depth is None or depth < max_depth):
            depth += 1
            nxt: list[int] = []
            for u in frontier:
                for pos in range(indptr[u], indptr[u + 1]):
                    w = indices[pos]
                    if dist[w] < 0:
                        dist[w] = depth
                        nxt.append(w)
            frontier = nxt
        return dist

    def bfs_reach(self, source: int, max_depth: int | None = None) -> list[tuple[int, int]]:
        """``(node index, depth)`` pairs in discovery order, starting at depth 0.

        Same traversal as :meth:`bfs_levels` but returns only the reached
        nodes, so truncated searches cost O(reached), not O(n) output.
        """
        dist = array(_INDEX_TYPECODE, [-1]) * self.n
        dist[source] = 0
        reach = [(source, 0)]
        frontier = [source]
        depth = 0
        indptr, indices = self.indptr, self.indices
        while frontier and (max_depth is None or depth < max_depth):
            depth += 1
            nxt: list[int] = []
            for u in frontier:
                for pos in range(indptr[u], indptr[u + 1]):
                    w = indices[pos]
                    if dist[w] < 0:
                        dist[w] = depth
                        reach.append((w, depth))
                        nxt.append(w)
            frontier = nxt
        return reach

    def eccentricity(self, source: int) -> int:
        """Largest hop distance from ``source``; -1 if the graph is disconnected."""
        dist = self.bfs_levels(source)
        best = 0
        for d in dist:
            if d < 0:
                return -1
            if d > best:
                best = d
        return best

    # ---------------------------------------------------------------- dunders
    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return f"CompiledTopology(n={self.n}, arcs={self.arc_count}, {kind})"


class FrozenGraph:
    """Immutable graph view over a prebuilt :class:`CompiledTopology`.

    The ``freeze``-direct generator path (:func:`repro.graphs.generators.sparse_gnp_csr`)
    builds CSR arrays straight from an edge stream — at n = 10^6 the
    intermediate dict-of-sets adjacency of a mutable
    :class:`~repro.graphs.graph.Graph` costs gigabytes of peak RSS and most
    of the build time.  This wrapper gives such a topology the read-only
    graph surface the simulator stack consumes (``freeze()``,
    ``number_of_nodes``, ``nodes``, ``neighbors``, …) without ever
    materialising per-node hash containers; ``freeze()`` simply returns the
    wrapped compiled view, so every engine shares the same CSR arrays the
    generator produced.  Mutation is not supported — grow a regular
    :class:`~repro.graphs.graph.Graph` instead.
    """

    __slots__ = ("_topology",)

    directed = False

    def __init__(self, topology: CompiledTopology) -> None:
        self._topology = topology

    def freeze(self) -> CompiledTopology:
        """The wrapped compiled view (already built; never invalidated)."""
        return self._topology

    # ------------------------------------------------------------------ nodes
    def nodes(self) -> list[Node]:
        """The node labels in CSR (index) order."""
        return list(self._topology.labels)

    def number_of_nodes(self) -> int:
        """Number of nodes."""
        return self._topology.n

    def has_node(self, v: Node) -> bool:
        """Whether ``v`` is a node of the graph."""
        return v in self._topology.index

    # ------------------------------------------------------------------ edges
    def number_of_edges(self) -> int:
        """Number of undirected edges."""
        return self._topology.edge_count

    def edges(self) -> Iterator[tuple[Node, Node]]:
        """Yield each undirected edge once (smaller CSR index first)."""
        topo = self._topology
        labels = topo.labels
        indptr, indices = topo.indptr, topo.indices
        for i in range(topo.n):
            for pos in range(indptr[i], indptr[i + 1]):
                j = indices[pos]
                if i < j:
                    yield labels[i], labels[j]

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        topo = self._topology
        index = topo.index
        if u not in index or v not in index:
            return False
        i, j = index[u], index[v]
        try:
            topo.arc_position(i, j)
        except KeyError:
            return False
        return True

    def neighbors(self, v: Node) -> set[Node]:
        """The neighbour label set of node ``v``."""
        topo = self._topology
        return set(topo.neighbor_label_set(topo.index[v]))

    def degree(self, v: Node) -> int:
        """Number of neighbours of node ``v``."""
        topo = self._topology
        return topo.degrees[topo.index[v]]

    # ---------------------------------------------------------------- dunders
    def __contains__(self, v: Node) -> bool:
        return v in self._topology.index

    def __len__(self) -> int:
        return self._topology.n

    def __repr__(self) -> str:
        return (
            f"FrozenGraph(n={self.number_of_nodes()}, m={self.number_of_edges()})"
        )


def compile_adjacency(
    adj: dict[Node, dict[Node, float]], edge_count: int, directed: bool
) -> CompiledTopology:
    """Compile a dict-of-dicts adjacency structure into CSR form."""
    labels = list(adj)
    index = {v: i for i, v in enumerate(labels)}
    indptr = array(_INDEX_TYPECODE, [0]) * (len(labels) + 1)
    indices = array(_INDEX_TYPECODE)
    weights = array(_WEIGHT_TYPECODE)
    for i, v in enumerate(labels):
        nbrs = adj[v]
        indices.extend(index[u] for u in nbrs)
        weights.extend(nbrs.values())
        indptr[i + 1] = len(indices)
    return CompiledTopology(labels, indptr, indices, weights, edge_count, directed)


def compile_graph(graph: "object") -> CompiledTopology:
    """Compile an undirected :class:`~repro.graphs.graph.Graph`."""
    return compile_adjacency(graph._adj, graph.number_of_edges(), directed=False)


def compile_digraph(graph: "object") -> CompiledTopology:
    """Compile a :class:`~repro.graphs.digraph.DiGraph`.

    The CSR rows hold the *communication* neighbourhood (successors first,
    then predecessors that are not successors), matching the bidirectional
    links the simulator and the paper's Section 1.5 assume.  The weight of a
    predecessor-only entry is the weight of the reverse arc.
    """
    succ: dict[Node, dict[Node, float]] = graph._succ
    pred: dict[Node, dict[Node, float]] = graph._pred
    labels = list(succ)
    index = {v: i for i, v in enumerate(labels)}
    indptr = array(_INDEX_TYPECODE, [0]) * (len(labels) + 1)
    indices = array(_INDEX_TYPECODE)
    weights = array(_WEIGHT_TYPECODE)
    for i, v in enumerate(labels):
        out = succ[v]
        indices.extend(index[u] for u in out)
        weights.extend(out.values())
        for u, w in pred[v].items():
            if u not in out:
                indices.append(index[u])
                weights.append(w)
        indptr[i + 1] = len(indices)
    return CompiledTopology(
        labels, indptr, indices, weights, graph.number_of_edges(), directed=True
    )


def complete_overlay(labels: list[Node]) -> CompiledTopology:
    """Virtual clique topology: every node adjacent to every other node.

    Used by the Congested Clique communication model, whose messages travel
    on an implicit complete graph regardless of the input graph's edges.
    Neighbours of node ``i`` appear in label order (skipping ``i`` itself),
    which is the same deterministic order both simulator engines observe.
    All overlay links carry weight 1.0.
    """
    n = len(labels)
    indptr = array(_INDEX_TYPECODE, [0]) * (n + 1)
    indices = array(_INDEX_TYPECODE)
    for i in range(n):
        indices.extend(j for j in range(n) if j != i)
        indptr[i + 1] = len(indices)
    weights = array(_WEIGHT_TYPECODE, [1.0]) * len(indices)
    return CompiledTopology(
        list(labels), indptr, indices, weights, n * (n - 1) // 2, directed=False
    )


__all__ = [
    "CompiledTopology",
    "FrozenGraph",
    "compile_adjacency",
    "compile_digraph",
    "compile_graph",
    "complete_overlay",
]
