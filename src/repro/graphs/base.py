"""Shared base class of :class:`~repro.graphs.graph.Graph` and
:class:`~repro.graphs.digraph.DiGraph`.

Both containers are dict-of-dicts adjacency structures that differ only in
whether an edge is mirrored (undirected) or split into successor/predecessor
maps (directed).  Everything that does not depend on that choice lives here,
together with the compiled-topology cache behind :meth:`BaseGraph.freeze`:
mutating the graph invalidates the cache, and repeated ``freeze()`` calls
return the same :class:`~repro.graphs.topology.CompiledTopology` instance so
that every consumer of a frozen graph shares one set of CSR arrays.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Hashable, Iterable, Iterator
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graphs.topology import CompiledTopology

Node = Hashable
Edge = tuple[Node, Node]

DEFAULT_WEIGHT = 1.0


class BaseGraph(ABC):
    """Common behaviour of the undirected and directed graph containers."""

    directed: bool = False

    def __init__(self) -> None:
        self._topology: "CompiledTopology | None" = None

    # ------------------------------------------------------------------ hooks
    @abstractmethod
    def _node_store(self) -> dict[Node, dict[Node, float]]:
        """The primary adjacency dict (keys are the node set, insertion-ordered)."""

    @abstractmethod
    def _compile(self) -> "CompiledTopology":
        """Build the compiled CSR view of the current topology."""

    @abstractmethod
    def add_node(self, v: Node) -> None: ...

    @abstractmethod
    def add_edge(self, u: Node, v: Node, weight: float = DEFAULT_WEIGHT) -> None: ...

    @abstractmethod
    def has_edge(self, u: Node, v: Node) -> bool: ...

    @abstractmethod
    def edges(self) -> Iterator[Edge]: ...

    @abstractmethod
    def number_of_edges(self) -> int: ...

    @abstractmethod
    def weight(self, u: Node, v: Node) -> float: ...

    @abstractmethod
    def neighbors(self, v: Node) -> set[Node]: ...

    @abstractmethod
    def degree(self, v: Node) -> int: ...

    @abstractmethod
    def bfs_distances(self, source: Node, max_depth: int | None = None) -> dict[Node, int]: ...

    # -------------------------------------------------------- compiled views
    def freeze(self) -> "CompiledTopology":
        """The compiled CSR view of this graph (cached until the next mutation).

        The returned object maps nodes to dense ``0..n-1`` indices and exposes
        ``indptr``/``indices``/``weights`` adjacency arrays; see
        :class:`~repro.graphs.topology.CompiledTopology`.
        """
        topo = self._topology
        if topo is None:
            topo = self._topology = self._compile()
        return topo

    def _invalidate(self) -> None:
        self._topology = None

    # ------------------------------------------------------------------ nodes
    def add_nodes_from(self, nodes: Iterable[Node]) -> None:
        for v in nodes:
            self.add_node(v)

    def has_node(self, v: Node) -> bool:
        return v in self._node_store()

    def nodes(self) -> list[Node]:
        """Return the nodes in insertion order."""
        return list(self._node_store())

    def number_of_nodes(self) -> int:
        return len(self._node_store())

    # ------------------------------------------------------------------ edges
    def add_edges_from(self, edges: Iterable[Edge], weight: float = DEFAULT_WEIGHT) -> None:
        for u, v in edges:
            self.add_edge(u, v, weight)

    def add_weighted_edges_from(self, edges: Iterable[tuple[Node, Node, float]]) -> None:
        for u, v, w in edges:
            self.add_edge(u, v, w)

    def edge_set(self) -> set[Edge]:
        return set(self.edges())

    def total_weight(self, edges: Iterable[Edge] | None = None) -> float:
        """Sum of weights of ``edges`` (or of all edges if ``None``)."""
        if edges is None:
            edges = self.edges()
        return sum(self.weight(u, v) for u, v in edges)

    # -------------------------------------------------------------- structure
    def max_degree(self) -> int:
        if not self._node_store():
            return 0
        return max(self.degree(v) for v in self._node_store())

    # ------------------------------------------------------------- traversals
    def has_path_within(self, u: Node, v: Node, max_len: int) -> bool:
        """True iff there is a u-v path of at most ``max_len`` edges."""
        if u == v:
            return True
        dist = self.bfs_distances(u, max_depth=max_len)
        return v in dist

    # ---------------------------------------------------------------- dunders
    def __contains__(self, v: Node) -> bool:
        return v in self._node_store()

    def __len__(self) -> int:
        return len(self._node_store())

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.number_of_nodes()}, "
            f"m={self.number_of_edges()})"
        )
