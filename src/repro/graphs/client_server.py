"""The client-server 2-spanner problem input (Elkin & Peleg, SIROCCO 2001).

In the client-server k-spanner problem (paper Section 1.5) the edges of a
connected graph are split into *clients* C and *servers* S (an edge may be
both); the goal is a minimum set of server edges covering every client edge
by a path of length at most k.
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.graphs.graph import Edge, Graph, edge_key


@dataclass
class ClientServerInstance:
    """A client-server 2-spanner instance.

    ``graph`` holds every edge (client or server); ``clients`` and ``servers``
    are sets of canonical edge keys whose union is the edge set of ``graph``.
    """

    graph: Graph
    clients: set[Edge] = field(default_factory=set)
    servers: set[Edge] = field(default_factory=set)

    def __post_init__(self) -> None:
        self.clients = {edge_key(u, v) for u, v in self.clients}
        self.servers = {edge_key(u, v) for u, v in self.servers}
        all_edges = self.graph.edge_set()
        unknown = (self.clients | self.servers) - all_edges
        if unknown:
            raise ValueError(f"client/server edges not in the graph: {sorted(unknown)[:5]}")
        uncovered = all_edges - (self.clients | self.servers)
        if uncovered:
            raise ValueError(
                f"every edge must be a client or a server: {sorted(uncovered)[:5]}"
            )

    # ----------------------------------------------------------------- helpers
    def client_vertices(self) -> set:
        """V(C): vertices touched by at least one client edge."""
        verts = set()
        for u, v in self.clients:
            verts.add(u)
            verts.add(v)
        return verts

    def server_graph(self) -> Graph:
        """Subgraph containing only the server edges."""
        sub = Graph()
        sub.add_nodes_from(self.graph.nodes())
        for u, v in self.servers:
            sub.add_edge(u, v, self.graph.weight(u, v))
        return sub

    def server_max_degree(self) -> int:
        """Delta_S: the maximum degree in the server subgraph."""
        return self.server_graph().max_degree()

    def coverable_clients(self) -> set[Edge]:
        """Client edges that *can* be covered by server edges (k = 2).

        A client {u, w} is coverable iff it is itself a server edge, or some
        common neighbour x has both {x, u} and {x, w} as server edges.
        """
        server_adj: dict = {}
        for u, v in self.servers:
            server_adj.setdefault(u, set()).add(v)
            server_adj.setdefault(v, set()).add(u)
        coverable = set()
        for u, w in self.clients:
            if edge_key(u, w) in self.servers:
                coverable.add(edge_key(u, w))
                continue
            commons = server_adj.get(u, set()) & server_adj.get(w, set())
            if commons:
                coverable.add(edge_key(u, w))
        return coverable


def make_instance(graph: Graph, clients: Iterable[Edge], servers: Iterable[Edge]) -> ClientServerInstance:
    return ClientServerInstance(graph=graph, clients=set(clients), servers=set(servers))


def all_edges_both(graph: Graph) -> ClientServerInstance:
    """Degenerate instance where every edge is both client and server.

    Its optimum equals the ordinary minimum 2-spanner, which makes it the
    natural consistency check between the two algorithms.
    """
    edges = graph.edge_set()
    return ClientServerInstance(graph=graph, clients=set(edges), servers=set(edges))


def random_split_instance(
    graph: Graph,
    client_fraction: float = 0.6,
    server_fraction: float = 0.7,
    seed: int | random.Random | None = None,
) -> ClientServerInstance:
    """Assign each edge independently to clients / servers (ensuring a valid split).

    Each edge is a client with probability ``client_fraction`` and a server
    with probability ``server_fraction``; an edge assigned to neither is made
    a server so that the instance is well formed.
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    clients: set[Edge] = set()
    servers: set[Edge] = set()
    for e in graph.edges():
        is_client = rng.random() < client_fraction
        is_server = rng.random() < server_fraction
        if not is_client and not is_server:
            is_server = True
        if is_client:
            clients.add(e)
        if is_server:
            servers.add(e)
    return ClientServerInstance(graph=graph, clients=clients, servers=servers)
