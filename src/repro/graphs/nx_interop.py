"""Conversions between :mod:`repro.graphs` containers and ``networkx`` graphs."""

from __future__ import annotations

import networkx as nx

from repro.graphs.digraph import DiGraph
from repro.graphs.graph import DEFAULT_WEIGHT, Graph


def to_networkx(graph: Graph | DiGraph) -> "nx.Graph | nx.DiGraph":
    """Convert to an equivalent networkx graph with ``weight`` edge attributes."""
    out: nx.Graph | nx.DiGraph = nx.DiGraph() if graph.directed else nx.Graph()
    out.add_nodes_from(graph.nodes())
    for u, v in graph.edges():
        out.add_edge(u, v, weight=graph.weight(u, v))
    return out


def from_networkx(nx_graph: "nx.Graph | nx.DiGraph") -> Graph | DiGraph:
    """Convert a networkx graph; missing ``weight`` attributes default to 1.0.

    Multigraphs are rejected (spanners are defined on simple graphs).
    """
    if nx_graph.is_multigraph():
        raise ValueError("multigraphs are not supported")
    graph: Graph | DiGraph = DiGraph() if nx_graph.is_directed() else Graph()
    graph.add_nodes_from(nx_graph.nodes())
    for u, v, data in nx_graph.edges(data=True):
        graph.add_edge(u, v, float(data.get("weight", DEFAULT_WEIGHT)))
    return graph
