"""Edge-list serialisation for graphs (plain text, reproducible round-trips)."""

from __future__ import annotations

import json
from pathlib import Path

from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph


def write_edge_list(graph: Graph | DiGraph, path: str | Path) -> None:
    """Write ``graph`` as a JSON-lines edge list.

    The first line is a header object (directed flag, node list so that
    isolated nodes survive the round trip); each subsequent line is
    ``[u, v, weight]``.  Nodes must be JSON-serialisable.
    """
    path = Path(path)
    lines = [json.dumps({"directed": graph.directed, "nodes": list(graph.nodes())})]
    for u, v in graph.edges():
        lines.append(json.dumps([u, v, graph.weight(u, v)]))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_edge_list(path: str | Path) -> Graph | DiGraph:
    """Read a graph written by :func:`write_edge_list`.

    JSON turns tuples into lists; composite node labels are restored as
    tuples so that round trips preserve identity for the generators in this
    package (which use tuple labels like ``("L", 3)``).
    """
    path = Path(path)
    lines = [line for line in path.read_text(encoding="utf-8").splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"empty graph file: {path}")
    header = json.loads(lines[0])

    def fix(node: object) -> object:
        return tuple(node) if isinstance(node, list) else node

    graph: Graph | DiGraph = DiGraph() if header.get("directed") else Graph()
    for node in header.get("nodes", []):
        graph.add_node(fix(node))
    for line in lines[1:]:
        u, v, w = json.loads(line)
        graph.add_edge(fix(u), fix(v), float(w))
    return graph
