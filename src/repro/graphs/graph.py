"""Lightweight undirected graph with optional edge weights.

The simulator and the spanner algorithms need a small, predictable graph
container with O(1) neighbour lookups, canonical undirected edge keys, and
cheap copies.  ``networkx`` is supported through :mod:`repro.graphs.nx_interop`
for interoperability, but the hot paths use this class.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Any

Node = Hashable
Edge = tuple[Node, Node]

DEFAULT_WEIGHT = 1.0


def edge_key(u: Node, v: Node) -> Edge:
    """Return the canonical (ordered) key for the undirected edge ``{u, v}``.

    The canonical form is used everywhere an undirected edge is stored in a
    set or dict, so that ``{u, v}`` and ``{v, u}`` are the same object.
    Self-loops are rejected because spanners are defined on simple graphs.
    """
    if u == v:
        raise ValueError(f"self-loops are not allowed: {u!r}")
    try:
        smaller = u <= v  # type: ignore[operator]
    except TypeError:
        smaller = (str(type(u)), repr(u)) <= (str(type(v)), repr(v))
    return (u, v) if smaller else (v, u)


class Graph:
    """A simple undirected graph with float edge weights.

    Nodes may be any hashable value.  Parallel edges and self-loops are not
    supported.  Edge weights default to ``1.0``; a graph is considered
    *weighted* only with respect to how callers interpret the weights.
    """

    directed = False

    def __init__(self, edges: Iterable[Edge] | None = None) -> None:
        self._adj: dict[Node, dict[Node, float]] = {}
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------ nodes
    def add_node(self, v: Node) -> None:
        """Add an isolated node (no-op if already present)."""
        self._adj.setdefault(v, {})

    def add_nodes_from(self, nodes: Iterable[Node]) -> None:
        for v in nodes:
            self.add_node(v)

    def has_node(self, v: Node) -> bool:
        return v in self._adj

    def nodes(self) -> list[Node]:
        """Return the nodes in insertion order."""
        return list(self._adj)

    def number_of_nodes(self) -> int:
        return len(self._adj)

    def remove_node(self, v: Node) -> None:
        if v not in self._adj:
            raise KeyError(f"node {v!r} not in graph")
        for u in list(self._adj[v]):
            del self._adj[u][v]
        del self._adj[v]

    # ------------------------------------------------------------------ edges
    def add_edge(self, u: Node, v: Node, weight: float = DEFAULT_WEIGHT) -> None:
        if u == v:
            raise ValueError(f"self-loops are not allowed: {u!r}")
        self.add_node(u)
        self.add_node(v)
        self._adj[u][v] = float(weight)
        self._adj[v][u] = float(weight)

    def add_edges_from(
        self, edges: Iterable[Edge], weight: float = DEFAULT_WEIGHT
    ) -> None:
        for u, v in edges:
            self.add_edge(u, v, weight)

    def add_weighted_edges_from(self, edges: Iterable[tuple[Node, Node, float]]) -> None:
        for u, v, w in edges:
            self.add_edge(u, v, w)

    def remove_edge(self, u: Node, v: Node) -> None:
        if not self.has_edge(u, v):
            raise KeyError(f"edge {(u, v)!r} not in graph")
        del self._adj[u][v]
        del self._adj[v][u]

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._adj and v in self._adj[u]

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges, each reported once in canonical key order."""
        seen: set[Edge] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                key = edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    yield key

    def edge_set(self) -> set[Edge]:
        return set(self.edges())

    def number_of_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def weight(self, u: Node, v: Node) -> float:
        if not self.has_edge(u, v):
            raise KeyError(f"edge {(u, v)!r} not in graph")
        return self._adj[u][v]

    def set_weight(self, u: Node, v: Node, weight: float) -> None:
        if not self.has_edge(u, v):
            raise KeyError(f"edge {(u, v)!r} not in graph")
        self._adj[u][v] = float(weight)
        self._adj[v][u] = float(weight)

    def total_weight(self, edges: Iterable[Edge] | None = None) -> float:
        """Sum of weights of ``edges`` (or of all edges if ``None``)."""
        if edges is None:
            edges = self.edges()
        return sum(self.weight(u, v) for u, v in edges)

    # -------------------------------------------------------------- structure
    def neighbors(self, v: Node) -> set[Node]:
        if v not in self._adj:
            raise KeyError(f"node {v!r} not in graph")
        return set(self._adj[v])

    def degree(self, v: Node) -> int:
        if v not in self._adj:
            raise KeyError(f"node {v!r} not in graph")
        return len(self._adj[v])

    def max_degree(self) -> int:
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def incident_edges(self, v: Node) -> set[Edge]:
        """Canonical keys of all edges touching ``v``."""
        return {edge_key(v, u) for u in self.neighbors(v)}

    def adjacency(self) -> dict[Node, dict[Node, float]]:
        """A deep copy of the adjacency structure (node -> neighbour -> weight)."""
        return {u: dict(nbrs) for u, nbrs in self._adj.items()}

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """The induced subgraph on ``nodes`` (weights preserved)."""
        keep = set(nodes)
        sub = Graph()
        for v in keep:
            if v in self._adj:
                sub.add_node(v)
        for v in keep:
            if v not in self._adj:
                continue
            for u, w in self._adj[v].items():
                if u in keep:
                    sub.add_edge(v, u, w)
        return sub

    def edge_subgraph(self, edges: Iterable[Edge]) -> "Graph":
        """The subgraph consisting of exactly ``edges`` (weights preserved)."""
        sub = Graph()
        for u, v in edges:
            sub.add_edge(u, v, self.weight(u, v))
        return sub

    def copy(self) -> "Graph":
        other = Graph()
        other._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        return other

    # ------------------------------------------------------------- traversals
    def bfs_distances(self, source: Node, max_depth: int | None = None) -> dict[Node, int]:
        """Hop distances from ``source`` to every reachable node.

        ``max_depth`` truncates the search (distances beyond it are omitted).
        """
        if source not in self._adj:
            raise KeyError(f"node {source!r} not in graph")
        dist = {source: 0}
        frontier = [source]
        depth = 0
        while frontier and (max_depth is None or depth < max_depth):
            depth += 1
            nxt: list[Node] = []
            for u in frontier:
                for w in self._adj[u]:
                    if w not in dist:
                        dist[w] = depth
                        nxt.append(w)
            frontier = nxt
        return dist

    def ball(self, source: Node, radius: int) -> set[Node]:
        """All nodes within hop distance ``radius`` of ``source`` (inclusive)."""
        return set(self.bfs_distances(source, max_depth=radius))

    def is_connected(self) -> bool:
        if self.number_of_nodes() == 0:
            return True
        start = next(iter(self._adj))
        return len(self.bfs_distances(start)) == self.number_of_nodes()

    def connected_components(self) -> list[set[Node]]:
        remaining = set(self._adj)
        components: list[set[Node]] = []
        while remaining:
            start = next(iter(remaining))
            comp = set(self.bfs_distances(start))
            components.append(comp)
            remaining -= comp
        return components

    def has_path_within(self, u: Node, v: Node, max_len: int) -> bool:
        """True iff there is a u-v path of at most ``max_len`` edges."""
        if u == v:
            return True
        dist = self.bfs_distances(u, max_depth=max_len)
        return v in dist

    # ---------------------------------------------------------------- dunders
    def __contains__(self, v: Node) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.number_of_nodes()}, "
            f"m={self.number_of_edges()})"
        )
