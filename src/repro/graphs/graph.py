"""Lightweight undirected graph with optional edge weights.

The simulator and the spanner algorithms need a small, predictable graph
container with O(1) neighbour lookups, canonical undirected edge keys, and
cheap copies.  ``networkx`` is supported through :mod:`repro.graphs.nx_interop`
for interoperability, but the hot paths use this class — or, once the graph
is built, its compiled CSR view (:meth:`Graph.freeze`).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Any

from repro.graphs.base import DEFAULT_WEIGHT, BaseGraph
from repro.graphs.topology import CompiledTopology, compile_graph

Node = Hashable
Edge = tuple[Node, Node]

__all__ = ["DEFAULT_WEIGHT", "Edge", "Graph", "Node", "edge_key"]


def edge_key(u: Node, v: Node) -> Edge:
    """Return the canonical (ordered) key for the undirected edge ``{u, v}``.

    The canonical form is used everywhere an undirected edge is stored in a
    set or dict, so that ``{u, v}`` and ``{v, u}`` are the same object.
    Self-loops are rejected because spanners are defined on simple graphs.
    """
    if u == v:
        raise ValueError(f"self-loops are not allowed: {u!r}")
    try:
        smaller = u <= v  # type: ignore[operator]
    except TypeError:
        smaller = (str(type(u)), repr(u)) <= (str(type(v)), repr(v))
    return (u, v) if smaller else (v, u)


class Graph(BaseGraph):
    """A simple undirected graph with float edge weights.

    Nodes may be any hashable value.  Parallel edges and self-loops are not
    supported.  Edge weights default to ``1.0``; a graph is considered
    *weighted* only with respect to how callers interpret the weights.
    """

    directed = False

    def __init__(self, edges: Iterable[Edge] | None = None) -> None:
        super().__init__()
        self._adj: dict[Node, dict[Node, float]] = {}
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------ hooks
    def _node_store(self) -> dict[Node, dict[Node, float]]:
        return self._adj

    def _compile(self) -> CompiledTopology:
        return compile_graph(self)

    # ------------------------------------------------------------------ nodes
    def add_node(self, v: Node) -> None:
        """Add an isolated node (no-op if already present)."""
        if v not in self._adj:
            self._adj[v] = {}
            self._invalidate()

    def remove_node(self, v: Node) -> None:
        if v not in self._adj:
            raise KeyError(f"node {v!r} not in graph")
        for u in list(self._adj[v]):
            del self._adj[u][v]
        del self._adj[v]
        self._invalidate()

    # ------------------------------------------------------------------ edges
    def add_edge(self, u: Node, v: Node, weight: float = DEFAULT_WEIGHT) -> None:
        if u == v:
            raise ValueError(f"self-loops are not allowed: {u!r}")
        self.add_node(u)
        self.add_node(v)
        self._adj[u][v] = float(weight)
        self._adj[v][u] = float(weight)
        self._invalidate()

    def remove_edge(self, u: Node, v: Node) -> None:
        if not self.has_edge(u, v):
            raise KeyError(f"edge {(u, v)!r} not in graph")
        del self._adj[u][v]
        del self._adj[v][u]
        self._invalidate()

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._adj and v in self._adj[u]

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges, each reported once in canonical key order."""
        seen: set[Edge] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                key = edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    yield key

    def number_of_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def weight(self, u: Node, v: Node) -> float:
        if not self.has_edge(u, v):
            raise KeyError(f"edge {(u, v)!r} not in graph")
        return self._adj[u][v]

    def set_weight(self, u: Node, v: Node, weight: float) -> None:
        if not self.has_edge(u, v):
            raise KeyError(f"edge {(u, v)!r} not in graph")
        self._adj[u][v] = float(weight)
        self._adj[v][u] = float(weight)
        self._invalidate()

    # -------------------------------------------------------------- structure
    def neighbors(self, v: Node) -> set[Node]:
        if v not in self._adj:
            raise KeyError(f"node {v!r} not in graph")
        return set(self._adj[v])

    def degree(self, v: Node) -> int:
        if v not in self._adj:
            raise KeyError(f"node {v!r} not in graph")
        return len(self._adj[v])

    def incident_edges(self, v: Node) -> set[Edge]:
        """Canonical keys of all edges touching ``v``."""
        return {edge_key(v, u) for u in self.neighbors(v)}

    def adjacency(self) -> dict[Node, dict[Node, float]]:
        """A deep copy of the adjacency structure (node -> neighbour -> weight)."""
        return {u: dict(nbrs) for u, nbrs in self._adj.items()}

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """The induced subgraph on ``nodes`` (weights preserved)."""
        keep = set(nodes)
        sub = Graph()
        for v in keep:
            if v in self._adj:
                sub.add_node(v)
        for v in keep:
            if v not in self._adj:
                continue
            for u, w in self._adj[v].items():
                if u in keep:
                    sub.add_edge(v, u, w)
        return sub

    def edge_subgraph(self, edges: Iterable[Edge]) -> "Graph":
        """The subgraph consisting of exactly ``edges`` (weights preserved)."""
        sub = Graph()
        for u, v in edges:
            sub.add_edge(u, v, self.weight(u, v))
        return sub

    def copy(self) -> "Graph":
        other = Graph()
        other._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        return other

    # ------------------------------------------------------------- traversals
    def bfs_distances(self, source: Node, max_depth: int | None = None) -> dict[Node, int]:
        """Hop distances from ``source`` to every reachable node.

        ``max_depth`` truncates the search (distances beyond it are omitted).
        """
        if source not in self._adj:
            raise KeyError(f"node {source!r} not in graph")
        dist = {source: 0}
        frontier = [source]
        depth = 0
        while frontier and (max_depth is None or depth < max_depth):
            depth += 1
            nxt: list[Node] = []
            for u in frontier:
                for w in self._adj[u]:
                    if w not in dist:
                        dist[w] = depth
                        nxt.append(w)
            frontier = nxt
        return dist

    def ball(self, source: Node, radius: int) -> set[Node]:
        """All nodes within hop distance ``radius`` of ``source`` (inclusive)."""
        return set(self.bfs_distances(source, max_depth=radius))

    def is_connected(self) -> bool:
        if self.number_of_nodes() == 0:
            return True
        start = next(iter(self._adj))
        return len(self.bfs_distances(start)) == self.number_of_nodes()

    def connected_components(self) -> list[set[Node]]:
        remaining = set(self._adj)
        components: list[set[Node]] = []
        while remaining:
            start = next(iter(remaining))
            comp = set(self.bfs_distances(start))
            components.append(comp)
            remaining -= comp
        return components

    # ---------------------------------------------------------------- dunders
    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj
