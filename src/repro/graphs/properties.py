"""Structural graph properties used throughout the algorithms and benchmarks."""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph, Node, edge_key


def average_degree(graph: Graph) -> float:
    """2m / n (0 for the empty graph)."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0.0
    return 2.0 * graph.number_of_edges() / n


def density_ratio(graph: Graph) -> float:
    """m / n — the quantity inside the paper's O(log(m/n)) approximation ratio."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0.0
    return graph.number_of_edges() / n


def log_m_over_n(graph: Graph) -> float:
    """max(1, log2(m/n)); the paper's approximation-ratio yardstick for Thm 1.3."""
    return max(1.0, math.log2(max(2.0, density_ratio(graph))))


def log_max_degree(graph: Graph | DiGraph) -> float:
    """max(1, log2(Delta)); the yardstick for the weighted / MDS O(log Delta) ratios."""
    return max(1.0, math.log2(max(2, graph.max_degree())))


def diameter(graph: Graph) -> int:
    """Hop diameter of a connected graph (raises on disconnected input)."""
    if not graph.is_connected():
        raise ValueError("diameter is only defined for connected graphs")
    best = 0
    for v in graph.nodes():
        dist = graph.bfs_distances(v)
        best = max(best, max(dist.values(), default=0))
    return best


def two_neighborhood(graph: Graph, v: Node) -> set[Node]:
    """All vertices at distance at most 2 from ``v`` (excluding ``v`` itself)."""
    ball = graph.ball(v, 2)
    ball.discard(v)
    return ball


def edges_between(graph: Graph, nodes: Iterable[Node]) -> set[tuple[Node, Node]]:
    """Canonical keys of the graph edges with both endpoints in ``nodes``."""
    node_set = set(nodes)
    result: set[tuple[Node, Node]] = set()
    for u in node_set:
        if u not in graph:
            continue
        for w in graph.neighbors(u):
            if w in node_set:
                result.add(edge_key(u, w))
    return result


def power_graph(graph: Graph, r: int) -> Graph:
    """The r-th power G^r: u ~ v iff their hop distance in G is between 1 and r.

    Used by the (1+eps) LOCAL algorithm of Section 6, which runs a network
    decomposition on G^r for r = O(log n / eps).
    """
    if r < 1:
        raise ValueError("r must be at least 1")
    g = Graph()
    g.add_nodes_from(graph.nodes())
    for v in graph.nodes():
        for u, d in graph.bfs_distances(v, max_depth=r).items():
            if 1 <= d <= r:
                g.add_edge(v, u)
    return g


def is_dominating_set(graph: Graph, dominators: Iterable[Node]) -> bool:
    """True iff every vertex is in ``dominators`` or has a neighbour in it."""
    dom = set(dominators)
    for v in graph.nodes():
        if v in dom:
            continue
        if not (graph.neighbors(v) & dom):
            return False
    return True


def is_vertex_cover(graph: Graph, cover: Iterable[Node]) -> bool:
    """True iff every edge has at least one endpoint in ``cover``."""
    cov = set(cover)
    return all(u in cov or v in cov for u, v in graph.edges())


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Mapping degree -> number of vertices with that degree."""
    hist: dict[int, int] = {}
    for v in graph.nodes():
        d = graph.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist
