"""Structural graph properties used throughout the algorithms and benchmarks.

The scan-heavy helpers (diameter, neighbourhoods, histograms, coverage
checks) run on the graph's compiled CSR view (``graph.freeze()``): the
compile cost is paid once per topology and every subsequent scan is an array
walk instead of a dict-of-dicts traversal.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph, Node, edge_key


def average_degree(graph: Graph) -> float:
    """2m / n (0 for the empty graph)."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0.0
    return 2.0 * graph.number_of_edges() / n


def density_ratio(graph: Graph) -> float:
    """m / n — the quantity inside the paper's O(log(m/n)) approximation ratio."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0.0
    return graph.number_of_edges() / n


def log_m_over_n(graph: Graph) -> float:
    """max(1, log2(m/n)); the paper's approximation-ratio yardstick for Thm 1.3."""
    return max(1.0, math.log2(max(2.0, density_ratio(graph))))


def log_max_degree(graph: Graph | DiGraph) -> float:
    """max(1, log2(Delta)); the yardstick for the weighted / MDS O(log Delta) ratios."""
    return max(1.0, math.log2(max(2, graph.max_degree())))


def diameter(graph: Graph) -> int:
    """Hop diameter of a connected graph (raises on disconnected input)."""
    topo = graph.freeze()
    if topo.n == 0:
        return 0
    best = 0
    for i in range(topo.n):
        ecc = topo.eccentricity(i)
        if ecc < 0:
            raise ValueError("diameter is only defined for connected graphs")
        best = max(best, ecc)
    return best


def two_neighborhood(graph: Graph, v: Node) -> set[Node]:
    """All vertices at distance at most 2 from ``v`` (excluding ``v`` itself)."""
    topo = graph.freeze()
    labels = topo.labels
    return {labels[i] for i, d in topo.bfs_reach(topo.index[v], max_depth=2) if d > 0}


def edges_between(graph: Graph, nodes: Iterable[Node]) -> set[tuple[Node, Node]]:
    """Canonical keys of the graph edges with both endpoints in ``nodes``."""
    topo = graph.freeze()
    index = topo.index
    labels = topo.labels
    ids = {index[u] for u in nodes if u in index}
    result: set[tuple[Node, Node]] = set()
    indptr, indices = topo.indptr, topo.indices
    for i in ids:
        u = labels[i]
        for pos in range(indptr[i], indptr[i + 1]):
            j = indices[pos]
            if j in ids:
                result.add(edge_key(u, labels[j]))
    return result


def power_graph(graph: Graph, r: int) -> Graph:
    """The r-th power G^r: u ~ v iff their hop distance in G is between 1 and r.

    Used by the (1+eps) LOCAL algorithm of Section 6, which runs a network
    decomposition on G^r for r = O(log n / eps).
    """
    if r < 1:
        raise ValueError("r must be at least 1")
    topo = graph.freeze()
    labels = topo.labels
    g = Graph()
    g.add_nodes_from(labels)
    for i in range(topo.n):
        v = labels[i]
        for j, d in topo.bfs_reach(i, max_depth=r):
            if d >= 1:
                g.add_edge(v, labels[j])
    return g


def is_dominating_set(graph: Graph, dominators: Iterable[Node]) -> bool:
    """True iff every vertex is in ``dominators`` or has a neighbour in it."""
    topo = graph.freeze()
    index = topo.index
    dom_ids = {index[v] for v in dominators if v in index}
    indptr, indices = topo.indptr, topo.indices
    for i in range(topo.n):
        if i in dom_ids:
            continue
        if not any(indices[pos] in dom_ids for pos in range(indptr[i], indptr[i + 1])):
            return False
    return True


def is_vertex_cover(graph: Graph, cover: Iterable[Node]) -> bool:
    """True iff every edge has at least one endpoint in ``cover``."""
    topo = graph.freeze()
    index = topo.index
    cover_ids = {index[v] for v in cover if v in index}
    indptr, indices = topo.indptr, topo.indices
    for i in range(topo.n):
        if i in cover_ids:
            continue
        for pos in range(indptr[i], indptr[i + 1]):
            if indices[pos] not in cover_ids:
                return False
    return True


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Mapping degree -> number of vertices with that degree."""
    hist: dict[int, int] = {}
    for d in graph.freeze().degrees:
        hist[d] = hist.get(d, 0) + 1
    return hist
