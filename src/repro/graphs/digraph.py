"""Lightweight directed graph with optional edge weights.

Used by the directed 2-spanner algorithm (Section 4.3.1 of the paper) and by
the hardness constructions of Section 2, which are directed graphs.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Any

from repro.graphs.base import DEFAULT_WEIGHT, BaseGraph
from repro.graphs.topology import CompiledTopology, compile_digraph

Node = Hashable
Arc = tuple[Node, Node]

__all__ = ["Arc", "DEFAULT_WEIGHT", "DiGraph", "Node"]


class DiGraph(BaseGraph):
    """A simple directed graph with float arc weights.

    Arcs are ordered pairs ``(u, v)``; both ``(u, v)`` and ``(v, u)`` may be
    present.  Self-loops are not supported.
    """

    directed = True

    def __init__(self, arcs: Iterable[Arc] | None = None) -> None:
        super().__init__()
        self._succ: dict[Node, dict[Node, float]] = {}
        self._pred: dict[Node, dict[Node, float]] = {}
        if arcs is not None:
            for u, v in arcs:
                self.add_edge(u, v)

    # ------------------------------------------------------------------ hooks
    def _node_store(self) -> dict[Node, dict[Node, float]]:
        return self._succ

    def _compile(self) -> CompiledTopology:
        return compile_digraph(self)

    # ------------------------------------------------------------------ nodes
    def add_node(self, v: Node) -> None:
        if v not in self._succ:
            self._succ[v] = {}
            self._pred[v] = {}
            self._invalidate()

    def remove_node(self, v: Node) -> None:
        if v not in self._succ:
            raise KeyError(f"node {v!r} not in graph")
        for u in list(self._succ[v]):
            del self._pred[u][v]
        for u in list(self._pred[v]):
            del self._succ[u][v]
        del self._succ[v]
        del self._pred[v]
        self._invalidate()

    # ------------------------------------------------------------------- arcs
    def add_edge(self, u: Node, v: Node, weight: float = DEFAULT_WEIGHT) -> None:
        if u == v:
            raise ValueError(f"self-loops are not allowed: {u!r}")
        self.add_node(u)
        self.add_node(v)
        self._succ[u][v] = float(weight)
        self._pred[v][u] = float(weight)
        self._invalidate()

    def remove_edge(self, u: Node, v: Node) -> None:
        if not self.has_edge(u, v):
            raise KeyError(f"arc {(u, v)!r} not in graph")
        del self._succ[u][v]
        del self._pred[v][u]
        self._invalidate()

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._succ and v in self._succ[u]

    def edges(self) -> Iterator[Arc]:
        for u, nbrs in self._succ.items():
            for v in nbrs:
                yield (u, v)

    def number_of_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._succ.values())

    def weight(self, u: Node, v: Node) -> float:
        if not self.has_edge(u, v):
            raise KeyError(f"arc {(u, v)!r} not in graph")
        return self._succ[u][v]

    def set_weight(self, u: Node, v: Node, weight: float) -> None:
        if not self.has_edge(u, v):
            raise KeyError(f"arc {(u, v)!r} not in graph")
        self._succ[u][v] = float(weight)
        self._pred[v][u] = float(weight)
        self._invalidate()

    # -------------------------------------------------------------- structure
    def successors(self, v: Node) -> set[Node]:
        if v not in self._succ:
            raise KeyError(f"node {v!r} not in graph")
        return set(self._succ[v])

    def predecessors(self, v: Node) -> set[Node]:
        if v not in self._pred:
            raise KeyError(f"node {v!r} not in graph")
        return set(self._pred[v])

    def neighbors(self, v: Node) -> set[Node]:
        """Union of in- and out-neighbours (the *communication* neighbours)."""
        return self.successors(v) | self.predecessors(v)

    def out_degree(self, v: Node) -> int:
        return len(self._succ[v])

    def in_degree(self, v: Node) -> int:
        return len(self._pred[v])

    def degree(self, v: Node) -> int:
        """Number of distinct communication neighbours of ``v``."""
        return len(self.neighbors(v))

    def out_edges(self, v: Node) -> set[Arc]:
        return {(v, u) for u in self._succ[v]}

    def in_edges(self, v: Node) -> set[Arc]:
        return {(u, v) for u in self._pred[v]}

    def incident_edges(self, v: Node) -> set[Arc]:
        return self.out_edges(v) | self.in_edges(v)

    def subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        keep = set(nodes)
        sub = DiGraph()
        for v in keep:
            if v in self._succ:
                sub.add_node(v)
        for v in keep:
            if v not in self._succ:
                continue
            for u, w in self._succ[v].items():
                if u in keep:
                    sub.add_edge(v, u, w)
        return sub

    def edge_subgraph(self, arcs: Iterable[Arc]) -> "DiGraph":
        sub = DiGraph()
        for u, v in arcs:
            sub.add_edge(u, v, self.weight(u, v))
        return sub

    def copy(self) -> "DiGraph":
        other = DiGraph()
        other._succ = {u: dict(nbrs) for u, nbrs in self._succ.items()}
        other._pred = {u: dict(nbrs) for u, nbrs in self._pred.items()}
        return other

    def to_undirected(self) -> "object":
        """Undirected shadow of the digraph (weights of anti-parallel arcs: min)."""
        from repro.graphs.graph import Graph

        g = Graph()
        for v in self._succ:
            g.add_node(v)
        for u, v in self.edges():
            w = self.weight(u, v)
            if g.has_edge(u, v):
                g.set_weight(u, v, min(w, g.weight(u, v)))
            else:
                g.add_edge(u, v, w)
        return g

    # ------------------------------------------------------------- traversals
    def bfs_distances(self, source: Node, max_depth: int | None = None) -> dict[Node, int]:
        """Directed hop distances from ``source`` following arc directions."""
        if source not in self._succ:
            raise KeyError(f"node {source!r} not in graph")
        dist = {source: 0}
        frontier = [source]
        depth = 0
        while frontier and (max_depth is None or depth < max_depth):
            depth += 1
            nxt: list[Node] = []
            for u in frontier:
                for w in self._succ[u]:
                    if w not in dist:
                        dist[w] = depth
                        nxt.append(w)
            frontier = nxt
        return dist

    def is_weakly_connected(self) -> bool:
        return self.to_undirected().is_connected()

    # ---------------------------------------------------------------- dunders
    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return self._succ == other._succ
