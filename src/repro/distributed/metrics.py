"""Communication metrics and per-link accounting for the round simulator.

:class:`Metrics` is the aggregate counter block every engine fills in;
:class:`LinkLedger` is the preallocated per-link bit ledger the indexed
engine charges CONGEST bandwidth against (the batch engine needs no ledger:
one broadcast payload per sender per round means a link's round total *is*
the payload size).  :class:`RoundTally` is the columnar engine's
preallocated flat per-round counter block — kernels write slots of one
64-bit array and :meth:`RoundTally.flush` folds them into :class:`Metrics`
once per round, through the same :func:`flush_round_tally` seam the other
engines use.  ``Metrics(streaming=True)`` bounds the otherwise O(rounds)
``bits_per_round`` history for service-mode / mega-scale runs.
"""

from __future__ import annotations

from array import array
from collections import deque
from dataclasses import dataclass, field


class LinkLedger:
    """Preallocated per-link running bit totals for one delivery pass.

    Links are identified by their global CSR arc position in a
    :class:`~repro.graphs.topology.CompiledTopology` (dense in
    ``0..arc_count-1``), so the ledger is a flat 64-bit array instead of a
    ``(src, dst) -> bits`` hash table.  ``touched`` remembers which
    positions were charged so that resetting between rounds costs
    O(messages), not O(arcs).  The simulator's hot loop reads ``bits`` and
    ``touched`` directly; :meth:`reset_round` is the only method it calls
    per round.
    """

    __slots__ = ("bits", "touched")

    def __init__(self, arc_count: int) -> None:
        self.bits = array("q", [0]) * arc_count
        self.touched: list[int] = []

    def reset_round(self) -> None:
        """Zero every charged position and forget the touched set."""
        bits = self.bits
        for pos in self.touched:
            bits[pos] = 0
        self.touched.clear()


def flush_round_tally(
    metrics: "Metrics",
    messages: int,
    bits_total: int,
    max_bits: int,
    cut_messages: int,
    cut_bits: int,
    violations: int,
    broadcast_payloads: int,
    virtual_messages: int,
) -> None:
    """Fold one delivery pass's locally-accumulated counters into ``metrics``.

    The indexed and batch engines accumulate per-pass counts in plain locals
    (the hot loops must not pay attribute access per message) and flush them
    here — once per round, and once more before an enforcement raise.  Both
    engines sharing this function is part of the bit-for-bit engine-parity
    contract: a counter added for one engine is necessarily added for both.
    """
    metrics.messages_sent += messages
    metrics.bits_sent += bits_total
    metrics.max_message_bits = max_bits
    metrics.cut_messages += cut_messages
    metrics.cut_bits += cut_bits
    metrics.bandwidth_violations += violations
    metrics.bits_per_round[-1] += bits_total
    if broadcast_payloads:
        metrics.bump("broadcast_payloads", broadcast_payloads)
    if virtual_messages:
        metrics.bump("virtual_link_messages", virtual_messages)


class RoundTally:
    """Preallocated flat per-round counter block for the columnar engine.

    The columnar kernels accumulate one round's deliveries into the slots of
    a single 64-bit ``array("q")`` (no per-message attribute access, and a
    NumPy kernel can deposit its reduced scalars directly), then
    :meth:`flush` folds the block into :class:`Metrics` through the shared
    :func:`flush_round_tally` seam — once per round, plus once more before
    an enforcement raise, exactly like the other engines' plain-local
    accumulators.  :meth:`reset` re-arms the block between rounds in one
    slice assignment; ``max_bits`` is seeded with the run's current maximum
    because :func:`flush_round_tally` stores that slot absolutely.
    """

    __slots__ = ("counts",)

    #: slot indices of ``counts`` (kept dense so ``flush`` is one unpack).
    MESSAGES, BITS, MAX_BITS, CUT_MESSAGES, CUT_BITS = 0, 1, 2, 3, 4
    VIOLATIONS, BROADCASTS, VIRTUAL = 5, 6, 7
    SLOTS = 8

    _ZERO = array("q", [0]) * SLOTS

    def __init__(self) -> None:
        self.counts = array("q", self._ZERO)

    def reset(self, max_bits: int) -> None:
        """Zero every slot and seed ``MAX_BITS`` with the run's current maximum."""
        counts = self.counts
        counts[:] = self._ZERO
        counts[self.MAX_BITS] = max_bits

    def flush(self, metrics: "Metrics") -> None:
        """Fold the block into ``metrics`` via :func:`flush_round_tally`."""
        flush_round_tally(metrics, *self.counts)


@dataclass
class Metrics:
    """Aggregate communication statistics for one simulation run.

    ``cut_bits`` is only populated when the simulator is asked to track a
    vertex cut (used by the two-party lower-bound reductions of Sections 2-3,
    where Alice and Bob must exchange every bit that crosses the cut).

    ``bits_per_round`` starts with a round-0 bucket: messages queued in
    ``on_start`` are collected before the first ``start_round()`` and land
    there, so ``sum(bits_per_round) == bits_sent`` always holds and the
    bucket for round ``r`` is ``bits_per_round[r]``.

    ``per_model`` holds counters owned by the communication-model policy
    (e.g. ``broadcast_payloads`` under broadcast-CONGEST,
    ``virtual_link_messages`` under the Congested Clique); it stays empty —
    and :meth:`as_dict` unchanged — under LOCAL / CONGEST, preserving the
    golden-run contract.

    ``per_adversary`` holds fault counters owned by the adversary policy
    (:mod:`repro.distributed.adversary`): ``adversary_dropped_messages``,
    ``adversary_crashed_nodes`` and friends.  It follows the same pattern
    as ``per_model`` — empty (and :meth:`as_dict` unchanged) for fault-free
    runs, including runs with an explicit ``NoAdversary`` installed, so the
    golden dictionaries never gain keys.

    ``streaming=True`` opts into bounded-memory history for mega-scale /
    service-mode runs: ``bits_per_round`` becomes a ``deque`` capped at
    ``history_cap`` buckets (oldest rounds evicted) while the running
    aggregates — every scalar counter above plus :meth:`peak_round_bits`
    and the count in ``rounds`` — keep covering the whole run.  Every
    scalar counter, :meth:`as_dict` and the retained history suffix are
    bit-for-bit identical to a non-streaming run; only the evicted prefix
    of ``bits_per_round`` (and hence ``sum(bits_per_round)``) differs.
    The default is off, so goldens and the engine-parity fixtures are
    untouched.
    """

    rounds: int = 0
    messages_sent: int = 0
    bits_sent: int = 0
    max_message_bits: int = 0
    bandwidth_violations: int = 0
    cut_messages: int = 0
    cut_bits: int = 0
    bits_per_round: list[int] = field(default_factory=lambda: [0])
    per_model: dict[str, int] = field(default_factory=dict)
    per_adversary: dict[str, int] = field(default_factory=dict)
    streaming: bool = False
    history_cap: int = 1024
    _round_bits_peak: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        """Convert the history to a capped deque when streaming is requested."""
        if self.streaming:
            if self.history_cap < 1:
                raise ValueError(
                    f"history_cap must be >= 1, got {self.history_cap!r}"
                )
            self.bits_per_round = deque(self.bits_per_round, maxlen=self.history_cap)

    def record_message(self, bits: int, crosses_cut: bool) -> None:
        """Tally one delivered message of ``bits`` bits (reference engine)."""
        self.messages_sent += 1
        self.bits_sent += bits
        self.max_message_bits = max(self.max_message_bits, bits)
        self.bits_per_round[-1] += bits
        if crosses_cut:
            self.cut_messages += 1
            self.cut_bits += bits

    def start_round(self) -> None:
        """Advance the round counter and open a fresh ``bits_per_round`` bucket.

        In streaming mode the bucket about to be evicted by the capped deque
        is folded into the running peak first, so :meth:`peak_round_bits`
        stays exact over the whole run while the history stays bounded.
        """
        self.rounds += 1
        history = self.bits_per_round
        if self.streaming and len(history) == history.maxlen:
            evicted = history[0]
            if evicted > self._round_bits_peak:
                self._round_bits_peak = evicted
        history.append(0)

    def peak_round_bits(self) -> int:
        """Largest single-round bit total of the run (exact in both modes)."""
        return max(self._round_bits_peak, max(self.bits_per_round, default=0))

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a model-owned counter (created on first use)."""
        self.per_model[counter] = self.per_model.get(counter, 0) + amount

    def bump_fault(self, counter: str, amount: int = 1) -> None:
        """Increment an adversary-owned fault counter (created on first use)."""
        self.per_adversary[counter] = self.per_adversary.get(counter, 0) + amount

    def as_dict(self) -> dict[str, int]:
        """All aggregate counters as a flat dictionary.

        Benchmarks and reports should consume this instead of poking
        individual attributes, so that adding a counter is a one-line change.
        Model-owned counters are merged in after the core ones, then the
        adversary-owned fault counters; a policy counter whose name shadows
        an earlier counter (e.g. ``rounds``) would silently corrupt the
        report, so collisions raise instead.
        """
        out = {
            "rounds": self.rounds,
            "messages_sent": self.messages_sent,
            "bits_sent": self.bits_sent,
            "max_message_bits": self.max_message_bits,
            "bandwidth_violations": self.bandwidth_violations,
            "cut_messages": self.cut_messages,
            "cut_bits": self.cut_bits,
        }
        for owner, counters in (
            ("per_model", self.per_model),
            ("per_adversary", self.per_adversary),
        ):
            for key, value in counters.items():
                if key in out:
                    raise ValueError(
                        f"{owner} counter {key!r} collides with another Metrics counter"
                    )
                out[key] = value
        return out

    def summary(self) -> dict[str, int]:
        """Backwards-compatible alias of :meth:`as_dict`."""
        return self.as_dict()
