"""Communication metrics collected by the round simulator."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Metrics:
    """Aggregate communication statistics for one simulation run.

    ``cut_bits`` is only populated when the simulator is asked to track a
    vertex cut (used by the two-party lower-bound reductions of Sections 2-3,
    where Alice and Bob must exchange every bit that crosses the cut).

    ``bits_per_round`` starts with a round-0 bucket: messages queued in
    ``on_start`` are collected before the first ``start_round()`` and land
    there, so ``sum(bits_per_round) == bits_sent`` always holds and the
    bucket for round ``r`` is ``bits_per_round[r]``.

    ``per_model`` holds counters owned by the communication-model policy
    (e.g. ``broadcast_payloads`` under broadcast-CONGEST,
    ``virtual_link_messages`` under the Congested Clique); it stays empty —
    and :meth:`as_dict` unchanged — under LOCAL / CONGEST, preserving the
    golden-run contract.
    """

    rounds: int = 0
    messages_sent: int = 0
    bits_sent: int = 0
    max_message_bits: int = 0
    bandwidth_violations: int = 0
    cut_messages: int = 0
    cut_bits: int = 0
    bits_per_round: list[int] = field(default_factory=lambda: [0])
    per_model: dict[str, int] = field(default_factory=dict)

    def record_message(self, bits: int, crosses_cut: bool) -> None:
        self.messages_sent += 1
        self.bits_sent += bits
        self.max_message_bits = max(self.max_message_bits, bits)
        self.bits_per_round[-1] += bits
        if crosses_cut:
            self.cut_messages += 1
            self.cut_bits += bits

    def start_round(self) -> None:
        self.rounds += 1
        self.bits_per_round.append(0)

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a model-owned counter (created on first use)."""
        self.per_model[counter] = self.per_model.get(counter, 0) + amount

    def as_dict(self) -> dict[str, int]:
        """All aggregate counters as a flat dictionary.

        Benchmarks and reports should consume this instead of poking
        individual attributes, so that adding a counter is a one-line change.
        Model-owned counters are merged in after the core ones; a model
        counter whose name shadows a core counter (e.g. ``rounds``) would
        silently corrupt the report, so collisions raise instead.
        """
        out = {
            "rounds": self.rounds,
            "messages_sent": self.messages_sent,
            "bits_sent": self.bits_sent,
            "max_message_bits": self.max_message_bits,
            "bandwidth_violations": self.bandwidth_violations,
            "cut_messages": self.cut_messages,
            "cut_bits": self.cut_bits,
        }
        for key, value in self.per_model.items():
            if key in out:
                raise ValueError(
                    f"per_model counter {key!r} collides with a core Metrics counter"
                )
            out[key] = value
        return out

    def summary(self) -> dict[str, int]:
        """Backwards-compatible alias of :meth:`as_dict`."""
        return self.as_dict()
