"""Message-size estimation for CONGEST bandwidth accounting.

The CONGEST model allows O(log n) bits per edge per round.  Simulated
messages are ordinary Python objects; this module estimates how many bits a
reasonable binary encoding of such an object would need, so that the
simulator can (a) report total communication and (b) flag algorithms whose
messages exceed the CONGEST budget.

The estimate is intentionally simple and deterministic:

* ``None`` / booleans: 1 bit
* integers: ``bit_length`` (at least 1), plus a sign bit
* floats: 64 bits
* strings / bytes: 8 bits per character or byte
* tuples, lists, sets, frozensets, dicts: sum of the elements plus a small
  per-element framing overhead (2 bits) to account for delimiters.

These conventions are stable across runs and platforms, which is all the
benchmarks need.
"""

from __future__ import annotations

import hashlib
import struct
from collections.abc import Mapping, Sequence, Set

_FRAMING_BITS = 2


def estimate_bits(payload: object) -> int:
    """Estimated number of bits needed to encode ``payload``."""
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length()) + 1
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return max(1, 8 * len(payload))
    if isinstance(payload, (bytes, bytearray)):
        return max(1, 8 * len(payload))
    if isinstance(payload, Mapping):
        total = _FRAMING_BITS
        for key, value in payload.items():
            total += _FRAMING_BITS + estimate_bits(key) + estimate_bits(value)
        return total
    if isinstance(payload, (Sequence, Set, frozenset)):
        total = _FRAMING_BITS
        for item in payload:
            total += _FRAMING_BITS + estimate_bits(item)
        return total
    # Fallback for dataclass-like objects: encode their fields — both
    # ``__dict__`` entries and ``__slots__`` descriptors (a slotted payload
    # used to fall through to the flat 64-bit guess, under-billing CONGEST
    # accounting for anything larger than one machine word).
    fields = _object_fields(payload)
    if fields is not None:
        return estimate_bits(fields)
    return 64


def _object_fields(payload: object) -> dict[str, object] | None:
    """Field name -> value for dataclass-like payloads, else ``None``.

    Merges ``__dict__`` with every ``__slots__`` entry declared along the
    MRO (skipping the ``__dict__``/``__weakref__`` pseudo-slots and slots
    never assigned).  Returns ``None`` when the object has neither, so the
    caller can fall back to the opaque 64-bit estimate.
    """
    fields: dict[str, object] | None = None
    if hasattr(payload, "__dict__"):
        fields = dict(vars(payload))
    for klass in type(payload).__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if name in ("__dict__", "__weakref__"):
                continue
            if fields is None:
                fields = {}
            if name not in fields and hasattr(payload, name):
                fields[name] = getattr(payload, name)
    return fields


class BitsMemo:
    """Identity-keyed memo for :func:`estimate_bits`, valid for one delivery pass.

    A broadcast enqueues the *same* payload object once per neighbour, so a
    delivery pass sees each distinct payload ``deg`` times; measuring it once
    turns the per-round estimation cost from O(sum of degrees) to O(number of
    distinct payloads).  Keying by ``id`` is sound only while the payloads are
    alive and unmodified, which holds between the end of a round (no program
    is running) and the delivery of its messages — the memo must be reset
    after every pass because ids may be reused once payloads are collected.
    """

    __slots__ = ("_memo",)

    def __init__(self) -> None:
        self._memo: dict[int, int] = {}

    def measure(self, payload: object) -> int:
        """Size of ``payload`` in bits, computed once per distinct object."""
        # Identity memo key within one delivery pass — never an ordering,
        # never persisted, reset before ids can recycle (class docstring).
        key = id(payload)  # reprolint: disable=REP003
        bits = self._memo.get(key)
        if bits is None:
            bits = self._memo[key] = estimate_bits(payload)
        return bits

    def reset(self) -> None:
        """Forget all measurements (ids may be reused once payloads die)."""
        self._memo.clear()


#: Exact payload types whose :func:`estimate_bits` result is a pure function
#: of ``(type, value)``.  ``bool`` precedes ``int`` deliberately: ``True == 1``
#: hashes like ``1`` but is 1 bit, not 2, so the cache key must carry the
#: exact type; similarly ``1 == 1.0`` (2 vs 64 bits).  Containers are
#: excluded because *their* equality does not imply element-type equality
#: (``(1,) == (True,)``) — they always fall through to a direct estimate.
_VALUE_KEYED_TYPES = frozenset((bool, int, float, str, bytes, type(None)))


class PayloadSizeTable:
    """Value-keyed, run-lifetime size cache: ``estimate_bits`` off the hot loop.

    :class:`BitsMemo` is identity-keyed and valid for one delivery pass only
    (object ids recycle).  This table is *value*-keyed and persistent for a
    whole run: the primitive payload classes broadcast workloads actually
    send (integer labels, strings, floats) are measured once per distinct
    ``(exact type, value)`` pair and afterwards cost one dict hit per
    *round*, not per message — the columnar engine's per-payload-class size
    table.  Exact-type keying is what makes value keying sound (see
    ``_VALUE_KEYED_TYPES``); any other payload shape (tuples, dataclass-like
    objects) is delegated to :func:`estimate_bits` directly, so the table
    agrees with it bit-for-bit on every input.  ``cap`` bounds the number of
    interned entries per table; once full, new values are measured directly
    instead of cached, so adversarial high-cardinality payload streams
    cannot grow the tables without bound.

    Exact ``int`` payloads — the dominant broadcast payload class (vertex
    labels, counters) — get a dedicated ``int_sizes`` dictionary keyed by
    the raw value: one dict probe, no key-tuple allocation.  It is public
    so the columnar engine's gather loop can alias it locally and inline
    the probe; ``bool`` never lands there (``True.__class__ is bool``), so
    the ``True == 1`` aliasing trap stays closed.
    """

    __slots__ = ("_table", "int_sizes", "cap")

    def __init__(self, cap: int = 1 << 20) -> None:
        self._table: dict[tuple[type, object], int] = {}
        #: exact-``int`` fast table, keyed by the payload value itself.
        self.int_sizes: dict[int, int] = {}
        #: max interned entries per table (read-only by convention).
        self.cap = cap

    def measure(self, payload: object) -> int:
        """Size of ``payload`` in bits; identical to ``estimate_bits(payload)``."""
        cls = payload.__class__
        if cls is int:
            table = self.int_sizes
            bits = table.get(payload)
            if bits is None:
                bits = estimate_bits(payload)
                if len(table) < self.cap:
                    table[payload] = bits
            return bits
        if cls in _VALUE_KEYED_TYPES:
            key = (cls, payload)
            table = self._table
            bits = table.get(key)
            if bits is None:
                bits = estimate_bits(payload)
                if len(table) < self.cap:
                    table[key] = bits
            return bits
        return estimate_bits(payload)

    def __len__(self) -> int:
        return len(self._table) + len(self.int_sizes)


class UnencodablePayloadError(TypeError):
    """The payload type has no canonical wire image (see :func:`encode_payload`)."""


class PayloadDecodeError(ValueError):
    """The wire image is not a valid canonical encoding."""


class CorruptedPayload:
    """Sentinel delivered when a corrupted wire image no longer decodes.

    Behaves like negative infinity under comparisons so max-style folds
    (flood-max, spanner elections) treat an undecodable message as "heard
    nothing useful" without special-casing.  Hash and repr are constants so
    the sentinel can live in decoded payload structures without introducing
    id-dependent behaviour.  Use the module-level :data:`CORRUPTED` instance;
    the class exists only to give it a type.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "CORRUPTED"

    def __hash__(self) -> int:
        return 0x6C0221  # constant: never id-derived

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CorruptedPayload)

    def __ne__(self, other: object) -> bool:
        return not isinstance(other, CorruptedPayload)

    def __lt__(self, other: object) -> bool:
        return not isinstance(other, CorruptedPayload)

    def __le__(self, other: object) -> bool:
        return True

    def __gt__(self, other: object) -> bool:
        return False

    def __ge__(self, other: object) -> bool:
        return isinstance(other, CorruptedPayload)


#: The one :class:`CorruptedPayload` instance programs ever see.
CORRUPTED = CorruptedPayload()

#: Recursion guard for nested containers in encode/decode.
_MAX_DEPTH = 32

#: A LEB128 varint of more than 10 bytes exceeds 64 bits of length — reject
#: early so a corrupted continuation bit cannot request absurd allocations.
_MAX_VARINT_BYTES = 10


def _write_varint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(wire: bytes, pos: int) -> tuple[int, int]:
    value = 0
    shift = 0
    for count in range(_MAX_VARINT_BYTES):
        if pos >= len(wire):
            raise PayloadDecodeError("truncated varint")
        byte = wire[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if byte == 0 and count:
                raise PayloadDecodeError("non-canonical varint padding")
            return value, pos
        shift += 7
    raise PayloadDecodeError("varint longer than 10 bytes")


def _encode_into(out: bytearray, payload: object, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise UnencodablePayloadError("payload nesting exceeds codec depth limit")
    if payload is None:
        out.append(ord("N"))
        return
    cls = payload.__class__
    if cls is bool:
        out.append(ord("T") if payload else ord("F"))
        return
    if cls is int:
        out.append(ord("i"))
        out.append(1 if payload < 0 else 0)
        magnitude = -payload if payload < 0 else payload
        image = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
        _write_varint(out, len(image))
        out += image
        return
    if cls is float:
        out.append(ord("f"))
        out += struct.pack(">d", payload)
        return
    if cls is str:
        image = payload.encode("utf-8")
        out.append(ord("s"))
        _write_varint(out, len(image))
        out += image
        return
    if cls is bytes:
        out.append(ord("b"))
        _write_varint(out, len(payload))
        out += payload
        return
    if cls is tuple or cls is list:
        out.append(ord("t") if cls is tuple else ord("l"))
        _write_varint(out, len(payload))
        for item in payload:
            _encode_into(out, item, depth + 1)
        return
    raise UnencodablePayloadError(
        f"no canonical wire image for payload type {cls.__name__!r}"
    )


def encode_payload(payload: object) -> bytes:
    """Canonical tag-length-value wire image of ``payload``.

    Covers the payload vocabulary simulated programs actually send — ``None``,
    ``bool``, ``int``, ``float``, ``str``, ``bytes``, and tuples/lists thereof
    (exact types only, so ``True`` and ``1`` stay distinct on the wire).  The
    encoding is injective and platform-independent: equal values always share
    one image, so the corruption adversary's bit flips are a pure function of
    the value.  Raises :class:`UnencodablePayloadError` for anything else.
    """
    out = bytearray()
    _encode_into(out, payload, 0)
    return bytes(out)


def _decode_from(wire: bytes, pos: int, depth: int) -> tuple[object, int]:
    if depth > _MAX_DEPTH:
        raise PayloadDecodeError("wire image nesting exceeds codec depth limit")
    if pos >= len(wire):
        raise PayloadDecodeError("truncated wire image")
    tag = wire[pos]
    pos += 1
    if tag == ord("N"):
        return None, pos
    if tag == ord("T"):
        return True, pos
    if tag == ord("F"):
        return False, pos
    if tag == ord("i"):
        if pos >= len(wire):
            raise PayloadDecodeError("truncated int sign")
        sign = wire[pos]
        pos += 1
        if sign > 1:
            raise PayloadDecodeError("invalid int sign byte")
        length, pos = _read_varint(wire, pos)
        if length < 1 or pos + length > len(wire):
            raise PayloadDecodeError("truncated int magnitude")
        if length > 1 and wire[pos] == 0:
            raise PayloadDecodeError("non-canonical int padding")
        magnitude = int.from_bytes(wire[pos : pos + length], "big")
        if sign and not magnitude:
            raise PayloadDecodeError("negative zero is non-canonical")
        return -magnitude if sign else magnitude, pos + length
    if tag == ord("f"):
        if pos + 8 > len(wire):
            raise PayloadDecodeError("truncated float")
        return struct.unpack(">d", wire[pos : pos + 8])[0], pos + 8
    if tag == ord("s") or tag == ord("b"):
        length, pos = _read_varint(wire, pos)
        if pos + length > len(wire):
            raise PayloadDecodeError("truncated string/bytes body")
        body = wire[pos : pos + length]
        pos += length
        if tag == ord("b"):
            return body, pos
        try:
            return body.decode("utf-8"), pos
        except UnicodeDecodeError:
            raise PayloadDecodeError("invalid utf-8 in string body") from None
    if tag == ord("t") or tag == ord("l"):
        length, pos = _read_varint(wire, pos)
        if length > len(wire) - pos:
            # Each element needs at least one tag byte; guard before building.
            raise PayloadDecodeError("container length exceeds remaining bytes")
        items = []
        for _ in range(length):
            item, pos = _decode_from(wire, pos, depth + 1)
            items.append(item)
        return (tuple(items) if tag == ord("t") else items), pos
    raise PayloadDecodeError(f"unknown tag byte {tag:#04x}")


def decode_payload(wire: bytes) -> object:
    """Strict inverse of :func:`encode_payload`.

    Every byte must be consumed and every field canonical; any deviation
    raises :class:`PayloadDecodeError`, which the corruption pipeline maps
    to the :data:`CORRUPTED` sentinel.
    """
    value, pos = _decode_from(wire, 0, 0)
    if pos != len(wire):
        raise PayloadDecodeError("trailing bytes after wire image")
    return value


def corrupt_payload(payload: object, bit: int) -> object:
    """``payload`` with one bit flipped in its canonical wire image.

    ``bit`` is reduced modulo the image's bit length, so any 64-bit hash
    output picks a valid position.  If the payload has no wire image, or the
    damaged image no longer decodes, the result is the :data:`CORRUPTED`
    sentinel — corruption can forge values but never crash the transport.
    """
    try:
        wire = bytearray(encode_payload(payload))
    except UnencodablePayloadError:
        return CORRUPTED
    index = bit % (8 * len(wire))
    wire[index >> 3] ^= 1 << (index & 7)
    try:
        return decode_payload(bytes(wire))
    except PayloadDecodeError:
        return CORRUPTED


def payload_checksum(payload: object) -> int:
    """32-bit BLAKE2 checksum of the payload's canonical wire image.

    The coded workloads append this to their messages so a single corrupted
    bit is detected (converting corruption into an erasure) with probability
    ``1 - 2**-32`` per forged image.  Raises :class:`UnencodablePayloadError`
    when the payload has no wire image.
    """
    digest = hashlib.blake2b(encode_payload(payload), digest_size=4).digest()
    return int.from_bytes(digest, "big")


def congest_budget_bits(n: int, factor: int = 32) -> int:
    """The per-edge per-round budget ``factor * ceil(log2 n)`` bits.

    ``factor`` is the constant hidden in the model's O(log n); 32 matches the
    common convention that a CONGEST message carries a constant number of
    vertex identifiers and counters.
    """
    if n < 2:
        return factor
    return factor * max(1, (n - 1).bit_length())
