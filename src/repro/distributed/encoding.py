"""Message-size estimation for CONGEST bandwidth accounting.

The CONGEST model allows O(log n) bits per edge per round.  Simulated
messages are ordinary Python objects; this module estimates how many bits a
reasonable binary encoding of such an object would need, so that the
simulator can (a) report total communication and (b) flag algorithms whose
messages exceed the CONGEST budget.

The estimate is intentionally simple and deterministic:

* ``None`` / booleans: 1 bit
* integers: ``bit_length`` (at least 1), plus a sign bit
* floats: 64 bits
* strings / bytes: 8 bits per character or byte
* tuples, lists, sets, frozensets, dicts: sum of the elements plus a small
  per-element framing overhead (2 bits) to account for delimiters.

These conventions are stable across runs and platforms, which is all the
benchmarks need.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence, Set

_FRAMING_BITS = 2


def estimate_bits(payload: object) -> int:
    """Estimated number of bits needed to encode ``payload``."""
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length()) + 1
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return max(1, 8 * len(payload))
    if isinstance(payload, (bytes, bytearray)):
        return max(1, 8 * len(payload))
    if isinstance(payload, Mapping):
        total = _FRAMING_BITS
        for key, value in payload.items():
            total += _FRAMING_BITS + estimate_bits(key) + estimate_bits(value)
        return total
    if isinstance(payload, (Sequence, Set, frozenset)):
        total = _FRAMING_BITS
        for item in payload:
            total += _FRAMING_BITS + estimate_bits(item)
        return total
    # Fallback for dataclass-like objects: encode their fields — both
    # ``__dict__`` entries and ``__slots__`` descriptors (a slotted payload
    # used to fall through to the flat 64-bit guess, under-billing CONGEST
    # accounting for anything larger than one machine word).
    fields = _object_fields(payload)
    if fields is not None:
        return estimate_bits(fields)
    return 64


def _object_fields(payload: object) -> dict[str, object] | None:
    """Field name -> value for dataclass-like payloads, else ``None``.

    Merges ``__dict__`` with every ``__slots__`` entry declared along the
    MRO (skipping the ``__dict__``/``__weakref__`` pseudo-slots and slots
    never assigned).  Returns ``None`` when the object has neither, so the
    caller can fall back to the opaque 64-bit estimate.
    """
    fields: dict[str, object] | None = None
    if hasattr(payload, "__dict__"):
        fields = dict(vars(payload))
    for klass in type(payload).__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if name in ("__dict__", "__weakref__"):
                continue
            if fields is None:
                fields = {}
            if name not in fields and hasattr(payload, name):
                fields[name] = getattr(payload, name)
    return fields


class BitsMemo:
    """Identity-keyed memo for :func:`estimate_bits`, valid for one delivery pass.

    A broadcast enqueues the *same* payload object once per neighbour, so a
    delivery pass sees each distinct payload ``deg`` times; measuring it once
    turns the per-round estimation cost from O(sum of degrees) to O(number of
    distinct payloads).  Keying by ``id`` is sound only while the payloads are
    alive and unmodified, which holds between the end of a round (no program
    is running) and the delivery of its messages — the memo must be reset
    after every pass because ids may be reused once payloads are collected.
    """

    __slots__ = ("_memo",)

    def __init__(self) -> None:
        self._memo: dict[int, int] = {}

    def measure(self, payload: object) -> int:
        """Size of ``payload`` in bits, computed once per distinct object."""
        # Identity memo key within one delivery pass — never an ordering,
        # never persisted, reset before ids can recycle (class docstring).
        key = id(payload)  # reprolint: disable=REP003
        bits = self._memo.get(key)
        if bits is None:
            bits = self._memo[key] = estimate_bits(payload)
        return bits

    def reset(self) -> None:
        """Forget all measurements (ids may be reused once payloads die)."""
        self._memo.clear()


#: Exact payload types whose :func:`estimate_bits` result is a pure function
#: of ``(type, value)``.  ``bool`` precedes ``int`` deliberately: ``True == 1``
#: hashes like ``1`` but is 1 bit, not 2, so the cache key must carry the
#: exact type; similarly ``1 == 1.0`` (2 vs 64 bits).  Containers are
#: excluded because *their* equality does not imply element-type equality
#: (``(1,) == (True,)``) — they always fall through to a direct estimate.
_VALUE_KEYED_TYPES = frozenset((bool, int, float, str, bytes, type(None)))


class PayloadSizeTable:
    """Value-keyed, run-lifetime size cache: ``estimate_bits`` off the hot loop.

    :class:`BitsMemo` is identity-keyed and valid for one delivery pass only
    (object ids recycle).  This table is *value*-keyed and persistent for a
    whole run: the primitive payload classes broadcast workloads actually
    send (integer labels, strings, floats) are measured once per distinct
    ``(exact type, value)`` pair and afterwards cost one dict hit per
    *round*, not per message — the columnar engine's per-payload-class size
    table.  Exact-type keying is what makes value keying sound (see
    ``_VALUE_KEYED_TYPES``); any other payload shape (tuples, dataclass-like
    objects) is delegated to :func:`estimate_bits` directly, so the table
    agrees with it bit-for-bit on every input.  ``cap`` bounds the number of
    interned entries per table; once full, new values are measured directly
    instead of cached, so adversarial high-cardinality payload streams
    cannot grow the tables without bound.

    Exact ``int`` payloads — the dominant broadcast payload class (vertex
    labels, counters) — get a dedicated ``int_sizes`` dictionary keyed by
    the raw value: one dict probe, no key-tuple allocation.  It is public
    so the columnar engine's gather loop can alias it locally and inline
    the probe; ``bool`` never lands there (``True.__class__ is bool``), so
    the ``True == 1`` aliasing trap stays closed.
    """

    __slots__ = ("_table", "int_sizes", "cap")

    def __init__(self, cap: int = 1 << 20) -> None:
        self._table: dict[tuple[type, object], int] = {}
        #: exact-``int`` fast table, keyed by the payload value itself.
        self.int_sizes: dict[int, int] = {}
        #: max interned entries per table (read-only by convention).
        self.cap = cap

    def measure(self, payload: object) -> int:
        """Size of ``payload`` in bits; identical to ``estimate_bits(payload)``."""
        cls = payload.__class__
        if cls is int:
            table = self.int_sizes
            bits = table.get(payload)
            if bits is None:
                bits = estimate_bits(payload)
                if len(table) < self.cap:
                    table[payload] = bits
            return bits
        if cls in _VALUE_KEYED_TYPES:
            key = (cls, payload)
            table = self._table
            bits = table.get(key)
            if bits is None:
                bits = estimate_bits(payload)
                if len(table) < self.cap:
                    table[key] = bits
            return bits
        return estimate_bits(payload)

    def __len__(self) -> int:
        return len(self._table) + len(self.int_sizes)


def congest_budget_bits(n: int, factor: int = 32) -> int:
    """The per-edge per-round budget ``factor * ceil(log2 n)`` bits.

    ``factor`` is the constant hidden in the model's O(log n); 32 matches the
    common convention that a CONGEST message carries a constant number of
    vertex identifiers and counters.
    """
    if n < 2:
        return factor
    return factor * max(1, (n - 1).bit_length())
