"""Columnar simulator engine: flat-array delivery kernels over CSR rows.

The ``batch`` engine (PR 4) collapsed per-message work into per-sender work
but still runs one Python loop iteration per *delivery* (inbox dict insert
per receiver).  This module removes that loop too: one round of broadcast
traffic becomes a handful of flat-array operations —

* **gather** — each sender's interned payload is drained into persistent
  per-round columns: a ``sent`` flag byte per node, a 64-bit size slot
  (``bits_col``) and the shared single-payload list the batch engine also
  interns;
* **size table** — payload sizes come from a run-lifetime
  :class:`~repro.distributed.encoding.PayloadSizeTable` keyed by
  ``(exact type, value)`` (with a dedicated exact-``int`` fast dictionary),
  so :func:`~repro.distributed.encoding.estimate_bits` runs once per
  distinct payload value per run, not once per sender per round;
* **accounting kernels** — messages / bits / cut / overlay / violation
  totals are mask dot-products over preallocated per-node count columns
  (NumPy when importable, a tight stdlib loop otherwise) deposited in a
  preallocated :class:`~repro.distributed.metrics.RoundTally` that is
  flushed into :class:`~repro.distributed.metrics.Metrics` once per round;
* **delivery** — no inbox dicts are built: every receiver owns one
  persistent :class:`ColumnarInbox` view over the shared round state.  In
  the common every-node-broadcasts round the payload lists of *all*
  receivers are materialised by a single NumPy fancy-index over the
  concatenated (sorted) neighbour rows and each ``values()`` call is a
  C-level list slice; otherwise ``values()`` filters the receiver's row
  against the ``sent`` column.

NumPy is strictly optional: when it is missing (or disabled via the
``REPRO_DISABLE_NUMPY`` environment variable) the stdlib kernels produce
bit-for-bit identical results — slower, never different.

Rounds that contain targeted sends are not collected here at all: the
contexts flag a shared signal cell and the engine delegates the whole
round to the shared targeted fast path
(:mod:`repro.distributed.targeted`), which reuses this run's payload size
table.  The kernels below therefore only ever see pure-broadcast rounds.

Parity contract (the gate this engine ships under): the columnar engine is
bit-for-bit identical to the ``indexed`` engine — outputs,
``Metrics.as_dict()``, ``bits_per_round`` — for every program under all
four communication models and under every adversary.  The load-bearing
details of the broadcast kernels:

* inbox key order — the indexed engine inserts senders in ascending index
  order, so :class:`ColumnarInbox` iterates the *sorted* neighbour rows
  (:meth:`~repro.graphs.topology.CompiledTopology.sorted_neighbor_rows`),
  never raw CSR order;
* adversaries — an active delivery filter is consulted once per sender via
  :meth:`~repro.distributed.adversary.DeliveryFilter.deliver_mask` (for
  drops, a keyed-hash mask over ``(round, src, dst)``), and delivery falls
  back to eager batch-style inbox dicts so stateful filters observe every
  decision; decisions are order-independent by the adversary design rules,
  so counters and inboxes match the indexed engine exactly;
* enforcement — when a payload exceeds an enforcing model's budget the
  engine re-walks the senders in order and raises
  :class:`~repro.distributed.errors.BandwidthExceededError` with exactly
  the batch engine's partially-flushed metrics and message text.

Like the batch engine, the single-payload inbox lists are *shared* between
receivers, and the inbox views are valid only for the round they were
collected for (the engine reuses the underlying buffers): programs must
treat inboxes as read-only and must not stash them across rounds — which
every shipped program already satisfies.
"""

from __future__ import annotations

import os
from array import array
from collections.abc import Mapping
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.distributed.encoding import PayloadSizeTable, estimate_bits
from repro.distributed.errors import BandwidthExceededError
from repro.distributed.metrics import Metrics, RoundTally, flush_round_tally
from repro.distributed.node import NO_BROADCAST, NodeContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.distributed.adversary import DeliveryFilter
    from repro.distributed.simulator import Simulator

# NumPy is an optional accelerator, never a dependency: absent (or disabled
# through the environment) the stdlib kernels take over with identical
# results.  The module global is re-read on every run so tests can
# monkeypatch it to exercise the fallback.
if os.environ.get("REPRO_DISABLE_NUMPY"):  # pragma: no cover - env-driven
    _np = None
else:
    try:
        import numpy as _np
    except ImportError:  # pragma: no cover - depends on environment
        _np = None


def have_numpy() -> bool:
    """Whether the columnar engine will use its NumPy kernels on this run."""
    return _np is not None


class _RoundState:
    """One run's shared send-state, rebuilt in place every collection pass.

    All :class:`ColumnarInbox` views of a run alias one instance, so
    resetting the round costs a few slice assignments instead of
    re-constructing one view per receiver per round.  The primary store is
    the ``pays`` payload *column* (payload object per sender index); the
    Mapping contract's per-sender singleton lists (``plists``) are
    materialised lazily via :meth:`ensure_plists`, only on rounds where a
    program actually uses the dict-like accessors — a pure fold like
    flood-max's :meth:`ColumnarInbox.max_heard` never pays for them.

    ``flat`` caches the round's bulk-gathered payload lists and
    ``pays_flat`` the bulk-gathered raw payloads (both aligned with the
    concatenated sorted neighbour rows, hence sliceable by CSR ``indptr``
    bounds); each is built on first access and only for all-senders rounds.
    Stale column entries are guarded by the ``sent`` flags, so per-round
    reset clears only ``sent`` and the caches.
    """

    __slots__ = (
        "pays",
        "plists",
        "plists_valid",
        "senders",
        "sent",
        "labels",
        "index",
        "all_sent",
        "ints_only",
        "flat",
        "build_flat",
        "pays_flat",
        "build_pays_flat",
        "row_max",
        "build_row_max",
    )

    def __init__(self, n: int, labels: list[Any], index: dict[Any, int]) -> None:
        # Initialised to 0 (an int), not None: isolated vertices never send,
        # so their column slots must stay convertible when the whole column
        # is lowered to an int64 array for the reduceat fold kernel.
        self.pays: list[Any] = [0] * n
        self.plists: list[list[Any] | None] = [None] * n
        self.plists_valid = False
        self.senders: list[int] = []
        self.sent = bytearray(n)
        self.labels = labels
        self.index = index
        self.all_sent = False
        self.ints_only = False
        self.flat: list[list[Any]] | None = None
        self.build_flat: Callable[[], list[list[Any]]] | None = None
        self.pays_flat: list[Any] | None = None
        self.build_pays_flat: Callable[[], list[Any]] | None = None
        self.row_max: list[int] | None = None
        self.build_row_max: Callable[[], list[int] | None] | None = None

    def ensure_plists(self) -> list[list[Any] | None]:
        """Materialise the round's per-sender singleton payload lists.

        Like the batch engine, one list per sender is shared by all its
        receivers.  Entries of non-senders may be stale from an earlier
        round; every consumer filters through the ``sent`` flags (or, on
        all-sent rounds, touches sender rows only), so they are never
        observed.
        """
        plists = self.plists
        if not self.plists_valid:
            pays = self.pays
            for j in self.senders:
                plists[j] = [pays[j]]
            self.plists_valid = True
        return plists


class ColumnarInbox(Mapping):
    """Read-only inbox view: one receiver's window onto the round state.

    Instead of one dict entry per delivered message, every receiver owns
    one of these for the whole run: iteration walks the receiver's
    ascending-sorted neighbour row and keeps the neighbours that broadcast
    this round (``sent`` flag column), resolving payload lists straight out
    of the shared :class:`_RoundState`.  Key order therefore equals the
    indexed engine's insertion order (ascending sender index), which the
    parity contract requires.  When every node broadcast, ``values()``
    degenerates to a C-level slice of the round's bulk-gathered flat
    payload list.

    Views alias buffers the engine rewrites each round: read them only
    during the round they were handed to ``on_round`` for, and treat the
    (receiver-shared) payload lists as read-only — the batch engine's
    existing inbox contract.
    """

    __slots__ = ("_row", "_lo", "_hi", "_i", "_st")

    def __init__(
        self, row: tuple[int, ...], lo: int, hi: int, i: int, st: _RoundState
    ) -> None:
        self._row = row
        self._lo = lo
        self._hi = hi
        self._i = i
        self._st = st

    def __iter__(self):
        st = self._st
        labels = st.labels
        if st.all_sent:
            return iter([labels[j] for j in self._row])
        sent = st.sent
        return iter([labels[j] for j in self._row if sent[j]])

    def __len__(self) -> int:
        st = self._st
        if st.all_sent:
            return len(self._row)
        sent = st.sent
        total = 0
        for j in self._row:
            if sent[j]:
                total += 1
        return total

    def __bool__(self) -> bool:
        # ``if inbox:`` short-circuits at the first broadcasting neighbour
        # instead of counting them all through ``__len__``.
        st = self._st
        if st.all_sent:
            return bool(self._row)
        sent = st.sent
        return any(sent[j] for j in self._row)

    def __getitem__(self, src: Any) -> list[Any]:
        st = self._st
        j = st.index.get(src, -1)
        if j >= 0 and st.sent[j] and j in self._row:
            plist = st.ensure_plists()[j]
            if plist is not None:
                return plist
        raise KeyError(src)

    def values(self):
        """The payload lists of this round's broadcasting neighbours."""
        st = self._st
        flat = st.flat
        if flat is not None:
            # ``flat`` is only ever set on an all-sent round: hot path, one
            # C-level slice at this receiver's CSR bounds.
            return flat[self._lo : self._hi]
        if st.all_sent:
            if st.build_flat is not None:
                return st.build_flat()[self._lo : self._hi]
            plists = st.ensure_plists()
            return [plists[j] for j in self._row]
        sent = st.sent
        plists = st.ensure_plists()
        return [plists[j] for j in self._row if sent[j]]

    def items(self):
        """``(sender label, payload list)`` pairs in ascending sender order."""
        st = self._st
        labels = st.labels
        plists = st.ensure_plists()
        if st.all_sent:
            return [(labels[j], plists[j]) for j in self._row]
        sent = st.sent
        return [(labels[j], plists[j]) for j in self._row if sent[j]]

    def max_heard(self, default: Any) -> Any:
        """Fold-pushdown: max of ``default`` and the delivered payloads.

        The columnar counterpart of
        ``max(chain.from_iterable(inbox.values()), default)`` for
        broadcast workloads with totally ordered payloads (flood-max's
        vertex labels): the fold runs as one C-level ``max`` over a slice
        of the round's flat *payload* column, skipping the Mapping
        facade's singleton-list materialisation entirely.  Engine-agnostic
        programs dispatch on the inbox type — dict inboxes (indexed /
        batch / reference engines and the columnar adversary path) take
        the generic itertools fold, columnar views take this accessor —
        and the result is identical either way, which the engine-parity
        tests pin down.
        """
        st = self._st
        row_max = st.row_max
        if row_max is not None:
            # Fastest path: the whole round's per-receiver maxima were
            # computed by one ``np.maximum.reduceat`` over the flat int64
            # payload column (entries of empty rows are garbage, hence the
            # degree guard).
            if self._lo == self._hi:
                return default
            heard = row_max[self._i]
            return heard if heard > default else default
        if st.all_sent:
            if st.ints_only and st.build_row_max is not None:
                row_max = st.build_row_max()
                if row_max is not None:
                    if self._lo == self._hi:
                        return default
                    heard = row_max[self._i]
                    return heard if heard > default else default
            flat = st.pays_flat
            if flat is not None:
                vals = flat[self._lo : self._hi]
            elif st.build_pays_flat is not None:
                vals = st.build_pays_flat()[self._lo : self._hi]
            else:
                pays = st.pays
                vals = [pays[j] for j in self._row]
        else:
            pays = st.pays
            sent = st.sent
            vals = [pays[j] for j in self._row if sent[j]]
        if vals:
            heard = max(vals)
            return heard if heard > default else default
        return default


def _crossing_counts(topo, flags: list[bool]) -> array:
    """Per-node count of CSR neighbours whose ``flags`` side differs."""
    indptr, indices = topo.indptr, topo.indices
    counts = array("q", [0]) * topo.n
    for i in range(topo.n):
        mine = flags[i]
        counts[i] = sum(
            1 for pos in range(indptr[i], indptr[i + 1]) if flags[indices[pos]] != mine
        )
    return counts


def _virtual_counts(topo, graph_sets) -> array:
    """Per-node count of CSR neighbours that are not input-graph neighbours."""
    labels = topo.labels
    indptr, indices = topo.indptr, topo.indices
    counts = array("q", [0]) * topo.n
    for i in range(topo.n):
        gset = graph_sets[i]
        counts[i] = sum(
            1
            for pos in range(indptr[i], indptr[i + 1])
            if labels[indices[pos]] not in gset
        )
    return counts


def build_columnar_collect(
    sim: "Simulator",
    contexts: list[NodeContext],
    metrics: Metrics,
    graph_sets,
    filt: "DeliveryFilter | None",
    tsignal: list[bool] | None = None,
) -> Callable[[Iterable[int]], list[Any]]:
    """Build the columnar engine's per-round ``collect`` callable.

    Precomputes the run-lifetime columns (sorted neighbour rows, degree /
    cut-crossing / overlay count arrays, the payload size table, the
    per-receiver inbox views and the
    :class:`~repro.distributed.metrics.RoundTally`) and returns the closure
    :meth:`~repro.distributed.simulator.Simulator._drive` calls once per
    round.  ``sim`` supplies the compiled topology, model and cut exactly
    as the other engines see them.  ``tsignal`` is the contexts' shared
    targeted-traffic signal cell: rounds that saw a ``ctx.send`` delegate
    to the shared targeted fast path
    (:func:`~repro.distributed.targeted.build_targeted_collect`, built
    lazily on first use and sharing this engine's payload size table).
    """
    np = _np  # snapshot per run; tests monkeypatch the module global
    topo = sim.topology
    model = sim.model
    n = topo.n
    labels = topo.labels
    index = topo.index
    cut = sim.cut
    budget = model.bandwidth_bits
    enforce = model.enforce
    broadcast_only = model.broadcast_only
    indptr, indices = topo.indptr, topo.indices

    rows = topo.sorted_neighbor_rows()
    degrees = list(topo.degrees)
    # Degree-0 vertices are skipped by the gather loop *and* appear in no
    # receiver's row, so the all-sent fast path triggers whenever every
    # positive-degree vertex broadcast — not only when all ``n`` did.
    n_connected = sum(1 for deg in degrees if deg)

    cut_counts = None
    if cut is not None:
        cut_counts = _crossing_counts(topo, [labels[i] in cut for i in range(n)])
    virtual_counts = None
    if graph_sets is not None:
        virtual_counts = _virtual_counts(topo, graph_sets)

    size_table = PayloadSizeTable()
    int_sizes = size_table.int_sizes
    size_cap = size_table.cap
    measure = size_table.measure
    tally = RoundTally()
    MESSAGES, BITS, MAX_BITS = RoundTally.MESSAGES, RoundTally.BITS, RoundTally.MAX_BITS
    CUT_MESSAGES, CUT_BITS = RoundTally.CUT_MESSAGES, RoundTally.CUT_BITS
    VIOLATIONS, BROADCASTS = RoundTally.VIOLATIONS, RoundTally.BROADCASTS
    VIRTUAL = RoundTally.VIRTUAL

    # Persistent per-round columns: the sent-flag byte per node, the payload
    # size slot per node and the payload object column (the Mapping
    # facade's singleton lists materialise lazily from it, see
    # ``_RoundState.ensure_plists``).
    state = _RoundState(n, labels, index)
    sent = state.sent
    pays = state.pays
    bits_col = array("q", [0]) * n
    zero_bytes = bytes(n)
    none_list: list[Any] = [None] * n

    deg_np = cut_np = virt_np = None
    sent_np = bits_np = obj_np = all_rows_np = None
    if np is not None:
        deg_np = np.frombuffer(topo.degrees, dtype=np.int64)
        bits_np = np.frombuffer(bits_col, dtype=np.int64)
        # Zero-copy boolean view of the sent column; the bytearray is never
        # resized, so the exported buffer stays valid for the whole run.
        sent_np = np.frombuffer(sent, dtype=np.uint8).view(np.bool_)
        if cut_counts is not None:
            cut_np = np.frombuffer(cut_counts, dtype=np.int64)
        if virtual_counts is not None:
            virt_np = np.frombuffer(virtual_counts, dtype=np.int64)

    views: list[ColumnarInbox] | None = None
    if filt is None:
        # Sorted rows have the same per-node lengths as the CSR rows, so the
        # concatenated sorted-row offsets are exactly ``indptr`` — the flat
        # bulk-gather below can be sliced by plain CSR bounds.
        views = [
            ColumnarInbox(rows[i], indptr[i], indptr[i + 1], i, state)
            for i in range(n)
        ]
        if np is not None:
            from itertools import chain

            all_rows_np = np.fromiter(
                chain.from_iterable(rows), dtype=np.int64, count=indptr[n]
            )
            obj_np = np.empty(n, dtype=object)

            def build_flat() -> list[list[Any]]:
                """Bulk-gather every receiver's payload lists in two C passes."""
                obj_np[:] = state.ensure_plists()
                flat = state.flat = obj_np[all_rows_np].tolist()
                return flat

            def build_pays_flat() -> list[Any]:
                """Bulk-gather every receiver's raw payloads (fold pushdown)."""
                obj_np[:] = pays
                flat = state.pays_flat = obj_np[all_rows_np].tolist()
                return flat

            state.build_flat = build_flat
            state.build_pays_flat = build_pays_flat

            if indptr[n]:
                # Segment starts for the per-receiver max kernel.  reduceat
                # requires in-range indices, so empty rows (isolated
                # vertices, including a possible trailing one) are clipped;
                # their garbage entries are never read — ``max_heard``
                # guards on an empty row first.
                reduce_idx = np.minimum(
                    np.fromiter((indptr[i] for i in range(n)), np.int64, n),
                    indptr[n] - 1,
                )

                def build_row_max() -> list[int] | None:
                    """Per-receiver payload maxima in one C reduction.

                    Lowers the round's payload column to int64 and folds
                    every receiver's row with ``np.maximum.reduceat``.
                    Returns ``None`` (and clears the round's ``ints_only``
                    flag so the fallback is not retried per receiver) when
                    the column does not fit int64.
                    """
                    try:
                        ints = np.fromiter(pays, dtype=np.int64, count=n)
                    except (OverflowError, TypeError, ValueError):
                        state.ints_only = False
                        return None
                    gathered = ints[all_rows_np]
                    row_max = np.maximum.reduceat(gathered, reduce_idx).tolist()
                    state.row_max = row_max
                    return row_max

                state.build_row_max = build_row_max

    # Adversary path only: neighbour label rows handed to deliver_mask.
    mask_rows: list[list[Any]] | None = None
    if filt is not None:
        mask_rows = [[labels[j] for j in row] for row in rows]

    def accumulate_ordered(senders: list[int]) -> tuple:
        """Batch-order accumulation; raises mid-walk on an enforced violation.

        This is both the stdlib accounting kernel and the enforcement path:
        it walks senders in ascending order exactly like the batch engine's
        per-sender loop, so when an enforcing model's budget is exceeded the
        partially-flushed metrics and the raised message text are
        bit-for-bit the batch engine's.
        """
        messages = 0
        bits_total = 0
        max_bits = tally.counts[MAX_BITS]
        cut_messages = 0
        cut_bits = 0
        violations = 0
        virtual = 0
        for k in range(len(senders)):
            src_i = senders[k]
            bits = bits_col[src_i]
            deg = degrees[src_i]
            messages += deg
            bits_total += deg * bits
            if bits > max_bits:
                max_bits = bits
            if cut_counts is not None:
                crossing = cut_counts[src_i]
                if crossing:
                    cut_messages += crossing
                    cut_bits += crossing * bits
            if virtual_counts is not None:
                virtual += virtual_counts[src_i]
            if budget is not None and bits > budget:
                violations += deg
                if enforce:
                    flush_round_tally(
                        metrics, messages, bits_total, max_bits, cut_messages,
                        cut_bits, violations,
                        (k + 1) if broadcast_only else 0, virtual,
                    )
                    src = labels[src_i]
                    first = labels[indices[indptr[src_i]]]
                    raise BandwidthExceededError(
                        f"message(s) on link {src!r}->{first!r} use "
                        f"{bits} bits, budget is {budget} "
                        f"({model.name})"
                    )
        return messages, bits_total, max_bits, cut_messages, cut_bits, violations, virtual

    # The degree-0 guard in the gather loop exists only for graphs that
    # actually contain isolated vertices; compile it out otherwise.
    has_isolated = n_connected != n

    # Targeted fast path, built on first use so broadcast-only programs
    # never construct it.
    targeted_collect: list[Callable[[Iterable[int]], list[Any]] | None] = [None]

    def collect(sender_ids: Iterable[int]) -> list[Any]:
        if tsignal is not None and tsignal[0]:
            # At least one ctx.send this round: the whole round (broadcasts
            # included, replayed at their outbox positions) goes through the
            # shared targeted-delivery path, reusing this run's size table.
            tsignal[0] = False
            targeted = targeted_collect[0]
            if targeted is None:
                from repro.distributed.targeted import build_targeted_collect

                targeted = targeted_collect[0] = build_targeted_collect(
                    sim, contexts, metrics, graph_sets, filt, size_table
                )
            return targeted(sender_ids)
        # ---- reset the persistent round columns.  Stale ``pays``/
        # ``plists`` entries are guarded by the ``sent`` flags, so only the
        # flags and the round caches need clearing (C-level slice write).
        sent[:] = zero_bytes
        state.all_sent = False
        state.flat = None
        state.pays_flat = None
        state.row_max = None
        state.plists_valid = False

        # ---- gather: drain interned payloads into the round's columns.
        # Hot names are re-bound as locals: the loop body runs once per
        # sender per round, and LOAD_FAST beats cell/global loads there.
        ctxs = contexts
        degs = degrees
        isizes = int_sizes
        probe_int = isizes.get
        gen_measure = measure
        no_bcast = NO_BROADCAST
        sent_l = sent
        bits_l = bits_col
        pays_l = pays
        isolated = has_isolated
        ints_only = True
        senders: list[int] = []
        senders_append = senders.append
        for src_i in sender_ids:
            ctx = ctxs[src_i]
            payload = ctx._batch_payload
            if payload is no_bcast:
                continue
            ctx._batch_payload = no_bcast
            if isolated and not degs[src_i]:
                # Degree-0 broadcast: a no-op, exactly like the indexed
                # engine's empty outbox (no metrics, no payload counter).
                continue
            # Inlined PayloadSizeTable fast path: exact ints (the dominant
            # broadcast payload class) hit one dict probe, everything else
            # takes the generic value-keyed table.
            if payload.__class__ is int:
                bits = probe_int(payload)
                if bits is None:
                    # This *is* the PayloadSizeTable int fast path, inlined;
                    # the direct call only runs on a table miss.
                    bits = estimate_bits(payload)  # reprolint: disable=REP006
                    if len(isizes) < size_cap:
                        isizes[payload] = bits
            else:
                bits = gen_measure(payload)
                ints_only = False
            senders_append(src_i)
            sent_l[src_i] = 1
            bits_l[src_i] = bits
            pays_l[src_i] = payload
        state.senders = senders
        state.ints_only = ints_only

        # ---- accounting kernels -> RoundTally, flushed once.
        tally.reset(metrics.max_message_bits)
        counts = tally.counts
        if senders:
            if np is not None:
                mask = sent_np
                if budget is not None:
                    over = (bits_np > budget) & mask
                    if over.any():
                        if enforce:
                            accumulate_ordered(senders)  # raises
                        counts[VIOLATIONS] = int(deg_np.dot(over))
                counts[MESSAGES] = int(deg_np.dot(mask))
                weighted = bits_np * deg_np
                counts[BITS] = int(weighted.dot(mask))
                max_bits = int((bits_np * mask).max())
                if max_bits > counts[MAX_BITS]:
                    counts[MAX_BITS] = max_bits
                if cut_np is not None:
                    counts[CUT_MESSAGES] = int(cut_np.dot(mask))
                    counts[CUT_BITS] = int((bits_np * cut_np).dot(mask))
                if virt_np is not None:
                    counts[VIRTUAL] = int(virt_np.dot(mask))
            else:
                (
                    counts[MESSAGES], counts[BITS], counts[MAX_BITS],
                    counts[CUT_MESSAGES], counts[CUT_BITS],
                    counts[VIOLATIONS], counts[VIRTUAL],
                ) = accumulate_ordered(senders)
            if broadcast_only:
                counts[BROADCASTS] = len(senders)
        tally.flush(metrics)

        # ---- delivery: persistent lazy views (fault-free) or masked dicts.
        if not senders:
            return none_list
        if filt is None:
            state.all_sent = len(senders) == n_connected
            return views
        # Adversary seam: one deliver_mask call per sender (keyed-hash mask
        # for drops, a deliver() loop otherwise), then batch-style eager
        # insertion so every engine observes identical inbox contents.
        # Filter before the liveness check, exactly as the other engines do.
        halted = [ctx.halted for ctx in contexts]
        eager: list[dict[Any, list[Any]] | None] = [None] * n
        deliver_mask = filt.deliver_mask
        if not filt.transforms:
            for src_i in senders:
                src = labels[src_i]
                bits = bits_col[src_i]
                mask = deliver_mask(src, mask_rows[src_i], bits)
                # One singleton list per sender, shared by all its receivers
                # — exactly the batch engine's interning.
                plist = [pays[src_i]]
                row = rows[src_i]
                for pos in range(len(row)):
                    if not mask[pos]:
                        continue
                    j = row[pos]
                    if halted[j]:
                        continue
                    box = eager[j]
                    if box is None:
                        eager[j] = {src: plist}
                    else:
                        box[src] = plist
            return eager
        # Transforming adversary: the broadcast may arrive differently at
        # each neighbour, so the shared singleton list is invalid — call
        # transform per admitted edge (deliver -> transform -> liveness,
        # the canonical seam order) and materialize one list per edge.
        transform = filt.transform
        for src_i in senders:
            src = labels[src_i]
            bits = bits_col[src_i]
            dst_row = mask_rows[src_i]
            mask = deliver_mask(src, dst_row, bits)
            payload = pays[src_i]
            row = rows[src_i]
            for pos in range(len(row)):
                if not mask[pos]:
                    continue
                tpay = transform(src, dst_row[pos], payload, bits)
                j = row[pos]
                if halted[j]:
                    continue
                box = eager[j]
                if box is None:
                    eager[j] = {src: [tpay]}
                else:
                    box[src] = [tpay]
        return eager

    return collect


__all__ = ["ColumnarInbox", "build_columnar_collect", "have_numpy"]
