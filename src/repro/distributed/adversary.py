"""Adversary policy layer: deterministic fault injection for the simulator.

Robustness of synchronous algorithms under message loss and crash faults is
the direction pushed by recent Congested Clique work (Censor-Hillel,
Fischer, Gelles and Soto, *Deterministic LDC-based Robust Computation in
the Congested Clique*).  This module makes faults a *policy object* that
composes orthogonally with the
:class:`~repro.distributed.models.CommunicationModel` layer: the model owns
which links exist and what they may carry, the adversary owns which of the
admitted messages actually arrive.

Design rules (the ones the engine-parity contract depends on):

* **Faults act on delivery, not on sending.**  A sender is charged for every
  message it transmits (``messages_sent``, ``bits_sent``, cut and bandwidth
  accounting are all unchanged); the adversary destroys messages *in
  flight*, so only inbox contents and the fault counters differ from a
  fault-free run.
* **Decisions are order-independent.**  The three simulator engines iterate
  traffic in different orders (outbox order, CSR slice order, dict order),
  so a fault decision may depend only on ``(round, src, dst)`` and the
  dedicated fault seed — never on how many decisions were made before it.
  :class:`DropAdversary` therefore uses a keyed BLAKE2 hash per (round,
  link), not a consumed RNG stream; the stream is derived from the
  simulator seed but is independent of the per-node algorithm RNGs.
* **Fault counters are policy-owned.**  They live in
  ``Metrics.per_adversary`` and are merged into ``Metrics.as_dict()`` only
  when an adversary is active — the same pattern as the models'
  ``per_model`` counters — so fault-free runs (including explicit
  :class:`NoAdversary`) keep the golden-run dictionary shape bit-for-bit.
* **Transforming filters disable payload sharing.**  A filter that mutates
  payloads (``transforms = True``) breaks the engines' shared-payload-by-
  reference fast paths: a broadcast may arrive *differently* at each
  neighbour, so every engine must materialize per-edge payload lists when
  such a filter is bound (the same fallback discipline as the
  ``deliver_mask`` → eager-inbox path).  The :meth:`DeliveryFilter.transform`
  seam runs after :meth:`DeliveryFilter.deliver` admits a message and before
  the halted-receiver check, in every engine, so counter totals agree
  bit-for-bit across engines.

The shipped adversaries:

* :class:`NoAdversary` — the identity; byte-for-byte identical behaviour to
  passing no adversary at all (it binds to no filter, so every engine takes
  its unmodified hot path).
* :class:`DropAdversary` — per-link i.i.d. message loss with probability
  ``rate``, decided by a seeded hash of ``(round, src, dst)``.
* :class:`CrashAdversary` — crash-stop schedule ``node -> round``: a node
  behaves correctly through round ``r - 1``, is force-halted at the start
  of round ``r`` (it leaves the active set and sends nothing from then on),
  and every message addressed to it for delivery at round ``r`` or later is
  lost.
* :class:`RoundBudgetAdversary` — per-link per-round bit throttle *below*
  the model budget: once a link's round total exceeds the cap, further
  messages on that link are silently destroyed (and counted), modelling a
  degraded network rather than a protocol violation.
* :class:`CorruptAdversary` — per-link i.i.d. payload corruption with
  probability ``rate``: the delivered payload has one bit flipped in its
  canonical wire image (:mod:`repro.distributed.encoding` codec); images
  that no longer decode arrive as the ``CORRUPTED`` sentinel.  Corruption
  can *forge* values, which is the qualitatively new threat the coded
  workloads in ``core/`` defend against.
"""

from __future__ import annotations

import hashlib
from collections.abc import Hashable, Iterable, Mapping, Sequence
from typing import TYPE_CHECKING, Any, ClassVar

from repro.distributed.encoding import CORRUPTED, corrupt_payload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.distributed.metrics import Metrics
    from repro.distributed.node import NodeContext

Node = Hashable

#: Counter names (``Metrics.per_adversary`` keys) use this prefix so flat
#: report consumers can select fault counters without a schema lookup.
FAULT_PREFIX = "adversary_"


def _stream_key(kind: str, seed: Any, salt: int) -> bytes:
    """Derive the 32-byte keyed-hash key of one adversary's decision stream.

    The key folds in the adversary ``kind`` and ``salt`` so distinct
    adversaries (or deliberately re-salted copies) sharing one simulator
    seed make independent decisions, while staying a pure function of the
    scenario seed — independent of the per-node algorithm RNGs, engine
    iteration order, process and platform.
    """
    material = repr((kind, seed, salt)).encode("utf-8")
    return hashlib.blake2b(material, digest_size=32).digest()


class DeliveryFilter:
    """Per-run bound fault state: decides the fate of every message.

    A filter is created by :meth:`Adversary.bind` once per ``Simulator.run``
    and holds the run's :class:`~repro.distributed.metrics.Metrics` (for the
    current round number and for fault-counter bumps).  Engines consult it
    at exactly two seams:

    * :meth:`on_round_begin` — after ``metrics.start_round()``, before any
      program executes, with the contexts that are still active (crash
      schedules force-halt here);
    * :meth:`deliver` — per message during collection, after all send-side
      accounting and before inbox insertion; returning ``False`` destroys
      the message.
    """

    __slots__ = ("metrics",)

    #: True when :meth:`transform` may return a payload different from its
    #: argument.  Engines test this flag once per run (never per message)
    #: and fall back to per-edge payload materialization when set, because
    #: a transforming filter invalidates shared-payload-by-reference
    #: broadcast fan-out.
    transforms: ClassVar[bool] = False

    def __init__(self, metrics: "Metrics") -> None:
        self.metrics = metrics

    def on_round_begin(self, round_: int, active: Iterable["NodeContext"]) -> None:
        """Hook run at the start of round ``round_``; may halt contexts."""

    def deliver(self, src: Node, dst: Node, bits: int) -> bool:
        """Whether the ``src -> dst`` message (``bits`` wide) arrives.

        Called while ``metrics.rounds`` is the *sending* round ``R``; the
        message would be received in round ``R + 1``.  Implementations bump
        their fault counters before returning ``False``.
        """
        return True

    def deliver_mask(self, src: Node, dsts: Sequence[Node], bits: int) -> bytearray:
        """Bulk fate of one sender's broadcast: one delivery flag per destination.

        ``mask[i]`` is truthy iff the ``src -> dsts[i]`` message arrives.
        This is the columnar engine's seam: the filter is consulted once per
        sender with the whole neighbour row instead of once per message.
        The default implementation literally loops :meth:`deliver`, so
        decisions and fault counters are exactly those of the per-message
        seam; subclasses whose decisions are pure functions of ``(round,
        src, dst)`` may batch the work (see :class:`DropAdversary`'s filter)
        but must keep both the decisions and the counter totals bit-for-bit
        identical.
        """
        deliver = self.deliver
        return bytearray(1 if deliver(src, dst, bits) else 0 for dst in dsts)

    def transform(self, src: Node, dst: Node, payload: Any, bits: int) -> Any:
        """The payload actually handed to ``dst`` (identity by default).

        Runs only for messages :meth:`deliver` admitted, while
        ``metrics.rounds`` is still the *sending* round, and before the
        halted-receiver check (so counter totals are engine-independent).
        Implementations must be pure functions of ``(round, src, dst,
        payload)`` plus bound per-run state — never of call order — and
        must set the class flag ``transforms = True`` so the engines route
        around their shared-payload fast paths.
        """
        return payload


class Adversary:
    """Base fault policy: which admitted messages are destroyed, who crashes.

    Subclasses override :meth:`bind` to return the per-run
    :class:`DeliveryFilter` (or ``None`` for the identity — then every
    engine takes its unmodified fault-free hot path), declare their fault
    ``counters`` (pre-seeded to 0 in ``Metrics.per_adversary`` so sweeps
    report them even when nothing fired), and provide a canonical
    :meth:`spec` string so scenario specs and the CLI (``run --adversary``)
    can round-trip the policy through :func:`build_adversary`.
    """

    __slots__ = ()

    #: fault counters this policy maintains (pre-seeded to 0 when bound).
    counters: ClassVar[tuple[str, ...]] = ()
    #: True for the identity policy (binds to no filter at all).
    is_null: ClassVar[bool] = False

    def init_metrics(self, metrics: "Metrics") -> None:
        """Pre-seed this adversary's fault counters so they appear even at 0."""
        for key in self.counters:
            metrics.per_adversary.setdefault(key, 0)

    def bind(self, seed: Any, metrics: "Metrics") -> DeliveryFilter | None:
        """Build the per-run filter (``None`` = identity, no filtering seam)."""
        raise NotImplementedError

    def spec(self) -> str:
        """Canonical string form, parseable by :func:`build_adversary`."""
        raise NotImplementedError

    def _key(self) -> tuple:
        return (type(self),)

    def __eq__(self, other: object) -> bool:
        """Value semantics, mirroring :class:`CommunicationModel`."""
        return isinstance(other, Adversary) and self._key() == other._key()

    def __hash__(self) -> int:
        """Hash over the same key tuple equality uses."""
        return hash(self._key())

    def __repr__(self) -> str:
        """The canonical spec string, wrapped for debugging."""
        return f"{type(self).__name__}({self.spec()!r})"


class NoAdversary(Adversary):
    """The identity adversary: every message arrives, nobody crashes.

    Installing it is byte-for-byte identical to installing no adversary at
    all: it binds to ``None``, so the engines' fault-free hot paths run
    untouched, no fault counters are seeded, and ``Metrics.as_dict()``
    keeps the exact golden-run shape.
    """

    __slots__ = ()

    is_null = True

    def bind(self, seed: Any, metrics: "Metrics") -> DeliveryFilter | None:
        """Return ``None``: no filtering seam is installed."""
        return None

    def spec(self) -> str:
        """``"none"``."""
        return "none"


class _DropFilter(DeliveryFilter):
    """Per-run state of :class:`DropAdversary` (keyed-hash Bernoulli trials)."""

    __slots__ = ("rate", "key")

    def __init__(self, metrics: "Metrics", rate: float, key: bytes) -> None:
        super().__init__(metrics)
        self.rate = rate
        self.key = key

    def deliver(self, src: Node, dst: Node, bits: int) -> bool:
        """Drop with probability ``rate``, decided by hash(round, src, dst)."""
        digest = hashlib.blake2b(
            repr((self.metrics.rounds, src, dst)).encode("utf-8"),
            key=self.key,
            digest_size=8,
        ).digest()
        if int.from_bytes(digest, "big") / 2.0**64 < self.rate:
            metrics = self.metrics
            metrics.bump_fault("adversary_dropped_messages")
            metrics.bump_fault("adversary_dropped_bits", bits)
            return False
        return True

    def deliver_mask(self, src: Node, dsts: Sequence[Node], bits: int) -> bytearray:
        """Keyed-hash mask over ``(round, src, dst)`` for one broadcast row.

        Evaluates the same per-destination BLAKE2 trials as :meth:`deliver`
        (decisions are bit-identical) but hoists the round/key/rate lookups
        out of the loop and folds the fault-counter bumps into two bulk
        updates — the totals equal ``dropped`` per-message bumps exactly.
        """
        round_ = self.metrics.rounds
        rate = self.rate
        key = self.key
        blake2b = hashlib.blake2b
        from_bytes = int.from_bytes
        mask = bytearray(len(dsts))
        dropped = 0
        for i, dst in enumerate(dsts):
            digest = blake2b(
                repr((round_, src, dst)).encode("utf-8"), key=key, digest_size=8
            ).digest()
            if from_bytes(digest, "big") / 2.0**64 < rate:
                dropped += 1
            else:
                mask[i] = 1
        if dropped:
            metrics = self.metrics
            metrics.bump_fault("adversary_dropped_messages", dropped)
            metrics.bump_fault("adversary_dropped_bits", dropped * bits)
        return mask


class DropAdversary(Adversary):
    """Seeded i.i.d. per-link message loss with probability ``rate``.

    Each ``(round, src, dst)`` triple is an independent Bernoulli trial
    evaluated by a BLAKE2 hash keyed from the simulator seed (plus an
    optional ``salt`` for independent re-runs under one seed), so the
    decision stream is deterministic, engine-order-independent and
    disjoint from all algorithm randomness.  Note the trial is per
    *message slot*, not per payload: two messages on one link in one round
    are dropped together or not at all, which is exactly the fate of one
    physical link transmission window.
    """

    __slots__ = ("rate", "salt")

    counters = ("adversary_dropped_messages", "adversary_dropped_bits")

    def __init__(self, rate: float, salt: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"drop rate must be within [0, 1], got {rate!r}")
        self.rate = float(rate)
        self.salt = salt

    def bind(self, seed: Any, metrics: "Metrics") -> DeliveryFilter:
        """Key the decision stream from ``seed`` and return the drop filter."""
        return _DropFilter(metrics, self.rate, _stream_key("drop", seed, self.salt))

    def spec(self) -> str:
        """``"drop:RATE"`` (with ``:SALT`` appended when non-zero)."""
        if self.salt:
            return f"drop:{self.rate!r}:{self.salt}"
        return f"drop:{self.rate!r}"

    def _key(self) -> tuple:
        return (type(self), self.rate, self.salt)


class _CrashFilter(DeliveryFilter):
    """Per-run state of :class:`CrashAdversary` (crash-stop schedule)."""

    __slots__ = ("schedule",)

    def __init__(self, metrics: "Metrics", schedule: dict[Node, int]) -> None:
        super().__init__(metrics)
        self.schedule = schedule

    def on_round_begin(self, round_: int, active: Iterable["NodeContext"]) -> None:
        """Force-halt every still-active node whose crash round has arrived."""
        schedule = self.schedule
        for ctx in active:
            crash_round = schedule.get(ctx.node_id)
            if crash_round is not None and crash_round <= round_:
                ctx.halt()
                self.metrics.bump_fault("adversary_crashed_nodes")

    def deliver(self, src: Node, dst: Node, bits: int) -> bool:
        """Destroy messages addressed to a node crashed by their arrival round."""
        crash_round = self.schedule.get(dst)
        # Sending round is metrics.rounds; arrival round is one later.
        if crash_round is not None and crash_round <= self.metrics.rounds + 1:
            self.metrics.bump_fault("adversary_lost_messages")
            return False
        return True


class CrashAdversary(Adversary):
    """Crash-stop schedule: ``node -> round`` at which the node fails.

    A node scheduled to crash at round ``r`` (``r >= 1``) behaves correctly
    through round ``r - 1``; at the start of round ``r`` it is force-halted
    — it executes nothing further, sends nothing further, and leaves the
    active set (so runs still *complete*; crash-stopped nodes simply keep
    whatever output, possibly ``None``, they had).  Messages already in
    flight from the crashing node are delivered (crash-stop does not
    retract sent traffic), but messages *to* it arriving at round ``r`` or
    later are lost and counted as ``adversary_lost_messages``.  A node that
    halts voluntarily before its crash round is not counted as crashed.
    """

    __slots__ = ("schedule",)

    counters = ("adversary_crashed_nodes", "adversary_lost_messages")

    def __init__(self, schedule: Mapping[Node, int]) -> None:
        clean: dict[Node, int] = {}
        for node, round_ in schedule.items():
            if not isinstance(round_, int) or round_ < 1:
                raise ValueError(
                    f"crash round for node {node!r} must be an int >= 1, got {round_!r}"
                )
            clean[node] = round_
        self.schedule = clean

    def bind(self, seed: Any, metrics: "Metrics") -> DeliveryFilter:
        """Return the crash filter (pure schedule; ``seed`` is unused)."""
        return _CrashFilter(metrics, self.schedule)

    def spec(self) -> str:
        """``"crash:NODE@ROUND,..."``, entries sorted for canonicality."""
        entries = sorted(self.schedule.items(), key=lambda item: repr(item[0]))
        return "crash:" + ",".join(f"{node}@{round_}" for node, round_ in entries)

    def _key(self) -> tuple:
        return (type(self), tuple(sorted(self.schedule.items(), key=repr)))


class _ThrottleFilter(DeliveryFilter):
    """Per-run state of :class:`RoundBudgetAdversary` (per-link bit caps)."""

    __slots__ = ("cap", "link_bits", "tallied_round")

    def __init__(self, metrics: "Metrics", cap: int) -> None:
        super().__init__(metrics)
        self.cap = cap
        self.link_bits: dict[tuple[Node, Node], int] = {}
        self.tallied_round = -1

    def deliver(self, src: Node, dst: Node, bits: int) -> bool:
        """Destroy the message once the link's round total exceeds the cap."""
        round_ = self.metrics.rounds
        if round_ != self.tallied_round:
            self.link_bits.clear()
            self.tallied_round = round_
        link = (src, dst)
        total = self.link_bits.get(link, 0) + bits
        self.link_bits[link] = total
        if total > self.cap:
            metrics = self.metrics
            metrics.bump_fault("adversary_throttled_messages")
            metrics.bump_fault("adversary_throttled_bits", bits)
            return False
        return True


class RoundBudgetAdversary(Adversary):
    """Per-link per-round bit throttle below the model's bandwidth budget.

    Unlike the model budget (whose violation is a *protocol error* that
    raises or is counted in ``bandwidth_violations``), the throttle models
    a degraded network: messages that would push a link's round total past
    ``bits`` are silently destroyed and counted as
    ``adversary_throttled_messages``.  For multi-message links the fate of
    a message depends on how much of the cap earlier messages consumed,
    tallied in the engines' shared (outbox-order) delivery order.
    """

    __slots__ = ("bits",)

    counters = ("adversary_throttled_messages", "adversary_throttled_bits")

    def __init__(self, bits: int) -> None:
        if not isinstance(bits, int) or bits < 0:
            raise ValueError(f"throttle budget must be an int >= 0, got {bits!r}")
        self.bits = bits

    def bind(self, seed: Any, metrics: "Metrics") -> DeliveryFilter:
        """Return the throttle filter (pure arithmetic; ``seed`` is unused)."""
        return _ThrottleFilter(metrics, self.bits)

    def spec(self) -> str:
        """``"budget:BITS"``."""
        return f"budget:{self.bits}"

    def _key(self) -> tuple:
        return (type(self), self.bits)


class _CorruptFilter(DeliveryFilter):
    """Per-run state of :class:`CorruptAdversary` (keyed-hash bit flips)."""

    __slots__ = ("rate", "key")

    transforms = True

    def __init__(self, metrics: "Metrics", rate: float, key: bytes) -> None:
        super().__init__(metrics)
        self.rate = rate
        self.key = key

    def deliver_mask(self, src: Node, dsts: Sequence[Node], bits: int) -> bytearray:
        """All-ones: corruption damages payloads but never destroys messages."""
        return bytearray(b"\x01" * len(dsts))

    def transform(self, src: Node, dst: Node, payload: Any, bits: int) -> Any:
        """Flip one wire-image bit with probability ``rate``.

        One 16-byte keyed BLAKE2 digest of ``(round, src, dst)`` supplies
        both the Bernoulli trial (first 8 bytes) and the bit position
        (last 8 bytes), so the decision *and* the damage are pure functions
        of the link slot — two messages on one link in one round are
        corrupted identically, the per-slot analogue of
        :class:`DropAdversary`'s semantics.
        """
        if not self.rate:
            return payload
        digest = hashlib.blake2b(
            repr((self.metrics.rounds, src, dst)).encode("utf-8"),
            key=self.key,
            digest_size=16,
        ).digest()
        if int.from_bytes(digest[:8], "big") / 2.0**64 >= self.rate:
            return payload
        metrics = self.metrics
        metrics.bump_fault("adversary_corrupted_messages")
        metrics.bump_fault("adversary_corrupted_bits", bits)
        mutated = corrupt_payload(payload, int.from_bytes(digest[8:], "big"))
        if mutated is CORRUPTED:
            metrics.bump_fault("adversary_erased_messages")
        return mutated


class CorruptAdversary(Adversary):
    """Seeded i.i.d. per-link payload corruption with probability ``rate``.

    Each ``(round, src, dst)`` slot is an independent Bernoulli trial (same
    keyed-BLAKE2 discipline as :class:`DropAdversary`, under its own stream
    key, so drop and corrupt decisions at one seed are independent).  A
    corrupted delivery has one bit flipped in the payload's canonical wire
    image (:func:`repro.distributed.encoding.corrupt_payload`): usually this
    *forges* a different valid value — the soundness threat — and otherwise
    the receiver sees the ``CORRUPTED`` sentinel (counted additionally as
    ``adversary_erased_messages``).  Corrupted messages still arrive and are
    charged at full size; only their content lies.
    """

    __slots__ = ("rate", "salt")

    counters = (
        "adversary_corrupted_messages",
        "adversary_corrupted_bits",
        "adversary_erased_messages",
    )

    def __init__(self, rate: float, salt: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"corrupt rate must be within [0, 1], got {rate!r}")
        self.rate = float(rate)
        self.salt = salt

    def bind(self, seed: Any, metrics: "Metrics") -> DeliveryFilter:
        """Key the decision stream from ``seed`` and return the corrupt filter."""
        return _CorruptFilter(
            metrics, self.rate, _stream_key("corrupt", seed, self.salt)
        )

    def spec(self) -> str:
        """``"corrupt:RATE"`` (with ``:SALT`` appended when non-zero)."""
        if self.salt:
            return f"corrupt:{self.rate!r}:{self.salt}"
        return f"corrupt:{self.rate!r}"

    def _key(self) -> tuple:
        return (type(self), self.rate, self.salt)


def build_adversary(spec: str) -> Adversary:
    """Parse a canonical adversary spec string into a policy object.

    Accepted forms (also produced by each policy's ``spec()`` method)::

        none                    NoAdversary
        drop:0.05               DropAdversary(rate=0.05)
        drop:0.05:3             DropAdversary(rate=0.05, salt=3)
        crash:4@2,17@5          CrashAdversary({4: 2, 17: 5})
        budget:64               RoundBudgetAdversary(bits=64)
        corrupt:0.05            CorruptAdversary(rate=0.05)
        corrupt:0.05:3          CorruptAdversary(rate=0.05, salt=3)

    Crash node ids are parsed as integers — the label type of every shipped
    graph family; schedules over non-integer labels must construct
    :class:`CrashAdversary` directly.  Malformed specs raise
    :class:`ValueError` naming the offending token.
    """
    text = spec.strip()
    kind, _, rest = text.partition(":")
    try:
        if kind == "none" and not rest:
            return NoAdversary()
        if kind == "drop" or kind == "corrupt":
            rate_text, _, salt_text = rest.partition(":")
            rate = _parse_float_token(rate_text, "rate")
            salt = _parse_int_token(salt_text, "salt") if salt_text else 0
            cls = DropAdversary if kind == "drop" else CorruptAdversary
            return cls(rate, salt=salt)
        if kind == "crash" and rest:
            schedule: dict[Node, int] = {}
            for entry in rest.split(","):
                node_text, sep, round_text = entry.partition("@")
                if not sep:
                    raise ValueError(
                        f"crash entry {entry!r} must look like NODE@ROUND"
                    )
                node = _parse_int_token(node_text, "crash node")
                schedule[node] = _parse_int_token(round_text, "crash round")
            return CrashAdversary(schedule)
        if kind == "budget" and rest:
            return RoundBudgetAdversary(_parse_int_token(rest, "budget bits"))
    except (TypeError, ValueError) as error:
        raise ValueError(f"bad adversary spec {spec!r}: {error}") from None
    raise ValueError(
        f"unknown adversary spec {spec!r}; expected 'none', 'drop:RATE[:SALT]', "
        f"'corrupt:RATE[:SALT]', 'crash:NODE@ROUND[,...]' or 'budget:BITS'"
    )


def _parse_float_token(text: str, what: str) -> float:
    """``float(text)``, raising with ``what`` and the offending token named."""
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"{what} token {text!r} is not a number") from None


def _parse_int_token(text: str, what: str) -> int:
    """``int(text)``, raising with ``what`` and the offending token named."""
    try:
        return int(text)
    except ValueError:
        raise ValueError(f"{what} token {text!r} is not an integer") from None


__all__ = [
    "FAULT_PREFIX",
    "Adversary",
    "CorruptAdversary",
    "CrashAdversary",
    "DeliveryFilter",
    "DropAdversary",
    "NoAdversary",
    "RoundBudgetAdversary",
    "build_adversary",
]
