"""Synchronous round simulator with pluggable communication models."""

from repro.distributed.adversary import (
    Adversary,
    CrashAdversary,
    DeliveryFilter,
    DropAdversary,
    NoAdversary,
    RoundBudgetAdversary,
    build_adversary,
)
from repro.distributed.columnar import ColumnarInbox, build_columnar_collect, have_numpy
from repro.distributed.encoding import (
    BitsMemo,
    PayloadSizeTable,
    congest_budget_bits,
    estimate_bits,
)
from repro.distributed.errors import (
    BandwidthExceededError,
    MessageAdmissionError,
    NotANeighborError,
    RoundLimitExceededError,
    SimulationError,
)
from repro.distributed.metrics import Metrics, RoundTally
from repro.distributed.models import (
    BroadcastCongestModel,
    CommunicationModel,
    CongestModel,
    CongestedCliqueModel,
    LocalModel,
    Model,
    ModelConfig,
    broadcast_congest_model,
    congest_model,
    congested_clique_model,
    local_model,
)
from repro.distributed.node import NodeContext
from repro.distributed.program import BroadcastNodeProgram, FunctionProgram, NodeProgram
from repro.distributed.simulator import (
    ENGINES,
    RunResult,
    Simulator,
    congest_overhead_report,
    run_program,
)
from repro.distributed.targeted import (
    TargetedInbox,
    build_targeted_collect,
    have_targeted_numpy,
)

__all__ = [
    "ENGINES",
    "Adversary",
    "BandwidthExceededError",
    "BitsMemo",
    "BroadcastCongestModel",
    "BroadcastNodeProgram",
    "ColumnarInbox",
    "CommunicationModel",
    "CongestModel",
    "CongestedCliqueModel",
    "CrashAdversary",
    "DeliveryFilter",
    "DropAdversary",
    "FunctionProgram",
    "LocalModel",
    "MessageAdmissionError",
    "Metrics",
    "Model",
    "ModelConfig",
    "NoAdversary",
    "NodeContext",
    "NodeProgram",
    "NotANeighborError",
    "PayloadSizeTable",
    "RoundBudgetAdversary",
    "RoundLimitExceededError",
    "RoundTally",
    "RunResult",
    "SimulationError",
    "Simulator",
    "TargetedInbox",
    "broadcast_congest_model",
    "build_adversary",
    "build_columnar_collect",
    "build_targeted_collect",
    "congest_budget_bits",
    "congest_model",
    "congest_overhead_report",
    "congested_clique_model",
    "estimate_bits",
    "have_numpy",
    "have_targeted_numpy",
    "local_model",
    "run_program",
]
