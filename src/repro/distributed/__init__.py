"""Synchronous round simulator with pluggable communication models."""

from repro.distributed.adversary import (
    Adversary,
    CrashAdversary,
    DeliveryFilter,
    DropAdversary,
    NoAdversary,
    RoundBudgetAdversary,
    build_adversary,
)
from repro.distributed.encoding import BitsMemo, congest_budget_bits, estimate_bits
from repro.distributed.errors import (
    BandwidthExceededError,
    MessageAdmissionError,
    NotANeighborError,
    RoundLimitExceededError,
    SimulationError,
)
from repro.distributed.metrics import Metrics
from repro.distributed.models import (
    BroadcastCongestModel,
    CommunicationModel,
    CongestModel,
    CongestedCliqueModel,
    LocalModel,
    Model,
    ModelConfig,
    broadcast_congest_model,
    congest_model,
    congested_clique_model,
    local_model,
)
from repro.distributed.node import NodeContext
from repro.distributed.program import BroadcastNodeProgram, FunctionProgram, NodeProgram
from repro.distributed.simulator import (
    ENGINES,
    RunResult,
    Simulator,
    congest_overhead_report,
    run_program,
)

__all__ = [
    "ENGINES",
    "Adversary",
    "BandwidthExceededError",
    "BitsMemo",
    "BroadcastCongestModel",
    "BroadcastNodeProgram",
    "CommunicationModel",
    "CongestModel",
    "CongestedCliqueModel",
    "CrashAdversary",
    "DeliveryFilter",
    "DropAdversary",
    "FunctionProgram",
    "LocalModel",
    "MessageAdmissionError",
    "Metrics",
    "Model",
    "ModelConfig",
    "NoAdversary",
    "NodeContext",
    "NodeProgram",
    "NotANeighborError",
    "RoundBudgetAdversary",
    "RoundLimitExceededError",
    "RunResult",
    "SimulationError",
    "Simulator",
    "broadcast_congest_model",
    "build_adversary",
    "congest_budget_bits",
    "congest_model",
    "congest_overhead_report",
    "congested_clique_model",
    "estimate_bits",
    "local_model",
    "run_program",
]
