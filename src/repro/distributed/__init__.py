"""Synchronous LOCAL / CONGEST round simulator and message accounting."""

from repro.distributed.encoding import BitsMemo, congest_budget_bits, estimate_bits
from repro.distributed.errors import (
    BandwidthExceededError,
    NotANeighborError,
    RoundLimitExceededError,
    SimulationError,
)
from repro.distributed.metrics import Metrics
from repro.distributed.models import Model, ModelConfig, congest_model, local_model
from repro.distributed.node import NodeContext
from repro.distributed.program import FunctionProgram, NodeProgram
from repro.distributed.simulator import (
    ENGINES,
    RunResult,
    Simulator,
    congest_overhead_report,
    run_program,
)

__all__ = [
    "ENGINES",
    "BandwidthExceededError",
    "BitsMemo",
    "FunctionProgram",
    "Metrics",
    "Model",
    "ModelConfig",
    "NodeContext",
    "NodeProgram",
    "NotANeighborError",
    "RoundLimitExceededError",
    "RunResult",
    "SimulationError",
    "Simulator",
    "congest_budget_bits",
    "congest_model",
    "congest_overhead_report",
    "estimate_bits",
    "local_model",
    "run_program",
]
