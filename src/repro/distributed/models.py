"""Communication-model policy layer: LOCAL, CONGEST, broadcast-CONGEST, Clique.

Each model of synchronous distributed computing is a *policy object* (a
:class:`CommunicationModel` subclass) owning the three choices that
distinguish the models in the literature:

* **bandwidth budgeting** — how many bits may cross one link per round
  (:attr:`~CommunicationModel.bandwidth_bits`, ``None`` = unbounded);
* **message admission** — which send patterns a node may use
  (:attr:`~CommunicationModel.broadcast_only` models force one identical
  payload to every neighbour per round);
* **communication topology** — which graph the messages travel on
  (:meth:`~CommunicationModel.communication_topology`; clique models
  communicate over an implicit complete graph, decoupled from the input
  graph the algorithm computes on).

The four shipped models:

* ``LOCAL`` (Linial 1992; Peleg 2000) — unbounded messages on the input
  graph.  The paper's Theorem 1.3 algorithm runs here.
* ``CONGEST`` (Peleg 2000) — O(log n) bits per edge per round on the input
  graph.  The paper's separation results (Theorems 1.1, 2.8-2.10) are
  precisely about the LOCAL/CONGEST difference.
* ``BROADCAST-CONGEST`` — CONGEST bandwidth, but each node must send one
  identical O(log n)-bit message to *all* neighbours per round (the model
  of many lower bounds, e.g. Drucker-Kuhn-Oshman 2014).
* ``CONGESTED-CLIQUE`` (Lotker-Pavlov-Patt-Shamir-Peleg 2005) — every pair
  of nodes may exchange O(log n) bits per round regardless of the input
  graph's edges; nodes still only *know* their input-graph neighbourhood.
  Spanner algorithms in this model are studied by Parter and Yogev,
  "Congested Clique Algorithms for Graph Spanners" (arXiv:1805.05404), and
  robust computation in it by Censor-Hillel, Fischer, Ghinea and Gilboa
  (arXiv:2508.08740).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, ClassVar

from repro.distributed.encoding import congest_budget_bits
from repro.graphs.topology import CompiledTopology, complete_overlay

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Hashable

    from repro.graphs.base import BaseGraph

    Node = Hashable


class Model(enum.Enum):
    """The synchronous models of distributed graph algorithms supported."""

    LOCAL = "LOCAL"
    CONGEST = "CONGEST"
    BROADCAST_CONGEST = "BROADCAST-CONGEST"
    CONGESTED_CLIQUE = "CONGESTED-CLIQUE"


class CommunicationModel:
    """Base policy: bandwidth, admission and topology of one communication model.

    ``enforce`` controls what happens when a message exceeds the bandwidth
    budget: if True the simulator raises
    :class:`~repro.distributed.errors.BandwidthExceededError`; if False the
    violation is only recorded in the metrics (useful when measuring the
    overhead a LOCAL algorithm would incur under a bounded-bandwidth model).
    Admission violations (e.g. a targeted ``send`` in a broadcast-only
    model) always raise — they are structural, not a budget overflow.
    """

    __slots__ = ("n", "enforce")

    model: ClassVar[Model]
    #: admission policy: one identical payload to all neighbours per round.
    broadcast_only: ClassVar[bool] = False
    #: True when messages travel on a virtual overlay, not the input graph.
    uses_overlay: ClassVar[bool] = False
    #: per-model metric counters this policy maintains (pre-seeded to 0).
    counters: ClassVar[tuple[str, ...]] = ()

    def __init__(self, n: int, enforce: bool = True) -> None:
        self.n = n
        self.enforce = enforce

    # ------------------------------------------------------------- bandwidth
    @property
    def bandwidth_bits(self) -> int | None:
        """Per-link per-round bit budget; ``None`` means unbounded."""
        return None

    # -------------------------------------------------------------- topology
    def communication_topology(self, graph: "BaseGraph") -> CompiledTopology:
        """The compiled topology messages travel on (indexed engine).

        The default is the input graph itself; overlay models override.
        """
        return graph.freeze()

    def reference_neighbors(self, graph: "BaseGraph") -> dict["Node", frozenset["Node"]]:
        """Per-node communication neighbour sets for the reference engine.

        Kept verbatim from the seed engine for non-overlay models so that
        fixed-seed runs stay bit-for-bit identical.
        """
        return {v: frozenset(graph.neighbors(v)) for v in graph.nodes()}

    # --------------------------------------------------------------- metrics
    def init_metrics(self, metrics) -> None:
        """Pre-seed this model's counters so they appear even when zero."""
        for key in self.counters:
            metrics.per_model.setdefault(key, 0)

    # ---------------------------------------------------------------- dunder
    @property
    def name(self) -> str:
        """The model's literature name (e.g. ``"BROADCAST-CONGEST"``)."""
        return self.model.value

    def _key(self) -> tuple:
        return (type(self), self.n, self.enforce)

    def __eq__(self, other: object) -> bool:
        # Value semantics, as the frozen-dataclass ModelConfig had.
        return isinstance(other, CommunicationModel) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n}, enforce={self.enforce})"


class LocalModel(CommunicationModel):
    """LOCAL: unbounded messages between input-graph neighbours."""

    __slots__ = ()

    model = Model.LOCAL


class CongestModel(CommunicationModel):
    """CONGEST: ``logn_factor * ceil(log2 n)`` bits per edge per round."""

    __slots__ = ("logn_factor",)

    model = Model.CONGEST

    def __init__(self, n: int, enforce: bool = True, logn_factor: int = 32) -> None:
        super().__init__(n, enforce)
        self.logn_factor = logn_factor

    @property
    def bandwidth_bits(self) -> int | None:
        """The CONGEST per-link budget: ``logn_factor * ceil(log2 n)`` bits."""
        return congest_budget_bits(self.n, self.logn_factor)

    def _key(self) -> tuple:
        return (type(self), self.n, self.enforce, self.logn_factor)


class BroadcastCongestModel(CongestModel):
    """Broadcast-CONGEST: CONGEST bandwidth, one broadcast payload per round.

    A node may queue at most one payload per round and it is delivered to
    every neighbour; targeted sends raise
    :class:`~repro.distributed.errors.MessageAdmissionError`.  The metrics
    gain a ``broadcast_payloads`` counter: one per node per round whose
    broadcast *delivered* messages (a degree-0 node's broadcast carries
    nothing and is not counted).
    """

    __slots__ = ()

    model = Model.BROADCAST_CONGEST
    broadcast_only = True
    counters = ("broadcast_payloads",)


class CongestedCliqueModel(CongestModel):
    """Congested Clique: all-to-all O(log n)-bit links over a virtual clique.

    Communication happens on a complete-graph overlay materialised as a
    :class:`~repro.graphs.topology.CompiledTopology` over the input graph's
    vertex set; nodes still only *know* their input-graph neighbourhood
    (exposed as ``ctx.graph_neighbors``).  The metrics gain a
    ``virtual_link_messages`` counter: messages sent over overlay links
    that are not edges of the input graph.
    """

    __slots__ = ("_overlay",)

    model = Model.CONGESTED_CLIQUE
    uses_overlay = True
    counters = ("virtual_link_messages",)

    def __init__(self, n: int, enforce: bool = True, logn_factor: int = 32) -> None:
        super().__init__(n, enforce, logn_factor)
        self._overlay: tuple[tuple["Node", ...], CompiledTopology] | None = None

    def communication_topology(self, graph: "BaseGraph") -> CompiledTopology:
        labels = graph.freeze().labels
        key = tuple(labels)
        if self._overlay is None or self._overlay[0] != key:
            self._overlay = (key, complete_overlay(labels))
        return self._overlay[1]

    def reference_neighbors(self, graph: "BaseGraph") -> dict["Node", frozenset["Node"]]:
        nodes = list(graph.nodes())
        return {v: frozenset(u for u in nodes if u != v) for v in nodes}


_MODEL_CLASSES: dict[Model, type[CommunicationModel]] = {
    Model.LOCAL: LocalModel,
    Model.CONGEST: CongestModel,
    Model.BROADCAST_CONGEST: BroadcastCongestModel,
    Model.CONGESTED_CLIQUE: CongestedCliqueModel,
}


def ModelConfig(
    model: Model, n: int, enforce: bool = True, logn_factor: int = 32
) -> CommunicationModel:
    """Backwards-compatible factory (pre-policy API) returning a policy object.

    ``ModelConfig`` used to be a frozen dataclass; it is now a function, so
    construction calls and value equality/hashing of the results still work,
    but ``isinstance(x, ModelConfig)`` does not — test against
    :class:`CommunicationModel` (or a concrete policy class) instead.
    """
    cls = _MODEL_CLASSES[model]
    if cls is LocalModel:
        return LocalModel(n, enforce)
    return cls(n, enforce, logn_factor)


def local_model(n: int) -> LocalModel:
    """A LOCAL policy for an ``n``-node graph (unbounded bandwidth)."""
    return LocalModel(n)


def congest_model(n: int, enforce: bool = True, logn_factor: int = 32) -> CongestModel:
    """A CONGEST policy: O(log n) bits per link per round on the input graph."""
    return CongestModel(n, enforce=enforce, logn_factor=logn_factor)


def broadcast_congest_model(
    n: int, enforce: bool = True, logn_factor: int = 32
) -> BroadcastCongestModel:
    """A broadcast-CONGEST policy: one O(log n)-bit broadcast per round."""
    return BroadcastCongestModel(n, enforce=enforce, logn_factor=logn_factor)


def congested_clique_model(
    n: int, enforce: bool = True, logn_factor: int = 32
) -> CongestedCliqueModel:
    """A Congested Clique policy: all-to-all O(log n)-bit overlay links."""
    return CongestedCliqueModel(n, enforce=enforce, logn_factor=logn_factor)


__all__ = [
    "BroadcastCongestModel",
    "CommunicationModel",
    "CongestModel",
    "CongestedCliqueModel",
    "LocalModel",
    "Model",
    "ModelConfig",
    "broadcast_congest_model",
    "congest_model",
    "congested_clique_model",
    "local_model",
]
