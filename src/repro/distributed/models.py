"""Synchronous message-passing models: LOCAL and CONGEST.

Both models (Linial 1992; Peleg 2000) proceed in synchronous rounds in which
every vertex may send one message to each neighbour.  They differ only in
message size: LOCAL allows unbounded messages, CONGEST allows O(log n) bits
per edge per round.  The paper's separation results (Theorems 1.1, 2.8-2.10)
are precisely about this difference.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.distributed.encoding import congest_budget_bits


class Model(enum.Enum):
    """The two standard synchronous models of distributed graph algorithms."""

    LOCAL = "LOCAL"
    CONGEST = "CONGEST"


@dataclass(frozen=True)
class ModelConfig:
    """Bandwidth policy derived from the model and the network size.

    ``enforce`` controls what happens when a message exceeds the CONGEST
    budget: if True the simulator raises
    :class:`~repro.distributed.errors.BandwidthExceededError`; if False the
    violation is only recorded in the metrics (useful when measuring the
    overhead a LOCAL algorithm would incur in CONGEST).
    """

    model: Model
    n: int
    enforce: bool = True
    logn_factor: int = 32

    @property
    def bandwidth_bits(self) -> int | None:
        """Per-edge per-round bit budget; ``None`` means unbounded (LOCAL)."""
        if self.model is Model.LOCAL:
            return None
        return congest_budget_bits(self.n, self.logn_factor)


def local_model(n: int) -> ModelConfig:
    return ModelConfig(model=Model.LOCAL, n=n)


def congest_model(n: int, enforce: bool = True, logn_factor: int = 32) -> ModelConfig:
    return ModelConfig(model=Model.CONGEST, n=n, enforce=enforce, logn_factor=logn_factor)
