"""Targeted-send fast path shared by the batch-collecting engines.

Until PR 7 the ``batch`` and ``columnar`` engines rejected targeted sends
outright, which locked the fast engines out of every Congested Clique
workload — the setting the source paper actually lives in.  This module is
the removal of that restriction: one collection path, shared by both
engines, that consumes the per-sender grouped outboxes
(:class:`~repro.distributed.node.NodeContext` ``_t_dsts`` / ``_t_pays``
struct-of-arrays columns) which ``ctx.send`` now appends to instead of
raising.

A round that saw at least one targeted send (the contexts flag a shared
one-element signal cell, so pure-broadcast rounds pay nothing) is collected
here instead of by the engine's broadcast kernels:

* **gather** — senders are walked in ascending index order (the order the
  indexed oracle inserts inbox keys in); each sender's destination /
  payload columns are drained into flat per-round columns by C-level list
  extends, destinations resolve to dense indices through the compiled
  topology (label identity is detected once per run, making resolution a
  no-op for the shipped 0..n-1 graph families), and a round's broadcast —
  mixed rounds are legal — is expanded into the same columns at the
  position ``ctx.broadcast`` was called at (``_t_bpos``), so per-link
  message order is exactly the indexed engine's outbox order;
* **sizing** — payload sizes come from the engine's run-lifetime
  :class:`~repro.distributed.encoding.PayloadSizeTable` via one C-level
  ``map`` per sender group, not one Python call per message per round;
* **accounting** — messages / bits / max / cut / overlay / violation
  totals reduce over the flat columns with NumPy kernels when available
  (per-link CONGEST admission becomes a grouped prefix-sum over a stable
  argsort of packed ``src * n + dst`` link keys) and flush once per round
  through the shared :class:`~repro.distributed.metrics.RoundTally` /
  :func:`~repro.distributed.metrics.flush_round_tally` seam;
* **delivery** — fault-free NumPy rounds scatter the payload column into
  per-receiver inbox segments with one stable ``argsort`` by destination
  (CSR-style: one contiguous column slice per receiver, zero per-message
  Python work) and hand every receiver a lazy :class:`TargetedInbox`
  Mapping view over its segment; the stdlib fallback and every adversary
  round take the ordered per-message path below instead.

The ordered path (:func:`build_targeted_collect`'s ``_ordered_collect``)
is the bit-for-bit reference: it walks the gathered stream exactly like
the indexed engine's collection loop — accounting per message, per-link
budget totals, enforcement raising mid-stream with partially flushed
metrics, the PR 5 adversary seam consulted per message
(:meth:`~repro.distributed.adversary.DeliveryFilter.deliver`, or one
:meth:`~repro.distributed.adversary.DeliveryFilter.deliver_mask` call for
a broadcast segment's uniform-size row) *before* the receiver-liveness
check — and builds eager batch-style inbox dicts.  The NumPy kernels must
agree with it exactly; when a violation must raise under an enforcing
model, the vectorised path detects it cheaply and re-runs the ordered walk
so the raised error and the partially flushed metrics match the oracle.

Parity contract (the gate the fast path ships under): for any program, on
rounds containing targeted traffic, batch and columnar runs are bit-for-bit
identical to the ``indexed`` engine — outputs, ``Metrics.as_dict()``,
``bits_per_round`` — under all communication models that admit targeted
sends and under every adversary.  Two deliberate representation
differences, both inherited from the PR 4/6 contracts: fault-free NumPy
rounds hand receivers :class:`TargetedInbox` views (not dicts), and
payload lists may be shared between receivers of one broadcast — programs
treat inboxes as read-only and do not stash them across rounds.  One
documented divergence: on an *enforcing* model, a mixed
broadcast-plus-targeted round expands the broadcast in compiled-topology
CSR order rather than the indexed engine's ``frozenset`` iteration order,
so when several links violate at once the named link may differ (the
raise, the exception type and the totals-at-raise semantics are
identical); pure-targeted rounds enforce in exact oracle order.

NumPy is strictly optional, exactly as in
:mod:`repro.distributed.columnar`: absent (or disabled via
``REPRO_DISABLE_NUMPY``) the stdlib path produces identical results —
slower, never different.
"""

from __future__ import annotations

import os
from collections.abc import Mapping
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.distributed.encoding import PayloadSizeTable
from repro.distributed.errors import BandwidthExceededError
from repro.distributed.metrics import Metrics, RoundTally, flush_round_tally
from repro.distributed.node import NO_BROADCAST, NodeContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.distributed.adversary import DeliveryFilter
    from repro.distributed.simulator import Simulator

# Optional accelerator, never a dependency — the same contract (and the
# same monkeypatch point for the fallback-parity tests) as the columnar
# module's ``_np`` global.
if os.environ.get("REPRO_DISABLE_NUMPY"):  # pragma: no cover - env-driven
    _np = None
else:
    try:
        import numpy as _np
    except ImportError:  # pragma: no cover - depends on environment
        _np = None


def have_targeted_numpy() -> bool:
    """Whether the targeted fast path will use its NumPy kernels on this run."""
    return _np is not None


#: Distinct-from-everything sentinel for the run-grouping loop (``None`` is
#: a legal sender label in principle, so equality with it must not match).
_NO_SRC: Any = object()

#: The type-scan target of the gather's exact-int payload sizing fast path.
_INT_ONLY = frozenset((int,))


class TargetedInbox(Mapping):
    """Read-only inbox view over one receiver's scatter segment.

    The fault-free NumPy delivery kernel sorts the round's messages by
    destination (stable, so each receiver's segment keeps ascending-sender,
    outbox-order message order — the indexed engine's insertion order) and
    hands each receiver one of these views instead of building a dict per
    receiver.  The Mapping facade materialises the per-sender payload
    lists lazily, once, on first dict-style access: a program that only
    folds (:meth:`max_heard`) or never reads its inbox pays nothing.

    Views alias the round's scatter columns and are valid only for the
    round they were handed to ``on_round`` for; payload lists are shared
    with the engine — the batch engines' existing read-only inbox
    contract.
    """

    __slots__ = ("_srcs", "_pays", "_lo", "_hi", "_items")

    def __init__(self, srcs: list[Any], pays: list[Any], lo: int, hi: int) -> None:
        self._srcs = srcs
        self._pays = pays
        self._lo = lo
        self._hi = hi
        self._items: list[tuple[Any, list[Any]]] | None = None

    def _ensure_items(self) -> list[tuple[Any, list[Any]]]:
        """Group the segment's (ascending, pre-sorted) senders into runs."""
        items = self._items
        if items is None:
            srcs = self._srcs
            pays = self._pays
            items = []
            append = items.append
            prev: Any = _NO_SRC
            plist: list[Any] = []
            for k in range(self._lo, self._hi):
                src = srcs[k]
                if prev is _NO_SRC or src != prev:
                    plist = [pays[k]]
                    append((src, plist))
                    prev = src
                else:
                    plist.append(pays[k])
            self._items = items
        return items

    def __iter__(self):
        return iter([src for src, _ in self._ensure_items()])

    def __len__(self) -> int:
        return len(self._ensure_items())

    def __bool__(self) -> bool:
        # ``if inbox:`` is the universal emptiness idiom in node programs;
        # answering it must not force the sender grouping (a view handed to
        # a fold-only receiver would otherwise pay the full facade cost).
        return self._hi > self._lo

    def __getitem__(self, src: Any) -> list[Any]:
        for sender, plist in self._ensure_items():
            if sender == src:
                return plist
        raise KeyError(src)

    def items(self):
        """``(sender label, payload list)`` pairs in ascending sender order.

        Returns the view's cached run list directly (read-only contract):
        one grouping pass serves every accessor of the round.
        """
        return self._ensure_items()

    def values(self):
        """The payload lists, in ascending sender order."""
        return [plist for _, plist in self._ensure_items()]

    def max_heard(self, default: Any) -> Any:
        """Fold-pushdown: max of ``default`` and every delivered payload.

        The targeted counterpart of
        :meth:`~repro.distributed.columnar.ColumnarInbox.max_heard`: one
        C-level ``max`` over the receiver's contiguous payload segment,
        skipping the Mapping facade entirely.
        """
        lo, hi = self._lo, self._hi
        if lo == hi:
            return default
        heard = max(self._pays[lo:hi])
        return heard if heard > default else default


def build_targeted_collect(
    sim: "Simulator",
    contexts: list[NodeContext],
    metrics: Metrics,
    graph_sets,
    filt: "DeliveryFilter | None",
    size_table: PayloadSizeTable | None = None,
) -> Callable[[Iterable[int]], list[Any]]:
    """Build the shared targeted-round ``collect`` callable.

    Invoked lazily by the batch and columnar engines the first time a run
    actually sees a targeted send (broadcast-only runs never pay for it).
    ``sim`` supplies the compiled topology, model and cut exactly as the
    engines see them; ``size_table`` lets the columnar engine share its
    run-lifetime payload size cache with this path (the batch engine passes
    ``None`` and gets a private table).
    """
    np = _np  # snapshot per run; tests monkeypatch the module global
    topo = sim.topology
    model = sim.model
    n = topo.n
    labels = topo.labels
    index = topo.index
    cut = sim.cut
    budget = model.bandwidth_bits
    enforce = model.enforce
    indptr, indices = topo.indptr, topo.indices
    if size_table is None:
        size_table = PayloadSizeTable()
    measure = size_table.measure
    int_probe = size_table.int_sizes.__getitem__
    index_get = index.__getitem__

    # Label identity: every shipped graph family labels vertices by their
    # dense index, making destination resolution a C-level list extend.
    identity = all(labels[i] == i for i in range(n))

    cut_side: list[bool] | None = None
    if cut is not None:
        cut_side = [labels[i] in cut for i in range(n)]

    # Per-sender neighbour index rows for broadcast expansion on mixed
    # rounds, decoded from the CSR slice once per sender per run.
    rows_cache: list[list[int] | None] = [None] * n

    def nbr_row(src_i: int) -> list[int]:
        row = rows_cache[src_i]
        if row is None:
            row = rows_cache[src_i] = list(indices[indptr[src_i] : indptr[src_i + 1]])
        return row

    tally = RoundTally()
    MESSAGES, BITS, MAX_BITS = RoundTally.MESSAGES, RoundTally.BITS, RoundTally.MAX_BITS
    CUT_MESSAGES, CUT_BITS = RoundTally.CUT_MESSAGES, RoundTally.CUT_BITS
    VIOLATIONS, VIRTUAL = RoundTally.VIOLATIONS, RoundTally.VIRTUAL

    # NumPy-only run-lifetime columns, built lazily on first use.
    side_np = None
    labels_np = None
    graph_keys_np = None

    def _graph_keys():
        """Sorted packed ``src * n + dst`` keys of every input-graph arc."""
        nonlocal graph_keys_np
        if graph_keys_np is None:
            keys = []
            for i in range(n):
                base = i * n
                for lbl in graph_sets[i]:
                    keys.append(base + index_get(lbl))
            arr = np.fromiter(keys, np.int64, len(keys))
            arr.sort()
            graph_keys_np = arr
        return graph_keys_np

    def _ordered_collect(
        groups: list[tuple[int, int, int, int, int]],
        t_dst: list[int],
        t_pay: list[Any],
        t_bits: list[int],
        deliver: bool,
    ) -> list[dict[Any, list[Any]] | None] | None:
        """The oracle-order path: per-message accounting, filtering, delivery.

        Walks the gathered stream exactly like the indexed engine's
        collection loop (ascending senders, outbox order within a sender),
        so enforcement raises, adversary decisions and inbox contents are
        bit-for-bit the oracle's.  Serves as the stdlib kernel, the
        adversary path and the enforcement replay (``deliver=False`` —
        accounting only, used when the vectorised kernels detected a
        violation that must raise).
        """
        inboxes: list[dict[Any, list[Any]] | None] | None = None
        halted: list[bool] | None = None
        if deliver:
            inboxes = [None] * n
            halted = [ctx.halted for ctx in contexts]
        # A transforming filter rewrites payloads in their per-edge column
        # slots (each flat-column entry belongs to exactly one edge, so the
        # write is per-edge materialization for free).  Deliver -> transform
        # -> liveness, the canonical seam order of every engine.
        transforms = filt is not None and filt.transforms

        messages = 0
        bits_total = 0
        max_bits = metrics.max_message_bits
        cut_messages = 0
        cut_bits = 0
        violations = 0
        virtual = 0

        for src_i, start, end, b_lo, b_hi in groups:
            src = labels[src_i]
            src_side = cut_side[src_i] if cut_side is not None else False
            gset = graph_sets[src_i] if graph_sets is not None else None
            link: dict[int, int] | None = {} if budget is not None else None
            # One deliver_mask consult covers a broadcast segment (uniform
            # payload size, the PR 5/6 bulk seam), built lazily when the
            # walk first enters the segment; everything else goes through
            # the per-message deliver seam.
            mask = None
            k = start
            while k < end:
                dst_i = t_dst[k]
                bits = t_bits[k]
                messages += 1
                bits_total += bits
                if bits > max_bits:
                    max_bits = bits
                if cut_side is not None and src_side != cut_side[dst_i]:
                    cut_messages += 1
                    cut_bits += bits
                if gset is not None and labels[dst_i] not in gset:
                    virtual += 1
                if link is not None:
                    total = link.get(dst_i, 0) + bits
                    link[dst_i] = total
                    if total > budget:
                        violations += 1
                        if enforce:
                            flush_round_tally(
                                metrics, messages, bits_total, max_bits,
                                cut_messages, cut_bits, violations, 0, virtual,
                            )
                            raise BandwidthExceededError(
                                f"message(s) on link {src!r}->{labels[dst_i]!r} "
                                f"use {total} bits, budget is {budget} "
                                f"({model.name})"
                            )
                if filt is not None:
                    if b_lo <= k < b_hi:
                        if mask is None:
                            mask = filt.deliver_mask(
                                src, [labels[j] for j in t_dst[b_lo:b_hi]], bits
                            )
                        delivered = mask[k - b_lo]
                    else:
                        delivered = filt.deliver(src, labels[dst_i], bits)
                    if not delivered:
                        k += 1
                        continue
                    if transforms:
                        t_pay[k] = filt.transform(src, labels[dst_i], t_pay[k], bits)
                    if halted is not None and halted[dst_i]:
                        k += 1
                        continue
                if deliver:
                    box = inboxes[dst_i]
                    if box is None:
                        inboxes[dst_i] = {src: [t_pay[k]]}
                    else:
                        plist = box.get(src)
                        if plist is None:
                            box[src] = [t_pay[k]]
                        else:
                            plist.append(t_pay[k])
                k += 1

        flush_round_tally(
            metrics, messages, bits_total, max_bits, cut_messages, cut_bits,
            violations, 0, virtual,
        )
        return inboxes

    def collect(sender_ids: Iterable[int]) -> list[Any]:
        """Collect one targeted round: gather, account, deliver."""
        nonlocal side_np, labels_np
        # ---- gather: drain the per-sender grouped outboxes (and any mixed
        # broadcast) into flat per-round columns, senders ascending.
        groups: list[tuple[int, int, int, int, int]] = []
        groups_append = groups.append
        t_dst: list[int] = []
        t_pay: list[Any] = []
        t_bits: list[int] = []
        t_dst_extend = t_dst.extend
        t_pay_extend = t_pay.extend
        t_bits_extend = t_bits.extend
        ctxs = contexts
        no_bcast = NO_BROADCAST
        ident = identity
        get_i = index_get
        meas = measure
        probe = int_probe
        INT_ONLY = _INT_ONLY

        def extend_sizes(plist: list[Any]) -> None:
            # Exact-int payload columns (the dominant targeted payload
            # class) size through one C-level map over the interned int
            # table; a cold value — or any other payload shape — falls back
            # to the generic measure, which interns ints as it goes.  The
            # type scan is load-bearing: ``bool``/``float`` payloads are
            # hash-equal to ints (``True == 1``, ``1.0 == 1``) and would
            # silently take the wrong size from a blind table probe.
            if set(map(type, plist)) == INT_ONLY:
                first = plist[0]
                count = len(plist)
                if count > 2 and plist.count(first) == count:
                    # Uniform segment (one value fanned out to many
                    # destinations — the dominant shape): one probe, one
                    # C-level list repeat.
                    t_bits_extend([meas(first)] * count)
                    return
                pos = len(t_bits)
                try:
                    t_bits_extend(map(probe, plist))
                    return
                except KeyError:
                    del t_bits[pos:]
            t_bits_extend(map(meas, plist))

        for src_i in sender_ids:
            ctx = ctxs[src_i]
            tdsts = ctx._t_dsts
            bpay = ctx._batch_payload
            if not tdsts and bpay is no_bcast:
                continue
            tpays = ctx._t_pays
            ctx._t_dsts = []
            ctx._t_pays = []
            start = len(t_dst)
            if bpay is no_bcast:
                # Pure targeted sender: three C-level column extends.
                # ``_t_bpos`` may hold a stale value here, but it is only
                # ever read in the broadcast branch below, and broadcast()
                # always writes it fresh before setting ``_batch_payload``.
                if ident:
                    t_dst_extend(tdsts)
                else:
                    t_dst_extend(map(get_i, tdsts))
                t_pay_extend(tpays)
                extend_sizes(tpays)
                groups_append((src_i, start, len(t_dst), 0, 0))
                continue
            # Sender broadcast this round (possibly mixed with targeted
            # sends): expand the broadcast into the columns at its call
            # position so per-link message order matches the oracle.
            bpos = ctx._t_bpos
            ctx._t_bpos = -1
            ctx._batch_payload = no_bcast
            if bpos < 0:
                bpos = 0
            if bpos:
                pre_d = tdsts[:bpos]
                pre_p = tpays[:bpos]
                if ident:
                    t_dst_extend(pre_d)
                else:
                    t_dst_extend(map(get_i, pre_d))
                t_pay_extend(pre_p)
                extend_sizes(pre_p)
            row = nbr_row(src_i)
            deg = len(row)
            b_lo = len(t_dst)
            if deg:
                b_bits = meas(bpay)
                t_dst_extend(row)
                t_pay_extend([bpay] * deg)
                t_bits_extend([b_bits] * deg)
            b_hi = len(t_dst)
            if bpos < len(tdsts):
                post_d = tdsts[bpos:]
                post_p = tpays[bpos:]
                if ident:
                    t_dst_extend(post_d)
                else:
                    t_dst_extend(map(get_i, post_d))
                t_pay_extend(post_p)
                extend_sizes(post_p)
            groups_append((src_i, start, len(t_dst), b_lo, b_hi))

        m = len(t_dst)
        if not m:
            flush_round_tally(metrics, 0, 0, metrics.max_message_bits, 0, 0, 0, 0, 0)
            return [None] * n

        # ---- ordered path: stdlib kernels, and every adversary round
        # (stateful filters observe per-message decisions, exactly like the
        # columnar engine's eager adversary fallback).
        if np is None or filt is not None:
            return _ordered_collect(groups, t_dst, t_pay, t_bits, deliver=True)

        # ---- NumPy accounting kernels over the flat columns.
        t_bits_np = np.fromiter(t_bits, np.int64, m)
        t_dst_np = np.fromiter(t_dst, np.int64, m)
        g = len(groups)
        src_arr = np.fromiter((grp[0] for grp in groups), np.int64, g)
        cnt_arr = np.fromiter((grp[2] - grp[1] for grp in groups), np.int64, g)
        t_src_np = np.repeat(src_arr, cnt_arr)

        tally.reset(metrics.max_message_bits)
        counts = tally.counts
        counts[MESSAGES] = m
        counts[BITS] = int(t_bits_np.sum())
        mx = int(t_bits_np.max())
        if mx > counts[MAX_BITS]:
            counts[MAX_BITS] = mx
        if cut_side is not None:
            if side_np is None:
                side_np = np.fromiter(cut_side, np.bool_, n)
            crossing = side_np[t_src_np] != side_np[t_dst_np]
            counts[CUT_MESSAGES] = int(crossing.sum())
            counts[CUT_BITS] = int(t_bits_np[crossing].sum())
        if graph_sets is not None:
            key = t_src_np * n + t_dst_np
            gk = _graph_keys()
            if len(gk):
                pos = np.searchsorted(gk, key)
                member = gk[np.minimum(pos, len(gk) - 1)] == key
                counts[VIRTUAL] = m - int(member.sum())
            else:
                counts[VIRTUAL] = m
        # One stable argsort by destination serves both the per-link budget
        # accounting and the delivery scatter: each receiver's messages form
        # a contiguous segment (ascending sender, outbox order preserved),
        # so (dst, src) link groups are contiguous runs in the sorted stream
        # and keep their within-link send order.
        order = np.argsort(t_dst_np, kind="stable")
        sorted_dst = t_dst_np[order]
        src_sorted = t_src_np[order]
        if budget is not None:
            # Per-link prefix sums over the shared sorted stream: "the
            # message that tips a link past its budget" is counted exactly
            # as the oracle counts it (within-link order is stream order).
            bs = t_bits_np[order]
            boundary = np.empty(m, np.bool_)
            boundary[0] = True
            if m > 1:
                boundary[1:] = (sorted_dst[1:] != sorted_dst[:-1]) | (
                    src_sorted[1:] != src_sorted[:-1]
                )
            csum = np.cumsum(bs)
            starts = np.flatnonzero(boundary)
            base = np.zeros(len(starts), np.int64)
            if len(starts) > 1:
                base[1:] = csum[starts[1:] - 1]
            prefix = csum - base[np.cumsum(boundary) - 1]
            violations = int((prefix > budget).sum())
            if violations:
                if enforce:
                    # Re-walk in oracle order; raises with the partially
                    # flushed metrics of the first violating message.
                    _ordered_collect(groups, t_dst, t_pay, t_bits, deliver=False)
                counts[VIOLATIONS] = violations
        tally.flush(metrics)

        # ---- delivery: CSR-style scatter into per-receiver inbox columns,
        # served through lazy TargetedInbox views — no per-message Python.
        obj = np.empty(m, dtype=object)
        obj[:] = t_pay
        s_pays = obj[order].tolist()
        if identity:
            s_srcs = src_sorted.tolist()
        else:
            if labels_np is None:
                labels_np = np.empty(n, dtype=object)
                labels_np[:] = labels
            s_srcs = labels_np[src_sorted].tolist()
        boundary = np.empty(m, np.bool_)
        boundary[0] = True
        if m > 1:
            boundary[1:] = sorted_dst[1:] != sorted_dst[:-1]
        seg_starts = np.flatnonzero(boundary)
        receivers = sorted_dst[seg_starts].tolist()
        seg_list = seg_starts.tolist()
        seg_list.append(m)
        inboxes: list[Any] = [None] * n
        for r in range(len(receivers)):
            inboxes[receivers[r]] = TargetedInbox(
                s_srcs, s_pays, seg_list[r], seg_list[r + 1]
            )
        return inboxes

    return collect


__all__ = ["TargetedInbox", "build_targeted_collect", "have_targeted_numpy"]
