"""Exceptions raised by the distributed round simulator."""

from __future__ import annotations


class SimulationError(RuntimeError):
    """Base class for simulator failures."""


class NotANeighborError(SimulationError):
    """A node tried to send a message to a vertex that is not adjacent to it."""


class BandwidthExceededError(SimulationError):
    """A message exceeded the CONGEST per-edge per-round bandwidth budget."""


class MessageAdmissionError(SimulationError):
    """A send pattern violated the communication model's admission policy.

    Raised e.g. for a targeted ``send`` or a second per-round broadcast in a
    broadcast-only model.  Unlike bandwidth overflows this always raises —
    it is a structural violation, not a budget one.
    """


class RoundLimitExceededError(SimulationError):
    """The simulation did not terminate within the configured round limit."""
