"""Exceptions raised by the distributed round simulator."""

from __future__ import annotations


class SimulationError(RuntimeError):
    """Base class for simulator failures."""


class NotANeighborError(SimulationError):
    """A node tried to send a message to a vertex that is not adjacent to it."""


class BandwidthExceededError(SimulationError):
    """A message exceeded the CONGEST per-edge per-round bandwidth budget."""


class RoundLimitExceededError(SimulationError):
    """The simulation did not terminate within the configured round limit."""
