"""The node-program interface executed by the simulator."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Hashable
from typing import Any

from repro.distributed.errors import MessageAdmissionError
from repro.distributed.node import NodeContext

Node = Hashable
#: Round inbox shape: each neighbour maps to the payloads it sent this round.
Inbox = dict[Node, list[Any]]


class NodeProgram(ABC):
    """A distributed algorithm from the point of view of a single vertex.

    One instance is created per vertex.  ``on_start`` runs before any
    communication (it may already queue messages); ``on_round`` runs once per
    synchronous round with the messages received from each neighbour.  A node
    finishes by calling ``ctx.set_output(...)`` and ``ctx.halt()``.

    The base class is slotted so that throughput-critical programs (e.g. the
    E18/E20 flood-max workload) can opt into ``__slots__`` themselves;
    subclasses that declare none still get an instance ``__dict__`` as usual.
    """

    __slots__ = ()

    @abstractmethod
    def on_start(self, ctx: NodeContext) -> None:
        """Initialise local state; may queue messages for round 1."""

    @abstractmethod
    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        """Process one synchronous round.

        ``inbox`` maps each neighbour to the list of payloads it sent this
        round (empty lists are omitted).
        """


class BroadcastNodeProgram(NodeProgram):
    """Convenience base class for broadcast models (one payload per sender).

    In broadcast-only models every neighbour contributes at most one payload
    per round, so the inbox's per-sender lists are redundant;
    :meth:`on_broadcast_round` receives a flat ``{sender: payload}`` mapping
    instead.  Subclasses broadcast via ``ctx.broadcast`` exactly once per
    round (the admission policy enforces this).
    """

    __slots__ = ()

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        heard = {}
        for sender, payloads in inbox.items():
            if len(payloads) != 1:
                raise MessageAdmissionError(
                    f"node {ctx.node_id!r} received {len(payloads)} payloads "
                    f"from {sender!r} in one round; BroadcastNodeProgram "
                    f"requires a broadcast-only communication model"
                )
            heard[sender] = payloads[0]
        self.on_broadcast_round(ctx, heard)

    @abstractmethod
    def on_broadcast_round(self, ctx: NodeContext, heard: dict[Node, Any]) -> None:
        """Process one round; ``heard`` maps each neighbour to its broadcast."""


class FunctionProgram(NodeProgram):
    """Adapter turning plain functions into a :class:`NodeProgram`.

    Useful for tests and tiny algorithms::

        prog = lambda: FunctionProgram(on_start=..., on_round=...)
    """

    __slots__ = ("_on_start", "_on_round")

    def __init__(self, on_start, on_round) -> None:
        self._on_start = on_start
        self._on_round = on_round

    def on_start(self, ctx: NodeContext) -> None:
        self._on_start(ctx)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        self._on_round(ctx, inbox)
