"""Synchronous round simulator for the LOCAL and CONGEST models.

The simulator executes one :class:`~repro.distributed.program.NodeProgram`
instance per vertex of a communication graph, in lock-step rounds.  It is the
"simple round simulator" substrate on which every distributed algorithm in
this reproduction runs, and it is also the measurement instrument: it counts
rounds, messages, bits, CONGEST bandwidth violations and (optionally) the
bits crossing a designated vertex cut — the quantity the paper's two-party
lower-bound reductions charge to Alice and Bob.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Hashable, Iterable
from dataclasses import dataclass
from typing import Any

from repro.distributed.encoding import estimate_bits
from repro.distributed.errors import BandwidthExceededError, RoundLimitExceededError
from repro.distributed.metrics import Metrics
from repro.distributed.models import Model, ModelConfig, local_model
from repro.distributed.node import NodeContext
from repro.distributed.program import NodeProgram
from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph

Node = Hashable
ProgramFactory = Callable[[Node], NodeProgram]


@dataclass
class RunResult:
    """Outcome of one simulation: per-node outputs plus communication metrics."""

    outputs: dict[Node, Any]
    metrics: Metrics
    completed: bool

    @property
    def rounds(self) -> int:
        return self.metrics.rounds


class Simulator:
    """Runs a node program on every vertex of a communication graph.

    Parameters
    ----------
    graph:
        The communication topology.  For a :class:`~repro.graphs.DiGraph` the
        *communication* links are bidirectional (as in the paper, Section
        1.5), i.e. a node can message both in- and out-neighbours.
    program_factory:
        Called once per vertex to create that vertex's program instance.
    model:
        LOCAL (default) or CONGEST bandwidth policy.
    seed:
        Seeds the per-node private randomness deterministically.
    cut:
        Optional set of vertices forming "Alice's side"; bits of messages
        crossing between this set and its complement are tallied separately
        (used by the lower-bound reduction harness).
    """

    def __init__(
        self,
        graph: Graph | DiGraph,
        program_factory: ProgramFactory,
        model: ModelConfig | None = None,
        seed: int | None = None,
        cut: Iterable[Node] | None = None,
    ) -> None:
        self.graph = graph
        self.program_factory = program_factory
        self.model = model if model is not None else local_model(graph.number_of_nodes())
        self.seed = seed
        self.cut = set(cut) if cut is not None else None
        self._neighbors: dict[Node, frozenset[Node]] = {
            v: frozenset(graph.neighbors(v)) for v in graph.nodes()
        }

    # --------------------------------------------------------------------- run
    def run(self, max_rounds: int = 10_000, raise_on_limit: bool = True) -> RunResult:
        """Execute the program until every node halts or ``max_rounds`` elapse."""
        nodes = list(self.graph.nodes())
        n = len(nodes)
        master = random.Random(self.seed)
        node_seeds = {v: master.randrange(2**63) for v in nodes}

        contexts: dict[Node, NodeContext] = {}
        programs: dict[Node, NodeProgram] = {}
        for v in nodes:
            contexts[v] = NodeContext(
                node_id=v,
                neighbors=self._neighbors[v],
                n=n,
                rng=random.Random(node_seeds[v]),
            )
            programs[v] = self.program_factory(v)

        metrics = Metrics()
        for v in nodes:
            programs[v].on_start(contexts[v])

        pending = self._collect_messages(contexts, metrics)
        completed = all(ctx.halted for ctx in contexts.values())

        while not completed:
            if metrics.rounds >= max_rounds:
                if raise_on_limit:
                    raise RoundLimitExceededError(
                        f"simulation exceeded {max_rounds} rounds"
                    )
                break
            metrics.start_round()
            for v in nodes:
                ctx = contexts[v]
                if ctx.halted:
                    continue
                ctx.round = metrics.rounds
                inbox = pending.get(v, {})
                programs[v].on_round(ctx, inbox)
            pending = self._collect_messages(contexts, metrics)
            completed = all(ctx.halted for ctx in contexts.values())

        outputs = {v: contexts[v].output for v in nodes}
        return RunResult(outputs=outputs, metrics=metrics, completed=completed)

    # ----------------------------------------------------------------- helpers
    def _collect_messages(
        self, contexts: dict[Node, NodeContext], metrics: Metrics
    ) -> dict[Node, dict[Node, list[Any]]]:
        """Drain every outbox, apply bandwidth accounting and build inboxes."""
        inboxes: dict[Node, dict[Node, list[Any]]] = {}
        budget = self.model.bandwidth_bits
        per_link_bits: dict[tuple[Node, Node], int] = {}

        for src, ctx in contexts.items():
            for dst, payload in ctx._drain_outbox():
                bits = estimate_bits(payload)
                crosses = self.cut is not None and ((src in self.cut) != (dst in self.cut))
                metrics.record_message(bits, crosses)
                if budget is not None:
                    link = (src, dst)
                    per_link_bits[link] = per_link_bits.get(link, 0) + bits
                    if per_link_bits[link] > budget:
                        metrics.bandwidth_violations += 1
                        if self.model.enforce:
                            raise BandwidthExceededError(
                                f"message(s) on link {src!r}->{dst!r} use "
                                f"{per_link_bits[link]} bits, budget is {budget} "
                                f"({self.model.model.value})"
                            )
                if contexts[dst].halted:
                    continue
                inboxes.setdefault(dst, {}).setdefault(src, []).append(payload)
        return inboxes


def run_program(
    graph: Graph | DiGraph,
    program_factory: ProgramFactory,
    model: ModelConfig | None = None,
    seed: int | None = None,
    max_rounds: int = 10_000,
    cut: Iterable[Node] | None = None,
) -> RunResult:
    """Convenience wrapper: build a :class:`Simulator` and run it once."""
    sim = Simulator(graph, program_factory, model=model, seed=seed, cut=cut)
    return sim.run(max_rounds=max_rounds)


def congest_overhead_report(result: RunResult, n: int, logn_factor: int = 32) -> dict[str, float]:
    """How far a run's messages exceed the CONGEST budget.

    The paper notes (Section 1.3) that a direct CONGEST implementation of the
    2-spanner algorithm incurs an O(Delta) overhead; this helper quantifies
    the measured ratio ``max_message_bits / budget`` for a LOCAL run.
    """
    from repro.distributed.encoding import congest_budget_bits

    budget = congest_budget_bits(n, logn_factor)
    return {
        "budget_bits": float(budget),
        "max_message_bits": float(result.metrics.max_message_bits),
        "overhead_factor": result.metrics.max_message_bits / budget if budget else float("inf"),
    }


__all__ = [
    "Model",
    "ModelConfig",
    "RunResult",
    "Simulator",
    "congest_overhead_report",
    "run_program",
]
