"""Synchronous round simulator for the pluggable communication-model layer.

The simulator executes one :class:`~repro.distributed.program.NodeProgram`
instance per vertex of a communication graph, in lock-step rounds.  It is the
"simple round simulator" substrate on which every distributed algorithm in
this reproduction runs, and it is also the measurement instrument: it counts
rounds, messages, bits, bandwidth violations and (optionally) the bits
crossing a designated vertex cut — the quantity the paper's two-party
lower-bound reductions charge to Alice and Bob.

Which links exist, how many bits they carry per round and which send
patterns are admitted is owned by a
:class:`~repro.distributed.models.CommunicationModel` policy object (LOCAL,
CONGEST, broadcast-CONGEST or Congested Clique).  Overlay models (the
clique) decouple the *communication* topology from the input graph: messages
travel on a virtual complete graph while programs still compute on the input
graph exposed as ``ctx.graph_neighbors``.

Four engines share the public API and produce identical results:

* ``indexed`` (default) — runs on the model's compiled communication
  topology (:meth:`~repro.distributed.models.CommunicationModel.communication_topology`):
  contexts and programs live in dense lists, an active-set scheduler skips
  halted vertices, inboxes are materialised only for vertices with pending
  traffic, per-link bandwidth accounting uses a preallocated
  :class:`~repro.distributed.metrics.LinkLedger` indexed by CSR arc
  position, and message sizes are measured once per distinct payload object
  per round (:class:`~repro.distributed.encoding.BitsMemo`).
* ``batch`` — a struct-of-arrays fast path.  Broadcast rounds exploit the
  broadcast-admission invariant (one identical payload per sender per
  round, the rule :class:`~repro.distributed.models.BroadcastCongestModel`
  enforces and every broadcast-style workload obeys): each round's payload
  is interned once per sender, sized once, and delivered by CSR slice over
  the compiled topology instead of constructing one ``(dst, payload)``
  message object per neighbour, with cut/overlay/bandwidth accounting
  collapsed to per-sender arithmetic on preallocated per-node count
  arrays.  Rounds with targeted traffic (``ctx.send`` appends into
  per-sender grouped struct-of-arrays outboxes) are collected by the
  shared targeted fast path (:mod:`repro.distributed.targeted`): flat
  per-round columns, run-lifetime payload sizing, vectorised per-link
  admission accounting and scatter delivery.  Bit-for-bit identical to
  ``indexed`` for any program under every communication model.
* ``columnar`` — the mega-scale flat-array engine
  (:mod:`repro.distributed.columnar`).  On broadcast rounds the remaining
  per-delivery Python loop is gone too: accounting reduces over
  preallocated per-node count columns (NumPy kernels when importable,
  stdlib ``array`` otherwise — identical results), payload sizes come
  from a run-lifetime
  :class:`~repro.distributed.encoding.PayloadSizeTable`, per-round
  counters flush once through a
  :class:`~repro.distributed.metrics.RoundTally`, and fault-free delivery
  hands each receiver a lazy CSR-backed inbox view instead of building
  dicts.  Rounds with targeted traffic take the same shared targeted fast
  path as the batch engine (sharing the columnar size table).  Bit-for-bit
  identical to ``indexed`` for any program, including under every
  adversary.
* ``reference`` — the original dict-of-dicts engine, kept as the
  differential-testing oracle and as the baseline the throughput benchmark
  (E16) measures speedups against.

Fault injection composes orthogonally with both the models and the engines:
an :class:`~repro.distributed.adversary.Adversary` policy may destroy
admitted messages in flight (drops, throttling) or crash-stop nodes.  All
engines share one delivery-filter seam — the filter is consulted per
message after send-side accounting and before inbox insertion, plus once
per round before programs execute (crash schedules force-halt there) — so
engine-to-engine bit-for-bit equality holds *under the same adversary*,
and a ``None``/:class:`~repro.distributed.adversary.NoAdversary` adversary
leaves every hot path untouched.  Payload-transforming filters
(``filt.transforms``, e.g. the corruption adversary) additionally disable
the shared-payload-by-reference broadcast fan-out: each engine detects the
flag once per run and materializes per-edge payloads, calling
``filt.transform`` between the delivery decision and the receiver-liveness
check at every seam.
"""

from __future__ import annotations

import random
from array import array
from collections.abc import Callable, Hashable, Iterable
from dataclasses import dataclass
from typing import Any

from repro.distributed.adversary import Adversary, DeliveryFilter
from repro.distributed.columnar import build_columnar_collect
from repro.distributed.encoding import (
    BitsMemo,
    PayloadSizeTable,
    congest_budget_bits,
)
from repro.distributed.errors import BandwidthExceededError, RoundLimitExceededError
from repro.distributed.metrics import LinkLedger, Metrics, flush_round_tally
from repro.distributed.models import CommunicationModel, LocalModel, Model, ModelConfig
from repro.distributed.node import NO_BROADCAST, NodeContext
from repro.distributed.program import NodeProgram
from repro.distributed.targeted import build_targeted_collect
from repro.distributed.vectorize import try_lower
from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph

Node = Hashable
ProgramFactory = Callable[[Node], NodeProgram]

ENGINES = ("indexed", "batch", "columnar", "reference")


@dataclass
class RunResult:
    """Outcome of one simulation: per-node outputs plus communication metrics."""

    outputs: dict[Node, Any]
    metrics: Metrics
    completed: bool

    @property
    def rounds(self) -> int:
        """Number of synchronous rounds the simulation executed."""
        return self.metrics.rounds

    def as_dict(self) -> dict[str, Any]:
        """Summary of the run for benchmarks and reports.

        Per-node outputs are summarised (not embedded) so the dictionary is
        small enough for ``pytest-benchmark`` extra-info records.
        """
        return {
            "completed": self.completed,
            "rounds": self.rounds,
            "nodes": len(self.outputs),
            "outputs_set": sum(1 for v in self.outputs.values() if v is not None),
            "metrics": self.metrics.as_dict(),
        }


class Simulator:
    """Runs a node program on every vertex of a communication graph.

    Parameters
    ----------
    graph:
        The input graph.  For a :class:`~repro.graphs.DiGraph` the
        *communication* links are bidirectional (as in the paper, Section
        1.5), i.e. a node can message both in- and out-neighbours.  Overlay
        models (Congested Clique) communicate over a virtual complete graph
        instead, while programs keep computing on this input graph.
    program_factory:
        Called once per vertex to create that vertex's program instance.
    model:
        A :class:`~repro.distributed.models.CommunicationModel` policy
        (default LOCAL): bandwidth budget, admission rules, topology.
    seed:
        Seeds the per-node private randomness deterministically.
    cut:
        Optional set of vertices forming "Alice's side"; bits of messages
        crossing between this set and its complement are tallied separately
        (used by the lower-bound reduction harness).
    engine:
        ``"indexed"`` (the compiled-topology engine, default),
        ``"batch"`` (the struct-of-arrays fast path),
        ``"columnar"`` (the mega-scale flat-array engine; NumPy-accelerated
        when NumPy is importable, stdlib otherwise) or ``"reference"``
        (the original dict-based engine).  All engines produce identical
        outputs and metrics for a fixed seed, for broadcast and targeted
        traffic alike; the only send restriction is the *semantic* one —
        broadcast-only models reject ``ctx.send`` on every engine.
    streaming_metrics:
        When true, run with ``Metrics(streaming=True)``: the
        ``bits_per_round`` history is capped (oldest buckets evicted into
        a running peak) while every scalar counter stays exact — intended
        for mega-scale runs where an O(rounds) history is unwelcome.
        Default off, preserving the golden-run dictionaries.
    adversary:
        Optional :class:`~repro.distributed.adversary.Adversary` fault
        policy (drops, crash-stop schedules, throttling).  ``None`` or
        :class:`~repro.distributed.adversary.NoAdversary` installs no
        delivery filter at all — byte-for-byte the fault-free behaviour.
        Fault decisions depend only on ``(round, src, dst)`` and the
        simulator seed, so the engine-parity contract extends to faulty
        runs: all engines agree bit-for-bit under the same adversary.
    vectorize:
        Whether the columnar engine may lower whole rounds to array
        kernels (:mod:`repro.distributed.vectorize`) when every program
        instance is the same opted-in
        :class:`~repro.distributed.vectorize.VectorProgram` class and the
        run admits it (non-transforming adversary, exact-``int`` labels).
        Lowered runs are bit-for-bit identical to stepped runs; the knob
        (default on) exists so benchmarks and the E23 physics twins can
        force the stepped path.  ``lowered`` reports, after ``run()``,
        whether lowering actually engaged.
    """

    __slots__ = (
        "graph",
        "program_factory",
        "model",
        "seed",
        "cut",
        "engine",
        "adversary",
        "streaming_metrics",
        "vectorize",
        "lowered",
        "topology",
    )

    def __init__(
        self,
        graph: Graph | DiGraph,
        program_factory: ProgramFactory,
        model: CommunicationModel | None = None,
        seed: int | None = None,
        cut: Iterable[Node] | None = None,
        engine: str = "indexed",
        adversary: Adversary | None = None,
        streaming_metrics: bool = False,
        vectorize: bool = True,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.graph = graph
        self.program_factory = program_factory
        self.model = model if model is not None else LocalModel(graph.number_of_nodes())
        self.seed = seed
        self.cut = set(cut) if cut is not None else None
        self.engine = engine
        self.adversary = adversary
        self.streaming_metrics = streaming_metrics
        self.vectorize = vectorize
        self.lowered = False
        self.topology = self.model.communication_topology(graph)

    def _new_metrics(self) -> Metrics:
        """Fresh metrics block for one run, honouring ``streaming_metrics``.

        The single construction point for all four engines, so the
        streaming knob can never apply to one engine and not another.
        """
        return Metrics(streaming=True) if self.streaming_metrics else Metrics()

    def _bind_adversary(self, metrics: Metrics) -> DeliveryFilter | None:
        """Seed fault counters and build this run's delivery filter (or None).

        The one place all three engines obtain their filter, so the
        "no adversary == untouched hot path" rule can never diverge
        between them.
        """
        adversary = self.adversary
        if adversary is None or adversary.is_null:
            return None
        adversary.init_metrics(metrics)
        return adversary.bind(self.seed, metrics)

    # --------------------------------------------------------------------- run
    def run(self, max_rounds: int = 10_000, raise_on_limit: bool = True) -> RunResult:
        """Execute the program until every node halts or ``max_rounds`` elapse."""
        # Re-derive the communication topology so a graph mutated between
        # construction and run() is observed identically by both engines
        # (freeze() is cached when the graph is unchanged).
        self.topology = self.model.communication_topology(self.graph)
        self.lowered = False
        if self.engine == "reference":
            return self._run_reference(max_rounds, raise_on_limit)
        if self.engine == "batch":
            return self._run_batch(max_rounds, raise_on_limit)
        if self.engine == "columnar":
            return self._run_columnar(max_rounds, raise_on_limit)
        return self._run_indexed(max_rounds, raise_on_limit)

    def _drive(
        self,
        contexts: list[NodeContext],
        programs: list[NodeProgram],
        collect: Callable[[Iterable[int]], list[dict[Node, list[Any]] | None]],
        metrics: Metrics,
        max_rounds: int,
        raise_on_limit: bool,
        filt: DeliveryFilter | None = None,
    ) -> list[int]:
        """The shared round loop of the list-indexed engines.

        Runs ``on_start`` on every program, then alternates program rounds
        with ``collect`` (which drains the queued traffic of the given
        senders and returns sparse inboxes) until every node halts.  An
        active adversary filter sees each round begin before any program
        executes (crash schedules force-halt contexts there, which the loop
        then skips).  Returns the final active set (empty iff the run
        completed).
        """
        n = len(contexts)
        for i in range(n):
            programs[i].on_start(contexts[i])

        # Bind the round handlers once: the loop below runs n times per round
        # at E18/E20 scale and the repeated method lookup is measurable.
        handlers = [program.on_round for program in programs]
        pending = collect(range(n))
        active = [i for i in range(n) if not contexts[i].halted]

        while active:
            if metrics.rounds >= max_rounds:
                if raise_on_limit:
                    raise RoundLimitExceededError(
                        f"simulation exceeded {max_rounds} rounds"
                    )
                break
            metrics.start_round()
            current_round = metrics.rounds
            if filt is not None:
                filt.on_round_begin(current_round, (contexts[i] for i in active))
            for i in active:
                ctx = contexts[i]
                if ctx.halted:
                    continue  # crash-stopped at the top of this round
                ctx.round = current_round
                inbox = pending[i]
                handlers[i](ctx, inbox if inbox is not None else {})
            pending = collect(active)
            active = [i for i in active if not contexts[i].halted]
        return active

    def _build_contexts(
        self, batch: bool
    ) -> tuple[
        list[NodeContext],
        list[NodeProgram],
        list[frozenset[Node]] | None,
        list[bool] | None,
    ]:
        """Seed RNGs and build contexts/programs for the list-indexed engines.

        Shared by the indexed and batch engines so that the master-RNG
        consumption order, the overlay adjacency derivation and the context
        wiring can never diverge between them (the bit-for-bit engine-parity
        contract depends on all three).  Overlay models expose the input
        graph's adjacency separately: overlay labels reuse ``graph.freeze()``
        order, hence the index spaces coincide.

        For batch-collecting engines the contexts additionally share one
        targeted-traffic signal cell (returned as the fourth element):
        ``ctx.send`` flags it, so those engines learn in O(1) whether a
        round needs the targeted collection path — pure-broadcast rounds
        never pay a per-sender scan.
        """
        topo = self.topology
        model = self.model
        n = topo.n
        labels = topo.labels
        master = random.Random(self.seed)
        node_seeds = [master.randrange(2**63) for _ in range(n)]

        graph_sets: list[frozenset[Node]] | None = None
        if model.uses_overlay:
            graph_topo = self.graph.freeze()
            graph_sets = [graph_topo.neighbor_label_set(i) for i in range(n)]
        broadcast_only = model.broadcast_only
        model_name = model.name
        tsignal: list[bool] | None = [False] if batch else None

        contexts: list[NodeContext] = []
        programs: list[NodeProgram] = []
        for i in range(n):
            ctx = NodeContext(
                node_id=labels[i],
                neighbors=topo.neighbor_label_set(i),
                n=n,
                rng=node_seeds[i],
                graph_neighbors=graph_sets[i] if graph_sets is not None else None,
                broadcast_only=broadcast_only,
                batch=batch,
                engine_label=self.engine,
                model_name=model_name,
            )
            if tsignal is not None:
                ctx._t_signal = tsignal
            contexts.append(ctx)
            programs.append(self.program_factory(labels[i]))
        return contexts, programs, graph_sets, tsignal

    # -------------------------------------------------------- indexed engine
    def _run_indexed(self, max_rounds: int, raise_on_limit: bool) -> RunResult:
        topo = self.topology
        model = self.model
        n = topo.n
        labels = topo.labels
        contexts, programs, graph_sets, _ = self._build_contexts(batch=False)

        metrics = self._new_metrics()
        model.init_metrics(metrics)
        filt = self._bind_adversary(metrics)
        memo = BitsMemo()
        budget = model.bandwidth_bits
        # Per-link running totals, indexed by CSR arc position, zeroed in
        # O(messages) between rounds.
        ledger = LinkLedger(topo.arc_count) if budget is not None else None

        def collect(sender_ids: Iterable[int]) -> list[dict[Node, list[Any]] | None]:
            return self._collect_indexed(
                contexts, sender_ids, metrics, memo, budget, ledger, graph_sets, filt
            )

        active = self._drive(
            contexts, programs, collect, metrics, max_rounds, raise_on_limit, filt
        )
        outputs = {labels[i]: contexts[i].output for i in range(n)}
        return RunResult(outputs=outputs, metrics=metrics, completed=not active)

    def _collect_indexed(
        self,
        contexts: list[NodeContext],
        sender_ids: Iterable[int],
        metrics: Metrics,
        memo: BitsMemo,
        budget: int | None,
        ledger: LinkLedger | None,
        graph_sets: list[frozenset[Node]] | None,
        filt: DeliveryFilter | None,
    ) -> list[dict[Node, list[Any]] | None]:
        """Drain outboxes, apply bandwidth accounting and build sparse inboxes."""
        topo = self.topology
        labels = topo.labels
        index = topo.index
        cut = self.cut
        if ledger is not None:
            link_bits, touched = ledger.bits, ledger.touched
        else:
            link_bits, touched = None, None
        count_broadcasts = self.model.broadcast_only
        transforms = filt is not None and filt.transforms
        inboxes: list[dict[Node, list[Any]] | None] = [None] * topo.n

        messages = 0
        bits_total = 0
        max_bits = metrics.max_message_bits
        cut_messages = 0
        cut_bits = 0
        violations = 0
        broadcast_payloads = 0
        virtual_messages = 0

        def flush() -> None:
            flush_round_tally(
                metrics, messages, bits_total, max_bits, cut_messages,
                cut_bits, violations, broadcast_payloads, virtual_messages,
            )

        for src_i in sender_ids:
            outbox = contexts[src_i]._outbox
            if not outbox:
                continue
            contexts[src_i]._outbox = []
            src = labels[src_i]
            src_in_cut = cut is not None and src in cut
            if count_broadcasts:
                broadcast_payloads += 1
            src_graph_set = graph_sets[src_i] if graph_sets is not None else None
            for dst, payload in outbox:
                bits = memo.measure(payload)
                messages += 1
                bits_total += bits
                if bits > max_bits:
                    max_bits = bits
                if cut is not None and (src_in_cut != (dst in cut)):
                    cut_messages += 1
                    cut_bits += bits
                if src_graph_set is not None and dst not in src_graph_set:
                    virtual_messages += 1
                dst_i = index[dst]
                if budget is not None:
                    pos = topo.arc_position(src_i, dst_i)
                    if not link_bits[pos]:
                        touched.append(pos)
                    link_bits[pos] += bits
                    if link_bits[pos] > budget:
                        violations += 1
                        if self.model.enforce:
                            flush()
                            raise BandwidthExceededError(
                                f"message(s) on link {src!r}->{dst!r} use "
                                f"{link_bits[pos]} bits, budget is {budget} "
                                f"({self.model.name})"
                            )
                # Adversary seam: the sender has been fully charged by now;
                # a destroyed message only skips inbox insertion, and a
                # transforming filter rewrites the payload in flight.
                # Deliver, then transform, then receiver liveness — the
                # canonical order in every engine, so fault counters agree
                # engine-to-engine.
                if filt is not None:
                    if not filt.deliver(src, dst, bits):
                        continue
                    if transforms:
                        payload = filt.transform(src, dst, payload, bits)
                if contexts[dst_i].halted:
                    continue
                box = inboxes[dst_i]
                if box is None:
                    box = inboxes[dst_i] = {}
                payloads = box.get(src)
                if payloads is None:
                    box[src] = [payload]
                else:
                    payloads.append(payload)

        flush()
        memo.reset()
        if ledger is not None:
            ledger.reset_round()
        return inboxes

    # --------------------------------------------------------- batch engine
    def _run_batch(self, max_rounds: int, raise_on_limit: bool) -> RunResult:
        """Struct-of-arrays fast path.

        Broadcast rounds exploit the broadcast-admission invariant — one
        identical payload per sender per round — to collapse per-message
        work into per-sender work: the payload is interned once (no
        per-neighbour ``(dst, payload)`` tuples), sized once with
        :func:`~repro.distributed.encoding.estimate_bits`, and delivered by
        CSR slice.  Cut-crossing and overlay accounting use per-node
        neighbour counts precomputed once per run, and CONGEST enforcement
        reduces to a single ``bits > budget`` comparison per sender (a
        link's round total equals the payload size, so no
        :class:`~repro.distributed.metrics.LinkLedger` is needed).

        Rounds with targeted traffic — contexts flag the shared signal cell
        in ``ctx.send``, so pure-broadcast rounds never pay for the check —
        are collected by the shared targeted fast path
        (:func:`~repro.distributed.targeted.build_targeted_collect`, built
        lazily on first use), which also handles any broadcast issued in
        the same round.

        Bit-for-bit identical to the indexed engine for any program under
        every communication model.  One deliberate representation
        difference: the single-payload inbox lists of one broadcast are
        *shared* between its receivers (the indexed engine allocates one
        list per receiver), so programs must treat inbox values as
        read-only — which every shipped program and
        :class:`~repro.distributed.program.BroadcastNodeProgram` already
        do.
        """
        topo = self.topology
        model = self.model
        n = topo.n
        labels = topo.labels
        contexts, programs, graph_sets, tsignal = self._build_contexts(batch=True)
        broadcast_only = model.broadcast_only

        metrics = self._new_metrics()
        model.init_metrics(metrics)
        filt = self._bind_adversary(metrics)
        budget = model.bandwidth_bits
        enforce = model.enforce
        indptr, indices = topo.indptr, topo.indices
        cut = self.cut

        # Materialise each sender's CSR slice as a plain list once per run:
        # iterating a list of cached int objects beats re-decoding array("q")
        # entries on every delivery, and the delivery loop is the hot path.
        nbr_lists: list[list[int]] = [
            list(indices[indptr[i] : indptr[i + 1]]) for i in range(n)
        ]

        # Per-sender accounting collapses to precomputed neighbour counts:
        # a broadcast from ``i`` crosses the cut ``cut_counts[i]`` times and
        # uses ``virtual_counts[i]`` non-input-graph overlay links, no
        # matter what the payload is.
        cut_counts: array | None = None
        if cut is not None:
            side = [labels[i] in cut for i in range(n)]
            cut_counts = array("q", [0]) * n
            for i in range(n):
                mine = side[i]
                cut_counts[i] = sum(
                    1 for pos in range(indptr[i], indptr[i + 1]) if side[indices[pos]] != mine
                )
        virtual_counts: array | None = None
        if graph_sets is not None:
            virtual_counts = array("q", [0]) * n
            for i in range(n):
                gset = graph_sets[i]
                virtual_counts[i] = sum(
                    1
                    for pos in range(indptr[i], indptr[i + 1])
                    if labels[indices[pos]] not in gset
                )

        # The targeted fast path is built on first use, so broadcast-only
        # programs never construct it.
        targeted_collect = None

        # Run-lifetime value-keyed size cache (identical to estimate_bits on
        # every input): one dict probe per sender per round instead of one
        # recursive estimate per payload.
        sizes = PayloadSizeTable()
        measure = sizes.measure

        def collect(sender_ids: Iterable[int]) -> list[dict[Node, list[Any]] | None]:
            if tsignal[0]:
                # At least one ctx.send this round: the whole round (any
                # broadcasts included, replayed at their outbox positions)
                # goes through the shared targeted-delivery path.
                tsignal[0] = False
                nonlocal targeted_collect
                if targeted_collect is None:
                    targeted_collect = build_targeted_collect(
                        self, contexts, metrics, graph_sets, filt
                    )
                return targeted_collect(sender_ids)
            inboxes: list[dict[Node, list[Any]] | None] = [None] * n
            # Halting only changes between collection passes, so one dense
            # snapshot replaces a per-message attribute dereference.
            halted = [ctx.halted for ctx in contexts]
            transforms = filt is not None and filt.transforms

            messages = 0
            bits_total = 0
            max_bits = metrics.max_message_bits
            cut_messages = 0
            cut_bits = 0
            violations = 0
            broadcast_payloads = 0
            virtual_messages = 0

            def flush() -> None:
                flush_round_tally(
                    metrics, messages, bits_total, max_bits, cut_messages,
                    cut_bits, violations, broadcast_payloads, virtual_messages,
                )

            for src_i in sender_ids:
                ctx = contexts[src_i]
                payload = ctx._batch_payload
                if payload is NO_BROADCAST:
                    continue
                ctx._batch_payload = NO_BROADCAST
                nbrs = nbr_lists[src_i]
                deg = len(nbrs)
                if not deg:
                    # A degree-0 broadcast delivers nothing (matches the
                    # indexed engine's empty outbox: no metrics, no counter).
                    continue
                bits = measure(payload)
                messages += deg
                bits_total += deg * bits
                if bits > max_bits:
                    max_bits = bits
                if broadcast_only:
                    broadcast_payloads += 1
                if cut_counts is not None:
                    crossing = cut_counts[src_i]
                    if crossing:
                        cut_messages += crossing
                        cut_bits += crossing * bits
                if virtual_counts is not None:
                    virtual_messages += virtual_counts[src_i]
                if budget is not None and bits > budget:
                    violations += deg
                    if enforce:
                        flush()
                        src = labels[src_i]
                        raise BandwidthExceededError(
                            f"message(s) on link {src!r}->{labels[nbrs[0]]!r} use "
                            f"{bits} bits, budget is {budget} "
                            f"({model.name})"
                        )
                src = labels[src_i]
                if filt is None:
                    # One payload list shared by every receiver (read-only
                    # inbox contract; saves an allocation per delivery).
                    plist = [payload]
                    for dst_i in nbrs:
                        if halted[dst_i]:
                            continue
                        box = inboxes[dst_i]
                        if box is None:
                            inboxes[dst_i] = {src: plist}
                        else:
                            box[src] = plist
                elif not transforms:
                    # Adversary seam, branched outside the hot loop so the
                    # fault-free fast path pays nothing.  Filter before the
                    # liveness check, exactly as the indexed engine does.
                    plist = [payload]
                    for dst_i in nbrs:
                        if not filt.deliver(src, labels[dst_i], bits):
                            continue
                        if halted[dst_i]:
                            continue
                        box = inboxes[dst_i]
                        if box is None:
                            inboxes[dst_i] = {src: plist}
                        else:
                            box[src] = plist
                else:
                    # Transforming adversary: the broadcast may arrive
                    # differently at each neighbour, so the shared-payload
                    # fan-out is invalid — materialize one list per edge.
                    transform = filt.transform
                    for dst_i in nbrs:
                        dst = labels[dst_i]
                        if not filt.deliver(src, dst, bits):
                            continue
                        tpay = transform(src, dst, payload, bits)
                        if halted[dst_i]:
                            continue
                        box = inboxes[dst_i]
                        if box is None:
                            inboxes[dst_i] = {src: [tpay]}
                        else:
                            box[src] = [tpay]

            flush()
            return inboxes

        active = self._drive(
            contexts, programs, collect, metrics, max_rounds, raise_on_limit, filt
        )
        outputs = {labels[i]: contexts[i].output for i in range(n)}
        return RunResult(outputs=outputs, metrics=metrics, completed=not active)

    # ------------------------------------------------------- columnar engine
    def _run_columnar(self, max_rounds: int, raise_on_limit: bool) -> RunResult:
        """Flat-array mega-scale engine (see :mod:`repro.distributed.columnar`).

        Same shell as the batch engine — shared context construction, shared
        round loop, shared adversary binding — with the per-round collection
        pass swapped for the columnar kernels built by
        :func:`~repro.distributed.columnar.build_columnar_collect`:
        vectorised accounting over per-node count columns, a run-lifetime
        payload size table, one metrics flush per round, and lazy CSR-backed
        inbox views in place of per-delivery dict inserts.  Rounds with
        targeted traffic delegate to the shared targeted fast path
        (:func:`~repro.distributed.targeted.build_targeted_collect`),
        sharing this engine's payload size table.  Bit-for-bit identical to
        the indexed engine for every program under every communication
        model and adversary.
        """
        topo = self.topology
        n = topo.n
        labels = topo.labels
        contexts, programs, graph_sets, tsignal = self._build_contexts(batch=True)

        metrics = self._new_metrics()
        self.model.init_metrics(metrics)
        filt = self._bind_adversary(metrics)

        # Program lowering (the E23 fast path): when every program is the
        # same opted-in VectorProgram class and the run admits it, whole
        # rounds execute as array kernels with zero per-node Python calls —
        # bit-for-bit identical to the stepped path below.  ``lowered``
        # records the decision for callers (benchmarks, the E23 twins).
        lowered = (
            try_lower(self, contexts, programs, metrics, graph_sets, filt)
            if self.vectorize
            else None
        )
        self.lowered = lowered is not None
        if lowered is not None:
            active = lowered.execute(max_rounds, raise_on_limit)
        else:
            collect = build_columnar_collect(
                self, contexts, metrics, graph_sets, filt, tsignal
            )
            active = self._drive(
                contexts, programs, collect, metrics, max_rounds, raise_on_limit, filt
            )
        outputs = {labels[i]: contexts[i].output for i in range(n)}
        return RunResult(outputs=outputs, metrics=metrics, completed=not active)

    # ------------------------------------------------------ reference engine
    def _run_reference(self, max_rounds: int, raise_on_limit: bool) -> RunResult:
        """The original dict-based engine, kept as the differential oracle."""
        model = self.model
        nodes = list(self.graph.nodes())
        n = len(nodes)
        neighbors = model.reference_neighbors(self.graph)
        master = random.Random(self.seed)
        node_seeds = {v: master.randrange(2**63) for v in nodes}

        graph_neighbors: dict[Node, frozenset[Node]] | None = None
        if model.uses_overlay:
            graph_topo = self.graph.freeze()
            graph_neighbors = {
                v: graph_topo.neighbor_label_set(graph_topo.index[v]) for v in nodes
            }
        broadcast_only = model.broadcast_only

        contexts: dict[Node, NodeContext] = {}
        programs: dict[Node, NodeProgram] = {}
        for v in nodes:
            contexts[v] = NodeContext(
                node_id=v,
                neighbors=neighbors[v],
                n=n,
                rng=random.Random(node_seeds[v]),
                graph_neighbors=graph_neighbors[v] if graph_neighbors is not None else None,
                broadcast_only=broadcast_only,
                engine_label="reference",
                model_name=model.name,
            )
            programs[v] = self.program_factory(v)

        metrics = self._new_metrics()
        model.init_metrics(metrics)
        filt = self._bind_adversary(metrics)
        for v in nodes:
            programs[v].on_start(contexts[v])

        pending = self._collect_messages(contexts, metrics, graph_neighbors, filt)
        completed = all(ctx.halted for ctx in contexts.values())

        while not completed:
            if metrics.rounds >= max_rounds:
                if raise_on_limit:
                    raise RoundLimitExceededError(
                        f"simulation exceeded {max_rounds} rounds"
                    )
                break
            metrics.start_round()
            if filt is not None:
                filt.on_round_begin(
                    metrics.rounds,
                    (ctx for ctx in contexts.values() if not ctx.halted),
                )
            for v in nodes:
                ctx = contexts[v]
                if ctx.halted:
                    continue
                ctx.round = metrics.rounds
                inbox = pending.get(v, {})
                programs[v].on_round(ctx, inbox)
            pending = self._collect_messages(contexts, metrics, graph_neighbors, filt)
            completed = all(ctx.halted for ctx in contexts.values())

        outputs = {v: contexts[v].output for v in nodes}
        return RunResult(outputs=outputs, metrics=metrics, completed=completed)

    def _collect_messages(
        self,
        contexts: dict[Node, NodeContext],
        metrics: Metrics,
        graph_neighbors: dict[Node, frozenset[Node]] | None = None,
        filt: DeliveryFilter | None = None,
    ) -> dict[Node, dict[Node, list[Any]]]:
        """Reference-engine collection: per-link dicts rebuilt every round."""
        inboxes: dict[Node, dict[Node, list[Any]]] = {}
        budget = self.model.bandwidth_bits
        count_broadcasts = self.model.broadcast_only
        per_link_bits: dict[tuple[Node, Node], int] = {}
        # One identity-keyed memo per delivery pass (exactly the BitsMemo
        # validity window): a broadcast payload queued deg times is sized once.
        measure = BitsMemo().measure
        transforms = filt is not None and filt.transforms

        for src, ctx in contexts.items():
            outbox = ctx._drain_outbox()
            if outbox and count_broadcasts:
                metrics.bump("broadcast_payloads")
            src_graph_set = graph_neighbors[src] if graph_neighbors is not None else None
            for dst, payload in outbox:
                bits = measure(payload)
                crosses = self.cut is not None and ((src in self.cut) != (dst in self.cut))
                metrics.record_message(bits, crosses)
                if src_graph_set is not None and dst not in src_graph_set:
                    metrics.bump("virtual_link_messages")
                if budget is not None:
                    link = (src, dst)
                    per_link_bits[link] = per_link_bits.get(link, 0) + bits
                    if per_link_bits[link] > budget:
                        metrics.bandwidth_violations += 1
                        if self.model.enforce:
                            raise BandwidthExceededError(
                                f"message(s) on link {src!r}->{dst!r} use "
                                f"{per_link_bits[link]} bits, budget is {budget} "
                                f"({self.model.name})"
                            )
                if filt is not None:
                    if not filt.deliver(src, dst, bits):
                        continue
                    if transforms:
                        payload = filt.transform(src, dst, payload, bits)
                if contexts[dst].halted:
                    continue
                inboxes.setdefault(dst, {}).setdefault(src, []).append(payload)
        return inboxes


def run_program(
    graph: Graph | DiGraph,
    program_factory: ProgramFactory,
    model: CommunicationModel | None = None,
    seed: int | None = None,
    max_rounds: int = 10_000,
    cut: Iterable[Node] | None = None,
    engine: str = "indexed",
    adversary: Adversary | None = None,
    streaming_metrics: bool = False,
    vectorize: bool = True,
) -> RunResult:
    """Convenience wrapper: build a :class:`Simulator` and run it once."""
    sim = Simulator(
        graph,
        program_factory,
        model=model,
        seed=seed,
        cut=cut,
        engine=engine,
        adversary=adversary,
        streaming_metrics=streaming_metrics,
        vectorize=vectorize,
    )
    return sim.run(max_rounds=max_rounds)


def congest_overhead_report(result: RunResult, n: int, logn_factor: int = 32) -> dict[str, float]:
    """How far a run's messages exceed the CONGEST budget.

    The paper notes (Section 1.3) that a direct CONGEST implementation of the
    2-spanner algorithm incurs an O(Delta) overhead; this helper quantifies
    the measured ratio ``max_message_bits / budget`` for a LOCAL run.
    """
    budget = congest_budget_bits(n, logn_factor)
    return {
        "budget_bits": float(budget),
        "max_message_bits": float(result.metrics.max_message_bits),
        "overhead_factor": result.metrics.max_message_bits / budget if budget else float("inf"),
    }


__all__ = [
    "ENGINES",
    "Model",
    "ModelConfig",
    "RunResult",
    "Simulator",
    "congest_overhead_report",
    "run_program",
]
