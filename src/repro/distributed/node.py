"""Per-node execution context handed to node programs by the simulator."""

from __future__ import annotations

import random
from collections.abc import Hashable
from typing import Any

from repro.distributed.errors import MessageAdmissionError, NotANeighborError

Node = Hashable

#: Sentinel marking "no broadcast queued this round" in batch-collection
#: mode; distinct from ``None``, which is a perfectly legal payload.
NO_BROADCAST: Any = object()


class NodeContext:
    """Everything a vertex may legitimately use in its communication model.

    A node initially knows: its own identifier, the identifiers of its
    input-graph neighbours (``graph_neighbors``), the identifiers of the
    vertices it may *message* (``neighbors`` — identical to
    ``graph_neighbors`` except under overlay models such as the Congested
    Clique, where every other vertex is reachable), the number of vertices
    ``n`` (the standard polynomial upper bound assumption), and a private
    source of randomness.  All other knowledge must arrive through messages.

    Under a broadcast-only model (broadcast-CONGEST) targeted sends are
    rejected and at most one broadcast per round is admitted.  That is the
    only *semantic* send restriction: it belongs to the communication
    model, never to an engine — every engine accepts every admission-legal
    program.

    Under a batch-collecting simulator engine (``batch=True`` — the
    ``batch`` and ``columnar`` engines) the context collects traffic in
    struct-of-arrays form instead of materialising one ``(dst, payload)``
    tuple per message: the round's single broadcast payload is interned by
    reference (one broadcast per round is admitted regardless of the
    communication model — those engines intern the payload once per
    sender), and targeted sends append into the per-sender grouped outbox
    (``_t_dsts`` / ``_t_pays`` parallel columns) consumed by the shared
    targeted-delivery fast path (:mod:`repro.distributed.targeted`).
    ``_t_bpos`` records where in that stream the broadcast was issued, so
    mixed rounds replay in exactly the indexed engine's outbox order.
    ``engine_label`` and ``model_name`` name the engine and model in
    admission errors.

    The class is slotted: contexts sit on every engine's per-round hot path
    (``round``/``halted`` reads in the driver, ``_batch_payload`` and the
    targeted columns in the batch engines), and at E20 scale a million
    instances exist at once.
    """

    __slots__ = (
        "node_id",
        "neighbors",
        "graph_neighbors",
        "n",
        "_rng",
        "_rng_seed",
        "round",
        "halted",
        "output",
        "_broadcast_only",
        "_batch",
        "_engine_label",
        "_model_name",
        "_last_broadcast_round",
        "_outbox",
        "_batch_payload",
        "_t_dsts",
        "_t_pays",
        "_t_bpos",
        "_t_signal",
    )

    def __init__(
        self,
        node_id: Node,
        neighbors: frozenset[Node],
        n: int,
        rng: random.Random | int,
        graph_neighbors: frozenset[Node] | None = None,
        broadcast_only: bool = False,
        batch: bool = False,
        engine_label: str = "batch",
        model_name: str = "LOCAL",
    ) -> None:
        self.node_id = node_id
        self.neighbors = neighbors
        self.graph_neighbors = neighbors if graph_neighbors is None else graph_neighbors
        self.n = n
        # ``rng`` may be a ready random.Random or a bare seed.  A seed is
        # materialised lazily on first ``ctx.rng`` access: a Mersenne
        # Twister instance carries ~2.5 KB of state, so at E20 scale eagerly
        # building one per vertex costs gigabytes of RSS and seconds of
        # first-touch page faults that programs which never draw (the whole
        # flood-max family) would pay for nothing.  The lazily built stream
        # is bit-for-bit the eager one — same seed, same Random.
        if isinstance(rng, random.Random):
            self._rng: random.Random | None = rng
            self._rng_seed = None
        else:
            self._rng = None
            self._rng_seed = rng
        self.round = 0
        self.halted = False
        self.output: Any = None
        self._broadcast_only = broadcast_only
        self._batch = batch
        self._engine_label = engine_label
        self._model_name = model_name
        self._last_broadcast_round = -1
        self._outbox: list[tuple[Node, Any]] = []
        self._batch_payload: Any = NO_BROADCAST
        # Per-sender grouped outbox of the batch-collecting engines:
        # parallel destination/payload columns (struct of arrays), the
        # broadcast's interleave position, and the engine's shared
        # round-had-targeted-traffic signal cell (a one-element list, so
        # flagging it is one store — no per-round scan over all contexts).
        # The cell is never None — batch engines overwrite it with their
        # shared cell, and the private default keeps the send hot path
        # branch-free for directly constructed contexts.
        self._t_dsts: list[Node] = []
        self._t_pays: list[Any] = []
        self._t_bpos = -1
        self._t_signal: list[bool] = [False]

    @property
    def rng(self) -> random.Random:
        """The node's private randomness source (materialised on first use)."""
        rng = self._rng
        if rng is None:
            rng = self._rng = random.Random(self._rng_seed)
        return rng

    # ------------------------------------------------------------------ sends
    def send(self, dst: Node, payload: Any) -> None:
        """Queue ``payload`` for delivery to neighbour ``dst`` next round."""
        if self._broadcast_only:
            raise MessageAdmissionError(
                f"node {self.node_id!r}: targeted send is not admitted by the "
                f"broadcast-only model {self._model_name} (running on the "
                f"{self._engine_label} engine); use broadcast()"
            )
        if dst not in self.neighbors:
            raise NotANeighborError(
                f"node {self.node_id!r} tried to message non-neighbour {dst!r}"
            )
        if self._batch:
            self._t_dsts.append(dst)
            self._t_pays.append(payload)
            self._t_signal[0] = True
            return
        self._outbox.append((dst, payload))

    def broadcast(self, payload: Any) -> None:
        """Queue ``payload`` for every (communication) neighbour."""
        # Round-based, not outbox-based, so the one-broadcast-per-round
        # contract also holds for degree-0 nodes (empty outboxes).  The
        # batch-collecting branch comes first and reads ``_batch`` once:
        # this method runs once per node per round at E18/E20 scale.
        if self._batch:
            if self._last_broadcast_round == self.round:
                raise self._double_broadcast_error()
            self._last_broadcast_round = self.round
            self._batch_payload = payload
            self._t_bpos = len(self._t_dsts)
            return
        if self._broadcast_only:
            if self._last_broadcast_round == self.round:
                raise self._double_broadcast_error()
            self._last_broadcast_round = self.round
        self._outbox.extend((dst, payload) for dst in self.neighbors)

    def _double_broadcast_error(self) -> MessageAdmissionError:
        """The admission error for a second broadcast in one round.

        Broadcast-only models take precedence in the message text, exactly
        as before the batch-collecting engines existed.
        """
        if self._broadcast_only:
            return MessageAdmissionError(
                f"node {self.node_id!r}: the broadcast-only model "
                f"{self._model_name} admits one identical payload to all "
                f"neighbours per round"
            )
        return MessageAdmissionError(
            f"node {self.node_id!r}: the {self._engine_label} engine "
            f"admits one broadcast per node per round (its fast path "
            f"interns the round's payload once per sender)"
        )

    # ----------------------------------------------------------------- control
    def set_output(self, value: Any) -> None:
        """Record this node's output (its share of the global solution)."""
        self.output = value

    def halt(self) -> None:
        """Stop participating; the node neither sends nor receives afterwards."""
        self.halted = True

    # --------------------------------------------------------------- internals
    def _drain_outbox(self) -> list[tuple[Node, Any]]:
        out = self._outbox
        self._outbox = []
        return out
