"""Per-node execution context handed to node programs by the simulator."""

from __future__ import annotations

import random
from collections.abc import Hashable
from typing import Any

from repro.distributed.errors import MessageAdmissionError, NotANeighborError

Node = Hashable

#: Sentinel marking "no broadcast queued this round" in batch-collection
#: mode; distinct from ``None``, which is a perfectly legal payload.
NO_BROADCAST: Any = object()


class NodeContext:
    """Everything a vertex may legitimately use in its communication model.

    A node initially knows: its own identifier, the identifiers of its
    input-graph neighbours (``graph_neighbors``), the identifiers of the
    vertices it may *message* (``neighbors`` — identical to
    ``graph_neighbors`` except under overlay models such as the Congested
    Clique, where every other vertex is reachable), the number of vertices
    ``n`` (the standard polynomial upper bound assumption), and a private
    source of randomness.  All other knowledge must arrive through messages.

    Under a broadcast-only model (broadcast-CONGEST) targeted sends are
    rejected and at most one broadcast per round is admitted.

    Under the ``batch`` simulator engine (``batch=True``) the context
    collects the round's single broadcast payload by reference instead of
    materialising one ``(dst, payload)`` tuple per neighbour; targeted sends
    are rejected with a clear error (the batch fast path is defined only for
    broadcast traffic) and one broadcast per round is admitted regardless of
    the communication model.
    """

    def __init__(
        self,
        node_id: Node,
        neighbors: frozenset[Node],
        n: int,
        rng: random.Random,
        graph_neighbors: frozenset[Node] | None = None,
        broadcast_only: bool = False,
        batch: bool = False,
    ) -> None:
        self.node_id = node_id
        self.neighbors = neighbors
        self.graph_neighbors = neighbors if graph_neighbors is None else graph_neighbors
        self.n = n
        self.rng = rng
        self.round = 0
        self.halted = False
        self.output: Any = None
        self._broadcast_only = broadcast_only
        self._batch = batch
        self._last_broadcast_round = -1
        self._outbox: list[tuple[Node, Any]] = []
        self._batch_payload: Any = NO_BROADCAST

    # ------------------------------------------------------------------ sends
    def send(self, dst: Node, payload: Any) -> None:
        """Queue ``payload`` for delivery to neighbour ``dst`` next round."""
        if self._broadcast_only:
            raise MessageAdmissionError(
                f"node {self.node_id!r}: targeted send is not admitted in a "
                f"broadcast-only model; use broadcast()"
            )
        if self._batch:
            raise MessageAdmissionError(
                f"node {self.node_id!r}: targeted send is not supported by the "
                f"batch engine, which fast-paths broadcast-only traffic; run "
                f"this program under engine='indexed' (or use broadcast())"
            )
        if dst not in self.neighbors:
            raise NotANeighborError(
                f"node {self.node_id!r} tried to message non-neighbour {dst!r}"
            )
        self._outbox.append((dst, payload))

    def broadcast(self, payload: Any) -> None:
        """Queue ``payload`` for every (communication) neighbour."""
        if self._broadcast_only or self._batch:
            # Round-based, not outbox-based, so the one-broadcast-per-round
            # contract also holds for degree-0 nodes (empty outboxes).
            if self._last_broadcast_round == self.round:
                if self._broadcast_only:
                    raise MessageAdmissionError(
                        f"node {self.node_id!r}: broadcast-only models admit one "
                        f"identical payload to all neighbours per round"
                    )
                raise MessageAdmissionError(
                    f"node {self.node_id!r}: the batch engine admits one "
                    f"broadcast per node per round (its fast path interns the "
                    f"round's payload once per sender)"
                )
            self._last_broadcast_round = self.round
        if self._batch:
            self._batch_payload = payload
            return
        self._outbox.extend((dst, payload) for dst in self.neighbors)

    # ----------------------------------------------------------------- control
    def set_output(self, value: Any) -> None:
        """Record this node's output (its share of the global solution)."""
        self.output = value

    def halt(self) -> None:
        """Stop participating; the node neither sends nor receives afterwards."""
        self.halted = True

    # --------------------------------------------------------------- internals
    def _drain_outbox(self) -> list[tuple[Node, Any]]:
        out = self._outbox
        self._outbox = []
        return out
