"""Per-node execution context handed to node programs by the simulator."""

from __future__ import annotations

import random
from collections.abc import Hashable
from typing import Any

from repro.distributed.errors import NotANeighborError

Node = Hashable


class NodeContext:
    """Everything a vertex may legitimately use in the LOCAL / CONGEST models.

    A node initially knows: its own identifier, the identifiers of its
    neighbours, the number of vertices ``n`` (the standard polynomial upper
    bound assumption), and a private source of randomness.  All other
    knowledge must arrive through messages.
    """

    def __init__(
        self,
        node_id: Node,
        neighbors: frozenset[Node],
        n: int,
        rng: random.Random,
    ) -> None:
        self.node_id = node_id
        self.neighbors = neighbors
        self.n = n
        self.rng = rng
        self.round = 0
        self.halted = False
        self.output: Any = None
        self._outbox: list[tuple[Node, Any]] = []

    # ------------------------------------------------------------------ sends
    def send(self, dst: Node, payload: Any) -> None:
        """Queue ``payload`` for delivery to neighbour ``dst`` next round."""
        if dst not in self.neighbors:
            raise NotANeighborError(
                f"node {self.node_id!r} tried to message non-neighbour {dst!r}"
            )
        self._outbox.append((dst, payload))

    def broadcast(self, payload: Any) -> None:
        """Queue ``payload`` for every neighbour."""
        self._outbox.extend((dst, payload) for dst in self.neighbors)

    # ----------------------------------------------------------------- control
    def set_output(self, value: Any) -> None:
        """Record this node's output (its share of the global solution)."""
        self.output = value

    def halt(self) -> None:
        """Stop participating; the node neither sends nor receives afterwards."""
        self.halted = True

    # --------------------------------------------------------------- internals
    def _drain_outbox(self) -> list[tuple[Node, Any]]:
        out = self._outbox
        self._outbox = []
        return out
