"""Program lowering: whole-round vectorized node-program kernels (E23).

The columnar engine (PR 6) made delivery and accounting flat-array work,
but every round still re-enters Python once per node: ``on_round`` runs
``n`` times per round, so a mega-scale flood-max run spends most of its
wall time in interpreter dispatch, not physics.  This module removes that
loop for programs that opt in.

A lowerable program class implements the **VectorProgram protocol**:

* :meth:`VectorProgram.vector_kernel` — a classmethod receiving every
  program instance of the run plus the :class:`EngineView`; it validates
  that the instances are homogeneous (same configuration, untouched
  per-node state) and returns a :class:`VectorKernel`, or ``None`` to
  decline;
* the kernel declares its flat column state (:meth:`VectorKernel.state_columns`)
  and executes whole rounds (:meth:`VectorKernel.vector_round`) against the
  view's CSR neighbour arrays and shared payload columns — e.g. flood-max
  becomes one ``np.maximum.reduceat`` plus a halt-mask update per round;
* the program's ordinary ``on_round`` is the **exact per-node fallback**:
  whenever lowering is declined the columnar engine runs the stepped path,
  bit-for-bit identically.

The columnar engine attempts lowering (:func:`try_lower`) when

* every program instance is the *exact same* opted-in class,
* the delivery filter is absent or non-transforming (drop and crash
  adversaries are supported through the existing per-sender
  ``deliver_mask`` seam; the corruption adversary forces the fallback),
* every vertex label is an exact ``int`` fitting 64 bits (the label type
  of every shipped graph family).

Parity contract: a lowered run is **bit-for-bit identical** to the stepped
columnar run (and hence to the indexed oracle) — outputs,
``Metrics.as_dict()``, ``bits_per_round``, fault counters, enforcement
raises — under all four communication models and under drop/crash
adversaries.  The load-bearing details:

* accounting reuses the columnar engine's kernels verbatim: mask
  dot-products over per-node degree/cut/overlay count columns, one
  :class:`~repro.distributed.metrics.RoundTally` flush per collection pass
  (including the round-0 pass and the final empty pass), absolute
  ``max_message_bits`` store, and the batch-ordered enforcement walk with
  the batch engine's partially-flushed metrics and message text;
* payload sizes come from closed forms (:func:`int_payload_bits`,
  :func:`repetition_frame_bits`) pinned by tests to equal
  :func:`~repro.distributed.encoding.estimate_bits` on every value the
  kernels emit — ``estimate_bits`` itself never runs inside
  ``vector_round`` (reprolint REP006 enforces this);
* the master RNG is consumed by the ordinary context construction before
  lowering is attempted, so seeded behaviour matches the stepped engines;
* adversary seams fire exactly like the stepped columnar engine: the
  filter sees each round begin before any state updates (crash schedules
  force-halt contexts there), and ``deliver_mask`` is called once per
  sender, in ascending sender order, with the sorted neighbour label row;
* NumPy is an optional accelerator, never a dependency: with NumPy absent
  or disabled (``REPRO_DISABLE_NUMPY``) the stdlib-``array`` kernels
  produce identical results — slower, never different.
"""

from __future__ import annotations

import os
from array import array
from itertools import chain
from typing import TYPE_CHECKING, Any, Callable

from repro.distributed.columnar import _crossing_counts, _virtual_counts
from repro.distributed.errors import BandwidthExceededError, RoundLimitExceededError
from repro.distributed.metrics import Metrics, RoundTally, flush_round_tally

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.distributed.adversary import DeliveryFilter
    from repro.distributed.node import NodeContext
    from repro.distributed.program import NodeProgram
    from repro.distributed.simulator import Simulator

# NumPy is an optional accelerator, never a dependency: absent (or disabled
# through the environment) the stdlib kernels take over with identical
# results.  The module global is re-read on every run so tests can
# monkeypatch it to exercise the fallback.
if os.environ.get("REPRO_DISABLE_NUMPY"):  # pragma: no cover - env-driven
    _np = None
else:
    try:
        import numpy as _np
    except ImportError:  # pragma: no cover - depends on environment
        _np = None

#: int64 bounds: labels outside this range decline lowering, and the
#: minimum doubles as the "nothing heard" fold identity (safe because the
#: fold is a pure max — an identity-valued *delivered* label folds to the
#: identity, and ``heard > best`` is then false exactly as in the stepped
#: per-node fold).
INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1


def int_payload_bits(value: int) -> int:
    """Closed-form wire size of an exact-``int`` broadcast payload.

    Equals :func:`~repro.distributed.encoding.estimate_bits` on every
    ``int``: magnitude bits (at least one, so 0 is representable) plus a
    sign bit.  The lowered kernels use this (cached per distinct value)
    instead of calling ``estimate_bits`` per sender per round.
    """
    bits = value.bit_length()
    return (bits if bits else 1) + 1


def repetition_frame_bits(value: int, copies: int) -> int:
    """Closed-form wire size of a ``copies``-tuple repetition frame.

    Equals :func:`~repro.distributed.encoding.estimate_bits` on
    ``(value,) * copies``: sequence framing plus per-item framing and the
    item's own size — the payload class of
    :class:`~repro.core.robust_coding.RedundantFloodMaxProgram`.
    """
    return 2 + copies * (2 + int_payload_bits(value))


def _np_payload_bits(np, values, copies: int | None):
    """Vectorized closed forms over a *nonnegative* ``int64`` value column.

    Bit-for-bit :func:`int_payload_bits` (or :func:`repetition_frame_bits`
    with ``copies``) per entry: the bit length is accumulated with at most
    64 whole-column shift passes, so no float log is ever trusted near a
    power-of-two boundary.
    """
    x = values.copy()
    bit_length = np.zeros(x.shape[0], dtype=np.int64)
    nonzero = x > 0
    while nonzero.any():
        bit_length += nonzero
        x >>= 1
        nonzero = x > 0
    payload = np.where(bit_length == 0, 1, bit_length) + 1
    if copies is None:
        return payload
    return 2 + copies * (2 + payload)


class VectorProgram:
    """Opt-in mixin: a node program class that can lower whole rounds.

    Subclasses override :meth:`vector_kernel`.  The columnar engine calls
    it once per run (after building contexts and binding the adversary)
    when every program instance is the exact same class; returning ``None``
    declines lowering and the run proceeds on the stepped per-node path —
    the program's ``on_round`` is the exact fallback, so declining is
    always safe.
    """

    __slots__ = ()

    @classmethod
    def vector_kernel(
        cls, programs: "list[NodeProgram]", view: "EngineView"
    ) -> "VectorKernel | None":
        """Return a :class:`VectorKernel` for ``programs``, or ``None``.

        Implementations must verify homogeneity — identical configuration
        across instances and untouched per-node state — because the kernel
        replaces every instance's execution wholesale.  Subclasses that do
        not re-implement the protocol must be declined here (guard on
        ``cls``), never silently lowered with the parent's semantics.
        """
        return None


class VectorKernel:
    """One lowered run's whole-round executor state (program semantics).

    A kernel owns the program-side columns (e.g. flood-max's ``best``) and
    implements :meth:`on_start` and :meth:`vector_round`; the
    :class:`EngineView` owns everything engine-side — delivery, adversary
    masks, metrics accounting, context synchronisation.  Kernels must not
    call :func:`~repro.distributed.encoding.estimate_bits` or loop per
    message inside :meth:`vector_round` (reprolint REP006 treats these
    functions as hot paths); payload sizes come from closed forms cached
    per distinct value.
    """

    __slots__ = ()

    def state_columns(self) -> dict[str, Any]:
        """Name -> flat column mapping of this kernel's per-node state."""
        raise NotImplementedError

    def on_start(self, view: "EngineView") -> None:
        """Vectorized ``on_start``: seed columns, queue round-0 broadcasts."""
        raise NotImplementedError

    def vector_round(self, view: "EngineView") -> None:
        """Execute one whole round: fold, update state, retire, re-queue."""
        raise NotImplementedError


class EngineView:
    """Engine-side state of one lowered columnar run.

    Exposes to kernels: the CSR topology (``rows``, ``indptr``,
    ``degrees``, ``labels``), the NumPy module snapshot (``np``, possibly
    ``None``), the liveness column (``alive`` plus ``alive_np``), the fold
    primitive :meth:`fold_max`, the broadcast queue
    (:meth:`queue_broadcast_alive` over the ``best_bits`` column) and the
    retirement seam :meth:`retire` (the only per-node Python in a lowered
    run: each node is touched once when it halts).  Everything else —
    accounting kernels, adversary masks, the round loop — is internal.
    """

    __slots__ = (
        "sim",
        "contexts",
        "metrics",
        "graph_sets",
        "filt",
        "np",
        "n",
        "labels",
        "index",
        "rows",
        "indptr",
        "indices",
        "degrees",
        "n_connected",
        "alive",
        "alive_count",
        "sent",
        "sent_count",
        "bits_col",
        "heard_col",
        "senders_list",
        "round",
        "cut_counts",
        "virtual_counts",
        "mask_rows",
        "mask_flat",
        "tally",
        "_kernel",
        "_ninf_template",
        "_zero_bytes",
        "_zero_arcs",
        "alive_np",
        "sent_np",
        "bits_np",
        "deg_np",
        "cut_np",
        "virt_np",
        "nonempty_np",
        "all_rows_np",
        "reduce_idx",
        "t_idx",
    )

    def __init__(
        self,
        sim: "Simulator",
        contexts: "list[NodeContext]",
        metrics: Metrics,
        graph_sets,
        filt: "DeliveryFilter | None",
    ) -> None:
        np = _np  # snapshot per run; tests monkeypatch the module global
        self.sim = sim
        self.contexts = contexts
        self.metrics = metrics
        self.graph_sets = graph_sets
        self.filt = filt
        self.np = np
        topo = sim.topology
        n = topo.n
        self.n = n
        self.labels = topo.labels
        self.index = topo.index
        self.rows = topo.sorted_neighbor_rows()
        self.indptr = topo.indptr
        self.indices = topo.indices
        self.degrees = list(topo.degrees)
        self.n_connected = sum(1 for deg in self.degrees if deg)
        self.alive = bytearray(n)
        self.alive_count = 0
        self.sent = bytearray(n)
        self.sent_count = 0
        self.bits_col = array("q", [0]) * n
        self.heard_col = array("q", [0]) * n
        self.senders_list: list[int] | None = None
        self.round = 0
        cut = sim.cut
        self.cut_counts = (
            _crossing_counts(topo, [self.labels[i] in cut for i in range(n)])
            if cut is not None
            else None
        )
        self.virtual_counts = (
            _virtual_counts(topo, graph_sets) if graph_sets is not None else None
        )
        self.mask_rows: list[list[Any]] | None = None
        self.mask_flat: bytearray | None = None
        self.tally = RoundTally()
        self._kernel: VectorKernel | None = None
        self._ninf_template = array("q", [INT64_MIN]) * n
        self._zero_bytes = bytes(n)
        self._zero_arcs = bytes(self.indptr[n])
        if filt is not None:
            self.mask_rows = [[self.labels[j] for j in row] for row in self.rows]
            self.mask_flat = bytearray(self.indptr[n])

        self.alive_np = self.sent_np = self.bits_np = self.deg_np = None
        self.cut_np = self.virt_np = self.nonempty_np = None
        self.all_rows_np = self.reduce_idx = self.t_idx = None
        if np is not None:
            self.deg_np = np.frombuffer(topo.degrees, dtype=np.int64)
            self.bits_np = np.frombuffer(self.bits_col, dtype=np.int64)
            self.alive_np = np.frombuffer(self.alive, dtype=np.uint8).view(np.bool_)
            self.sent_np = np.frombuffer(self.sent, dtype=np.uint8).view(np.bool_)
            self.nonempty_np = self.deg_np > 0
            if self.cut_counts is not None:
                self.cut_np = np.frombuffer(self.cut_counts, dtype=np.int64)
            if self.virtual_counts is not None:
                self.virt_np = np.frombuffer(self.virtual_counts, dtype=np.int64)
            m2 = self.indptr[n]
            self.all_rows_np = np.fromiter(
                chain.from_iterable(self.rows), dtype=np.int64, count=m2
            )
            if m2:
                self.reduce_idx = np.minimum(
                    np.fromiter((self.indptr[i] for i in range(n)), np.int64, n),
                    m2 - 1,
                )
            if filt is not None and m2:
                # Receiver-side arc p (receiver i, neighbour j) maps to
                # sender-side arc t_idx[p] (sender j's sorted row, entry i):
                # lexsort by (neighbour, receiver) enumerates arcs in
                # sender-major order, i.e. exactly the deliver_mask layout.
                rec = np.repeat(
                    np.arange(n, dtype=np.int64),
                    np.diff(np.asarray(self.indptr, dtype=np.int64)),
                )
                perm = np.lexsort((rec, self.all_rows_np))
                t_idx = np.empty(m2, dtype=np.int64)
                t_idx[perm] = np.arange(m2, dtype=np.int64)
                self.t_idx = t_idx

    # ------------------------------------------------------------ kernel API
    def fold_max(self, bits=None):
        """Per-receiver max over the payloads delivered this round.

        Returns ``None`` when no traffic is pending; otherwise a column
        (NumPy ``int64`` array or stdlib ``array("q")``) whose entry ``i``
        is the max payload delivered to receiver ``i``, with
        :data:`INT64_MIN` marking "nothing delivered".  Entries of
        zero-degree receivers are unspecified — gate on degree.  The
        delivered set honours the adversary masks computed by the previous
        collection pass, so decisions and fault counters match the stepped
        engine exactly.

        With ``bits`` (a per-sender wire-size NumPy column; NumPy path
        only) the return is a ``(heard, heard_bits)`` pair: the bits column
        is folded through the same delivery mask, with 0 marking "nothing
        delivered".  Valid only when wire size is monotone nondecreasing in
        payload value (all-nonnegative payloads): then the folded max bits
        *is* the wire size of the folded max payload, and kernels can
        refresh sizes with no per-node Python at all.
        """
        if not self.sent_count:
            return None
        np = self.np
        best = self._kernel.payload_column()
        if np is not None:
            if self.all_rows_np is None or not len(self.all_rows_np):
                return None
            gathered = best[self.all_rows_np]
            dmask = None
            if self.filt is not None:
                dmask = (
                    np.frombuffer(self.mask_flat, dtype=np.uint8)
                    .view(np.bool_)[self.t_idx]
                )
            elif self.sent_count != self.n_connected:
                dmask = self.sent_np[self.all_rows_np]
            vals = gathered if dmask is None else np.where(dmask, gathered, INT64_MIN)
            heard = np.maximum.reduceat(vals, self.reduce_idx)
            if bits is None:
                return heard
            gathered_bits = bits[self.all_rows_np]
            if dmask is not None:
                gathered_bits = np.where(dmask, gathered_bits, 0)
            return heard, np.maximum.reduceat(gathered_bits, self.reduce_idx)
        heard = self.heard_col
        heard[:] = self._ninf_template
        rows = self.rows
        senders = self._senders()
        if self.filt is None:
            for j in senders:
                v = best[j]
                for i in rows[j]:
                    if v > heard[i]:
                        heard[i] = v
        else:
            mask = self.mask_flat
            indptr = self.indptr
            for j in senders:
                v = best[j]
                base = indptr[j]
                row = rows[j]
                for pos in range(len(row)):
                    if mask[base + pos]:
                        i = row[pos]
                        if v > heard[i]:
                            heard[i] = v
        return heard

    def retire(self, node_ids: list[int], outputs: list[Any]) -> None:
        """Halt ``node_ids`` voluntarily with ``outputs`` (context sync).

        The one per-node Python seam of a lowered run: each node passes
        through here exactly once, when it halts.  Crash-stopped nodes
        never do (the adversary halts their contexts directly and they
        keep output ``None``, exactly like the stepped engines).
        """
        contexts = self.contexts
        alive = self.alive
        for i, out in zip(node_ids, outputs):
            ctx = contexts[i]
            ctx.output = out
            ctx.halted = True
            alive[i] = 0
        self.alive_count -= len(node_ids)

    def queue_broadcast_alive(self) -> None:
        """Queue a broadcast from every live node for the next delivery pass.

        The payload column is the kernel's (``payload_column``); only the
        sender flags are computed here.  Zero-degree broadcasters are
        excluded from the sender set — the stepped engines treat their
        broadcasts as no-ops (no metrics, no payload counter).
        """
        np = self.np
        if np is not None:
            self.sent_np[:] = self.alive_np & self.nonempty_np
            self.sent_count = int(np.count_nonzero(self.sent_np))
            self.senders_list = None
            return
        sent = self.sent
        sent[:] = self._zero_bytes
        alive = self.alive
        degrees = self.degrees
        senders: list[int] = []
        append = senders.append
        for i in range(self.n):
            if alive[i] and degrees[i]:
                sent[i] = 1
                append(i)
        self.senders_list = senders
        self.sent_count = len(senders)

    def clear_broadcasts(self) -> None:
        """Queue nothing for the next delivery pass (terminal rounds)."""
        self.sent[:] = self._zero_bytes
        self.sent_count = 0
        self.senders_list = []

    # ------------------------------------------------------------- internals
    def _senders(self) -> list[int]:
        """Ascending sender indices of the queued pass (built lazily)."""
        senders = self.senders_list
        if senders is None:
            sent = self.sent
            senders = self.senders_list = [i for i in range(self.n) if sent[i]]
        return senders

    def _accumulate_ordered(self, senders: list[int]) -> tuple:
        """Batch-order accounting walk; raises on an enforced violation.

        A verbatim twin of the stepped columnar engine's ordered kernel, so
        enforcement raises carry bit-for-bit the same partially-flushed
        metrics and message text.
        """
        sim = self.sim
        model = sim.model
        budget = model.bandwidth_bits
        enforce = model.enforce
        broadcast_only = model.broadcast_only
        metrics = self.metrics
        tally = self.tally
        bits_col = self.bits_col
        degrees = self.degrees
        cut_counts = self.cut_counts
        virtual_counts = self.virtual_counts
        labels = self.labels
        indptr, indices = self.indptr, self.indices
        messages = 0
        bits_total = 0
        max_bits = tally.counts[RoundTally.MAX_BITS]
        cut_messages = 0
        cut_bits = 0
        violations = 0
        virtual = 0
        for k in range(len(senders)):
            src_i = senders[k]
            bits = bits_col[src_i]
            deg = degrees[src_i]
            messages += deg
            bits_total += deg * bits
            if bits > max_bits:
                max_bits = bits
            if cut_counts is not None:
                crossing = cut_counts[src_i]
                if crossing:
                    cut_messages += crossing
                    cut_bits += crossing * bits
            if virtual_counts is not None:
                virtual += virtual_counts[src_i]
            if budget is not None and bits > budget:
                violations += deg
                if enforce:
                    flush_round_tally(
                        metrics, messages, bits_total, max_bits, cut_messages,
                        cut_bits, violations,
                        (k + 1) if broadcast_only else 0, virtual,
                    )
                    src = labels[src_i]
                    first = labels[indices[indptr[src_i]]]
                    raise BandwidthExceededError(
                        f"message(s) on link {src!r}->{first!r} use "
                        f"{bits} bits, budget is {budget} "
                        f"({model.name})"
                    )
        return messages, bits_total, max_bits, cut_messages, cut_bits, violations, virtual

    def _collect(self) -> None:
        """One delivery pass: accounting flush plus adversary mask capture.

        The lowered twin of the columnar engine's ``collect``: same
        accounting kernels over the same columns, same unconditional
        per-pass tally flush, same per-sender ``deliver_mask`` seam (in
        ascending sender order, sorted label rows) — only inbox
        materialisation is replaced by the flat delivery mask
        :meth:`fold_max` consumes next round.
        """
        np = self.np
        metrics = self.metrics
        tally = self.tally
        model = self.sim.model
        budget = model.bandwidth_bits
        tally.reset(metrics.max_message_bits)
        counts = tally.counts
        scount = self.sent_count
        if scount:
            if np is not None:
                mask = self.sent_np
                bits_np = self.bits_np
                deg_np = self.deg_np
                if budget is not None:
                    over = (bits_np > budget) & mask
                    if over.any():
                        if model.enforce:
                            self._accumulate_ordered(self._senders())  # raises
                        counts[RoundTally.VIOLATIONS] = int(deg_np.dot(over))
                counts[RoundTally.MESSAGES] = int(deg_np.dot(mask))
                weighted = bits_np * deg_np
                counts[RoundTally.BITS] = int(weighted.dot(mask))
                max_bits = int((bits_np * mask).max())
                if max_bits > counts[RoundTally.MAX_BITS]:
                    counts[RoundTally.MAX_BITS] = max_bits
                if self.cut_np is not None:
                    counts[RoundTally.CUT_MESSAGES] = int(self.cut_np.dot(mask))
                    counts[RoundTally.CUT_BITS] = int((bits_np * self.cut_np).dot(mask))
                if self.virt_np is not None:
                    counts[RoundTally.VIRTUAL] = int(self.virt_np.dot(mask))
            else:
                (
                    counts[RoundTally.MESSAGES], counts[RoundTally.BITS],
                    counts[RoundTally.MAX_BITS], counts[RoundTally.CUT_MESSAGES],
                    counts[RoundTally.CUT_BITS], counts[RoundTally.VIOLATIONS],
                    counts[RoundTally.VIRTUAL],
                ) = self._accumulate_ordered(self._senders())
            if model.broadcast_only:
                counts[RoundTally.BROADCASTS] = scount
        tally.flush(metrics)

        filt = self.filt
        if filt is not None:
            mask_flat = self.mask_flat
            mask_flat[:] = self._zero_arcs
            if scount:
                deliver_mask = filt.deliver_mask
                labels = self.labels
                mask_rows = self.mask_rows
                bits_col = self.bits_col
                indptr = self.indptr
                for src_i in self._senders():
                    row_mask = deliver_mask(
                        labels[src_i], mask_rows[src_i], bits_col[src_i]
                    )
                    base = indptr[src_i]
                    mask_flat[base : base + len(row_mask)] = row_mask

    def _active_contexts(self):
        """Still-active contexts in ascending index order (adversary hook)."""
        contexts = self.contexts
        alive = self.alive
        return (contexts[i] for i in range(self.n) if alive[i])

    def _sync_crashes(self) -> None:
        """Fold force-halts from ``on_round_begin`` back into the columns."""
        contexts = self.contexts
        alive = self.alive
        crashed = 0
        for i in range(self.n):
            if alive[i] and contexts[i].halted:
                alive[i] = 0
                crashed += 1
        self.alive_count -= crashed

    def execute(self, max_rounds: int, raise_on_limit: bool) -> list[int]:
        """Run the lowered round loop; returns the final active index list.

        A twin of :meth:`~repro.distributed.simulator.Simulator._drive`:
        start programs (vectorized), collect round-0 traffic, then
        alternate whole-round kernels with delivery passes until every
        node halts or the round limit trips — same limit semantics, same
        per-pass metrics flush cadence, same adversary hook placement.
        """
        kernel = self._kernel
        metrics = self.metrics
        filt = self.filt
        kernel.on_start(self)
        self._collect()
        while self.alive_count:
            if metrics.rounds >= max_rounds:
                if raise_on_limit:
                    raise RoundLimitExceededError(
                        f"simulation exceeded {max_rounds} rounds"
                    )
                break
            metrics.start_round()
            self.round = metrics.rounds
            if filt is not None:
                filt.on_round_begin(self.round, self._active_contexts())
                self._sync_crashes()
            kernel.vector_round(self)
            self._collect()
        if not self.alive_count:
            return []
        alive = self.alive
        return [i for i in range(self.n) if alive[i]]


class MaxFloodKernel(VectorKernel):
    """Whole-round kernel of the max-flood program family.

    Covers the three shipped lowerable programs — the state is one
    ``best`` label column (plus a ``stable`` counter column for the
    patience-driven variants), a round is one fold
    (:meth:`EngineView.fold_max`), a masked column update and a halt-mask
    check:

    * ``rounds=R`` — :class:`~repro.core.flood_max.FloodMaxProgram`:
      every live node broadcasts each round and all halt together at
      round ``R`` with their current best as output;
    * ``patience=P`` — :class:`~repro.core.flood_max.RobustFloodMaxProgram`:
      a node halts (without broadcasting that round) once its best has
      been stable for ``P`` consecutive rounds;
    * ``copies=k`` with ``patience`` —
      :class:`~repro.core.robust_coding.RedundantFloodMaxProgram`: same
      dynamics, but payloads are ``k``-repetition frames, so only the
      wire-size closed form changes (an undamaged frame majority-decodes
      to its value, and the drop/crash adversaries the lowered path
      admits never damage frames).
    """

    __slots__ = (
        "rounds", "patience", "copies", "best", "stable", "_size_cache", "_monotone",
    )

    def __init__(
        self,
        rounds: int | None = None,
        patience: int | None = None,
        copies: int | None = None,
    ) -> None:
        if (rounds is None) == (patience is None):
            raise ValueError("exactly one of rounds/patience must be given")
        self.rounds = rounds
        self.patience = patience
        self.copies = copies
        self.best: Any = None
        self.stable: Any = None
        self._size_cache: dict[int, int] = {}
        # All-nonnegative labels make wire size monotone in the payload, so
        # sizes can ride the same reduceat fold as the payloads (NumPy path).
        self._monotone = False

    def state_columns(self) -> dict[str, Any]:
        """``best`` (and ``stable`` for the patience variants) columns."""
        columns = {"best": self.best}
        if self.patience is not None:
            columns["stable"] = self.stable
        return columns

    def payload_column(self):
        """The per-node broadcast value column (labels fold as ints)."""
        return self.best

    def _refresh_bits(self, view: EngineView, idxs, values) -> None:
        """Recompute wire sizes for the nodes whose payload changed.

        Closed-form sizing with a per-distinct-value cache: in steady
        state (no best-value changes) this loop body never runs, which is
        what makes the lowered rounds payload-size free.
        """
        cache = self._size_cache
        bits_col = view.bits_col
        copies = self.copies
        for i, v in zip(idxs, values):
            b = cache.get(v)
            if b is None:
                if copies is None:
                    b = int_payload_bits(v)
                else:
                    b = repetition_frame_bits(v, copies)
                cache[v] = b
            bits_col[i] = b

    def on_start(self, view: EngineView) -> None:
        """Vectorized ``on_start``: seed columns, queue the round-0 flood."""
        np = view.np
        n = view.n
        labels = view.labels
        view.alive[:] = b"\x01" * n
        view.alive_count = n
        if np is not None:
            self.best = np.fromiter(labels, dtype=np.int64, count=n)
            if self.patience is not None:
                self.stable = np.zeros(n, dtype=np.int64)
            self._monotone = bool(n == 0 or self.best.min() >= 0)
        else:
            self.best = array("q", labels)
            if self.patience is not None:
                self.stable = array("q", [0]) * n
        if self.rounds is not None and self.rounds <= 0:
            # Zero-budget flood-max: output the own label and halt in
            # on_start, queueing no traffic at all.
            view.retire(list(range(n)), list(labels))
            view.clear_broadcasts()
            return
        if self._monotone:
            view.bits_np[:] = _np_payload_bits(np, self.best, self.copies)
        else:
            self._refresh_bits(view, range(n), labels)
        view.queue_broadcast_alive()

    def vector_round(self, view: EngineView) -> None:
        """One whole round: fold, update best/stable, retire, re-queue."""
        np = view.np
        best = self.best
        heard_bits = None
        if np is not None and self._monotone:
            folded = view.fold_max(bits=view.bits_np)
            heard = None
            if folded is not None:
                heard, heard_bits = folded
        else:
            heard = view.fold_max()
        if np is not None:
            alive = view.alive_np
            improved = None
            if heard is not None:
                improved = alive & view.nonempty_np & (heard > best)
                if not improved.any():
                    improved = None
            if improved is not None:
                best[improved] = heard[improved]
                if heard_bits is not None:
                    view.bits_np[improved] = heard_bits[improved]
                else:
                    self._refresh_bits(
                        view, np.nonzero(improved)[0].tolist(), best[improved].tolist()
                    )
            if self.patience is not None:
                stable = self.stable
                stable += 1
                if improved is not None:
                    stable[improved] = 0
                halters = alive & (stable >= self.patience)
                if halters.any():
                    view.retire(
                        np.nonzero(halters)[0].tolist(), best[halters].tolist()
                    )
            elif view.round >= self.rounds:
                idxs = np.nonzero(alive)[0].tolist()
                view.retire(idxs, best[alive].tolist())
                view.clear_broadcasts()
                return
            view.queue_broadcast_alive()
            return
        alive = view.alive
        n = view.n
        changed: list[int] = []
        changed_vals: list[int] = []
        if heard is not None:
            for i in range(n):
                if alive[i]:
                    h = heard[i]
                    if h > best[i]:
                        best[i] = h
                        changed.append(i)
                        changed_vals.append(h)
        if changed:
            self._refresh_bits(view, changed, changed_vals)
        if self.patience is not None:
            stable = self.stable
            patience = self.patience
            improved = set(changed)
            halt_ids: list[int] = []
            halt_outs: list[int] = []
            for i in range(n):
                if not alive[i]:
                    continue
                if i in improved:
                    stable[i] = 0
                    continue
                s = stable[i] + 1
                stable[i] = s
                if s >= patience:
                    halt_ids.append(i)
                    halt_outs.append(best[i])
            if halt_ids:
                view.retire(halt_ids, halt_outs)
        elif view.round >= self.rounds:
            halt_ids = [i for i in range(n) if alive[i]]
            view.retire(halt_ids, [best[i] for i in halt_ids])
            view.clear_broadcasts()
            return
        view.queue_broadcast_alive()


def try_lower(
    sim: "Simulator",
    contexts: "list[NodeContext]",
    programs: "list[NodeProgram]",
    metrics: Metrics,
    graph_sets,
    filt: "DeliveryFilter | None",
) -> EngineView | None:
    """Attempt to lower a columnar run; returns the armed view or ``None``.

    Lowering engages when every program instance is the exact same
    :class:`VectorProgram` class (which then validates homogeneity and
    supplies the kernel), the delivery filter is absent or
    non-transforming, and every vertex label is an exact 64-bit ``int``.
    Any refusal returns ``None`` and the caller runs the stepped columnar
    path — the per-node fallback the protocol guarantees is exact.
    """
    if not programs:
        return None
    first = programs[0]
    if not isinstance(first, VectorProgram):
        return None
    cls = first.__class__
    for program in programs:
        if program.__class__ is not cls:
            return None
    if filt is not None and filt.transforms:
        return None
    for lbl in sim.topology.labels:
        if lbl.__class__ is not int or not (INT64_MIN <= lbl <= INT64_MAX):
            return None
    view = EngineView(sim, contexts, metrics, graph_sets, filt)
    kernel = cls.vector_kernel(programs, view)
    if kernel is None:
        return None
    view._kernel = kernel
    return view


__all__ = [
    "EngineView",
    "INT64_MAX",
    "INT64_MIN",
    "MaxFloodKernel",
    "VectorKernel",
    "VectorProgram",
    "int_payload_bits",
    "repetition_frame_bits",
    "try_lower",
]
