"""Distributed minimum 2-spanner approximation (paper Section 4, Theorem 1.3).

The algorithm runs on the LOCAL-model round simulator as a per-vertex
program.  Each *iteration* of the paper's pseudo-code is a fixed pipeline of
seven communication rounds:

====================  ========================================================
phase                 message broadcast in that round
====================  ========================================================
``cover``             pairs of my neighbours newly covered *via me* (both of
                      the pair's star edges are now spanner edges at me)
``report``            my incident target edges that became covered, my done flag
``density``           my rounded density, exact density and max incident weight
``max``               component-wise maxima of the density phase over my
                      closed neighbourhood (gives everyone its 2-hop maxima)
``candidate``         if I am a candidate: my chosen star, |C_v| and a random
                      rank r_v in {1..n^4}
``vote``              one vote per uncovered incident edge, sent by the edge's
                      smaller endpoint to the winning candidate
``add``               stars that gathered >= |C_v|/8 votes; edges added
                      directly by terminating vertices (step 7)
====================  ========================================================

The same program implements the unweighted, weighted and client-server
variants through :mod:`repro.core.variants`.  The directed variant has its own
program (:mod:`repro.core.directed_two_spanner`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any

from repro.core.star_selection import StarSelectionState, choose_candidate_star
from repro.core.variants import NodeSetup, SpannerVariant, UnweightedVariant
from repro.distributed.models import CommunicationModel, local_model
from repro.distributed.node import NodeContext
from repro.distributed.program import Inbox, NodeProgram
from repro.distributed.simulator import Simulator
from repro.graphs.client_server import ClientServerInstance
from repro.graphs.graph import Edge, Graph, Node, edge_key
from repro.spanner.stars import (
    densest_star,
    rounded_up_power_of_two,
    spanned_edges,
)

PHASES = ("cover", "report", "density", "max", "candidate", "vote", "add")
ROUNDS_PER_ITERATION = len(PHASES)


@dataclass
class TwoSpannerOptions:
    """Tunable knobs of the algorithm (defaults follow the paper).

    ``densest_method`` selects the densest-star solver ('exact' reproduces the
    paper's polynomial flow computation; 'peeling' is the fast 2-approximate
    mode).  ``vote_fraction`` is the 1/8 acceptance threshold of step 5.
    ``follow_paper_rule`` toggles the Section 4.1 star re-selection rule (the
    E15 ablation disables it).  ``threshold_divisor`` overrides the variant's
    rho/4 star-density threshold when set.
    """

    densest_method: str = "exact"
    vote_fraction: Fraction = Fraction(1, 8)
    threshold_divisor: int | None = None
    follow_paper_rule: bool = True
    max_iterations: int = 2_000


@dataclass
class TwoSpannerResult:
    """Union of all per-vertex outputs plus run statistics."""

    edges: set[Edge]
    rounds: int
    iterations: int
    metrics: Any
    fallback_count: int
    node_outputs: dict[Node, Any] = field(repr=False, default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.edges)

    def cost(self, graph: Graph) -> float:
        return sum(graph.weight(u, v) for u, v in self.edges)


class TwoSpannerProgram(NodeProgram):
    """The per-vertex program implementing one iteration pipeline per 7 rounds."""

    def __init__(
        self,
        node: Node,
        setup: NodeSetup,
        variant: SpannerVariant,
        options: TwoSpannerOptions,
    ) -> None:
        self.node = node
        self.setup = setup
        self.variant = variant
        self.options = options
        self.divisor = (
            options.threshold_divisor
            if options.threshold_divisor is not None
            else variant.threshold_divisor
        )

        # --- knowledge ---------------------------------------------------
        self.target_edges_2nbhd: set[Edge] = set(setup.target_incident)
        self.covered: set[Edge] = set()
        self.incident_spanner: set[Edge] = set(setup.initial_spanner)
        self.my_spanner: set[Edge] = set(setup.initial_spanner)
        self.neighbor_done: dict[Node, bool] = {u: False for u in setup.neighbors}

        # --- bookkeeping ---------------------------------------------------
        self.phase_index = 0
        self.iteration = 0
        self.locally_done = False
        self.done_broadcasts = 0
        self.selection_state = StarSelectionState()
        self.announced_covered_via: set[Edge] = set()
        self.reported_covered: set[Edge] = set()
        self._cover_scanned_list: list[Node] = []
        self._cover_scanned_set: set[Node] = set()
        self._density_cache: tuple[frozenset[Edge], tuple[Fraction, Fraction]] | None = None

        # --- per-iteration transient state --------------------------------
        self.current_hv: set[Edge] = set()
        self.rho: Fraction = Fraction(0)
        self.rho_rounded: Fraction = Fraction(0)
        self.one_hop_max: tuple[Fraction, Fraction, Fraction] | None = None
        self.is_candidate = False
        self.is_finishing = False
        self.candidate_leaves: frozenset[Node] = frozenset()
        self.candidate_cv: set[Edge] = set()
        self.votes_received: set[Edge] = set()

    # ------------------------------------------------------------------ start
    def on_start(self, ctx: NodeContext) -> None:
        if not self.setup.neighbors:
            ctx.set_output(self._output())
            ctx.halt()
            return
        hello = {
            "kind": "hello",
            "targets": sorted(self.setup.target_incident, key=repr),
        }
        ctx.broadcast(hello)

    # ------------------------------------------------------------------ rounds
    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.round == 1:
            self._process_hello(inbox)
            self._send_cover(ctx)
            self.phase_index = 1
            return

        phase = PHASES[self.phase_index]
        handler = getattr(self, f"_phase_{phase}")
        handler(ctx, inbox)
        if not ctx.halted:
            self.phase_index = (self.phase_index + 1) % ROUNDS_PER_ITERATION

    # --------------------------------------------------------------- handlers
    def _process_hello(self, inbox: Inbox) -> None:
        for _, payloads in inbox.items():
            for msg in payloads:
                # Target edges travel as canonical keys; no re-canonicalisation.
                self.target_edges_2nbhd.update(msg["targets"])
        # Edges of the initial spanner are covered from the start.
        self.covered |= self.incident_spanner

    # phase "cover": process ADD messages, announce pairs covered via me.
    def _phase_cover(self, ctx: NodeContext, inbox: Inbox) -> None:
        for sender, payloads in inbox.items():
            for msg in payloads:
                if msg.get("kind") == "added_star":
                    if self.node in msg["leaves"]:
                        self.incident_spanner.add(edge_key(self.node, sender))
                elif msg.get("kind") == "added_edges":
                    for e in msg["edges"]:
                        if self.node in e:
                            self.incident_spanner.add(e)
                        self.covered.add(e)
        self.covered |= self.incident_spanner
        self._send_cover(ctx)

    def _send_cover(self, ctx: NodeContext) -> None:
        # Spanner neighbours only grow, so every pair of already-scanned
        # neighbours was handled by an earlier call (announced, or not a
        # target then and never a target later); only pairs touching a fresh
        # neighbour can yield a new announcement.
        newly: list[Edge] = []
        spanner_nbrs = {
            (u if w == self.node else w) for u, w in self.incident_spanner
        }
        fresh = [u for u in spanner_nbrs if u not in self._cover_scanned_set]
        if fresh:
            known = self._cover_scanned_list
            for a, u in enumerate(fresh):
                for w in known:
                    self._announce_pair(u, w, newly)
                for w in fresh[a + 1 :]:
                    self._announce_pair(u, w, newly)
            known.extend(fresh)
            self._cover_scanned_set.update(fresh)
        ctx.broadcast({"kind": "cover", "pairs": newly})

    def _announce_pair(self, u: Node, w: Node, newly: list[Edge]) -> None:
        if repr(u) == repr(w):
            return  # distinct nodes with equal reprs are never paired
        pair = edge_key(u, w)
        if pair in self.target_edges_2nbhd and pair not in self.announced_covered_via:
            newly.append(pair)
            self.announced_covered_via.add(pair)
            self.covered.add(pair)

    # phase "report": process COVER messages, report newly covered incident targets.
    def _phase_report(self, ctx: NodeContext, inbox: Inbox) -> None:
        for _, payloads in inbox.items():
            for msg in payloads:
                for e in msg.get("pairs", []):
                    if self.node in e or (e[0] in self.setup.neighbors and e[1] in self.setup.neighbors):
                        self.covered.add(e)

        if (
            self.locally_done
            and self.done_broadcasts >= 1
            and all(self.neighbor_done.values())
        ):
            ctx.set_output(self._output())
            ctx.halt()
            return

        self.iteration += 1
        if self.iteration > self.options.max_iterations:
            raise RuntimeError(
                f"2-spanner algorithm exceeded {self.options.max_iterations} iterations"
            )
        newly_covered = sorted(
            (e for e in self.setup.target_incident if e in self.covered and e not in self.reported_covered),
            key=repr,
        )
        self.reported_covered.update(newly_covered)
        ctx.broadcast({"kind": "report", "covered": newly_covered, "done": self.locally_done})
        if self.locally_done:
            self.done_broadcasts += 1

    # phase "density": process REPORT messages, broadcast densities.
    def _phase_density(self, ctx: NodeContext, inbox: Inbox) -> None:
        for sender, payloads in inbox.items():
            for msg in payloads:
                self.neighbor_done[sender] = bool(msg.get("done", False))
                self.covered.update(msg.get("covered", ()))

        self.current_hv = {
            e
            for e in self.target_edges_2nbhd
            if e not in self.covered
            and e[0] in self.setup.star_pool
            and e[1] in self.setup.star_pool
        }
        self.rho, self.rho_rounded = self._densities()
        ctx.broadcast(
            {
                "kind": "density",
                "rho": self.rho,
                "rho_rounded": self.rho_rounded,
                "wmax": self.setup.wmax_incident,
            }
        )

    def _densities(self) -> tuple[Fraction, Fraction]:
        key = frozenset(self.current_hv)
        if self._density_cache is not None and self._density_cache[0] == key:
            return self._density_cache[1]
        if not self.current_hv:
            result = (Fraction(0), Fraction(0))
        else:
            weights = self.setup.leaf_weights
            leaves, density = densest_star(
                self.setup.star_pool,
                self.current_hv,
                weights,
                method=self.options.densest_method,
            )
            result = (density, rounded_up_power_of_two(density))
        self._density_cache = (key, result)
        return result

    # phase "max": forward component-wise maxima of the density messages.
    def _phase_max(self, ctx: NodeContext, inbox: Inbox) -> None:
        rho_max = self.rho
        rounded_max = self.rho_rounded
        wmax = self.setup.wmax_incident
        for _, payloads in inbox.items():
            for msg in payloads:
                rho_max = max(rho_max, msg["rho"])
                rounded_max = max(rounded_max, msg["rho_rounded"])
                wmax = max(wmax, msg["wmax"])
        self.one_hop_max = (rho_max, rounded_max, wmax)
        ctx.broadcast(
            {"kind": "max", "rho": rho_max, "rho_rounded": rounded_max, "wmax": wmax}
        )

    # phase "candidate": decide candidacy / termination, announce chosen stars.
    def _phase_candidate(self, ctx: NodeContext, inbox: Inbox) -> None:
        assert self.one_hop_max is not None
        rho_max2, rounded_max2, wmax2 = self.one_hop_max
        for _, payloads in inbox.items():
            for msg in payloads:
                rho_max2 = max(rho_max2, msg["rho"])
                rounded_max2 = max(rounded_max2, msg["rho_rounded"])
                wmax2 = max(wmax2, msg["wmax"])

        threshold = self.variant.finish_threshold(wmax2)
        self.is_candidate = False
        self.is_finishing = False
        self.candidate_leaves = frozenset()
        self.candidate_cv = set()
        self.votes_received = set()

        if not self.locally_done and rho_max2 < threshold:
            self.is_finishing = True
            return
        if (
            not self.locally_done
            and self.rho >= threshold
            and self.rho_rounded >= rounded_max2
        ):
            self.is_candidate = True
            self.candidate_leaves = choose_candidate_star(
                set(self.setup.star_pool),
                self.current_hv,
                self.rho_rounded,
                self.selection_state,
                self.iteration,
                leaf_weights=self.setup.leaf_weights,
                threshold_divisor=self.divisor,
                method=self.options.densest_method,
                follow_paper_rule=self.options.follow_paper_rule,
                force_include=self.setup.zero_weight_leaves,
            )
            self.candidate_cv = spanned_edges(self.candidate_leaves, self.current_hv)
            rank = ctx.rng.randint(1, max(2, ctx.n**4))
            ctx.broadcast(
                {
                    "kind": "candidate",
                    "leaves": sorted(self.candidate_leaves, key=repr),
                    "cv_size": len(self.candidate_cv),
                    "rank": rank,
                    "center": self.node,
                }
            )

    # phase "vote": every uncovered incident edge votes for one candidate.
    def _phase_vote(self, ctx: NodeContext, inbox: Inbox) -> None:
        announcements: list[tuple[int, Any, Node, frozenset[Node]]] = []
        for sender, payloads in inbox.items():
            for msg in payloads:
                if msg.get("kind") != "candidate":
                    continue
                announcements.append(
                    (msg["rank"], repr(msg["center"]), sender, frozenset(msg["leaves"]))
                )
        if not announcements:
            return
        votes: dict[Node, list[Edge]] = {}
        for e in self.setup.target_incident:
            if e in self.covered:
                continue
            other = e[0] if e[1] == self.node else e[1]
            if repr(self.node) > repr(other):
                continue  # the smaller endpoint is responsible for this edge's vote
            spanning = [
                (rank, center_repr, sender)
                for rank, center_repr, sender, leaves in announcements
                if self.node in leaves and other in leaves
            ]
            if not spanning:
                continue
            _, _, winner = min(spanning)
            votes.setdefault(winner, []).append(e)
        for winner, edges in votes.items():
            ctx.send(winner, {"kind": "vote", "edges": sorted(edges, key=repr)})

    # phase "add": candidates with enough votes add their stars; finishing vertices
    # add their remaining uncovered incident edges directly (step 7).
    def _phase_add(self, ctx: NodeContext, inbox: Inbox) -> None:
        for _, payloads in inbox.items():
            for msg in payloads:
                if msg.get("kind") != "vote":
                    continue
                for e in msg["edges"]:
                    if e in self.candidate_cv:
                        self.votes_received.add(e)

        if self.is_candidate and self.candidate_cv:
            needed = Fraction(len(self.candidate_cv)) * self.options.vote_fraction
            if Fraction(len(self.votes_received)) >= needed:
                star_edges = {edge_key(self.node, leaf) for leaf in self.candidate_leaves}
                self.my_spanner |= star_edges
                self.incident_spanner |= star_edges
                self.covered |= star_edges
                ctx.broadcast(
                    {"kind": "added_star", "leaves": sorted(self.candidate_leaves, key=repr)}
                )

        if self.is_finishing:
            direct = sorted(
                (e for e in self.setup.direct_add_allowed if e not in self.covered),
                key=repr,
            )
            if direct:
                self.my_spanner.update(direct)
                self.incident_spanner.update(direct)
                self.covered.update(direct)
                ctx.broadcast({"kind": "added_edges", "edges": direct})
            self.locally_done = True

    # ------------------------------------------------------------------ output
    def _output(self) -> dict[str, Any]:
        return {
            "edges": sorted(self.my_spanner, key=repr),
            "iterations": self.iteration,
            "fallbacks": self.selection_state.fallback_count,
        }


# ---------------------------------------------------------------------- runner
def run_two_spanner(
    graph: Graph,
    variant: SpannerVariant | None = None,
    options: TwoSpannerOptions | None = None,
    seed: int | None = None,
    model: CommunicationModel | None = None,
    max_rounds: int = 200_000,
    engine: str = "indexed",
    adversary=None,
) -> TwoSpannerResult:
    """Run the distributed 2-spanner algorithm on ``graph`` and collect the result.

    The returned edge set is the union of the per-vertex outputs; ``rounds``
    counts simulator rounds (7 per algorithm iteration plus setup/termination)
    and ``iterations`` is the largest iteration index any vertex reached.
    ``engine`` selects the simulator engine (the throughput benchmark compares
    ``indexed`` against ``reference``); results are identical for a fixed seed.
    ``adversary`` forwards a fault policy to the simulator; this algorithm's
    handshake phases assume reliable delivery, so use it for golden-stability
    checks (``NoAdversary``) rather than fault sweeps.
    """
    variant = variant if variant is not None else UnweightedVariant()
    options = options if options is not None else TwoSpannerOptions()
    model = model if model is not None else local_model(graph.number_of_nodes())

    def factory(v: Node) -> TwoSpannerProgram:
        return TwoSpannerProgram(v, variant.node_setup(graph, v), variant, options)

    sim = Simulator(
        graph, factory, model=model, seed=seed, engine=engine, adversary=adversary
    )
    run = sim.run(max_rounds=max_rounds)

    edges: set[Edge] = set()
    iterations = 0
    fallbacks = 0
    for output in run.outputs.values():
        if not output:
            continue
        edges.update(edge_key(*e) for e in output["edges"])
        iterations = max(iterations, output["iterations"])
        fallbacks += output["fallbacks"]
    return TwoSpannerResult(
        edges=edges,
        rounds=run.rounds,
        iterations=iterations,
        metrics=run.metrics,
        fallback_count=fallbacks,
        node_outputs=run.outputs,
    )


def client_server_two_spanner(
    instance: ClientServerInstance,
    options: TwoSpannerOptions | None = None,
    seed: int | None = None,
    max_rounds: int = 200_000,
) -> TwoSpannerResult:
    """Convenience wrapper running the client-server variant on an instance."""
    from repro.core.variants import ClientServerVariant

    variant = ClientServerVariant(instance)
    return run_two_spanner(
        instance.graph, variant=variant, options=options, seed=seed, max_rounds=max_rounds
    )
