"""(1 + eps)-approximate minimum k-spanner in the LOCAL model (paper Section 6).

Theorem 1.2: a randomised poly(log n / eps)-round LOCAL algorithm computing a
(1+eps)-approximation of the minimum k-spanner, assuming unbounded local
computation.  The algorithm:

1. sets ``r = O(log n / eps)`` (large enough that every ball the sequential
   process touches fits in an r-neighbourhood),
2. computes a Linial-Saks network decomposition of the power graph ``G^r``
   (O(log n) colours, O(log n)-diameter clusters),
3. processes vertices in increasing (cluster colour, identifier) order; each
   vertex finds the smallest radius ``r_i`` with
   ``g(v, r_i + 2k) <= (1+eps) * g(v, r_i)`` (``g`` = optimal spanner size for
   the uncovered edges of the ball) and adds an optimal spanner for the
   uncovered edges of ``B_{r_i+2k}(v)``.

Vertices of the same colour act in parallel because their balls are disjoint
(their clusters are non-adjacent in G^r); the execution below emulates the
LOCAL algorithm at cluster granularity and reports the round cost of the real
distributed execution through :func:`round_complexity_estimate`.  Local
computation uses the exact branch-and-bound solver, which is exponential —
exactly the unbounded-local-computation assumption of the theorem — so only
small graphs are practical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.core.network_decomposition import (
    Decomposition,
    decomposition_round_bound,
    network_decomposition,
)
from repro.graphs.graph import Edge, Graph, Node
from repro.graphs.properties import power_graph
from repro.spanner.optimal import minimum_k_spanner_exact
from repro.spanner.verify import uncovered_edges


@dataclass
class OnePlusEpsResult:
    """Spanner produced by the (1+eps) algorithm plus accounting details."""

    edges: set[Edge]
    epsilon: float
    k: int
    r: int
    decomposition: Decomposition
    rounds_estimate: int
    ball_radii: dict[Node, int]
    node_outputs: dict[Node, Any] | None = None

    @property
    def size(self) -> int:
        return len(self.edges)


def radius_budget(n: int, epsilon: float, k: int) -> int:
    """The maximum radius the sequential process can reach, r_i = O(log n / eps).

    The optimal spanner has at most n^2 edges and each unsuccessful radius
    increase multiplies g by more than (1+eps), so r_i <= log_{1+eps}(n^2).
    """
    n = max(2, n)
    steps = math.log(n * n) / math.log1p(epsilon)
    return int(math.ceil(steps)) + 1


def one_plus_eps_spanner(
    graph: Graph,
    k: int = 2,
    epsilon: float = 0.5,
    seed: int | None = None,
    use_weights: bool = False,
) -> OnePlusEpsResult:
    """Run the Section 6 algorithm and return the constructed k-spanner.

    ``use_weights`` switches the local optima to minimise edge weight instead
    of cardinality (the paper notes the framework extends to the weighted
    case with complexity poly(log(nW)/eps)).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if k < 1:
        raise ValueError("k must be at least 1")

    n = graph.number_of_nodes()
    max_radius = radius_budget(n, epsilon, k)
    r = max_radius + 4 * k + 1
    power = power_graph(graph, r) if n > 1 else graph
    decomposition = network_decomposition(power, seed=seed)

    order = sorted(graph.nodes(), key=lambda v: (decomposition.color_of[v], repr(v)))

    spanner: set[Edge] = set()
    covered: set[Edge] = set()
    all_edges = set(graph.edges())
    ball_radii: dict[Node, int] = {}

    def optimum_for(targets: set[Edge], around: Node, radius: int) -> set[Edge]:
        """Optimal spanner of ``targets``; the spanner may use any graph edge,
        but every useful edge lies within ``radius + k`` of ``around``."""
        if not targets:
            return set()
        region = graph.subgraph(graph.ball(around, radius + k))
        return minimum_k_spanner_exact(region, k=k, targets=targets, use_weights=use_weights)

    def cost_of(edges: set[Edge]) -> float:
        if use_weights:
            return sum(graph.weight(u, v) for u, v in edges)
        return float(len(edges))

    for v in order:
        # Smallest radius r_i with g(v, r_i + 2k) <= (1+eps) * g(v, r_i).
        radius = 0
        while True:
            inner_targets = _uncovered_in_ball(graph, v, radius, all_edges, covered)
            outer_targets = _uncovered_in_ball(graph, v, radius + 2 * k, all_edges, covered)
            inner_opt = optimum_for(inner_targets, v, radius)
            outer_opt = optimum_for(outer_targets, v, radius + 2 * k)
            if cost_of(outer_opt) <= (1 + epsilon) * cost_of(inner_opt) or radius > max_radius:
                ball_radii[v] = radius
                spanner |= outer_opt
                covered |= outer_targets
                # Edges newly covered by the added spanner edges elsewhere.
                covered |= all_edges - uncovered_edges(graph, spanner, k)
                break
            radius += 1

    rounds = round_complexity_estimate(n, r, decomposition)
    return OnePlusEpsResult(
        edges=spanner,
        epsilon=epsilon,
        k=k,
        r=r,
        decomposition=decomposition,
        rounds_estimate=rounds,
        ball_radii=ball_radii,
    )


def _uncovered_in_ball(
    graph: Graph, v: Node, radius: int, all_edges: set[Edge], covered: set[Edge]
) -> set[Edge]:
    """Uncovered edges with both endpoints within distance ``radius`` of ``v``."""
    if radius == 0:
        return set()
    ball = graph.ball(v, radius)
    return {e for e in all_edges if e not in covered and e[0] in ball and e[1] in ball}


def round_complexity_estimate(n: int, r: int, decomposition: Decomposition) -> int:
    """Round cost of the genuine LOCAL execution this module emulates.

    Decomposition of G^r costs ``O(log^2 n)`` rounds of G^r, i.e. times r in
    G; afterwards each colour class costs O(cluster diameter * r) rounds for
    information gathering.  All terms are poly(log n / eps), matching
    Theorem 1.2.
    """
    gather = (decomposition.max_cluster_diameter + 2) * r
    return decomposition_round_bound(n) * r + decomposition.num_colors * gather
