"""Coded robust workloads: soundness under payload corruption (E22).

The retransmitting :class:`~repro.core.flood_max.RobustFloodMaxProgram`
provably *terminates* under arbitrary message loss, but it trusts message
*content*: under a payload-corrupting adversary
(:class:`~repro.distributed.adversary.CorruptAdversary`) a single flipped
bit can forge a label larger than every genuine one, and the retransmitting
flood happily elects the forgery — live, but unsound.  This module adds the
coding defenses, in the spirit of the LDC-based robust Congested Clique
line (Censor-Hillel, Fischer, Gelles, Soto): spend redundancy per message
to restore soundness, and measure the rounds/bits cost in the E22 family.

Two codes ship, both built on the canonical wire image codec of
:mod:`repro.distributed.encoding` (single-bit flips are the adversary's
primitive, so "corrects/detects one flipped bit per message" is the design
point):

* **k-repetition with majority vote** (:class:`RedundantFloodMaxProgram`)
  — the order-0 Reed-Muller code.  A message carries ``k`` copies of the
  value; one flipped bit damages at most one copy (or destroys the whole
  frame, an erasure), so for odd ``k >= 3`` the majority is always the
  value actually sent.  Cost: ``k`` times the payload bits.
* **checksum-as-erasure** (:class:`CodedFloodMaxProgram`,
  :class:`CodedCliqueTwoSpannerProgram`) — a 32-bit BLAKE2 checksum of the
  value's wire image rides along; a forged message fails verification and
  is *discarded*, turning corruption into loss — which the retransmitting
  (flood-max) or round-driven (spanner) structure already absorbs.  Cost:
  one word per message, detection instead of correction.

Soundness gives termination for free: every accepted value is one some
vertex genuinely sent, so by induction every ``best`` is a real node label,
the at-most-``n - 1``-increases argument of
:func:`~repro.core.flood_max.robust_flood_max_round_bound` survives, and
the coded floods keep the plain variant's round bound.  The uncoded program
has no such bound under corruption — forged labels add increases — which is
why :func:`~repro.core.flood_max.run_robust_flood_max` must be given an
explicit ``max_rounds`` when driven under a corrupting adversary.
"""

from __future__ import annotations

from typing import Any

from repro.core.clique_two_spanner import (
    CliqueSpannerResult,
    CliqueTwoSpannerProgram,
    clique_spanner_levels,
)
from repro.core.flood_max import FloodMaxResult, RobustFloodMaxProgram, _summarise
from repro.distributed.adversary import Adversary
from repro.distributed.encoding import UnencodablePayloadError, payload_checksum
from repro.distributed.models import (
    CommunicationModel,
    broadcast_congest_model,
    congested_clique_model,
)
from repro.distributed.node import NodeContext
from repro.distributed.program import Inbox, Node
from repro.distributed.simulator import Simulator
from repro.distributed.vectorize import EngineView, MaxFloodKernel
from repro.graphs.graph import Graph, edge_key


def decode_repetition(message: Any, copies: int) -> Any:
    """Majority-decode a ``copies``-tuple repetition frame; ``None`` = erasure.

    Votes are counted with *exact-type* equality (``True == 1`` and
    ``1 == 1.0`` must not pool their votes — the same aliasing trap the
    size tables guard against) and need a strict majority.  A single
    flipped bit damages at most one copy, so for odd ``copies >= 3`` the
    decoded value is always the value the frame was built from; frames
    whose framing was hit decode to something that fails the shape check
    and come back as an erasure.
    """
    if type(message) is not tuple or len(message) != copies:
        return None
    for candidate in message:
        ctype = type(candidate)
        votes = sum(
            1 for other in message if type(other) is ctype and other == candidate
        )
        if 2 * votes > copies:
            return candidate
    return None


def decode_checksum(message: Any) -> Any:
    """Verify a ``(value, checksum)`` frame; ``None`` = erasure.

    Accepts exactly the frames :func:`encode_checksum` built: a 2-tuple
    whose second entry is the 32-bit wire-image checksum of the first.  A
    flipped bit in either half (or in the framing) fails verification, so
    every accepted value is one a vertex genuinely sent — corruption is
    converted into loss.
    """
    if type(message) is not tuple or len(message) != 2:
        return None
    value, check = message
    if type(check) is not int:
        return None
    try:
        if payload_checksum(value) != check:
            return None
    except UnencodablePayloadError:
        return None
    return value


def encode_checksum(value: Any) -> tuple[Any, int]:
    """The ``(value, checksum)`` frame :func:`decode_checksum` verifies."""
    return (value, payload_checksum(value))


class RedundantFloodMaxProgram(RobustFloodMaxProgram):
    """Retransmitting flood-max over ``copies``-repetition frames.

    Same patience-driven structure as the plain robust variant, but every
    broadcast carries ``copies`` copies of the value and every received
    frame is majority-decoded — so a corrupting adversary flipping one bit
    per message can only erase frames, never forge a label, and survivors
    still agree on the *true* maximum.  Decoded values are additionally
    required to be exact ints (the label type of every shipped graph), so
    damaged non-label residue can never enter the fold.
    """

    def __init__(self, node: Node, patience: int, copies: int = 3) -> None:
        super().__init__(node, patience)
        if copies < 3 or copies % 2 == 0:
            raise ValueError(f"copies must be an odd int >= 3, got {copies!r}")
        self.copies = copies

    def on_start(self, ctx: NodeContext) -> None:
        """Broadcast my own label's repetition frame."""
        ctx.broadcast((self.best,) * self.copies)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        """Majority-decode, fold, halt after ``patience`` quiet rounds."""
        best = self.best
        copies = self.copies
        for payloads in inbox.values():
            for message in payloads:
                value = decode_repetition(message, copies)
                if type(value) is int and value > best:
                    best = value
        if best > self.best:
            self.best = best
            self.stable = 0
        else:
            self.stable += 1
        if self.stable >= self.patience:
            ctx.set_output(self.best)
            ctx.halt()
            return
        ctx.broadcast((best,) * copies)

    @classmethod
    def vector_kernel(cls, programs, view: EngineView) -> MaxFloodKernel | None:
        """Lower a homogeneous repetition-coded flood to the max-fold kernel.

        Sound without a transforming filter in the loop (which
        :func:`repro.distributed.vectorize.try_lower` already rules out):
        undamaged ``copies``-repetition frames always majority-decode to the
        integer they were built from, so the decode step degenerates to the
        identity and the fold is the same integer max — only the payload
        *size* differs, which the kernel prices with the closed-form
        :func:`repro.distributed.vectorize.repetition_frame_bits`.
        """
        if cls is not RedundantFloodMaxProgram:
            return None
        patience = programs[0].patience
        copies = programs[0].copies
        labels = view.labels
        for i, program in enumerate(programs):
            if (
                program.patience != patience
                or program.copies != copies
                or program.best != labels[i]
                or program.stable != 0
            ):
                return None
        return MaxFloodKernel(patience=patience, copies=copies)


class CodedFloodMaxProgram(RobustFloodMaxProgram):
    """Retransmitting flood-max over checksummed ``(value, checksum)`` frames.

    The cheap point on the redundancy curve: one extra word per message
    buys *detection* — forged frames are discarded (erasures), and the
    retransmitting structure recovers them like any other loss.  Sound for
    the same reason as the repetition code (every accepted value was
    genuinely sent), at roughly a third of its bit cost.
    """

    def on_start(self, ctx: NodeContext) -> None:
        """Broadcast my own label's checksummed frame."""
        ctx.broadcast(encode_checksum(self.best))

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        """Verify checksums, fold surviving values, halt when quiet."""
        best = self.best
        for payloads in inbox.values():
            for message in payloads:
                value = decode_checksum(message)
                if type(value) is int and value > best:
                    best = value
        if best > self.best:
            self.best = best
            self.stable = 0
        else:
            self.stable += 1
        if self.stable >= self.patience:
            ctx.set_output(self.best)
            ctx.halt()
            return
        ctx.broadcast(encode_checksum(best))


class CodedCliqueTwoSpannerProgram(CliqueTwoSpannerProgram):
    """Clique 2-spanner with checksummed attach announcements.

    Election messages carry no content (presence *is* the signal), so the
    only corruptible channel of the plain program is the attach broadcast:
    a forged ``("a", wrong_centre)`` poisons a neighbour's coverage belief
    and the final edge set may fail to 2-span.  This variant checksums the
    attach frame and discards forgeries, restoring the sound-under-faults
    coverage rule — corrupted announcements degrade to losses, which the
    cleanup phase already absorbs (the spanner just keeps more edges).
    """

    def _attach_payload(self, centre: Node) -> Any:
        """Checksummed attach frame ``("a", centre, checksum)``."""
        return ("a", centre, payload_checksum(("a", centre)))

    def _attach_centre(self, msg: Any) -> Any:
        """Centre of a verified attach frame, or ``None`` for forgeries."""
        if type(msg) is not tuple or len(msg) != 3 or msg[0] != "a":
            return None
        centre, check = msg[1], msg[2]
        if type(check) is not int:
            return None
        try:
            if payload_checksum(("a", centre)) != check:
                return None
        except UnencodablePayloadError:
            return None
        return centre


def run_redundant_flood_max(
    graph: Graph,
    patience: int,
    copies: int = 3,
    model: CommunicationModel | None = None,
    seed: int | None = None,
    engine: str = "indexed",
    adversary: Adversary | None = None,
    max_rounds: int | None = None,
    vectorize: bool = True,
) -> FloodMaxResult:
    """Run the ``copies``-repetition coded flood-max (sound under corruption).

    ``max_rounds`` defaults to the plain robust bound
    ``n * patience + 1`` — valid here because majority decoding only ever
    admits genuinely sent labels, so the at-most-``n - 1``-increases
    argument survives corruption.
    """
    from repro.core.flood_max import robust_flood_max_round_bound

    n = graph.number_of_nodes()
    model = model if model is not None else broadcast_congest_model(n)
    if max_rounds is None:
        max_rounds = robust_flood_max_round_bound(n, patience)
    sim = Simulator(
        graph,
        lambda v: RedundantFloodMaxProgram(v, patience, copies),
        model=model,
        seed=seed,
        engine=engine,
        adversary=adversary,
        vectorize=vectorize,
    )
    return _summarise(sim.run(max_rounds=max_rounds))


def run_coded_flood_max(
    graph: Graph,
    patience: int,
    model: CommunicationModel | None = None,
    seed: int | None = None,
    engine: str = "indexed",
    adversary: Adversary | None = None,
    max_rounds: int | None = None,
) -> FloodMaxResult:
    """Run the checksum-coded flood-max (corruption degraded to erasures)."""
    from repro.core.flood_max import robust_flood_max_round_bound

    n = graph.number_of_nodes()
    model = model if model is not None else broadcast_congest_model(n)
    if max_rounds is None:
        max_rounds = robust_flood_max_round_bound(n, patience)
    sim = Simulator(
        graph,
        lambda v: CodedFloodMaxProgram(v, patience),
        model=model,
        seed=seed,
        engine=engine,
        adversary=adversary,
    )
    return _summarise(sim.run(max_rounds=max_rounds))


def run_coded_clique_two_spanner(
    graph: Graph,
    seed: int | None = None,
    model: CommunicationModel | None = None,
    max_rounds: int = 10_000,
    engine: str = "indexed",
    adversary: Adversary | None = None,
) -> CliqueSpannerResult:
    """Run the checksummed-attach clique 2-spanner (valid under corruption)."""
    n = graph.number_of_nodes()
    model = model if model is not None else congested_clique_model(n)
    sim = Simulator(
        graph,
        lambda v: CodedCliqueTwoSpannerProgram(v),
        model=model,
        seed=seed,
        engine=engine,
        adversary=adversary,
    )
    run = sim.run(max_rounds=max_rounds)
    edges = set()
    for output in run.outputs.values():
        if output:
            edges.update(edge_key(*e) for e in output["edges"])
    return CliqueSpannerResult(
        edges=edges,
        rounds=run.rounds,
        levels=clique_spanner_levels(n),
        metrics=run.metrics,
        node_outputs=run.outputs,
    )


__all__ = [
    "CodedCliqueTwoSpannerProgram",
    "CodedFloodMaxProgram",
    "RedundantFloodMaxProgram",
    "decode_checksum",
    "decode_repetition",
    "encode_checksum",
    "run_coded_clique_two_spanner",
    "run_coded_flood_max",
    "run_redundant_flood_max",
]
