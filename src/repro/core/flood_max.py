"""Flood-max: leader election by broadcast flooding of the maximum label.

The canonical broadcast-CONGEST workload (Lynch, *Distributed Algorithms*,
Section 4.1): every vertex repeatedly broadcasts the largest node identifier
it has heard of; after ``R`` rounds each vertex knows the maximum label in
its ``R``-hop neighbourhood, and for ``R >=`` diameter the whole graph
agrees on one leader.  Messages are single integer labels, comfortably
inside the O(log n)-bit broadcast-CONGEST budget, and every node broadcasts
every round — which makes this the densest pure-broadcast traffic pattern
the simulator can produce and therefore the E18 scale workload for the
``batch`` engine fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.distributed.models import CommunicationModel, broadcast_congest_model
from repro.distributed.node import NodeContext
from repro.distributed.program import Inbox, Node, NodeProgram
from repro.distributed.simulator import Simulator


@dataclass
class FloodMaxResult:
    """Outcome of a flood-max run: leader (if agreed), convergence, metrics."""

    leader: Any
    converged: bool
    rounds: int
    metrics: Any
    node_outputs: dict[Node, Any] = field(repr=False, default_factory=dict)


class FloodMaxProgram(NodeProgram):
    """Per-vertex program: broadcast the largest label heard, for ``rounds`` rounds.

    The round budget is part of the program (every node halts after the same
    round), so termination needs no extra communication; correctness of the
    elected leader requires ``rounds >=`` the graph's diameter.

    The round handler folds the inbox's payload lists directly instead of
    going through :class:`~repro.distributed.program.BroadcastNodeProgram`'s
    per-sender ``heard`` dict: this program is the E18 throughput workload,
    and the engines under test should dominate the wall time, not the
    program.
    """

    def __init__(self, node: Node, rounds: int) -> None:
        self.best = node
        self.rounds = rounds

    def on_start(self, ctx: NodeContext) -> None:
        """Broadcast my own label (round-0 traffic, delivered in round 1)."""
        if self.rounds > 0:
            ctx.broadcast(self.best)
        else:
            ctx.set_output(self.best)
            ctx.halt()

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        """Fold the neighbours' broadcasts into my maximum; halt after the budget."""
        best = self.best
        for payloads in inbox.values():
            for value in payloads:
                if value > best:
                    best = value
        self.best = best
        if ctx.round >= self.rounds:
            ctx.set_output(best)
            ctx.halt()
            return
        ctx.broadcast(best)


def run_flood_max(
    graph,
    rounds: int,
    model: CommunicationModel | None = None,
    seed: int | None = None,
    engine: str = "indexed",
    max_rounds: int = 10_000,
) -> FloodMaxResult:
    """Run flood-max and report whether the network agreed on one leader.

    ``model`` defaults to an enforcing broadcast-CONGEST policy (integer
    labels always fit the budget); ``engine`` selects the simulator engine —
    the workload is pure broadcast, so all three engines accept it.
    """
    n = graph.number_of_nodes()
    model = model if model is not None else broadcast_congest_model(n)
    sim = Simulator(
        graph, lambda v: FloodMaxProgram(v, rounds), model=model, seed=seed, engine=engine
    )
    run = sim.run(max_rounds=max_rounds)
    values = set(run.outputs.values())
    converged = len(values) == 1
    return FloodMaxResult(
        leader=next(iter(values)) if converged else None,
        converged=converged,
        rounds=run.rounds,
        metrics=run.metrics,
        node_outputs=run.outputs,
    )


__all__ = ["FloodMaxProgram", "FloodMaxResult", "run_flood_max"]
