"""Flood-max: leader election by broadcast flooding of the maximum label.

The canonical broadcast-CONGEST workload (Lynch, *Distributed Algorithms*,
Section 4.1): every vertex repeatedly broadcasts the largest node identifier
it has heard of; after ``R`` rounds each vertex knows the maximum label in
its ``R``-hop neighbourhood, and for ``R >=`` diameter the whole graph
agrees on one leader.  Messages are single integer labels, comfortably
inside the O(log n)-bit broadcast-CONGEST budget, and every node broadcasts
every round — which makes this the densest pure-broadcast traffic pattern
the simulator can produce and therefore the E18 scale workload for the
``batch`` engine fast path.

Two variants ship: the classic fixed-round-budget :class:`FloodMaxProgram`
(assumes reliable links) and the retransmitting
:class:`RobustFloodMaxProgram`, which provably terminates under arbitrary
message loss and is the E19 robustness workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain
from typing import Any

from repro.distributed.adversary import Adversary
from repro.distributed.models import CommunicationModel, broadcast_congest_model
from repro.distributed.node import NodeContext
from repro.distributed.program import Inbox, Node, NodeProgram
from repro.distributed.simulator import Simulator
from repro.distributed.vectorize import EngineView, MaxFloodKernel, VectorProgram


@dataclass
class FloodMaxResult:
    """Outcome of a flood-max run: leader (if agreed), convergence, metrics."""

    leader: Any
    converged: bool
    rounds: int
    metrics: Any
    node_outputs: dict[Node, Any] = field(repr=False, default_factory=dict)


class FloodMaxProgram(VectorProgram, NodeProgram):
    """Per-vertex program: broadcast the largest label heard, for ``rounds`` rounds.

    The round budget is part of the program (every node halts after the same
    round), so termination needs no extra communication; correctness of the
    elected leader requires ``rounds >=`` the graph's diameter.

    The round handler folds the inbox's payload lists directly instead of
    going through :class:`~repro.distributed.program.BroadcastNodeProgram`'s
    per-sender ``heard`` dict: this program is the E18 throughput workload,
    and the engines under test should dominate the wall time, not the
    program.
    """

    __slots__ = ("best", "rounds")

    def __init__(self, node: Node, rounds: int) -> None:
        self.best = node
        self.rounds = rounds

    def on_start(self, ctx: NodeContext) -> None:
        """Broadcast my own label (round-0 traffic, delivered in round 1)."""
        if self.rounds > 0:
            ctx.broadcast(self.best)
        else:
            ctx.set_output(self.best)
            ctx.halt()

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        """Fold the neighbours' broadcasts into my maximum; halt after the budget."""
        best = self.best
        if inbox.__class__ is dict:
            if inbox:
                # One C-level max over the flattened payload lists:
                # measurably cheaper than a nested Python loop at E18/E20
                # message volumes.
                heard = max(chain.from_iterable(inbox.values()))
                if heard > best:
                    best = heard
        else:
            # Columnar inbox view: push the fold into the engine, which
            # runs it over the round's flat payload column.  Identical
            # result to the dict branch (the engine-parity tests pin this).
            best = inbox.max_heard(best)
        self.best = best
        if ctx.round >= self.rounds:
            ctx.set_output(best)
            ctx.halt()
            return
        ctx.broadcast(best)

    @classmethod
    def vector_kernel(cls, programs, view: EngineView) -> MaxFloodKernel | None:
        """Lower a homogeneous fixed-budget flood-max run to the max-fold kernel."""
        if cls is not FloodMaxProgram:
            return None
        rounds = programs[0].rounds
        labels = view.labels
        for i, program in enumerate(programs):
            if program.rounds != rounds or program.best != labels[i]:
                return None
        return MaxFloodKernel(rounds=rounds)


def run_flood_max(
    graph,
    rounds: int,
    model: CommunicationModel | None = None,
    seed: int | None = None,
    engine: str = "indexed",
    max_rounds: int = 10_000,
    adversary: Adversary | None = None,
    streaming_metrics: bool = False,
    vectorize: bool = True,
) -> FloodMaxResult:
    """Run flood-max and report whether the network agreed on one leader.

    ``model`` defaults to an enforcing broadcast-CONGEST policy (integer
    labels always fit the budget); ``engine`` selects the simulator engine —
    the workload is pure broadcast, so all four engines accept it.  An
    ``adversary`` injects faults; the fixed round budget then may no longer
    cover the effective diameter, so check ``converged`` (or use
    :func:`run_robust_flood_max`, which retransmits until locally stable).
    ``streaming_metrics`` opts mega-scale runs into the bounded
    ``bits_per_round`` history (scalar counters stay exact).  ``vectorize``
    (columnar engine only) permits whole-round program lowering; pass False
    to force the stepped per-node path, e.g. for lowered-vs-stepped twins.
    """
    n = graph.number_of_nodes()
    model = model if model is not None else broadcast_congest_model(n)
    sim = Simulator(
        graph,
        lambda v: FloodMaxProgram(v, rounds),
        model=model,
        seed=seed,
        engine=engine,
        adversary=adversary,
        streaming_metrics=streaming_metrics,
        vectorize=vectorize,
    )
    run = sim.run(max_rounds=max_rounds)
    return _summarise(run)


def _summarise(run) -> FloodMaxResult:
    """Fold a flood-max :class:`RunResult` into the leader/convergence record."""
    values = set(run.outputs.values())
    converged = len(values) == 1
    return FloodMaxResult(
        leader=next(iter(values)) if converged else None,
        converged=converged,
        rounds=run.rounds,
        metrics=run.metrics,
        node_outputs=run.outputs,
    )


class RobustFloodMaxProgram(VectorProgram, NodeProgram):
    """Retransmitting flood-max: broadcast until locally stable for ``patience``.

    The fixed-budget :class:`FloodMaxProgram` assumes reliable links: it
    stops after exactly ``rounds`` rounds, so a single lost message can
    leave a vertex behind forever.  This variant *retransmits* — every node
    broadcasts its current best every round — and halts only after its best
    has been stable for ``patience`` consecutive rounds.

    Termination is unconditional (and therefore holds under any message
    loss): a node's best value strictly increases at most ``n - 1`` times,
    and between increases at most ``patience`` rounds can pass before the
    node halts, so every node halts within ``n * patience + 1`` rounds
    (:func:`robust_flood_max_round_bound`) — message loss only *removes*
    increases and hence only speeds termination up.  Correctness degrades
    gracefully instead: with reliable links and ``patience >=`` diameter the
    elected leader is exact, and under i.i.d. link loss at rate ``p`` a
    frontier link must fail ``patience`` consecutive times to stall the
    wave — per-link failure probability ``p**patience``, so losses are
    absorbed by modestly raising ``patience``.  The ``converged`` flag of
    the result reports whether agreement was actually reached.
    """

    def __init__(self, node: Node, patience: int) -> None:
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience!r}")
        self.best = node
        self.patience = patience
        self.stable = 0

    def on_start(self, ctx: NodeContext) -> None:
        """Broadcast my own label (round-0 traffic, delivered in round 1)."""
        ctx.broadcast(self.best)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        """Fold broadcasts into my maximum; halt after ``patience`` quiet rounds."""
        best = self.best
        for payloads in inbox.values():
            for value in payloads:
                if value > best:
                    best = value
        if best > self.best:
            self.best = best
            self.stable = 0
        else:
            self.stable += 1
        if self.stable >= self.patience:
            ctx.set_output(self.best)
            ctx.halt()
            return
        ctx.broadcast(best)

    @classmethod
    def vector_kernel(cls, programs, view: EngineView) -> MaxFloodKernel | None:
        """Lower a homogeneous retransmitting flood-max run to the max-fold kernel.

        Subclasses (:class:`~repro.core.robust_coding.RedundantFloodMaxProgram`,
        :class:`~repro.core.robust_coding.CodedFloodMaxProgram`) change the wire
        format and fold semantics, so lowering is pinned to this exact class —
        subclasses must opt in with their own kernel or fall back to stepping.
        """
        if cls is not RobustFloodMaxProgram:
            return None
        patience = programs[0].patience
        labels = view.labels
        for i, program in enumerate(programs):
            if (
                program.patience != patience
                or program.best != labels[i]
                or program.stable != 0
            ):
                return None
        return MaxFloodKernel(patience=patience)


def robust_flood_max_round_bound(n: int, patience: int) -> int:
    """Worst-case round count of :class:`RobustFloodMaxProgram`.

    Every node halts within ``n * patience + 1`` rounds regardless of
    message delivery: at most ``n - 1`` best-value increases, at most
    ``patience`` rounds between an increase and the next increase or halt,
    plus the round-0 start-up slack.
    """
    return n * patience + 1


def run_robust_flood_max(
    graph,
    patience: int,
    model: CommunicationModel | None = None,
    seed: int | None = None,
    engine: str = "indexed",
    adversary: Adversary | None = None,
    max_rounds: int | None = None,
    vectorize: bool = True,
) -> FloodMaxResult:
    """Run the retransmitting flood-max variant; terminates under any faults.

    ``max_rounds`` defaults to :func:`robust_flood_max_round_bound` — the
    provable worst case, so a fault-injected run can never trip the round
    limit.  ``converged`` is False when any two nodes disagree *or* any node
    has no output (e.g. it was crash-stopped before halting); callers that
    tolerate crashes should inspect ``node_outputs`` for survivor agreement.
    """
    n = graph.number_of_nodes()
    model = model if model is not None else broadcast_congest_model(n)
    if max_rounds is None:
        max_rounds = robust_flood_max_round_bound(n, patience)
    sim = Simulator(
        graph,
        lambda v: RobustFloodMaxProgram(v, patience),
        model=model,
        seed=seed,
        engine=engine,
        adversary=adversary,
        vectorize=vectorize,
    )
    return _summarise(sim.run(max_rounds=max_rounds))


__all__ = [
    "FloodMaxProgram",
    "FloodMaxResult",
    "RobustFloodMaxProgram",
    "robust_flood_max_round_bound",
    "run_flood_max",
    "run_robust_flood_max",
]
