"""Problem-variant adapters for the distributed 2-spanner algorithm.

Section 4.3 of the paper extends the minimum 2-spanner algorithm to the
weighted and client-server variants with small, local changes (what counts as
a coverable edge, which edges may form stars, the density denominator, and
the termination threshold).  These adapters capture exactly those changes so
that a single node program (:mod:`repro.core.two_spanner`) implements all
three undirected variants.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from fractions import Fraction

from repro.graphs.client_server import ClientServerInstance
from repro.graphs.graph import Edge, Graph, Node, edge_key


@dataclass(frozen=True)
class NodeSetup:
    """Everything a single vertex knows at time zero (local knowledge only).

    * ``neighbors`` — communication neighbours.
    * ``target_incident`` — incident edges that must end up covered.
    * ``star_pool`` — neighbours reachable by an edge that may be used in a
      star (all neighbours, except in the client-server variant where only
      server edges qualify).
    * ``leaf_weights`` — density denominators per leaf (``None`` = unweighted).
    * ``initial_spanner`` — incident edges taken into the spanner up front
      (the weighted variant adds every weight-0 edge immediately).
    * ``direct_add_allowed`` — incident target edges the vertex may add
      directly when it terminates (step 7).
    * ``zero_weight_leaves`` — leaves whose star edge has weight zero; the
      weighted variant force-includes them in every chosen star.
    * ``wmax_incident`` — maximum incident edge weight (1 for unweighted).
    """

    neighbors: frozenset[Node]
    target_incident: frozenset[Edge]
    star_pool: frozenset[Node]
    leaf_weights: dict[Node, Fraction] | None
    initial_spanner: frozenset[Edge]
    direct_add_allowed: frozenset[Edge]
    zero_weight_leaves: frozenset[Node]
    wmax_incident: Fraction


class SpannerVariant(ABC):
    """Adapter describing one undirected 2-spanner variant."""

    name: str = "base"
    threshold_divisor: int = 4

    @abstractmethod
    def node_setup(self, graph: Graph, v: Node) -> NodeSetup:
        """The vertex-local knowledge the algorithm starts from."""

    @abstractmethod
    def finish_threshold(self, wmax_2hop: Fraction) -> Fraction:
        """Densities at or above this keep a vertex active; below it, it terminates."""

    def graph(self) -> Graph | None:
        """The underlying graph when the variant owns one (client-server)."""
        return None


class UnweightedVariant(SpannerVariant):
    """The plain minimum 2-spanner problem (Theorem 1.3)."""

    name = "unweighted"

    def node_setup(self, graph: Graph, v: Node) -> NodeSetup:
        topo = graph.freeze()
        neighbors = topo.neighbor_label_set(topo.index[v])
        incident = frozenset(edge_key(v, u) for u in neighbors)
        return NodeSetup(
            neighbors=neighbors,
            target_incident=incident,
            star_pool=neighbors,
            leaf_weights=None,
            initial_spanner=frozenset(),
            direct_add_allowed=incident,
            zero_weight_leaves=frozenset(),
            wmax_incident=Fraction(1),
        )

    def finish_threshold(self, wmax_2hop: Fraction) -> Fraction:
        return Fraction(1)


class WeightedVariant(SpannerVariant):
    """The weighted minimum 2-spanner problem (Theorem 4.12, O(log Delta))."""

    name = "weighted"

    def node_setup(self, graph: Graph, v: Node) -> NodeSetup:
        topo = graph.freeze()
        i = topo.index[v]
        neighbors = topo.neighbor_label_set(i)
        incident = frozenset(edge_key(v, u) for u in neighbors)
        weights = {u: Fraction(w) for u, w in topo.neighbor_items(i)}
        zero = frozenset(u for u, w in weights.items() if w == 0)
        initial = frozenset(edge_key(v, u) for u in zero)
        wmax = max(weights.values(), default=Fraction(1))
        if wmax <= 0:
            wmax = Fraction(1)
        return NodeSetup(
            neighbors=neighbors,
            target_incident=incident,
            star_pool=neighbors,
            leaf_weights=weights,
            initial_spanner=initial,
            direct_add_allowed=incident,
            zero_weight_leaves=zero,
            wmax_incident=wmax,
        )

    def finish_threshold(self, wmax_2hop: Fraction) -> Fraction:
        if wmax_2hop <= 0:
            return Fraction(1)
        return Fraction(1) / Fraction(wmax_2hop)


class ClientServerVariant(SpannerVariant):
    """The client-server 2-spanner problem (Theorem 4.15).

    Only client edges need covering, only server edges may be used, and a
    vertex terminates when densities in its 2-neighbourhood drop below 1/2
    (a single server 2-path covering one client edge has density 1/2).
    """

    name = "client_server"

    def __init__(self, instance: ClientServerInstance) -> None:
        self.instance = instance

    def graph(self) -> Graph:
        return self.instance.graph

    def node_setup(self, graph: Graph, v: Node) -> NodeSetup:
        topo = graph.freeze()
        neighbors = topo.neighbor_label_set(topo.index[v])
        incident_clients = frozenset(
            edge_key(v, u) for u in neighbors if edge_key(v, u) in self.instance.clients
        )
        server_pool = frozenset(
            u for u in neighbors if edge_key(v, u) in self.instance.servers
        )
        direct = frozenset(e for e in incident_clients if e in self.instance.servers)
        return NodeSetup(
            neighbors=neighbors,
            target_incident=incident_clients,
            star_pool=server_pool,
            leaf_weights=None,
            initial_spanner=frozenset(),
            direct_add_allowed=direct,
            zero_weight_leaves=frozenset(),
            wmax_incident=Fraction(1),
        )

    def finish_threshold(self, wmax_2hop: Fraction) -> Fraction:
        return Fraction(1, 2)
