"""Candidate-star selection (paper Section 4.1).

A candidate vertex must propose a star of density at least ``rho~ / 4``
(``rho~ / 8`` in the directed variant).  Which such star is chosen matters:
Claim 4.4 / Lemma 4.5 — the O(log n log Delta) round bound — rely on the star
chosen while the rounded density stays fixed being *contained* in the star
chosen the previous iteration.  This module implements that stateful rule:

* first time a vertex becomes a candidate at a given rounded density: start
  from the densest star and greedily *augment* it with single leaves, or with
  disjoint stars of density >= threshold, as long as the density stays above
  the threshold;
* while the rounded density does not change: reuse the previous star if it is
  still dense enough, otherwise shrink to its densest sub-star and re-augment
  using only leaves of the previous star.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field
from fractions import Fraction

from repro.spanner.stars import densest_star, spanned_edges, star_density

Node = Hashable
Edge = tuple[Node, Node]


@dataclass
class StarSelectionState:
    """Per-vertex memory carried between iterations of the 2-spanner algorithm."""

    last_rho: Fraction | None = None
    last_leaves: frozenset[Node] | None = None
    last_iteration: int | None = None
    fallback_count: int = 0
    history: list[frozenset[Node]] = field(default_factory=list)


def _density(
    leaves: Iterable[Node],
    candidate_edges: set[Edge],
    leaf_weights: dict[Node, Fraction] | None,
) -> Fraction:
    return star_density(leaves, candidate_edges, leaf_weights)


def _augment(
    leaves: frozenset[Node],
    pool: set[Node],
    candidate_edges: set[Edge],
    leaf_weights: dict[Node, Fraction] | None,
    threshold: Fraction,
    method: str,
) -> frozenset[Node]:
    """Greedy augmentation: add single leaves, else disjoint dense stars.

    Mirrors Section 4.1: keep adding an edge (a single leaf) while the density
    of the enlarged star stays at least ``threshold``; when no single leaf
    works, add a *disjoint* star of density at least ``threshold`` (computed
    on the remaining pool); stop when neither exists.
    """
    current = set(leaves)
    # Adjacency within the candidate edges, for cheap incremental density updates.
    adjacency: dict[Node, set[Node]] = {}
    for u, w in candidate_edges:
        adjacency.setdefault(u, set()).add(w)
        adjacency.setdefault(w, set()).add(u)

    def weight_of(v: Node) -> Fraction:
        if leaf_weights is None:
            return Fraction(1)
        return Fraction(leaf_weights.get(v, 1))

    spanned_count = len(spanned_edges(current, candidate_edges))
    total_weight = sum((weight_of(v) for v in current), Fraction(0))

    while True:
        # 1. Try a single-leaf addition keeping the density above the threshold.
        best_leaf = None
        best_gain = -1
        for u in sorted(pool - current, key=repr):
            gain = len(adjacency.get(u, set()) & current)
            new_weight = total_weight + weight_of(u)
            if new_weight <= 0:
                continue
            if Fraction(spanned_count + gain) / new_weight >= threshold:
                if gain > best_gain:
                    best_gain = gain
                    best_leaf = u
        if best_leaf is not None:
            current.add(best_leaf)
            spanned_count += best_gain
            total_weight += weight_of(best_leaf)
            continue

        # 2. Try a disjoint star of density at least the threshold.
        remaining = pool - current
        if not remaining:
            break
        remaining_edges = {
            e for e in candidate_edges if e[0] in remaining and e[1] in remaining
        }
        weights = (
            None
            if leaf_weights is None
            else {v: weight_of(v) for v in remaining}
        )
        disjoint, disjoint_density = densest_star(
            remaining, remaining_edges, weights, method=method
        )
        if disjoint and disjoint_density >= threshold:
            current |= disjoint
            spanned_count = len(spanned_edges(current, candidate_edges))
            total_weight = sum((weight_of(v) for v in current), Fraction(0))
            continue
        break
    return frozenset(current)


def choose_candidate_star(
    pool: set[Node],
    candidate_edges: set[Edge],
    rho_rounded: Fraction,
    state: StarSelectionState,
    iteration: int,
    leaf_weights: dict[Node, Fraction] | None = None,
    threshold_divisor: int = 4,
    method: str = "exact",
    follow_paper_rule: bool = True,
    force_include: Iterable[Node] = (),
) -> frozenset[Node]:
    """Choose the star a candidate proposes this iteration (Section 4.1).

    ``pool`` is the allowed leaf set (all neighbours, or the server-neighbours
    in the client-server variant); ``candidate_edges`` is ``H_v`` restricted
    to the pool; ``rho_rounded`` the vertex's current rounded density.
    ``force_include`` lists leaves that are always added to the result (the
    weighted variant force-includes zero-weight leaves, which never lower the
    density).  Setting ``follow_paper_rule=False`` ignores the cross-iteration
    containment rule and always returns a freshly augmented densest star —
    the E15 ablation showing why the paper's rule matters for round counts.
    """
    threshold = Fraction(rho_rounded) / threshold_divisor
    forced = frozenset(force_include) & pool

    def fresh(restricted_pool: set[Node]) -> frozenset[Node]:
        edges = {
            e
            for e in candidate_edges
            if e[0] in restricted_pool and e[1] in restricted_pool
        }
        weights = (
            None
            if leaf_weights is None
            else {v: Fraction(leaf_weights.get(v, 1)) for v in restricted_pool}
        )
        base, _ = densest_star(restricted_pool, edges, weights, method=method)
        return _augment(base, restricted_pool, edges, weights, threshold, method)

    same_rho_streak = (
        follow_paper_rule
        and state.last_rho == rho_rounded
        and state.last_leaves is not None
        and state.last_iteration == iteration - 1
    )

    if not same_rho_streak:
        leaves = fresh(set(pool))
    else:
        previous = frozenset(state.last_leaves or frozenset())
        prev_density = _density(previous, candidate_edges, leaf_weights)
        if previous and prev_density >= threshold:
            leaves = previous
        else:
            shrunk = fresh(set(previous))
            if shrunk and _density(shrunk, candidate_edges, leaf_weights) >= threshold:
                leaves = shrunk
            else:
                # Claim 4.4 proves this branch is unreachable; keep it as a
                # counted fallback so tests can assert it never fires.
                state.fallback_count += 1
                leaves = fresh(set(pool))

    leaves = frozenset(leaves | forced)
    state.last_rho = rho_rounded
    state.last_leaves = leaves
    state.last_iteration = iteration
    state.history.append(leaves)
    return leaves
