"""Distributed minimum dominating set with a *guaranteed* O(log Delta) ratio
(paper Section 5, Theorem 5.1), in the CONGEST model.

The structure mirrors the 2-spanner algorithm but is much lighter: the star
of a vertex is its closed neighbourhood, its density is the number of still
uncovered vertices it would dominate, and every message is a constant number
of integers, so the algorithm genuinely fits the CONGEST bandwidth budget
(the simulator enforces it).

One iteration is a pipeline of six communication rounds:

* ``report`` — my covered / done flags (also absorbs last iteration's "joined"
  announcements);
* ``density`` — my density (uncovered vertices in my closed neighbourhood);
* ``max`` — the maximum density seen in my closed neighbourhood (so that the
  next phase knows the 2-hop maximum);
* ``candidate`` — vertices whose rounded density attains the 2-hop maximum
  announce themselves with a random rank in {1..n^4};
* ``vote`` — every uncovered vertex votes for the first candidate covering it
  (by rank, then identifier);
* ``add`` — candidates with at least |C_v|/8 votes join the dominating set.

Messages are tuples headed by a one-character tag to keep them well inside
O(log n) bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any

from repro.distributed.models import CommunicationModel, congest_model
from repro.distributed.node import NodeContext
from repro.distributed.program import Inbox, NodeProgram
from repro.distributed.simulator import Simulator
from repro.graphs.graph import Graph, Node
from repro.spanner.stars import rounded_up_power_of_two

PHASES = ("report", "density", "max", "candidate", "vote", "add")
ROUNDS_PER_ITERATION = len(PHASES)


@dataclass
class MDSOptions:
    """Knobs of the MDS algorithm (defaults follow the paper)."""

    vote_fraction: Fraction = Fraction(1, 8)
    max_iterations: int = 2_000


@dataclass
class MDSResult:
    """The dominating set chosen plus run statistics."""

    dominators: set[Node]
    rounds: int
    iterations: int
    metrics: Any
    node_outputs: dict[Node, Any] = field(repr=False, default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.dominators)


class MDSProgram(NodeProgram):
    """Per-vertex program for the guaranteed-ratio MDS algorithm."""

    def __init__(self, node: Node, neighbors: frozenset[Node], options: MDSOptions) -> None:
        self.node = node
        self.neighbors = neighbors
        self.options = options

        self.in_set = False
        self.covered = False
        self.neighbor_covered: dict[Node, bool] = {u: False for u in neighbors}
        self.neighbor_done: dict[Node, bool] = {u: False for u in neighbors}

        self.phase_index = 0
        self.iteration = 0
        self.locally_done = False
        self.done_broadcasts = 0

        self.rho = 0
        self.one_hop_max = 0
        self.two_hop_max = 0
        self.is_candidate = False
        self.my_rank = 0
        self.cv_size = 0
        self.votes = 0

    # ------------------------------------------------------------------ start
    def on_start(self, ctx: NodeContext) -> None:
        if not self.neighbors:
            # An isolated vertex must dominate itself.
            self.in_set = True
            ctx.set_output({"in_set": True, "iterations": 0})
            ctx.halt()

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        phase = PHASES[self.phase_index]
        getattr(self, f"_phase_{phase}")(ctx, inbox)
        if not ctx.halted:
            self.phase_index = (self.phase_index + 1) % ROUNDS_PER_ITERATION

    # --------------------------------------------------------------- handlers
    def _phase_report(self, ctx: NodeContext, inbox: Inbox) -> None:
        for _, payloads in inbox.items():
            for msg in payloads:
                if msg[0] == "j":
                    self.covered = True
        if self.in_set:
            self.covered = True
        if (
            self.locally_done
            and self.done_broadcasts >= 1
            and all(self.neighbor_done.values())
        ):
            ctx.set_output({"in_set": self.in_set, "iterations": self.iteration})
            ctx.halt()
            return
        self.iteration += 1
        if self.iteration > self.options.max_iterations:
            raise RuntimeError(f"MDS exceeded {self.options.max_iterations} iterations")
        ctx.broadcast(("r", int(self.covered), int(self.locally_done)))
        if self.locally_done:
            self.done_broadcasts += 1

    def _phase_density(self, ctx: NodeContext, inbox: Inbox) -> None:
        for sender, payloads in inbox.items():
            for msg in payloads:
                if msg[0] == "r":
                    self.neighbor_covered[sender] = bool(msg[1])
                    self.neighbor_done[sender] = bool(msg[2])
        uncovered_nbrs = sum(1 for u in self.neighbors if not self.neighbor_covered[u])
        self.rho = uncovered_nbrs + (0 if self.covered else 1)
        ctx.broadcast(("d", self.rho))

    def _phase_max(self, ctx: NodeContext, inbox: Inbox) -> None:
        best = self.rho
        for _, payloads in inbox.items():
            for msg in payloads:
                if msg[0] == "d":
                    best = max(best, msg[1])
        self.one_hop_max = best
        ctx.broadcast(("m", best))

    def _phase_candidate(self, ctx: NodeContext, inbox: Inbox) -> None:
        best = self.one_hop_max
        for _, payloads in inbox.items():
            for msg in payloads:
                if msg[0] == "m":
                    best = max(best, msg[1])
        self.two_hop_max = best

        self.is_candidate = False
        self.cv_size = 0
        self.votes = 0
        self.my_rank = 0

        if not self.locally_done and self.rho == 0:
            # Everything I could dominate is already covered.
            self.locally_done = True
        rounded_mine = rounded_up_power_of_two(Fraction(self.rho))
        rounded_max = rounded_up_power_of_two(Fraction(self.two_hop_max))
        if not self.locally_done and self.rho >= 1 and rounded_mine >= rounded_max:
            self.is_candidate = True
            self.cv_size = self.rho
            self.my_rank = ctx.rng.randint(1, max(2, ctx.n**4))
            ctx.broadcast(("c", self.my_rank))

    def _phase_vote(self, ctx: NodeContext, inbox: Inbox) -> None:
        candidates: list[tuple[int, str, Node]] = []
        for sender, payloads in inbox.items():
            for msg in payloads:
                if msg[0] == "c":
                    candidates.append((msg[1], repr(sender), sender))
        if self.covered:
            return
        if self.is_candidate:
            candidates.append((self.my_rank, repr(self.node), self.node))
        if not candidates:
            return
        _, _, winner = min(candidates)
        if winner == self.node:
            self.votes += 1
        else:
            ctx.send(winner, ("v",))

    def _phase_add(self, ctx: NodeContext, inbox: Inbox) -> None:
        for _, payloads in inbox.items():
            for msg in payloads:
                if msg[0] == "v":
                    self.votes += 1
        if self.is_candidate and self.cv_size > 0:
            needed = Fraction(self.cv_size) * self.options.vote_fraction
            if Fraction(self.votes) >= needed:
                self.in_set = True
                self.covered = True
                ctx.broadcast(("j",))


def run_mds(
    graph: Graph,
    options: MDSOptions | None = None,
    seed: int | None = None,
    model: CommunicationModel | None = None,
    max_rounds: int = 200_000,
    adversary=None,
) -> MDSResult:
    """Run the guaranteed O(log Delta) MDS algorithm (CONGEST model by default).

    ``adversary`` forwards a fault policy to the simulator (the voting
    rounds assume reliable delivery; meant for golden-stability checks).
    """
    options = options if options is not None else MDSOptions()
    model = model if model is not None else congest_model(graph.number_of_nodes(), enforce=True)

    topo = graph.freeze()

    def factory(v: Node) -> MDSProgram:
        return MDSProgram(v, topo.neighbor_label_set(topo.index[v]), options)

    sim = Simulator(graph, factory, model=model, seed=seed, adversary=adversary)
    run = sim.run(max_rounds=max_rounds)
    dominators = {v for v, out in run.outputs.items() if out and out.get("in_set")}
    iterations = max((out["iterations"] for out in run.outputs.values() if out), default=0)
    return MDSResult(
        dominators=dominators,
        rounds=run.rounds,
        iterations=iterations,
        metrics=run.metrics,
        node_outputs=run.outputs,
    )
