"""Distributed directed minimum 2-spanner approximation (paper Section 4.3.1).

The directed variant follows the undirected algorithm with three changes
(Claims 4.10-4.11): densest directed stars are approximated within a factor
two by ignoring directions, the star-density threshold becomes rho/8, and the
rounded density of a vertex is clamped to be non-increasing across iterations
(because it is itself only a 2-approximation).

Communication is bidirectional (paper Section 1.5): a vertex can message both
its in- and out-neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any

from repro.core.star_selection import StarSelectionState, choose_candidate_star
from repro.core.two_spanner import TwoSpannerOptions
from repro.distributed.models import CommunicationModel, local_model
from repro.distributed.node import NodeContext
from repro.distributed.program import Inbox, NodeProgram
from repro.distributed.simulator import Simulator
from repro.graphs.digraph import Arc, DiGraph
from repro.graphs.graph import Node, edge_key
from repro.spanner.stars import (
    directed_spanned_arcs,
    directed_star_arcs,
    rounded_up_power_of_two,
)

PHASES = ("cover", "report", "density", "max", "candidate", "vote", "add")
ROUNDS_PER_ITERATION = len(PHASES)


@dataclass
class DirectedTwoSpannerResult:
    """Union of per-vertex outputs for the directed algorithm."""

    arcs: set[Arc]
    rounds: int
    iterations: int
    metrics: Any
    node_outputs: dict[Node, Any] = field(repr=False, default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.arcs)

    def cost(self, graph: DiGraph) -> float:
        return sum(graph.weight(u, v) for u, v in self.arcs)


@dataclass(frozen=True)
class _DirectedSetup:
    """Vertex-local knowledge for the directed program."""

    neighbors: frozenset[Node]
    out_arcs: frozenset[Arc]
    in_arcs: frozenset[Arc]


class DirectedTwoSpannerProgram(NodeProgram):
    """Per-vertex program for the directed 2-spanner algorithm."""

    def __init__(self, node: Node, setup: _DirectedSetup, options: TwoSpannerOptions) -> None:
        self.node = node
        self.setup = setup
        self.options = options
        self.divisor = options.threshold_divisor if options.threshold_divisor is not None else 8

        self.incident_arcs: frozenset[Arc] = setup.out_arcs | setup.in_arcs
        # Knowledge of arcs in the 2-neighbourhood (arcs incident to neighbours).
        self.known_arcs: set[Arc] = set(self.incident_arcs)
        self.covered: set[Arc] = set()
        self.incident_spanner: set[Arc] = set()
        self.my_spanner: set[Arc] = set()
        self.neighbor_done: dict[Node, bool] = {u: False for u in setup.neighbors}

        self.phase_index = 0
        self.iteration = 0
        self.locally_done = False
        self.done_broadcasts = 0
        self.selection_state = StarSelectionState()
        self.announced_covered_via: set[Arc] = set()
        self.reported_covered: set[Arc] = set()
        self.rho_clamp: Fraction | None = None

        self.current_hv: set[Arc] = set()
        self.rho: Fraction = Fraction(0)
        self.rho_rounded: Fraction = Fraction(0)
        self.one_hop_max: tuple[Fraction, Fraction] | None = None
        self.is_candidate = False
        self.is_finishing = False
        self.candidate_leaves: frozenset[Node] = frozenset()
        self.candidate_arcs: frozenset[Arc] = frozenset()
        self.candidate_cv: set[Arc] = set()
        self.votes_received: set[Arc] = set()

    # ------------------------------------------------------------------ start
    def on_start(self, ctx: NodeContext) -> None:
        if not self.setup.neighbors:
            ctx.set_output(self._output())
            ctx.halt()
            return
        ctx.broadcast({"kind": "hello", "arcs": sorted(self.incident_arcs, key=repr)})

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.round == 1:
            for _, payloads in inbox.items():
                for msg in payloads:
                    for arc in msg["arcs"]:
                        self.known_arcs.add(tuple(arc))
            self._send_cover(ctx)
            self.phase_index = 1
            return
        phase = PHASES[self.phase_index]
        getattr(self, f"_phase_{phase}")(ctx, inbox)
        if not ctx.halted:
            self.phase_index = (self.phase_index + 1) % ROUNDS_PER_ITERATION

    # --------------------------------------------------------------- geometry
    def _has_arc(self, u: Node, w: Node) -> bool:
        return (u, w) in self.known_arcs

    def _spannable(self, arc: Arc) -> bool:
        """Can my full star 2-span the arc (u, w)?  Needs (u, me) and (me, w)."""
        u, w = arc
        return (u, self.node) in self.known_arcs and (self.node, w) in self.known_arcs

    # --------------------------------------------------------------- handlers
    def _phase_cover(self, ctx: NodeContext, inbox: Inbox) -> None:
        for sender, payloads in inbox.items():
            for msg in payloads:
                if msg.get("kind") == "added_star":
                    for arc in msg["arcs"]:
                        arc = tuple(arc)
                        if self.node in arc:
                            self.incident_spanner.add(arc)
                        self.covered.add(arc)
                elif msg.get("kind") == "added_arcs":
                    for arc in msg["arcs"]:
                        arc = tuple(arc)
                        if self.node in arc:
                            self.incident_spanner.add(arc)
                        self.covered.add(arc)
        self.covered |= self.incident_spanner
        self._send_cover(ctx)

    def _send_cover(self, ctx: NodeContext) -> None:
        newly: list[Arc] = []
        in_span = {u for (u, w) in self.incident_spanner if w == self.node}
        out_span = {w for (u, w) in self.incident_spanner if u == self.node}
        for u in in_span:
            for w in out_span:
                if u == w:
                    continue
                pair = (u, w)
                if pair in self.known_arcs and pair not in self.announced_covered_via:
                    newly.append(pair)
                    self.announced_covered_via.add(pair)
                    self.covered.add(pair)
        ctx.broadcast({"kind": "cover", "pairs": newly})

    def _phase_report(self, ctx: NodeContext, inbox: Inbox) -> None:
        for _, payloads in inbox.items():
            for msg in payloads:
                for pair in msg.get("pairs", []):
                    self.covered.add(tuple(pair))
        if (
            self.locally_done
            and self.done_broadcasts >= 1
            and all(self.neighbor_done.values())
        ):
            ctx.set_output(self._output())
            ctx.halt()
            return
        self.iteration += 1
        if self.iteration > self.options.max_iterations:
            raise RuntimeError(
                f"directed 2-spanner exceeded {self.options.max_iterations} iterations"
            )
        newly = sorted(
            (a for a in self.incident_arcs if a in self.covered and a not in self.reported_covered),
            key=repr,
        )
        self.reported_covered.update(newly)
        ctx.broadcast({"kind": "report", "covered": newly, "done": self.locally_done})
        if self.locally_done:
            self.done_broadcasts += 1

    def _phase_density(self, ctx: NodeContext, inbox: Inbox) -> None:
        for sender, payloads in inbox.items():
            for msg in payloads:
                self.neighbor_done[sender] = bool(msg.get("done", False))
                for arc in msg.get("covered", []):
                    self.covered.add(tuple(arc))
        self.current_hv = {
            a for a in self.known_arcs if a not in self.covered and self._spannable(a)
        }
        self.rho, self.rho_rounded = self._densities()
        ctx.broadcast({"kind": "density", "rho": self.rho, "rho_rounded": self.rho_rounded})

    def _densities(self) -> tuple[Fraction, Fraction]:
        if not self.current_hv:
            return Fraction(0), Fraction(0)
        undirected = {edge_key(u, w) for u, w in self.current_hv}
        leaves, _ = self._densest_undirected(self.setup.neighbors, undirected)
        arcs = directed_star_arcs_from_known(self.known_arcs, self.node, leaves)
        spanned = {
            a
            for a in self.current_hv
            if a[0] in leaves and a[1] in leaves
        }
        density = Fraction(len(spanned), len(arcs)) if arcs else Fraction(0)
        rounded = rounded_up_power_of_two(density)
        # The density estimate is a 2-approximation; clamp it to be non-increasing.
        if self.rho_clamp is not None:
            rounded = min(rounded, self.rho_clamp)
        self.rho_clamp = rounded
        return density, rounded

    def _densest_undirected(self, pool, undirected_edges):
        from repro.spanner.stars import densest_star

        return densest_star(pool, undirected_edges, method=self.options.densest_method)

    def _phase_max(self, ctx: NodeContext, inbox: Inbox) -> None:
        rho_max = self.rho
        rounded_max = self.rho_rounded
        for _, payloads in inbox.items():
            for msg in payloads:
                rho_max = max(rho_max, msg["rho"])
                rounded_max = max(rounded_max, msg["rho_rounded"])
        self.one_hop_max = (rho_max, rounded_max)
        ctx.broadcast({"kind": "max", "rho": rho_max, "rho_rounded": rounded_max})

    def _phase_candidate(self, ctx: NodeContext, inbox: Inbox) -> None:
        assert self.one_hop_max is not None
        rho_max2, rounded_max2 = self.one_hop_max
        for _, payloads in inbox.items():
            for msg in payloads:
                rho_max2 = max(rho_max2, msg["rho"])
                rounded_max2 = max(rounded_max2, msg["rho_rounded"])

        self.is_candidate = False
        self.is_finishing = False
        self.candidate_leaves = frozenset()
        self.candidate_arcs = frozenset()
        self.candidate_cv = set()
        self.votes_received = set()

        threshold = Fraction(1)
        if not self.locally_done and rho_max2 < threshold:
            self.is_finishing = True
            return
        if not self.locally_done and self.rho >= threshold and self.rho_rounded >= rounded_max2:
            self.is_candidate = True
            undirected = {edge_key(u, w) for u, w in self.current_hv}
            self.candidate_leaves = choose_candidate_star(
                set(self.setup.neighbors),
                undirected,
                self.rho_rounded,
                self.selection_state,
                self.iteration,
                threshold_divisor=self.divisor,
                method=self.options.densest_method,
                follow_paper_rule=self.options.follow_paper_rule,
            )
            self.candidate_arcs = directed_star_arcs_from_known(
                self.known_arcs, self.node, self.candidate_leaves
            )
            self.candidate_cv = {
                a
                for a in self.current_hv
                if a[0] in self.candidate_leaves and a[1] in self.candidate_leaves
            }
            rank = ctx.rng.randint(1, max(2, ctx.n**4))
            ctx.broadcast(
                {
                    "kind": "candidate",
                    "arcs": sorted(self.candidate_arcs, key=repr),
                    "rank": rank,
                    "center": self.node,
                }
            )

    def _phase_vote(self, ctx: NodeContext, inbox: Inbox) -> None:
        announcements = []
        for sender, payloads in inbox.items():
            for msg in payloads:
                if msg.get("kind") != "candidate":
                    continue
                arcs = {tuple(a) for a in msg["arcs"]}
                announcements.append((msg["rank"], repr(msg["center"]), sender, arcs))
        if not announcements:
            return
        votes: dict[Node, list[Arc]] = {}
        for arc in self.setup.out_arcs:  # the tail of each arc casts its vote
            if arc in self.covered:
                continue
            u, w = arc
            spanning = [
                (rank, center_repr, sender)
                for rank, center_repr, sender, star_arcs in announcements
                if (u, sender) in star_arcs and (sender, w) in star_arcs
            ]
            if not spanning:
                continue
            _, _, winner = min(spanning)
            votes.setdefault(winner, []).append(arc)
        for winner, arcs in votes.items():
            ctx.send(winner, {"kind": "vote", "arcs": sorted(arcs, key=repr)})

    def _phase_add(self, ctx: NodeContext, inbox: Inbox) -> None:
        for _, payloads in inbox.items():
            for msg in payloads:
                if msg.get("kind") != "vote":
                    continue
                for arc in msg["arcs"]:
                    arc = tuple(arc)
                    if arc in self.candidate_cv:
                        self.votes_received.add(arc)

        if self.is_candidate and self.candidate_cv:
            needed = Fraction(len(self.candidate_cv)) * self.options.vote_fraction
            if Fraction(len(self.votes_received)) >= needed:
                self.my_spanner |= self.candidate_arcs
                self.incident_spanner |= self.candidate_arcs
                self.covered |= self.candidate_arcs
                ctx.broadcast(
                    {"kind": "added_star", "arcs": sorted(self.candidate_arcs, key=repr)}
                )

        if self.is_finishing:
            direct = sorted(
                (a for a in self.incident_arcs if a not in self.covered), key=repr
            )
            if direct:
                self.my_spanner.update(direct)
                self.incident_spanner.update(direct)
                self.covered.update(direct)
                ctx.broadcast({"kind": "added_arcs", "arcs": direct})
            self.locally_done = True

    def _output(self) -> dict[str, Any]:
        return {
            "arcs": sorted(self.my_spanner, key=repr),
            "iterations": self.iteration,
            "fallbacks": self.selection_state.fallback_count,
        }


def directed_star_arcs_from_known(
    known_arcs: set[Arc], center: Node, leaves
) -> frozenset[Arc]:
    """Arcs between the centre and each leaf, both directions when both exist."""
    arcs: set[Arc] = set()
    for leaf in leaves:
        if (center, leaf) in known_arcs:
            arcs.add((center, leaf))
        if (leaf, center) in known_arcs:
            arcs.add((leaf, center))
    return frozenset(arcs)


def run_directed_two_spanner(
    graph: DiGraph,
    options: TwoSpannerOptions | None = None,
    seed: int | None = None,
    model: CommunicationModel | None = None,
    max_rounds: int = 200_000,
) -> DirectedTwoSpannerResult:
    """Run the distributed directed 2-spanner algorithm and collect the result."""
    options = options if options is not None else TwoSpannerOptions()
    model = model if model is not None else local_model(graph.number_of_nodes())

    topo = graph.freeze()

    def factory(v: Node) -> DirectedTwoSpannerProgram:
        setup = _DirectedSetup(
            neighbors=topo.neighbor_label_set(topo.index[v]),
            out_arcs=frozenset(graph.out_edges(v)),
            in_arcs=frozenset(graph.in_edges(v)),
        )
        return DirectedTwoSpannerProgram(v, setup, options)

    sim = Simulator(graph, factory, model=model, seed=seed)
    run = sim.run(max_rounds=max_rounds)
    arcs: set[Arc] = set()
    iterations = 0
    for output in run.outputs.values():
        if not output:
            continue
        arcs.update(tuple(a) for a in output["arcs"])
        iterations = max(iterations, output["iterations"])
    return DirectedTwoSpannerResult(
        arcs=arcs,
        rounds=run.rounds,
        iterations=iterations,
        metrics=run.metrics,
        node_outputs=run.outputs,
    )
