"""Lenzen-style routing and targeted-traffic workloads for the clique overlay.

The Congested Clique algorithms of the related-work line (Censor-Hillel,
Leitersdorf, Vulakh; arXiv 2205.09245) assume Lenzen's routing theorem as a
black box: any instance in which every node is the source and the
destination of at most ``n`` messages can be delivered in ``O(1)`` rounds.
This module reproduces the primitive in the repo's simulator as a reusable
two-phase program plus a deterministic, centrally computed schedule:

* **phase 1 (balancing)** — source ``s`` sends the ``j``-th message of the
  current batch to intermediate ``(s + 1 + j) mod n`` framed as
  ``(dst_index, payload)``; at most one message per link per round, and
  every intermediate receives at most one frame per source;
* **phase 2 (delivery)** — every intermediate keeps one FIFO queue per
  final destination and forwards one queue head per destination per round,
  for the batch's precomputed number of rounds.

The schedule (:func:`plan_clique_routing`) is computed once from the global
instance — batch count, per-batch phase-2 round count, total rounds — and
handed to every program, exactly the role the routing theorem's global
coordination plays in the paper.  Instances whose per-batch phase-2 load
exceeds an optional cap raise :class:`RoutingOverflowError` at planning
time; the program raises the same error if a queue survives its batch (a
schedule violation, impossible for a planner-produced schedule).

Self-addressed messages and frames whose intermediate already is the final
destination never touch the network: they are delivered locally, exactly as
a node "routing to itself" costs nothing in the model.

The module also hosts :class:`TargetedFanoutProgram` — the deterministic
targeted-traffic generator used by the E21 throughput scenarios, the
differential engine-parity suite and ``benchmarks/bench_e21_clique_listing.py``
— because it exercises precisely the ``ctx.send`` fast path this PR adds to
the batch and columnar engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.distributed.errors import SimulationError
from repro.distributed.models import CommunicationModel, congested_clique_model
from repro.distributed.node import NodeContext
from repro.distributed.program import Inbox, NodeProgram
from repro.distributed.simulator import Simulator
from repro.graphs.graph import Graph, Node

#: Fold modulus of the fan-out checksum (a Mersenne prime: cheap, collision
#: resistant enough for a differential fingerprint).
CHECKSUM_MOD = (1 << 61) - 1


class RoutingOverflowError(SimulationError):
    """A routing instance exceeds the schedule's capacity.

    Raised by :func:`plan_clique_routing` when a batch needs more phase-2
    rounds than ``max_phase2_rounds`` allows, and defensively by the
    program when a phase-2 queue survives its batch (a schedule violation).
    """


@dataclass(frozen=True)
class RoutingSchedule:
    """Centrally computed round plan of one routing instance.

    ``phase2_rounds[b]`` is the number of delivery rounds batch ``b``
    needs — the maximum, over (intermediate, destination) pairs, of frames
    batch ``b`` parks at that intermediate for that destination.  The
    program's total communication slots are ``sum(1 + r for r in
    phase2_rounds)`` and the run completes one round later (the round that
    drains the last inbox).
    """

    n: int
    num_batches: int
    phase2_rounds: tuple[int, ...]

    @property
    def total_rounds(self) -> int:
        """Simulator rounds a run of this schedule takes (incl. final drain)."""
        return sum(1 + r for r in self.phase2_rounds) + 1


def _intermediate(src: int, j: int, n: int) -> int:
    """Phase-1 target of the ``j``-th frame of ``src`` (never ``src`` itself)."""
    return (src + 1 + j) % n


def plan_clique_routing(
    n: int,
    outboxes: dict[int, list[int]],
    max_phase2_rounds: int | None = None,
) -> RoutingSchedule:
    """Compute the deterministic two-phase schedule of a routing instance.

    ``outboxes`` maps each source index to the list of destination indices
    of its messages (payloads are irrelevant to the schedule).  Messages
    with ``dst == src`` are local deliveries and occupy no slot.  Sources
    with more than ``n - 1`` routed messages are split into batches of
    ``n - 1`` (one frame per link in phase 1); batches are aligned across
    sources, so every batch is itself a valid ≤ n-messages-per-source
    instance — the routing theorem's precondition.
    """
    if n < 2:
        routed = any(d != s for s, dsts in outboxes.items() for d in dsts)
        if routed:
            raise RoutingOverflowError("routing needs at least 2 nodes")
        return RoutingSchedule(n=n, num_batches=0, phase2_rounds=())

    per_batch = n - 1
    num_batches = 0
    for src, dsts in outboxes.items():
        routed = sum(1 for d in dsts if d != src)
        if routed:
            num_batches = max(num_batches, -(-routed // per_batch))

    phase2: list[int] = []
    for b in range(num_batches):
        # loads[(intermediate, dst)] -> frames parked for that pair.
        loads: dict[tuple[int, int], int] = {}
        worst = 0
        for src, dsts in outboxes.items():
            routed = [d for d in dsts if d != src]
            j = 0
            for d in routed[b * per_batch : (b + 1) * per_batch]:
                mid = _intermediate(src, j, n)
                j += 1
                if mid == d:
                    continue  # delivered at the end of phase 1, no queue slot
                key = (mid, d)
                load = loads.get(key, 0) + 1
                loads[key] = load
                if load > worst:
                    worst = load
        if max_phase2_rounds is not None and worst > max_phase2_rounds:
            raise RoutingOverflowError(
                f"batch {b} needs {worst} phase-2 rounds, cap is "
                f"{max_phase2_rounds} (skewed destination load)"
            )
        phase2.append(worst)
    return RoutingSchedule(n=n, num_batches=num_batches, phase2_rounds=tuple(phase2))


class CliqueRoutingProgram(NodeProgram):
    """Per-node executor of a :class:`RoutingSchedule`.

    Every node follows the same global action timeline — phase-1 round of
    batch ``b``, then ``phase2_rounds[b]`` delivery rounds, for each batch
    — so no control messages are needed; the schedule *is* the
    coordination.  Received payloads accumulate in arrival order (within a
    round: ascending sender, per-link send order — the engines' inbox
    contract) and become the node's output, or the result of ``finish``
    when the caller supplies one (e.g. the clique-listing workload turns
    received edges into triangles).
    """

    def __init__(
        self,
        node: Node,
        my_index: int,
        messages: list[tuple[int, Any]],
        schedule: RoutingSchedule,
        labels: list[Node],
        rank: dict[Node, int],
        finish: Callable[[list[Any]], Any] | None = None,
    ) -> None:
        self.node = node
        self.me = my_index
        self.schedule = schedule
        self.labels = labels
        self.rank = rank
        self.finish = finish
        self.received: list[Any] = []
        # Routed frames, batched; self-addressed payloads deliver locally.
        self.routed: list[tuple[int, Any]] = []
        for dst, payload in messages:
            if dst == my_index:
                self.received.append(payload)
            else:
                self.routed.append((dst, payload))
        # Global action timeline: slot 0 fires in on_start, slot i in round i.
        actions: list[tuple[str, int]] = []
        for b in range(schedule.num_batches):
            actions.append(("p1", b))
            for _ in range(schedule.phase2_rounds[b]):
                actions.append(("p2", b))
        self.actions = actions
        self.queues: dict[int, list[Any]] = {}

    # ------------------------------------------------------------------ sends
    def _send_phase1(self, ctx: NodeContext, batch: int) -> None:
        n = self.schedule.n
        per_batch = n - 1
        labels = self.labels
        lo = batch * per_batch
        for j, (dst, payload) in enumerate(self.routed[lo : lo + per_batch]):
            mid = _intermediate(self.me, j, n)
            if mid == dst:
                # The balancing hop already is the destination: hand the
                # payload over as a bare frame, skipping its queue slot.
                ctx.send(labels[mid], (1, payload))
            else:
                ctx.send(labels[mid], (0, dst, payload))

    def _send_phase2(self, ctx: NodeContext) -> None:
        labels = self.labels
        for dst in sorted(self.queues):
            queue = self.queues[dst]
            if queue:
                ctx.send(labels[dst], (1, queue.pop(0)))

    def _ingest(self, inbox: Inbox, prev_action: tuple[str, int]) -> None:
        kind = prev_action[0]
        received = self.received
        queues = self.queues
        rank = self.rank
        # Ascending sender index: the indexed-family engines already deliver
        # in this order, the explicit sort makes the reference engine agree.
        for _, payloads in sorted(inbox.items(), key=lambda kv: rank[kv[0]]):
            for frame in payloads:
                if frame[0] == 1:
                    received.append(frame[1])
                elif kind == "p1":
                    _, dst, payload = frame
                    queues.setdefault(dst, []).append(payload)
                else:  # pragma: no cover - schedule violation
                    raise RoutingOverflowError(
                        f"node {self.node!r}: phase-1 frame arrived in a "
                        f"phase-2 slot"
                    )

    # ----------------------------------------------------------------- driver
    def on_start(self, ctx: NodeContext) -> None:
        if not self.actions:
            self._complete(ctx)
            return
        kind, batch = self.actions[0]
        if kind == "p1":
            self._send_phase1(ctx, batch)
        else:
            self._send_phase2(ctx)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        actions = self.actions
        slot = ctx.round
        self._ingest(inbox, actions[slot - 1])
        if slot >= len(actions):
            if any(self.queues.values()):
                raise RoutingOverflowError(
                    f"node {self.node!r}: {sum(map(len, self.queues.values()))} "
                    f"frame(s) survived the schedule"
                )
            self._complete(ctx)
            return
        kind, batch = actions[slot]
        if kind == "p1":
            if any(self.queues.values()):
                raise RoutingOverflowError(
                    f"node {self.node!r}: queue not drained at batch {batch} boundary"
                )
            self._send_phase1(ctx, batch)
        else:
            self._send_phase2(ctx)

    def _complete(self, ctx: NodeContext) -> None:
        out = self.received if self.finish is None else self.finish(self.received)
        ctx.set_output(out)
        ctx.halt()


@dataclass
class RoutingResult:
    """Per-node delivered payloads plus run statistics."""

    outputs: dict[Node, Any]
    schedule: RoutingSchedule
    rounds: int
    metrics: Any = field(repr=False, default=None)


def run_clique_routing(
    graph: Graph,
    messages: dict[int, list[tuple[int, Any]]],
    seed: int | None = 0,
    model: CommunicationModel | None = None,
    engine: str = "indexed",
    adversary=None,
    max_phase2_rounds: int | None = None,
    finish: Callable[[list[Any]], Any] | None = None,
) -> RoutingResult:
    """Route ``messages`` over the clique overlay of ``graph`` and collect.

    ``messages`` maps source *indices* (positions in the frozen topology's
    label order) to ``(destination index, payload)`` lists.  The overlay is
    the Congested Clique of the graph's vertex set, so the input graph's
    edges only matter to overlay accounting, not to reachability.  The
    returned outputs map node labels to their delivered payload lists (or
    to ``finish(received)`` when a finisher is supplied).
    """
    topo = graph.freeze()
    n = topo.n
    labels = list(topo.labels)
    schedule = plan_clique_routing(
        n,
        {src: [dst for dst, _ in msgs] for src, msgs in messages.items()},
        max_phase2_rounds=max_phase2_rounds,
    )
    if model is None:
        model = congested_clique_model(max(n, 2), enforce=False)
    rank = dict(topo.index)

    def factory(v: Node) -> CliqueRoutingProgram:
        i = topo.index[v]
        return CliqueRoutingProgram(
            v, i, messages.get(i, []), schedule, labels, rank, finish=finish
        )

    sim = Simulator(
        graph, factory, model=model, seed=seed, engine=engine, adversary=adversary
    )
    run = sim.run(max_rounds=schedule.total_rounds + 2)
    return RoutingResult(
        outputs=run.outputs,
        schedule=schedule,
        rounds=run.metrics.rounds,
        metrics=run.metrics,
    )


# ------------------------------------------------------------------- fan-out
class TargetedFanoutProgram(NodeProgram):
    """Deterministic targeted fan-out: the E21 throughput workload.

    Every round, every node sends one small int payload to each of its
    first ``fanout`` ascending neighbours and folds everything it hears
    into a running checksum.  Payload values live in a small space
    (``payload = (node + 13 * round) % 1021``) so the engines' payload
    size tables see heavy reuse — the traffic shape the targeted fast path
    is built for.  Pure ``ctx.send`` traffic: no broadcasts, valid on any
    model that admits targeted sends.
    """

    def __init__(self, node: Node, fanout: int, rounds: int) -> None:
        self.node = node
        self.fanout = fanout
        self.rounds = rounds
        self.checksum = 0
        self.heard = 0
        self.targets: list[Node] | None = None

    def _emit(self, ctx: NodeContext, round_no: int) -> None:
        if self.targets is None:
            self.targets = sorted(ctx.neighbors)[: self.fanout]
        base = (ctx.node_id if isinstance(ctx.node_id, int) else 0) + 13 * round_no
        for offset, dst in enumerate(self.targets):
            ctx.send(dst, (base + offset) % 1021)

    def on_start(self, ctx: NodeContext) -> None:
        self._emit(ctx, 0)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        checksum = self.checksum
        heard = self.heard
        for _, payloads in inbox.items():
            for payload in payloads:
                checksum = (checksum * 31 + payload + 1) % CHECKSUM_MOD
                heard += 1
        self.checksum = checksum
        self.heard = heard
        if ctx.round >= self.rounds:
            ctx.set_output((checksum, heard))
            ctx.halt()
            return
        self._emit(ctx, ctx.round)


@dataclass
class FanoutResult:
    """Folded checksum of a fan-out run plus statistics."""

    checksum: int
    heard: int
    rounds: int
    metrics: Any = field(repr=False, default=None)


def run_targeted_fanout(
    graph: Graph,
    fanout: int = 8,
    rounds: int = 24,
    seed: int | None = 0,
    model: CommunicationModel | None = None,
    engine: str = "indexed",
    adversary=None,
) -> FanoutResult:
    """Run the targeted fan-out workload and fold the global checksum.

    The checksum folds every node's ``(local checksum, messages heard)``
    output in ascending label order, so two runs agree iff every delivered
    payload (and its order) agreed — the differential fingerprint the
    engine-parity tests and the E21 bench compare.
    """
    from repro.distributed.models import local_model

    if model is None:
        model = local_model(graph.number_of_nodes())

    sim = Simulator(
        graph,
        lambda v: TargetedFanoutProgram(v, fanout, rounds),
        model=model,
        seed=seed,
        engine=engine,
        adversary=adversary,
    )
    run = sim.run(max_rounds=rounds + 2)
    checksum = 0
    heard = 0
    for v in sorted(run.outputs, key=repr):
        out = run.outputs[v]
        if out is None:
            continue
        local, local_heard = out
        checksum = (checksum * 1000003 + local) % CHECKSUM_MOD
        heard += local_heard
    return FanoutResult(
        checksum=checksum, heard=heard, rounds=run.metrics.rounds, metrics=run.metrics
    )


__all__ = [
    "CHECKSUM_MOD",
    "CliqueRoutingProgram",
    "FanoutResult",
    "RoutingOverflowError",
    "RoutingResult",
    "RoutingSchedule",
    "TargetedFanoutProgram",
    "plan_clique_routing",
    "run_clique_routing",
    "run_targeted_fanout",
]
