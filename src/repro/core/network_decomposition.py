"""Randomised low-diameter network decomposition (Linial & Saks, 1993).

The (1+eps)-approximation algorithm of Section 6 invokes a network
decomposition on the power graph G^r: a partition of the vertices into
clusters of weak diameter O(log n), coloured with O(log n) colours such that
two adjacent vertices whose clusters differ have clusters of different
colours.  Clusters of the same colour can therefore act in parallel without
coordination.

This module computes the decomposition centrally (one ball-carving phase per
colour, exactly the Linial-Saks process); the distributed cost of the
original algorithm is O(log^2 n) rounds, which
:func:`decomposition_round_bound` reports so that the (1+eps) driver can
account for it.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.graphs.graph import Graph, Node


@dataclass
class Decomposition:
    """A (colour, cluster) assignment for every vertex."""

    color_of: dict[Node, int]
    cluster_of: dict[Node, Node]  # cluster identified by its centre vertex
    num_colors: int
    max_cluster_diameter: int

    def clusters(self) -> dict[Node, set[Node]]:
        """Mapping cluster centre -> member vertices."""
        result: dict[Node, set[Node]] = {}
        for v, centre in self.cluster_of.items():
            result.setdefault(centre, set()).add(v)
        return result

    def same_color_clusters_nonadjacent(self, graph: Graph) -> bool:
        """The decomposition's defining property, checked against ``graph``."""
        for u in graph.nodes():
            for w in graph.neighbors(u):
                if (
                    self.color_of[u] == self.color_of[w]
                    and self.cluster_of[u] != self.cluster_of[w]
                ):
                    return False
        return True


def _truncated_geometric(rng: random.Random, p: float, cap: int) -> int:
    """Sample min(Geometric(p), cap) with support starting at 0."""
    value = 0
    while value < cap and rng.random() > p:
        value += 1
    return value


def network_decomposition(
    graph: Graph, seed: int | None = None, base: float = 2.0
) -> Decomposition:
    """Linial-Saks style ball carving: O(log n) colours, O(log n) weak diameter w.h.p.

    Colour classes are built one at a time.  In each phase every still
    unclustered vertex draws a truncated geometric radius and "bids" for all
    unclustered vertices within that distance; every unclustered vertex joins
    the highest-identifier bidder that reaches it, and becomes *finished* (gets
    the phase's colour) if it lies strictly inside that bidder's ball.
    Border vertices stay for later phases.
    """
    nodes = graph.nodes()
    n = max(2, len(nodes))
    rng = random.Random(seed)
    cap = max(1, int(math.ceil(base * math.log2(n))))
    p = 1.0 / (base * max(1.0, math.log2(n)))

    unclustered = set(nodes)
    color_of: dict[Node, int] = {}
    cluster_of: dict[Node, Node] = {}
    color = 0
    max_diameter = 0
    # The expected number of phases is O(log n); the hard cap below only
    # guards against pathological randomness.
    max_phases = 8 * cap + 8

    while unclustered and color < max_phases:
        radii = {v: _truncated_geometric(rng, p, cap) for v in unclustered}
        # Distances restricted to the unclustered subgraph keep clusters connected
        # within the still-active part of the graph.
        sub = graph.subgraph(unclustered)
        assignment: dict[Node, tuple[Node, int]] = {}
        for centre in sorted(unclustered, key=repr):
            dist = sub.bfs_distances(centre, max_depth=radii[centre])
            for v, d in dist.items():
                best = assignment.get(v)
                if best is None or repr(centre) > repr(best[0]):
                    assignment[v] = (centre, d)
        finished: dict[Node, Node] = {}
        for v, (centre, d) in assignment.items():
            # Only *interior* vertices of the winning ball finish this phase;
            # border vertices (d == radius) stay unclustered.  This is what
            # guarantees that same-colour clusters are non-adjacent.
            if d < radii[centre]:
                finished[v] = centre
        if not finished:
            # Nobody finished this phase (can happen when all radii are 0 and
            # bids collide); retry the phase with fresh randomness.
            color += 1
            continue
        for v, centre in finished.items():
            color_of[v] = color
            cluster_of[v] = centre
        # Track the largest cluster (weak) diameter for reporting.  The max
        # is order-insensitive, but iterate deterministically anyway so no
        # future edit inside this loop can inherit hash-order dependence.
        for centre in sorted(set(finished.values()), key=repr):
            members = {v for v, c in finished.items() if c == centre}
            ecc = 0
            dist = graph.bfs_distances(centre)
            for v in members:
                ecc = max(ecc, dist.get(v, 0))
            max_diameter = max(max_diameter, 2 * ecc)
        unclustered -= set(finished)
        color += 1

    # Any stragglers become singleton clusters with fresh colours.
    for v in sorted(unclustered, key=repr):
        color_of[v] = color
        cluster_of[v] = v
        color += 1

    return Decomposition(
        color_of=color_of,
        cluster_of=cluster_of,
        num_colors=color,
        max_cluster_diameter=max_diameter,
    )


def decomposition_round_bound(n: int) -> int:
    """The O(log^2 n) round cost of the distributed Linial-Saks algorithm."""
    if n < 2:
        return 1
    return int(math.ceil(math.log2(n)) ** 2)
