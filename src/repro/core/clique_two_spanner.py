"""Congested Clique 2-spanner in O(log n) rounds (Parter-Yogev style).

Parter and Yogev ("Congested Clique Algorithms for Graph Spanners",
arXiv:1805.05404) build spanners in the Congested Clique by repeatedly
sampling *hitting sets* of cluster centres with geometrically growing
probability, exploiting the all-to-all O(log n)-bit links to coordinate the
sampling globally in O(1) rounds per level.  This module implements that
scheme for 2-spanners:

* **Levels** ``t = 0 .. ceil(log2 n)``: every vertex elects itself a centre
  independently with probability ``min(1, 2^t / n)`` and announces the
  election with a 1-word broadcast over the clique.
* **Attach**: every vertex picks the first elected centre in its
  input-graph neighbourhood (smallest by ``repr``), adds that star edge to
  the spanner, and broadcasts the centre's identity.
* **Cover**: an input edge ``{u, v}`` is 2-spanned as soon as the attach
  histories ``A(u) ∪ {u}`` and ``A(v) ∪ {v}`` intersect: a common centre
  ``w`` gives the path ``u-w-v``, while ``v ∈ A(u)`` (or ``u ∈ A(v)``)
  means the edge itself was added.  Both endpoints deduce coverage from the
  same broadcasts, so they agree without extra communication.
* **Cleanup**: after the final level (election probability 1) each vertex
  adds its still-uncovered incident edges directly — the smaller endpoint
  owns the edge — which makes the output a valid 2-spanner unconditionally.

Every message is a constant number of words, so the run fits the Congested
Clique budget with ``enforce=True``; the whole algorithm takes exactly
``2 * ceil(log2 n) + 2`` rounds.  Dense common neighbourhoods are covered at
low levels by few centres, which is where the spanner compresses; the E17
benchmark compares rounds/bits against the paper's CONGEST 2-spanner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.distributed.adversary import Adversary
from repro.distributed.models import CommunicationModel, congested_clique_model
from repro.distributed.node import NodeContext
from repro.distributed.program import Inbox, NodeProgram
from repro.distributed.simulator import Simulator
from repro.graphs.graph import Edge, Graph, Node, edge_key


def clique_spanner_levels(n: int) -> int:
    """Number of sampling levels: ``ceil(log2 n) + 1`` (final level has p=1)."""
    if n < 2:
        return 1
    return (n - 1).bit_length() + 1


def clique_spanner_round_bound(n: int) -> int:
    """Round count of the algorithm: two rounds per level.

    Exact for any graph with at least one edge; vertices without neighbours
    halt in ``on_start``, so an edgeless graph finishes in 0 rounds.
    """
    return 2 * clique_spanner_levels(n)


@dataclass
class CliqueSpannerResult:
    """Union of the per-vertex spanner edges plus run statistics."""

    edges: set[Edge]
    rounds: int
    levels: int
    metrics: Any
    node_outputs: dict[Node, Any] = field(repr=False, default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.edges)


class CliqueTwoSpannerProgram(NodeProgram):
    """Per-vertex program: elect / attach two-round pipeline per level."""

    def __init__(self, node: Node) -> None:
        self.node = node
        self.levels = 0
        self.graph_nbrs: frozenset[Node] = frozenset()
        self.attached: set[Node] = set()  # centres I added a star edge to
        self.nbr_attached: dict[Node, set[Node]] = {}
        self.uncovered: set[Edge] = set()
        self.my_edges: set[Edge] = set()

    # ------------------------------------------------------------------ start
    def on_start(self, ctx: NodeContext) -> None:
        self.levels = clique_spanner_levels(ctx.n)
        self.graph_nbrs = ctx.graph_neighbors
        if not self.graph_nbrs:
            ctx.set_output({"edges": []})
            ctx.halt()
            return
        self.nbr_attached = {u: set() for u in self.graph_nbrs}
        self.uncovered = {edge_key(self.node, u) for u in self.graph_nbrs}
        self._elect(ctx, level=0)

    # ------------------------------------------------------------------ rounds
    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        r = ctx.round
        if r % 2 == 1:
            # Attach round for level (r-1)//2: react to the elections.
            self._attach(ctx, inbox)
            return
        # Even round: digest the attach broadcasts of level r//2 - 1 ...
        self._absorb_attaches(inbox)
        self._update_coverage()
        level = r // 2
        if level < self.levels:
            # ... and elect for the next level.
            self._elect(ctx, level)
        else:
            # All levels done: add the leftovers directly (smaller endpoint
            # owns the edge) and finish.
            for e in self.uncovered:
                if e[0] == self.node:
                    self.my_edges.add(e)
            ctx.set_output({"edges": sorted(self.my_edges, key=repr)})
            ctx.halt()

    # ----------------------------------------------------------------- phases
    def _elect(self, ctx: NodeContext, level: int) -> None:
        numerator = 1 << level  # p = min(1, 2^level / n)
        if numerator >= ctx.n or ctx.rng.random() < numerator / ctx.n:
            ctx.broadcast(("e",))

    def _attach(self, ctx: NodeContext, inbox: Inbox) -> None:
        if not self.uncovered:
            return  # attaching can only help my own incident edges
        elected = [u for u in inbox if u in self.graph_nbrs]
        if not elected:
            return
        centre = min(elected, key=repr)
        self.attached.add(centre)
        self.my_edges.add(edge_key(self.node, centre))
        ctx.broadcast(self._attach_payload(centre))

    def _attach_payload(self, centre: Node) -> Any:
        """Wire form of my attach announcement (coded variants add a checksum)."""
        return ("a", centre)

    def _attach_centre(self, msg: Any) -> Any:
        """Centre carried by an attach message, or ``None`` to discard it.

        The shape check makes the program *live* under a payload-corrupting
        adversary (a damaged message is discarded instead of crashing the
        vertex) but not *sound*: a forged ``("a", wrong_centre)`` is
        accepted, which is exactly the coverage-soundness hole the coded
        subclass closes.  Fault-free and loss-only runs never produce a
        malformed attach message, so their behaviour is unchanged.
        """
        if type(msg) is tuple and len(msg) == 2 and msg[0] == "a":
            return msg[1]
        return None

    def _absorb_attaches(self, inbox: Inbox) -> None:
        for sender, payloads in inbox.items():
            history = self.nbr_attached.get(sender)
            if history is None:
                continue  # attach of a non-neighbour: irrelevant to my edges
            for msg in payloads:
                centre = self._attach_centre(msg)
                if centre is None:
                    continue
                try:
                    history.add(centre)
                except TypeError:
                    continue  # forged unhashable centre: discard

    def _update_coverage(self) -> None:
        if not self.uncovered:
            return
        mine = self.attached | {self.node}
        done = []
        for e in self.uncovered:
            other = e[1] if e[0] == self.node else e[0]
            if other in mine or not mine.isdisjoint(self.nbr_attached[other]):
                done.append(e)
        self.uncovered.difference_update(done)


# ---------------------------------------------------------------------- runner
def run_clique_two_spanner(
    graph: Graph,
    seed: int | None = None,
    model: CommunicationModel | None = None,
    max_rounds: int = 10_000,
    engine: str = "indexed",
    adversary: Adversary | None = None,
) -> CliqueSpannerResult:
    """Run the Congested Clique 2-spanner and collect the union of outputs.

    ``model`` defaults to an enforcing
    :class:`~repro.distributed.models.CongestedCliqueModel`; the algorithm's
    messages are a constant number of words, so enforcement never trips.

    The level schedule is round-driven, so an ``adversary`` dropping
    messages never stalls the run, and coverage beliefs are *sound* under
    loss — a vertex only marks an edge covered from attach announcements it
    actually received, and the cleanup phase adds whatever still looks
    uncovered — so the output stays a valid 2-spanner under pure message
    loss, merely with more edges (E19 pins this).  Crash faults do break
    validity for edges whose owning endpoint died; see the E19 survivor
    check.
    """
    n = graph.number_of_nodes()
    model = model if model is not None else congested_clique_model(n)

    sim = Simulator(
        graph,
        lambda v: CliqueTwoSpannerProgram(v),
        model=model,
        seed=seed,
        engine=engine,
        adversary=adversary,
    )
    run = sim.run(max_rounds=max_rounds)

    edges: set[Edge] = set()
    for output in run.outputs.values():
        if output:
            edges.update(edge_key(*e) for e in output["edges"])
    return CliqueSpannerResult(
        edges=edges,
        rounds=run.rounds,
        levels=clique_spanner_levels(n),
        metrics=run.metrics,
        node_outputs=run.outputs,
    )


__all__ = [
    "CliqueSpannerResult",
    "CliqueTwoSpannerProgram",
    "clique_spanner_levels",
    "clique_spanner_round_bound",
    "run_clique_two_spanner",
]
