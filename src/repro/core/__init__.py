"""The paper's algorithmic contributions (Sections 4-6)."""

from repro.core.clique_two_spanner import (
    CliqueSpannerResult,
    CliqueTwoSpannerProgram,
    clique_spanner_levels,
    clique_spanner_round_bound,
    run_clique_two_spanner,
)
from repro.core.directed_two_spanner import (
    DirectedTwoSpannerResult,
    run_directed_two_spanner,
)
from repro.core.flood_max import (
    FloodMaxProgram,
    FloodMaxResult,
    RobustFloodMaxProgram,
    robust_flood_max_round_bound,
    run_flood_max,
    run_robust_flood_max,
)
from repro.core.mds import MDSOptions, MDSResult, run_mds
from repro.core.network_decomposition import (
    Decomposition,
    decomposition_round_bound,
    network_decomposition,
)
from repro.core.one_plus_eps import (
    OnePlusEpsResult,
    one_plus_eps_spanner,
    radius_budget,
)
from repro.core.star_selection import StarSelectionState, choose_candidate_star
from repro.core.two_spanner import (
    TwoSpannerOptions,
    TwoSpannerResult,
    client_server_two_spanner,
    run_two_spanner,
)
from repro.core.variants import (
    ClientServerVariant,
    NodeSetup,
    SpannerVariant,
    UnweightedVariant,
    WeightedVariant,
)

__all__ = [
    "ClientServerVariant",
    "CliqueSpannerResult",
    "CliqueTwoSpannerProgram",
    "Decomposition",
    "DirectedTwoSpannerResult",
    "FloodMaxProgram",
    "FloodMaxResult",
    "MDSOptions",
    "MDSResult",
    "NodeSetup",
    "OnePlusEpsResult",
    "RobustFloodMaxProgram",
    "SpannerVariant",
    "StarSelectionState",
    "TwoSpannerOptions",
    "TwoSpannerResult",
    "UnweightedVariant",
    "WeightedVariant",
    "choose_candidate_star",
    "client_server_two_spanner",
    "clique_spanner_levels",
    "clique_spanner_round_bound",
    "decomposition_round_bound",
    "network_decomposition",
    "one_plus_eps_spanner",
    "radius_budget",
    "robust_flood_max_round_bound",
    "run_flood_max",
    "run_robust_flood_max",
    "run_clique_two_spanner",
    "run_directed_two_spanner",
    "run_mds",
    "run_two_spanner",
]
