"""The paper's algorithmic contributions (Sections 4-6)."""

from repro.core.clique_listing import (
    LISTING_MODES,
    DirectListingProgram,
    ListingResult,
    brute_force_triangles,
    group_count,
    group_triples,
    run_clique_listing,
    vertex_group,
)
from repro.core.clique_routing import (
    CliqueRoutingProgram,
    FanoutResult,
    RoutingOverflowError,
    RoutingResult,
    RoutingSchedule,
    TargetedFanoutProgram,
    plan_clique_routing,
    run_clique_routing,
    run_targeted_fanout,
)
from repro.core.clique_two_spanner import (
    CliqueSpannerResult,
    CliqueTwoSpannerProgram,
    clique_spanner_levels,
    clique_spanner_round_bound,
    run_clique_two_spanner,
)
from repro.core.directed_two_spanner import (
    DirectedTwoSpannerResult,
    run_directed_two_spanner,
)
from repro.core.flood_max import (
    FloodMaxProgram,
    FloodMaxResult,
    RobustFloodMaxProgram,
    robust_flood_max_round_bound,
    run_flood_max,
    run_robust_flood_max,
)
from repro.core.mds import MDSOptions, MDSResult, run_mds
from repro.core.network_decomposition import (
    Decomposition,
    decomposition_round_bound,
    network_decomposition,
)
from repro.core.one_plus_eps import (
    OnePlusEpsResult,
    one_plus_eps_spanner,
    radius_budget,
)
from repro.core.star_selection import StarSelectionState, choose_candidate_star
from repro.core.two_spanner import (
    TwoSpannerOptions,
    TwoSpannerResult,
    client_server_two_spanner,
    run_two_spanner,
)
from repro.core.variants import (
    ClientServerVariant,
    NodeSetup,
    SpannerVariant,
    UnweightedVariant,
    WeightedVariant,
)

__all__ = [
    "ClientServerVariant",
    "CliqueRoutingProgram",
    "CliqueSpannerResult",
    "CliqueTwoSpannerProgram",
    "Decomposition",
    "DirectListingProgram",
    "DirectedTwoSpannerResult",
    "FanoutResult",
    "FloodMaxProgram",
    "FloodMaxResult",
    "LISTING_MODES",
    "ListingResult",
    "MDSOptions",
    "MDSResult",
    "NodeSetup",
    "OnePlusEpsResult",
    "RobustFloodMaxProgram",
    "RoutingOverflowError",
    "RoutingResult",
    "RoutingSchedule",
    "SpannerVariant",
    "StarSelectionState",
    "TargetedFanoutProgram",
    "TwoSpannerOptions",
    "TwoSpannerResult",
    "UnweightedVariant",
    "WeightedVariant",
    "brute_force_triangles",
    "choose_candidate_star",
    "client_server_two_spanner",
    "clique_spanner_levels",
    "clique_spanner_round_bound",
    "decomposition_round_bound",
    "group_count",
    "group_triples",
    "network_decomposition",
    "one_plus_eps_spanner",
    "plan_clique_routing",
    "radius_budget",
    "robust_flood_max_round_bound",
    "run_clique_listing",
    "run_clique_routing",
    "run_clique_two_spanner",
    "run_directed_two_spanner",
    "run_flood_max",
    "run_mds",
    "run_robust_flood_max",
    "run_targeted_fanout",
    "run_two_spanner",
    "vertex_group",
]
