"""Partition-based triangle listing on the Congested Clique (E21 workload).

Reproduces the group-partition listing scheme of Censor-Hillel,
Leitersdorf and Vulakh (arXiv 2205.09245, the related-work line of
PAPERS.md) at reproduction scale:

* the vertex set splits into ``k = floor(n^(1/3))`` contiguous groups
  (``group(i) = i * k // n``), so every unordered group *triple*
  ``a <= b <= c`` — there are ``C(k+2, 3) <= n`` of them — is owned by one
  **responsible node**, the triple's rank in lexicographic order;
* every edge ``{u, v}`` (owned by its smaller endpoint) is replicated to
  the ``<= k`` responsible nodes whose triple contains both endpoint
  groups, packed as the single integer ``u * n + v`` so the engines'
  payload size tables cache it like any int;
* each responsible node rebuilds its sub-adjacency from the received
  edges and lists exactly the triangles whose *sorted group triple* equals
  its own — every triangle has one such triple, so the union over nodes
  lists each triangle exactly once, with no global deduplication round.

Two delivery modes exercise the PR's two new communication layers:
``direct`` sends every replica straight over the clique overlay, one
message per link per round (the round count is the maximum per-link
multiplicity, computed centrally); ``routed`` ships the same multiset
through the Lenzen-style primitive of
:mod:`repro.core.clique_routing`.  Both modes produce the identical
triangle set — :func:`brute_force_triangles` is the oracle the E21
scenarios check against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations_with_replacement
from typing import Any

from repro.distributed.models import CommunicationModel, congested_clique_model
from repro.distributed.node import NodeContext
from repro.distributed.program import Inbox, NodeProgram
from repro.distributed.simulator import Simulator
from repro.graphs.graph import Graph, Node

LISTING_MODES = ("direct", "routed")


def group_count(n: int) -> int:
    """``floor(n^(1/3))``, exactly (no float error at perfect cubes)."""
    k = max(1, round(n ** (1 / 3)))
    while k**3 > n:
        k -= 1
    while (k + 1) ** 3 <= n:
        k += 1
    return max(1, k)


def vertex_group(i: int, n: int, k: int) -> int:
    """Group of vertex index ``i`` under the contiguous k-way partition."""
    return i * k // n


def group_triples(k: int) -> list[tuple[int, int, int]]:
    """Every unordered group triple ``a <= b <= c`` in lexicographic order."""
    return list(combinations_with_replacement(range(k), 3))


def brute_force_triangles(graph: Graph) -> set[tuple[int, int, int]]:
    """The oracle: all triangles ``(u, v, w)`` with ``u < v < w`` by index."""
    topo = graph.freeze()
    n = topo.n
    index = topo.index
    adj: list[set[int]] = [set() for _ in range(n)]
    for i in range(n):
        for lbl in topo.neighbor_label_set(i):
            adj[i].add(index[lbl])
    out: set[tuple[int, int, int]] = set()
    for u in range(n):
        for v in adj[u]:
            if v <= u:
                continue
            for w in adj[u] & adj[v]:
                if w > v:
                    out.add((u, v, w))
    return out


def _listing_plan(topo) -> tuple[int, list[tuple[int, int, int]], dict[int, list[tuple[int, int]]]]:
    """The centrally computed replication plan of one listing instance.

    Returns ``(k, triples, outboxes)`` where ``outboxes[src]`` lists the
    ``(responsible node index, packed edge)`` replicas edge-owner ``src``
    must deliver.  Deterministic: edges are walked in ascending
    ``(u, v)`` index order, replicas in ascending third-group order.
    """
    n = topo.n
    index = topo.index
    k = group_count(n)
    triples = group_triples(k)
    triple_rank = {t: r for r, t in enumerate(triples)}
    outboxes: dict[int, list[tuple[int, int]]] = {}
    for u in range(n):
        gu = vertex_group(u, n, k)
        row = sorted(index[lbl] for lbl in topo.neighbor_label_set(u))
        for v in row:
            if v <= u:
                continue  # the smaller endpoint owns the edge
            gv = vertex_group(v, n, k)
            a, b = (gu, gv) if gu <= gv else (gv, gu)
            packed = u * n + v
            replicas = outboxes.setdefault(u, [])
            for w in range(k):
                t = tuple(sorted((a, b, w)))
                replicas.append((triple_rank[t], packed))
    return k, triples, outboxes


def _triangles_from_edges(
    packed_edges: list[int], n: int, k: int, triple: tuple[int, int, int]
) -> list[tuple[int, int, int]]:
    """Triangles among ``packed_edges`` whose group triple equals ``triple``."""
    adj: dict[int, set[int]] = {}
    edges: set[tuple[int, int]] = set()
    for packed in packed_edges:
        u, v = divmod(packed, n)
        if (u, v) in edges:
            continue
        edges.add((u, v))
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    out: list[tuple[int, int, int]] = []
    for u, v in sorted(edges):
        common = adj[u] & adj[v]
        for w in sorted(common):
            if w <= v:
                continue
            groups = tuple(
                sorted(
                    (
                        vertex_group(u, n, k),
                        vertex_group(v, n, k),
                        vertex_group(w, n, k),
                    )
                )
            )
            if groups == triple:
                out.append((u, v, w))
    return out


class DirectListingProgram(NodeProgram):
    """Direct-mode executor: one replica per link per round.

    The centrally computed plan hands every owner its replica list grouped
    by responsible node; each round the owner sends the head of each
    per-destination queue (at most one message per link per round — the
    clique bandwidth discipline), for the globally maximal queue length of
    rounds.  Responsible nodes accumulate packed edges and list their
    triple's triangles one round after the last send slot.
    """

    def __init__(
        self,
        node: Node,
        my_index: int,
        replicas: list[tuple[int, int]],
        send_rounds: int,
        n: int,
        k: int,
        triple: tuple[int, int, int] | None,
        labels: list[Node],
    ) -> None:
        self.node = node
        self.me = my_index
        self.send_rounds = send_rounds
        self.n = n
        self.k = k
        self.triple = triple
        self.labels = labels
        self.edges: list[int] = []
        # Per-destination FIFO queues in ascending destination order.
        queues: dict[int, list[int]] = {}
        for dst, packed in replicas:
            if dst == my_index:
                self.edges.append(packed)  # local replica: no message
            else:
                queues.setdefault(dst, []).append(packed)
        self.queues = queues

    def _emit(self, ctx: NodeContext, slot: int) -> None:
        labels = self.labels
        for dst in sorted(self.queues):
            queue = self.queues[dst]
            if slot < len(queue):
                ctx.send(labels[dst], queue[slot])

    def on_start(self, ctx: NodeContext) -> None:
        if self.send_rounds:
            self._emit(ctx, 0)
        else:
            self._finish(ctx)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        edges = self.edges
        for _, payloads in inbox.items():
            edges.extend(payloads)
        slot = ctx.round
        if slot < self.send_rounds:
            self._emit(ctx, slot)
            return
        self._finish(ctx)

    def _finish(self, ctx: NodeContext) -> None:
        if self.triple is None:
            ctx.set_output([])
        else:
            ctx.set_output(
                _triangles_from_edges(self.edges, self.n, self.k, self.triple)
            )
        ctx.halt()


@dataclass
class ListingResult:
    """The listed triangle set plus partition and run statistics."""

    triangles: set[tuple[int, int, int]]
    k: int
    responsible: int
    replicas: int
    mode: str
    rounds: int
    metrics: Any = field(repr=False, default=None)


def run_clique_listing(
    graph: Graph,
    mode: str = "direct",
    seed: int | None = 0,
    model: CommunicationModel | None = None,
    engine: str = "indexed",
    adversary=None,
) -> ListingResult:
    """List every triangle of ``graph`` on the clique overlay.

    ``mode`` selects the delivery layer: ``"direct"`` sends replicas
    straight to their responsible nodes (one per link per round);
    ``"routed"`` ships the identical multiset through the Lenzen-style
    routing primitive.  Both return the same triangle set — the E21
    scenarios pin it against :func:`brute_force_triangles`.
    """
    if mode not in LISTING_MODES:
        raise ValueError(f"unknown listing mode {mode!r} (known: {LISTING_MODES})")
    topo = graph.freeze()
    n = topo.n
    labels = list(topo.labels)
    k, triples, outboxes = _listing_plan(topo)
    replica_count = sum(len(msgs) for msgs in outboxes.values())
    if model is None:
        model = congested_clique_model(max(n, 2), enforce=False)

    if mode == "routed":
        triple_of: dict[int, tuple[int, int, int]] = dict(enumerate(triples))

        def finisher_for(i: int):
            triple = triple_of.get(i)
            if triple is None:
                return lambda received: []
            return lambda received: _triangles_from_edges(received, n, k, triple)

        outputs, rounds, metrics = _run_routed(
            graph, outboxes, labels, topo, model, seed, engine, adversary,
            finisher_for,
        )
    else:
        # Rounds = maximum per-link multiplicity (self-replicas are local
        # and occupy no slot).
        send_rounds = 0
        for src, msgs in outboxes.items():
            per_dst: dict[int, int] = {}
            for dst, _ in msgs:
                if dst != src:
                    per_dst[dst] = per_dst.get(dst, 0) + 1
            if per_dst:
                send_rounds = max(send_rounds, max(per_dst.values()))

        def factory(v: Node) -> DirectListingProgram:
            i = topo.index[v]
            return DirectListingProgram(
                v,
                i,
                outboxes.get(i, []),
                send_rounds,
                n,
                k,
                triples[i] if i < len(triples) else None,
                labels,
            )

        sim = Simulator(
            graph, factory, model=model, seed=seed, engine=engine, adversary=adversary
        )
        run = sim.run(max_rounds=send_rounds + 3)
        rounds = run.metrics.rounds
        metrics = run.metrics
        outputs = run.outputs

    triangles: set[tuple[int, int, int]] = set()
    for out in outputs.values():
        if out:
            triangles.update(tuple(t) for t in out)
    return ListingResult(
        triangles=triangles,
        k=k,
        responsible=len(triples),
        replicas=replica_count,
        mode=mode,
        rounds=rounds,
        metrics=metrics,
    )


def _run_routed(
    graph, outboxes, labels, topo, model, seed, engine, adversary, finisher_for
):
    """Routed mode: per-node finishers over the shared routing primitive."""
    from repro.core.clique_routing import (
        CliqueRoutingProgram,
        plan_clique_routing,
    )

    n = topo.n
    schedule = plan_clique_routing(
        n, {src: [dst for dst, _ in msgs] for src, msgs in outboxes.items()}
    )
    rank = dict(topo.index)

    def factory(v: Node) -> CliqueRoutingProgram:
        i = topo.index[v]
        return CliqueRoutingProgram(
            v, i, outboxes.get(i, []), schedule, labels, rank,
            finish=finisher_for(i),
        )

    sim = Simulator(
        graph, factory, model=model, seed=seed, engine=engine, adversary=adversary
    )
    run = sim.run(max_rounds=schedule.total_rounds + 2)
    return run.outputs, run.metrics.rounds, run.metrics


__all__ = [
    "DirectListingProgram",
    "LISTING_MODES",
    "ListingResult",
    "brute_force_triangles",
    "group_count",
    "group_triples",
    "run_clique_listing",
    "vertex_group",
]
