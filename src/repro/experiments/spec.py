"""Declarative, picklable scenario specifications.

A :class:`ScenarioSpec` is the unit of work of the experiment orchestrator:
one (graph family x size x seed x communication model x algorithm
configuration) point, identified by the experiment it belongs to and a
scenario name unique within that experiment.  Specs are frozen dataclasses
built only from JSON-able primitives (and nested tuples of them), so they

* pickle cleanly across ``multiprocessing`` workers,
* serialise to a canonical JSON form, and
* hash stably (``spec_hash``) for result caching — the hash depends only on
  the spec contents, never on definition order or process state.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any

_PRIMITIVES = (type(None), bool, int, float, str)


def _freeze(value: Any) -> Any:
    """Canonicalise a parameter value to primitives / nested tuples."""
    if isinstance(value, _PRIMITIVES):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    raise TypeError(
        f"scenario parameters must be JSON-able primitives or sequences, got {value!r}"
    )


def _jsonable(value: Any) -> Any:
    """The JSON shape of a frozen value (tuples become lists)."""
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    return value


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario: an experiment id, a unique name, and frozen parameters.

    Two knobs are first-class (non-``params``): ``engine`` — which simulator
    engine (``"reference"`` / ``"indexed"`` / ``"batch"``) an engine-aware
    scenario runs on — and ``adversary`` — the canonical fault-policy
    string (e.g. ``"drop:0.05"``) an adversary-aware scenario resolves via
    :func:`repro.distributed.adversary.build_adversary`.  For both,
    ``None`` means "the experiment's default" and is omitted from the
    canonical JSON, so specs predating the fields keep their hashes; a
    concrete value *is* part of the spec contents and therefore of
    ``spec_hash()`` (an override must never alias a cached result computed
    under a different engine or adversary).
    """

    experiment: str
    name: str
    params: tuple[tuple[str, Any], ...] = ()
    engine: str | None = None
    adversary: str | None = None

    @classmethod
    def make(
        cls,
        experiment: str,
        name: str,
        engine: str | None = None,
        adversary: str | None = None,
        **params: Any,
    ) -> "ScenarioSpec":
        """Build a spec, canonicalising ``params`` (sorted keys, frozen values)."""
        frozen = tuple(sorted((key, _freeze(value)) for key, value in params.items()))
        return cls(
            experiment=experiment,
            name=name,
            params=frozen,
            engine=engine,
            adversary=adversary,
        )

    def param(self, key: str, default: Any = None) -> Any:
        """The frozen value of parameter ``key``, or ``default`` if absent."""
        for name, value in self.params:
            if name == key:
                return value
        return default

    def with_engine(self, engine: str | None) -> "ScenarioSpec":
        """A copy of this spec pinned to ``engine`` (used by ``run --engine``)."""
        return replace(self, engine=engine)

    def with_adversary(self, adversary: str | None) -> "ScenarioSpec":
        """A copy pinned to fault policy ``adversary`` (``run --adversary``)."""
        return replace(self, adversary=adversary)

    def as_dict(self) -> dict[str, Any]:
        """JSON-able view: ``{"experiment", "name", "params": {...}[, "engine"][, "adversary"]}``."""
        out: dict[str, Any] = {
            "experiment": self.experiment,
            "name": self.name,
            "params": {key: _jsonable(value) for key, value in self.params},
        }
        if self.engine is not None:
            out["engine"] = self.engine
        if self.adversary is not None:
            out["adversary"] = self.adversary
        return out

    def canonical_json(self) -> str:
        """Canonical serialisation (sorted keys, no whitespace) — the hash input."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    def spec_hash(self) -> str:
        """Stable content hash, the result-cache key."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()[:16]
