"""Parallel sharded scenario runner with caching and deterministic merge.

Execution contract:

* Scenarios are independent units; a worker pool (``multiprocessing``) shards
  them across ``jobs`` processes with ``chunksize=1`` so long scenarios do
  not convoy short ones.
* Before each scenario the worker seeds the *global* ``random`` module from
  the spec hash — all repo algorithms take explicit seeds, but this makes
  even an accidental global-random user deterministic regardless of which
  worker runs which scenario in which order.
* Graph builds are memoized per worker: scenarios sharing a graph-family
  tuple (the E20/E23 engine and lowering twins) reuse one frozen
  ``CompiledTopology`` keyed by the canonical family-spec hash instead of
  regenerating a mega-scale graph per scenario (see
  :func:`repro.experiments.families.build_graph` — only immutable frozen
  graphs are cached, so reports stay byte-identical; the measured
  sweep-time win is recorded in ``docs/performance.md``).
* Results are merged back in spec order (never completion order), and every
  result dict is round-tripped through the flattener + JSON, so repeated
  runs — serial or parallel — produce byte-identical reports modulo the
  timing fields (``wall_time_s``, ``cached``, and any ``timing.*`` key).
* An optional :class:`ResultCache` memoises results on disk keyed by
  ``spec_hash()``; timing fields are stored but marked, so cache hits are
  distinguishable.
"""

from __future__ import annotations

import copy
import json
import multiprocessing
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.experiments import registry
from repro.experiments.reporting import flatten_info
from repro.experiments.spec import ScenarioSpec

#: Report schema version.  Bumped to ``/2`` when spec blocks gained the
#: optional ``adversary`` field and results gained ``metrics.adversary_*``
#: fault counters.
SCHEMA = "repro-experiments/2"

#: filesystem-safe schema tag baked into every cache key (see ResultCache).
_SCHEMA_TAG = SCHEMA.replace("/", "-")

#: flattened result keys treated as timing (excluded from determinism checks)
TIMING_PREFIX = "timing."


@dataclass
class ScenarioOutcome:
    spec: ScenarioSpec
    result: dict[str, Any]
    wall_time_s: float
    cached: bool


class ResultCache:
    """On-disk result cache keyed by spec hash (one JSON file per scenario).

    The key covers the *spec contents plus the report schema version* — not
    the code that executes it.  A hit skips ``run_scenario`` entirely
    (including its ``check()`` invariants), so after changing an algorithm,
    the accounting, or a scenario runner, clear the cache directory (or
    point ``--cache`` somewhere fresh).  The schema version is part of the
    *filename*, so entries written under an older ``repro-experiments/*``
    schema can never be replayed — they simply miss — and the stored
    ``schema`` field is double-checked on read as a belt-and-braces guard
    against renamed files.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, spec: ScenarioSpec) -> Path:
        return self.directory / f"{spec.spec_hash()}-{_SCHEMA_TAG}.json"

    def get(self, spec: ScenarioSpec) -> dict[str, Any] | None:
        """The cached result for ``spec``, or ``None`` (missing/corrupt/stale)."""
        path = self._path(spec)
        if not path.exists():
            return None
        try:
            stored = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if stored.get("schema") != SCHEMA:
            return None
        # Hash prefixes could collide; trust only an exact spec match.
        if stored.get("spec") != spec.as_dict():
            return None
        result = stored.get("result")
        return result if isinstance(result, dict) else None

    def put(self, spec: ScenarioSpec, result: dict[str, Any]) -> None:
        """Store ``result`` for ``spec`` (schema-stamped, exact-spec keyed)."""
        payload = {"schema": SCHEMA, "spec": spec.as_dict(), "result": result}
        self._path(spec).write_text(json.dumps(payload, indent=2, sort_keys=True))


def _seed_from_hash(spec: ScenarioSpec) -> int:
    return int(spec.spec_hash(), 16)


def execute_scenario(spec: ScenarioSpec) -> dict[str, Any]:
    """Run one spec in-process and return its flattened, JSON-safe result."""
    registry.load_all()
    experiment = registry.get_experiment(spec.experiment)
    # Deliberate global seeding: pins any stray stdlib consumer inside a
    # worker process to the spec hash, so even code outside the seeded-Random
    # contract cannot make serial and sharded runs diverge.
    random.seed(_seed_from_hash(spec))  # reprolint: disable=REP001
    raw = experiment.run_scenario(spec)
    # Sorted keys: a result re-read from the on-disk cache (which JSON-sorts)
    # must serialise byte-identically to a freshly computed one.
    flat = dict(sorted(flatten_info(raw).items()))
    # Fail fast on anything a JSON consumer could not round-trip.
    json.dumps(flat)
    return flat


def _worker(spec: ScenarioSpec) -> tuple[dict[str, Any], float]:
    start = time.perf_counter()
    result = execute_scenario(spec)
    return result, time.perf_counter() - start


def run_scenarios(
    specs: list[ScenarioSpec],
    jobs: int = 1,
    cache: ResultCache | None = None,
    engine: str | None = None,
    adversary: str | None = None,
) -> list[ScenarioOutcome]:
    """Run ``specs`` (sharded over ``jobs`` workers) and merge in spec order.

    ``engine`` pins every spec to one simulator engine via
    :meth:`~repro.experiments.spec.ScenarioSpec.with_engine` before
    execution — the override is part of the spec that runs, so it shows up
    in the report's ``spec`` blocks and in the cache keys.  ``adversary``
    does the same for the fault policy (a canonical string such as
    ``"drop:0.05"``, resolved by adversary-aware runners through
    :func:`repro.distributed.adversary.build_adversary`).  Scenarios whose
    runner is not engine- or adversary-aware ignore the fields.
    """
    if engine is not None:
        specs = [spec.with_engine(engine) for spec in specs]
    if adversary is not None:
        specs = [spec.with_adversary(adversary) for spec in specs]
    outcomes: dict[int, ScenarioOutcome] = {}
    pending: list[tuple[int, ScenarioSpec]] = []
    for index, spec in enumerate(specs):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            outcomes[index] = ScenarioOutcome(spec, hit, 0.0, cached=True)
        else:
            pending.append((index, spec))

    if pending:
        pending_specs = [spec for _, spec in pending]
        if jobs > 1 and len(pending_specs) > 1:
            workers = min(jobs, len(pending_specs))
            with multiprocessing.Pool(processes=workers) as pool:
                executed = pool.map(_worker, pending_specs, chunksize=1)
        else:
            executed = [_worker(spec) for spec in pending_specs]
        for (index, spec), (result, elapsed) in zip(pending, executed):
            outcomes[index] = ScenarioOutcome(spec, result, elapsed, cached=False)
            if cache is not None:
                cache.put(spec, result)

    return [outcomes[index] for index in range(len(specs))]


def run_experiments(
    experiment_ids: list[str],
    jobs: int = 1,
    cache: ResultCache | None = None,
    engine: str | None = None,
    adversary: str | None = None,
    scenario_filter: str | None = None,
) -> dict[str, Any]:
    """Run whole experiments and assemble the stable JSON report.

    The scenario lists of all requested experiments are concatenated and
    sharded together (so a slow experiment's scenarios interleave with fast
    ones), then regrouped per experiment for the cross-scenario ``verify``
    hooks and the report.  ``engine`` (CLI ``run --engine``) pins every
    scenario to one simulator engine and ``adversary`` (``run
    --adversary``) to one fault policy; see :func:`run_scenarios`.

    ``scenario_filter`` (CLI ``run --scenario``) keeps only scenarios whose
    name contains the substring — the CI smoke knob for tiers whose full
    sweep is too heavy (e.g. E20's n = 10^6 point).  Per-scenario ``check``
    invariants still run, but the cross-scenario ``verify`` hooks are
    *skipped* for every experiment when a filter is active (they are
    written against complete result lists), and the report records the
    filter under a top-level ``scenario_filter`` key so a filtered report
    can never be mistaken for a full one.  Raises :class:`ValueError` when
    nothing matches.
    """
    experiments = [registry.get_experiment(identifier) for identifier in experiment_ids]
    if scenario_filter is None:
        spec_lists = [experiment.scenarios for experiment in experiments]
    else:
        spec_lists = [
            [spec for spec in experiment.scenarios if scenario_filter in spec.name]
            for experiment in experiments
        ]
        if not any(spec_lists):
            raise ValueError(
                f"--scenario {scenario_filter!r} matches no scenario in "
                f"{', '.join(experiment.id for experiment in experiments)}"
            )
    all_specs = [spec for specs in spec_lists for spec in specs]
    outcomes = run_scenarios(
        all_specs, jobs=jobs, cache=cache, engine=engine, adversary=adversary
    )

    report: dict[str, Any] = {"schema": SCHEMA, "experiments": []}
    if scenario_filter is not None:
        report["scenario_filter"] = scenario_filter
    cursor = 0
    for experiment, specs in zip(experiments, spec_lists):
        count = len(specs)
        slice_ = outcomes[cursor : cursor + count]
        cursor += count
        results = [outcome.result for outcome in slice_]
        run_verify = experiment.verify is not None and scenario_filter is None
        summary = experiment.verify(results) if run_verify else {}
        json.dumps(summary)
        report["experiments"].append(
            {
                "id": experiment.id,
                "title": experiment.title,
                "scenarios": [
                    {
                        "spec": outcome.spec.as_dict(),
                        "spec_hash": outcome.spec.spec_hash(),
                        "cached": outcome.cached,
                        "wall_time_s": outcome.wall_time_s,
                        "result": outcome.result,
                    }
                    for outcome in slice_
                ],
                "summary": summary,
            }
        )
    return report


def strip_timing(report: dict[str, Any]) -> dict[str, Any]:
    """A deep copy of ``report`` without timing/cache fields.

    Strips the runner-level ``wall_time_s`` / ``cached`` per scenario and any
    flattened result or summary key under ``timing.`` — the remainder must be
    byte-identical across repeated runs, serial or parallel.
    """
    stripped = copy.deepcopy(report)
    for experiment in stripped.get("experiments", []):
        for scenario in experiment.get("scenarios", []):
            scenario.pop("wall_time_s", None)
            scenario.pop("cached", None)
            result = scenario.get("result", {})
            for key in [k for k in result if k.startswith(TIMING_PREFIX)]:
                del result[key]
        summary = experiment.get("summary", {})
        for key in [k for k in summary if k.startswith(TIMING_PREFIX)]:
            del summary[key]
    return stripped
