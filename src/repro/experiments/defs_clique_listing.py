"""Registry definition for E21 — the clique-listing / targeted-traffic tier.

E21 is the first experiment family whose traffic is *targeted* end to end,
exercising the fast path that lets the ``batch`` and ``columnar`` engines
carry ``ctx.send`` traffic (PR 7):

* **listing** — partition-based triangle listing
  (:mod:`repro.core.clique_listing`, per arXiv 2205.09245) on a seeded
  G(n, p) clique overlay, in both delivery modes: ``direct`` (one replica
  per link per round) and ``routed`` (the Lenzen-style two-phase primitive
  of :mod:`repro.core.clique_routing`).  Every scenario checks its listed
  triangle set against the :func:`~repro.core.clique_listing.brute_force_triangles`
  oracle — the output is verified, not just measured;
* **fan-out** — the deterministic targeted fan-out throughput workload
  (:class:`~repro.core.clique_routing.TargetedFanoutProgram`) at n = 4000,
  whose folded checksum doubles as a differential fingerprint across
  engines.

The same workload runs on several engines so the cross-scenario ``verify``
hook can pin bit-for-bit physics agreement — the targeted counterpart of
the E18/E20 anchors.  As with those tiers, wall time lives under
``timing.*`` and the batch-vs-indexed speedup *assertion* lives in
``benchmarks/bench_e21_clique_listing.py`` behind the ``E21_MIN_SPEEDUP``
knob; the registry only pins physics so CLI sweeps never flake on loaded
machines.
"""

from __future__ import annotations

import time
from typing import Any

from repro.core.clique_listing import brute_force_triangles, run_clique_listing
from repro.core.clique_routing import run_targeted_fanout
from repro.experiments.families import build_graph
from repro.experiments.registry import Experiment, check, register
from repro.experiments.spec import ScenarioSpec

_E21_SEED = 7

_LISTING_GRAPH = ("gnp", 60, 0.3, 5)
_FANOUT_GRAPH = ("sparse_connected_gnp", 4000, 0.002, 9)
_FANOUT_K = 8
_FANOUT_ROUNDS = 24

#: scenario name -> (workload, engine, mode-or-None).
_E21_SCENARIOS: dict[str, tuple[str, str, str | None]] = {
    "listing direct indexed": ("listing", "indexed", "direct"),
    "listing direct batch": ("listing", "batch", "direct"),
    "listing direct columnar": ("listing", "columnar", "direct"),
    "listing routed indexed": ("listing", "indexed", "routed"),
    "listing routed batch": ("listing", "batch", "routed"),
    "fanout indexed": ("fanout", "indexed", None),
    "fanout batch": ("fanout", "batch", None),
    "fanout columnar": ("fanout", "columnar", None),
}


def _run_e21(spec: ScenarioSpec) -> dict[str, Any]:
    workload = spec.param("workload")
    graph = build_graph(spec.param("graph"))
    n = graph.number_of_nodes()
    engine = spec.engine or "indexed"
    start = time.perf_counter()
    if workload == "listing":
        result = run_clique_listing(
            graph,
            mode=spec.param("mode"),
            seed=spec.param("run_seed"),
            engine=engine,
        )
        elapsed = time.perf_counter() - start
        oracle = brute_force_triangles(graph)
        check(
            result.triangles == oracle,
            f"{spec.name}: listed {len(result.triangles)} triangles, "
            f"oracle has {len(oracle)}",
        )
        figure = len(result.triangles)
        metrics = result.metrics
        rounds = result.rounds
        extra = {"k": result.k, "replicas": result.replicas, "mode": result.mode}
    else:
        result = run_targeted_fanout(
            graph,
            fanout=spec.param("fanout"),
            rounds=spec.param("rounds"),
            seed=spec.param("run_seed"),
            engine=engine,
        )
        elapsed = time.perf_counter() - start
        # Fault-free LOCAL run: every sent message is heard exactly once.
        check(
            result.heard == result.metrics.messages_sent,
            f"{spec.name}: heard {result.heard} of "
            f"{result.metrics.messages_sent} messages on a fault-free run",
        )
        check(result.checksum != 0, f"{spec.name}: degenerate zero checksum")
        figure = result.checksum
        metrics = result.metrics
        rounds = result.rounds
        extra = {"heard": result.heard}
    messages = metrics.messages_sent
    out: dict[str, Any] = {
        "scenario": spec.name,
        "workload": workload,
        "engine": engine,
        "n": n,
        "rounds": rounds,
        "figure": figure,
        "metrics": metrics,
        "timing": {
            "elapsed_s": elapsed,
            "messages_per_sec": messages / elapsed if elapsed else 0.0,
        },
    }
    out.update(extra)
    return out


def _verify_e21(results) -> dict[str, Any]:
    # Bit-for-bit physics agreement across engines, per workload group: the
    # targeted counterpart of the E18/E20 parity anchors.
    groups: dict[tuple[str, Any], list[dict[str, Any]]] = {}
    for result in results:
        key = (result["workload"], result.get("mode"))
        groups.setdefault(key, []).append(result)
    summary: dict[str, Any] = {}
    for (workload, mode), members in groups.items():
        tag = workload if mode is None else f"{workload} {mode}"
        baseline = members[0]
        for other in members[1:]:
            for key in baseline:
                if key.startswith("timing.") or key in ("engine", "scenario"):
                    continue
                check(
                    baseline[key] == other[key],
                    f"{tag}: engines {baseline['engine']} and {other['engine']} "
                    f"disagree on {key}: {baseline[key]!r} != {other[key]!r}",
                )
        summary[f"{tag}.engines"] = len(members)
        summary[f"{tag}.figure"] = baseline["figure"]
        summary[f"{tag}.rounds"] = baseline["rounds"]
        summary[f"{tag}.bits"] = baseline["metrics.bits_sent"]
    return summary


def _make_spec(name: str, workload: str, engine: str, mode: str | None) -> ScenarioSpec:
    if workload == "listing":
        return ScenarioSpec.make(
            "E21",
            name,
            engine=engine,
            workload=workload,
            mode=mode,
            graph=_LISTING_GRAPH,
            run_seed=_E21_SEED,
        )
    return ScenarioSpec.make(
        "E21",
        name,
        engine=engine,
        workload=workload,
        graph=_FANOUT_GRAPH,
        fanout=_FANOUT_K,
        rounds=_FANOUT_ROUNDS,
        run_seed=_E21_SEED,
    )


register(
    Experiment(
        id="E21",
        title="clique listing + targeted traffic: triangle listing and fan-out",
        headline="targeted-send fast path: listing (direct/routed) and fan-out across engines",
        targeted=True,
        columns=(
            ("workload", "workload", None),
            ("engine", "engine", None),
            ("n", "n", None),
            ("rounds", "rounds", None),
            ("messages", "metrics.messages_sent", None),
            ("bits", "metrics.bits_sent", None),
            ("figure", "figure", None),
            ("seconds", "timing.elapsed_s", ".3f"),
            ("msg/sec", "timing.messages_per_sec", ".0f"),
        ),
        scenarios=[
            _make_spec(name, workload, engine, mode)
            for name, (workload, engine, mode) in _E21_SCENARIOS.items()
        ],
        run_scenario=_run_e21,
        verify=_verify_e21,
    )
)
