"""Registry definitions for the robustness tier: E19 (fault-injected runs).

E19 sweeps two workloads over the adversary layer
(:mod:`repro.distributed.adversary`):

* **robust flood-max** (:func:`repro.core.run_robust_flood_max`) — the
  retransmitting leader election that provably terminates under arbitrary
  message loss — across drop rates 0 / 0.05 / 0.20 and a crash-stop
  schedule;
* **Congested Clique 2-spanner** (:func:`repro.core.run_clique_two_spanner`)
  — whose round schedule is fault-oblivious and whose coverage beliefs are
  sound under loss, so the output must stay a *valid* 2-spanner under pure
  drops (merely larger), while crash faults degrade it to validity over the
  surviving vertices.

Per-scenario ``check()`` invariants pin termination bounds, correct output
(or its explicitly documented degradation) and fault-counter consistency
with the configured drop rate; the cross-scenario ``verify`` pins that a
zero-rate :class:`~repro.distributed.adversary.DropAdversary` reproduces
fault-free physics bit-for-bit (only zero-valued fault counters appear) and
that the indexed and batch engines agree bit-for-bit *under the same
adversary*.  The ``NoAdversary`` overhead guard lives in the benchmark
wrapper (``benchmarks/bench_e19_robustness.py``), not here, following the
E16/E18 precedent.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.core import (
    clique_spanner_round_bound,
    robust_flood_max_round_bound,
    run_clique_two_spanner,
    run_robust_flood_max,
)
from repro.distributed.adversary import (
    Adversary,
    CrashAdversary,
    DropAdversary,
    build_adversary,
)
from repro.experiments.families import build_graph
from repro.experiments.registry import Experiment, check, register
from repro.experiments.spec import ScenarioSpec
from repro.spanner import is_k_spanner

_E19_SEED = 7
_FLOOD_GRAPH = ("connected_gnp", 120, 0.08, 21)
_FLOOD_PATIENCE = 6
_FLOOD_CRASH = "crash:17@2,55@3,90@4"
_SPANNER_GRAPH = ("gnp", 64, 0.15, 13)
_SPANNER_SEED = 5
_SPANNER_CRASH = "crash:9@3,30@5"

#: Half-width of the accepted dropped/sent band around the configured rate:
#: the runs are deterministic, so this only needs to absorb the binomial
#: deviation of one fixed sample, not run-to-run noise.
_RATIO_BAND = 0.5


def _resolve_adversary(spec: ScenarioSpec) -> Adversary | None:
    """The spec's fault policy (``None`` when the scenario is fault-free)."""
    return build_adversary(spec.adversary) if spec.adversary else None


def _run_flood(spec: ScenarioSpec) -> dict[str, Any]:
    """One robust-flood-max scenario: termination, agreement, fault counters."""
    graph = build_graph(spec.param("graph"))
    n = graph.number_of_nodes()
    adversary = _resolve_adversary(spec)
    patience = spec.param("patience")
    result = run_robust_flood_max(
        graph,
        patience=patience,
        seed=spec.param("run_seed"),
        engine=spec.engine or "indexed",
        adversary=adversary,
    )
    bound = robust_flood_max_round_bound(n, patience)
    check(
        result.rounds <= bound,
        f"{spec.name}: used {result.rounds} rounds, provable bound is {bound}",
    )
    faults = result.metrics.per_adversary
    messages = result.metrics.messages_sent
    out: dict[str, Any] = {
        "workload": "floodmax",
        "adversary": spec.adversary or "none",
        "engine": spec.engine or "indexed",
        "n": n,
        "m": graph.number_of_edges(),
        "rounds": result.rounds,
        "converged": result.converged,
        "leader": result.leader,
        "ok": result.converged,
        "metrics": result.metrics,
    }
    if isinstance(adversary, CrashAdversary):
        # An arbitrary pinned schedule (run --adversary crash:...) may name
        # nodes outside this graph or rounds after natural halting, and may
        # even disconnect the survivors — only counter sanity is universal.
        dead = {v for v in adversary.schedule if v in result.node_outputs}
        crashed = faults.get("adversary_crashed_nodes", 0)
        check(
            crashed <= len(dead),
            f"{spec.name}: counted {crashed} crashes, only {len(dead)} scheduled "
            f"nodes exist in the graph",
        )
        survivors = {v: o for v, o in result.node_outputs.items() if v not in dead}
        agreed = set(survivors.values())
        # Documented degradation: crashed nodes keep output None, so global
        # convergence is impossible — survivor agreement is the contract.
        out["survivors_agree"] = len(agreed) == 1
        out["ok"] = out["survivors_agree"]
        if spec.adversary == _FLOOD_CRASH:
            # The curated schedule keeps the graph connected and spares the
            # max label, so the strong form must hold exactly.
            check(
                crashed == len(dead),
                f"{spec.name}: expected {len(dead)} crashes, counted {crashed}",
            )
            check(
                out["survivors_agree"],
                f"{spec.name}: survivors disagree: {sorted(map(repr, agreed))}",
            )
            leader = next(iter(agreed))
            check(
                leader == n - 1,
                f"{spec.name}: survivors elected {leader!r}, expected {n - 1}",
            )
            out["survivor_leader"] = leader
    elif isinstance(adversary, DropAdversary):
        dropped = faults.get("adversary_dropped_messages", 0)
        check(
            result.converged and result.leader == n - 1,
            f"{spec.name}: retransmission failed to elect the max label "
            f"(leader {result.leader!r})",
        )
        if adversary.rate == 0.0:
            check(dropped == 0, f"{spec.name}: zero-rate adversary dropped {dropped}")
        else:
            ratio = dropped / messages
            check(
                abs(ratio - adversary.rate) <= _RATIO_BAND * adversary.rate,
                f"{spec.name}: dropped fraction {ratio:.4f} inconsistent with "
                f"rate {adversary.rate}",
            )
            out["drop_ratio"] = ratio
    else:
        check(
            result.converged and result.leader == n - 1,
            f"{spec.name}: fault-free run must elect the max label",
        )
    return out


def _survivors_two_spanned(graph, spanner_edges, dead: set) -> bool:
    """Whether every edge between surviving vertices is 2-spanned.

    Paths may route through any vertex (crashed ones included — spanner
    edges are static graph edges; the crash broke the *computation*, not
    the graph), but only edges whose both endpoints survived are required
    to be covered: an edge owned by a crashed vertex may be missing.
    """
    adjacency = defaultdict(set)
    for u, v in spanner_edges:
        adjacency[u].add(v)
        adjacency[v].add(u)
    for u, v in graph.edges():
        if u in dead or v in dead:
            continue
        if v not in adjacency[u] and adjacency[u].isdisjoint(adjacency[v]):
            return False
    return True


def _run_spanner(spec: ScenarioSpec) -> dict[str, Any]:
    """One fault-injected clique-2-spanner scenario: schedule + validity."""
    graph = build_graph(spec.param("graph"))
    n = graph.number_of_nodes()
    adversary = _resolve_adversary(spec)
    result = run_clique_two_spanner(
        graph,
        seed=spec.param("run_seed"),
        engine=spec.engine or "indexed",
        adversary=adversary,
    )
    # The level schedule is round-driven: no fault may stretch or shrink it.
    check(
        result.rounds == clique_spanner_round_bound(n),
        f"{spec.name}: round schedule drifted to {result.rounds} under faults",
    )
    faults = result.metrics.per_adversary
    valid = is_k_spanner(graph, result.edges, 2)
    out: dict[str, Any] = {
        "workload": "spanner",
        "adversary": spec.adversary or "none",
        "engine": spec.engine or "indexed",
        "n": n,
        "m": graph.number_of_edges(),
        "rounds": result.rounds,
        "edges": len(result.edges),
        "valid": valid,
        "ok": valid,
        "metrics": result.metrics,
    }
    if isinstance(adversary, CrashAdversary):
        dead = {v for v in adversary.schedule if v in graph}
        crashed = faults.get("adversary_crashed_nodes", 0)
        check(
            crashed <= len(dead),
            f"{spec.name}: counted {crashed} crashes, only {len(dead)} scheduled "
            f"nodes exist in the graph",
        )
        if spec.adversary == _SPANNER_CRASH:
            # The curated schedule's crash rounds precede the final round,
            # so every scheduled (in-graph) node must actually fire.
            check(
                crashed == len(dead),
                f"{spec.name}: expected {len(dead)} crashes, counted {crashed}",
            )
        # Documented degradation: edges owned by crashed vertices may be
        # missing, but survivor-induced coverage holds for *any* crash-stop
        # schedule — survivors receive every attach announcement addressed
        # to them, so their coverage beliefs stay sound.
        covered = _survivors_two_spanned(graph, result.edges, dead)
        check(covered, f"{spec.name}: an edge between survivors is not 2-spanned")
        out["survivors_covered"] = covered
        out["ok"] = covered
    elif isinstance(adversary, DropAdversary):
        # Coverage beliefs are sound under loss (a vertex only trusts attach
        # announcements it received, and cleanup adds the rest), so drops
        # cost edges, never correctness.
        check(valid, f"{spec.name}: spanner invalid under message loss")
        if adversary.rate > 0.0:
            check(
                faults.get("adversary_dropped_messages", 0) > 0,
                f"{spec.name}: drop adversary at rate {adversary.rate} dropped nothing",
            )
    else:
        check(valid, f"{spec.name}: fault-free spanner invalid")
    return out


def _run_e19(spec: ScenarioSpec) -> dict[str, Any]:
    """Dispatch one E19 scenario to its workload runner."""
    if spec.param("workload") == "floodmax":
        return _run_flood(spec)
    return _run_spanner(spec)


def _verify_e19(results) -> dict[str, Any]:
    """Cross-scenario invariants: zero-rate identity, engine parity, monotonicity.

    ``run --adversary`` rewrites every scenario to one fault policy, which
    collapses the sweep: the checks that compare *different* adversaries
    only fire when the scenarios actually differ, while the engine
    differential (same adversary, different engines) holds under any pin.
    """
    (
        flood_none,
        flood_zero,
        flood_d5,
        flood_d5_batch,
        flood_d20,
        flood_crash,
        span_none,
        span_d5,
        span_crash,
    ) = results
    # Engine differential under the same adversary: indexed vs batch must be
    # bit-for-bit identical, fault counters included.
    for key in flood_d5:
        if key.startswith("timing.") or key == "engine":
            continue
        check(
            flood_d5[key] == flood_d5_batch[key],
            f"engines disagree under {flood_d5['adversary']} on {key}: "
            f"{flood_d5[key]!r} != {flood_d5_batch[key]!r}",
        )
    if flood_none["adversary"] == "none" and flood_zero["adversary"] == "drop:0.0":
        # A zero-rate DropAdversary must reproduce fault-free physics
        # exactly; the only admissible difference is the presence of
        # zero-valued fault counters (and the adversary label itself).
        for key, value in flood_none.items():
            if key.startswith("timing.") or key == "adversary":
                continue
            check(
                flood_zero.get(key) == value,
                f"drop:0.0 diverges from the fault-free run on {key}: "
                f"{flood_zero.get(key)!r} != {value!r}",
            )
    if flood_d20["adversary"] != flood_d5["adversary"]:
        check(
            flood_d20["metrics.adversary_dropped_messages"]
            > flood_d5["metrics.adversary_dropped_messages"],
            "higher drop rate did not drop more messages",
        )
    return {
        "floodmax.drop05.dropped": flood_d5.get("metrics.adversary_dropped_messages"),
        "floodmax.drop20.dropped": flood_d20.get("metrics.adversary_dropped_messages"),
        "floodmax.crash.lost": flood_crash.get("metrics.adversary_lost_messages"),
        "spanner.none.edges": span_none["edges"],
        "spanner.drop05.edges": span_d5["edges"],
        "spanner.drop05.valid": span_d5["valid"],
        "spanner.crash.survivors_covered": span_crash.get("survivors_covered"),
    }


register(
    Experiment(
        id="E19",
        title="robustness tier: fault-injected flood-max and clique 2-spanner",
        headline="drop/crash adversaries: termination, graceful degradation, engine parity",
        columns=(
            ("workload", "workload", None),
            ("adversary", "adversary", None),
            ("engine", "engine", None),
            ("rounds", "rounds", None),
            ("messages", "metrics.messages_sent", None),
            ("dropped", "metrics.adversary_dropped_messages", None),
            ("crashed", "metrics.adversary_crashed_nodes", None),
            ("edges", "edges", None),
            ("ok", "ok", None),
        ),
        scenarios=[
            ScenarioSpec.make(
                "E19",
                "floodmax none",
                workload="floodmax",
                graph=_FLOOD_GRAPH,
                patience=_FLOOD_PATIENCE,
                run_seed=_E19_SEED,
            ),
            ScenarioSpec.make(
                "E19",
                "floodmax drop=0.00",
                adversary="drop:0.0",
                workload="floodmax",
                graph=_FLOOD_GRAPH,
                patience=_FLOOD_PATIENCE,
                run_seed=_E19_SEED,
            ),
            ScenarioSpec.make(
                "E19",
                "floodmax drop=0.05",
                engine="indexed",
                adversary="drop:0.05",
                workload="floodmax",
                graph=_FLOOD_GRAPH,
                patience=_FLOOD_PATIENCE,
                run_seed=_E19_SEED,
            ),
            ScenarioSpec.make(
                "E19",
                "floodmax drop=0.05 batch",
                engine="batch",
                adversary="drop:0.05",
                workload="floodmax",
                graph=_FLOOD_GRAPH,
                patience=_FLOOD_PATIENCE,
                run_seed=_E19_SEED,
            ),
            ScenarioSpec.make(
                "E19",
                "floodmax drop=0.20",
                adversary="drop:0.2",
                workload="floodmax",
                graph=_FLOOD_GRAPH,
                patience=_FLOOD_PATIENCE,
                run_seed=_E19_SEED,
            ),
            ScenarioSpec.make(
                "E19",
                "floodmax crash",
                adversary=_FLOOD_CRASH,
                workload="floodmax",
                graph=_FLOOD_GRAPH,
                patience=_FLOOD_PATIENCE,
                run_seed=_E19_SEED,
            ),
            ScenarioSpec.make(
                "E19",
                "spanner none",
                workload="spanner",
                graph=_SPANNER_GRAPH,
                run_seed=_SPANNER_SEED,
            ),
            ScenarioSpec.make(
                "E19",
                "spanner drop=0.05",
                adversary="drop:0.05",
                workload="spanner",
                graph=_SPANNER_GRAPH,
                run_seed=_SPANNER_SEED,
            ),
            ScenarioSpec.make(
                "E19",
                "spanner crash",
                adversary=_SPANNER_CRASH,
                workload="spanner",
                graph=_SPANNER_GRAPH,
                run_seed=_SPANNER_SEED,
            ),
        ],
        run_scenario=_run_e19,
        verify=_verify_e19,
        tags=("robustness",),
    )
)
