"""Experiment orchestration: scenario registry, sharded runner, JSON reports.

The subsystem turns the E01-E18 reproductions into first-class, machine-
runnable sweeps:

* :mod:`repro.experiments.spec` — picklable scenario specs with stable hashes
* :mod:`repro.experiments.registry` — the declarative experiment registry
* :mod:`repro.experiments.runner` — parallel sharded runner, caching,
  deterministic merge, stable JSON report
* :mod:`repro.experiments.bench` — the thin pytest-benchmark wrapper used by
  every ``benchmarks/bench_e*.py``
* ``python -m repro.experiments`` — the CLI (``list`` / ``run``)
"""

from repro.experiments.bench import bench_experiment
from repro.experiments.registry import (
    Experiment,
    ExperimentCheckError,
    check,
    experiment_ids,
    get_experiment,
    load_all,
    register,
)
from repro.experiments.reporting import flatten_info, fmt, print_table
from repro.experiments.runner import (
    SCHEMA,
    ResultCache,
    ScenarioOutcome,
    execute_scenario,
    run_experiments,
    run_scenarios,
    strip_timing,
)
from repro.experiments.spec import ScenarioSpec

__all__ = [
    "SCHEMA",
    "Experiment",
    "ExperimentCheckError",
    "ResultCache",
    "ScenarioOutcome",
    "ScenarioSpec",
    "bench_experiment",
    "check",
    "execute_scenario",
    "experiment_ids",
    "flatten_info",
    "fmt",
    "get_experiment",
    "load_all",
    "print_table",
    "register",
    "run_experiments",
    "run_scenarios",
    "strip_timing",
]
