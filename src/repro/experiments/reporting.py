"""Tables and flattening shared by the CLI, the runner, and the benchmarks.

``flatten_info`` is the one flattening rule of the subsystem: nested
mappings (or objects exposing ``as_dict()``) are folded into dotted
``key.subkey`` names, sequences of mappings into ``key.<index>.subkey``, and
primitive leaves kept as-is.  The runner applies it to every scenario result
(so the JSON schema is flat), and ``benchmarks/common.py::record`` applies
it to pytest-benchmark ``extra_info`` — previously that helper *claimed* to
flatten but stored nested dicts, hiding per-model counters from flat JSON
consumers.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any


def fmt(value: float, digits: int = 3) -> str:
    """Fixed-point formatting shared by the reproduced tables."""
    return f"{value:.{digits}f}"


def print_table(title: str, header: Sequence[str], rows: Sequence[Sequence[Any]]) -> None:
    """Print a small fixed-width table (an experiment's reproduced 'figure')."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def _is_leaf(value: Any) -> bool:
    if isinstance(value, (Mapping,)):
        return False
    if isinstance(value, (list, tuple)):
        return not any(
            isinstance(item, Mapping) or callable(getattr(item, "as_dict", None))
            for item in value
        )
    return not callable(getattr(value, "as_dict", None))


def flatten_info(value: Any, prefix: str = "") -> dict[str, Any]:
    """Flatten ``value`` into ``{dotted.key: leaf}`` under ``prefix``.

    Mappings and ``as_dict()``-bearing objects recurse with ``.`` joined
    keys; sequences containing mappings recurse with the element index as a
    path segment; everything else is a leaf stored verbatim.
    """
    as_dict = getattr(value, "as_dict", None)
    if callable(as_dict):
        value = as_dict()
    out: dict[str, Any] = {}
    if isinstance(value, Mapping):
        for key, sub in value.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_info(sub, path))
        return out
    if isinstance(value, (list, tuple)) and not _is_leaf(value):
        for index, item in enumerate(value):
            path = f"{prefix}.{index}" if prefix else str(index)
            out.update(flatten_info(item, path))
        return out
    out[prefix] = list(value) if isinstance(value, tuple) else value
    return out


def format_cell(value: Any, spec: str | None) -> str:
    """Render one table cell (``None`` prints as ``-``)."""
    if value is None:
        return "-"
    if spec and isinstance(value, (int, float)) and not isinstance(value, bool):
        return format(value, spec)
    return str(value)


def experiment_table(experiment, scenario_results: Sequence[Mapping[str, Any]]) -> None:
    """Print an experiment's result table from its registered columns."""
    header = [column[0] for column in experiment.columns]
    rows = [
        [format_cell(result.get(key), spec) for _, key, spec in experiment.columns]
        for result in scenario_results
    ]
    print_table(f"{experiment.id}  {experiment.title}", header, rows)
