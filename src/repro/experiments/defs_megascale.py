"""Registry definition for E20 — the columnar mega-scale tier.

E20 pushes the pure-broadcast flood-max workload (``repro.core.flood_max``)
through the ``columnar`` engine at n = 2*10^5, 5*10^5 and 10^6 on the
freeze-direct ``sparse_gnp_csr`` family (average degree ~12–14, connectivity
patched, so a 12-round budget always covers the diameter).  Two n = 20000
twins on the *exact* E18 graph — one columnar, one batch — anchor the tier
to the existing differential baseline: their physics must be bit-for-bit
identical, which ties the mega-scale runs back to the engine-parity
contract without paying an indexed-engine run at 10^6.

Mega-scale scenarios opt into ``streaming_metrics`` (bounded
``bits_per_round`` history; scalar counters stay exact), so a full E20 run
at n = 10^6 holds peak RSS to the graph + columns, not to a
per-round-history that grows with the run.

As with E16/E18, wall time lives under ``timing.*`` — excluded from the
determinism contract — and the columnar-vs-batch speedup *assertion* lives
in ``benchmarks/bench_e20_columnar.py`` behind the ``E20_MIN_SPEEDUP``
knob; the registry ``verify`` hook only pins physics so CLI sweeps on
loaded machines never flake.
"""

from __future__ import annotations

import time
from typing import Any

from repro.core import run_flood_max
from repro.experiments.families import build_graph
from repro.experiments.registry import Experiment, check, register
from repro.experiments.spec import ScenarioSpec

_E20_SEED = 3

#: scenario name -> (family tuple, engine, round budget, streaming metrics).
#: The n=20000 twins reuse the E18 graph verbatim (same family/seed) so the
#: columnar twin is directly comparable against the E18 baselines; the mega
#: points use the freeze-direct CSR family with p giving average degree
#: ~12–14 (diameter well under the 12-round budget after the connectivity
#: patch).
_E20_SCENARIOS: dict[str, tuple[tuple[Any, ...], str, int, bool]] = {
    "n=20000 columnar": (("sparse_connected_gnp", 20000, 0.0005, 18), "columnar", 10, False),
    "n=20000 batch": (("sparse_connected_gnp", 20000, 0.0005, 18), "batch", 10, False),
    "n=200000": (("sparse_gnp_csr", 200000, 6e-5, 20), "columnar", 12, True),
    "n=500000": (("sparse_gnp_csr", 500000, 2.6e-5, 21), "columnar", 12, True),
    "n=1000000": (("sparse_gnp_csr", 1000000, 1.4e-5, 22), "columnar", 12, True),
}


def _run_e20(spec: ScenarioSpec) -> dict[str, Any]:
    graph = build_graph(spec.param("graph"))
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    engine = spec.engine or "columnar"
    rounds = spec.param("rounds")
    start = time.perf_counter()
    result = run_flood_max(
        graph,
        rounds=rounds,
        seed=spec.param("run_seed"),
        engine=engine,
        streaming_metrics=bool(spec.param("streaming", False)),
    )
    elapsed = time.perf_counter() - start
    check(
        result.converged,
        f"{spec.name}: flood-max did not converge within {rounds} rounds",
    )
    check(
        result.leader == n - 1,
        f"{spec.name}: elected leader {result.leader!r}, expected the max label {n - 1}",
    )
    check(
        result.rounds == rounds,
        f"{spec.name}: used {result.rounds} rounds, the program budget is {rounds}",
    )
    messages = result.metrics.messages_sent
    # Flood-max invariant: every vertex broadcasts in rounds 0..rounds-1, so
    # exactly rounds * 2m directed messages cross the (undirected) edges.
    check(
        messages == rounds * 2 * m,
        f"{spec.name}: {messages} messages, expected rounds * 2m = {rounds * 2 * m}",
    )
    return {
        "scenario": spec.name,
        "engine": engine,
        "n": n,
        "m": m,
        "rounds": result.rounds,
        "leader": result.leader,
        "metrics": result.metrics,
        "timing": {
            "elapsed_s": elapsed,
            "messages_per_sec": messages / elapsed,
        },
    }


def _verify_e20(results) -> dict[str, Any]:
    by_name = {result["scenario"]: result for result in results}
    columnar20 = by_name.get("n=20000 columnar")
    batch20 = by_name.get("n=20000 batch")
    if columnar20 is not None and batch20 is not None:
        # The anchor: identical physics on the exact E18 graph ties the tier
        # to the engine-parity contract without an indexed run at 10^6.
        for key in columnar20:
            if key.startswith("timing.") or key in ("engine", "scenario"):
                continue
            check(
                columnar20[key] == batch20[key],
                f"n=20000: engines disagree on {key}: "
                f"{columnar20[key]!r} != {batch20[key]!r}",
            )
    summary: dict[str, Any] = {}
    for name, result in by_name.items():
        if result["n"] >= 100_000:
            summary[f"{name}.messages"] = result["metrics.messages_sent"]
            summary[f"{name}.leader"] = result["leader"]
    if len(results) == len(_E20_SCENARIOS):
        # Unfiltered run: the flagship point must be present and at scale.
        check(
            by_name["n=1000000"]["n"] == 1_000_000,
            "the E20 flagship scenario must run at n = 10^6",
        )
    return summary


register(
    Experiment(
        id="E20",
        title="columnar mega-scale sweep: flood-max broadcast up to n=10^6",
        headline="flat-array columnar engine on pure-broadcast traffic at mega scale",
        columns=(
            ("n", "n", None),
            ("m", "m", None),
            ("engine", "engine", None),
            ("rounds", "rounds", None),
            ("messages", "metrics.messages_sent", None),
            ("seconds", "timing.elapsed_s", ".3f"),
            ("msg/sec", "timing.messages_per_sec", ".0f"),
        ),
        scenarios=[
            ScenarioSpec.make(
                "E20",
                name,
                engine=engine,
                graph=graph,
                rounds=rounds,
                streaming=streaming,
                run_seed=_E20_SEED,
            )
            for name, (graph, engine, rounds, streaming) in _E20_SCENARIOS.items()
        ],
        run_scenario=_run_e20,
        verify=_verify_e20,
    )
)
