"""Registry definitions for the corruption tier: E22 (coded robust workloads).

E22 is the registry's first *soundness-under-corruption* family.  The
:class:`~repro.distributed.adversary.CorruptAdversary` flips one bit per
corrupted delivery in the payload's canonical wire image — it can *forge*
values, not merely destroy them — and the sweep measures three points on
the redundancy/resilience curve for the retransmitting flood-max, plus the
plain/coded clique 2-spanner pair:

* **plain** — :func:`repro.core.run_robust_flood_max` retransmits until
  stable but trusts content: a forged label wins the election (live, but
  unsound — the scenarios pin the *failure*);
* **repetition** — :func:`repro.core.robust_coding.run_redundant_flood_max`
  sends 3 copies per message and majority-decodes (corrects one flipped
  bit, ~3x the bits);
* **checksum** — :func:`repro.core.robust_coding.run_coded_flood_max`
  rides a 32-bit wire-image checksum along (detects the flip, converting
  corruption into loss, ~1 extra word).

Per-scenario ``check()`` invariants assert the new invariant class:
survivor agreement on the *true* maximum despite corruption for the coded
variants, the documented soundness failure for the plain program, and
spanner validity (:func:`repro.spanner.is_k_spanner`) for the
checksummed-attach spanner where the plain one is pinned invalid.  The
cross-scenario ``verify`` pins zero-rate identity (``corrupt:0.0`` ==
fault-free modulo zero-valued fault counters), four-engine bit-for-bit
parity under one corruption seed, corrupted-fraction monotonicity in the
rate, and that both codes pay strictly more bits than the plain program.
"""

from __future__ import annotations

from typing import Any

from repro.core import (
    clique_spanner_round_bound,
    robust_flood_max_round_bound,
    run_clique_two_spanner,
    run_robust_flood_max,
)
from repro.core.robust_coding import (
    run_coded_clique_two_spanner,
    run_coded_flood_max,
    run_redundant_flood_max,
)
from repro.distributed.adversary import Adversary, CorruptAdversary, build_adversary
from repro.experiments.families import build_graph
from repro.experiments.registry import Experiment, check, register
from repro.experiments.spec import ScenarioSpec
from repro.spanner import is_k_spanner

_E22_SEED = 7
_FLOOD_GRAPH = ("connected_gnp", 64, 0.1, 11)
_FLOOD_PATIENCE = 3
_SPANNER_GRAPH = ("gnp", 48, 0.15, 13)
_SPANNER_SEED = 0
_CORRUPT_LO = "corrupt:0.05"
_CORRUPT_HI = "corrupt:0.1"

#: Round cap for the *plain* flood under corruption: forged labels void the
#: ``n * patience + 1`` bound (extra increases), but single-bit flips on
#: one-byte label magnitudes cannot forge past 255, so the increase count
#: is bounded by 255 and the patience argument caps the run again.
_PLAIN_CORRUPT_ROUND_CAP = robust_flood_max_round_bound(256, _FLOOD_PATIENCE)

#: Half-width of the accepted corrupted/sent band around the configured
#: rate (deterministic runs: absorbs one fixed binomial sample, not noise).
_RATIO_BAND = 0.5


def _resolve_adversary(spec: ScenarioSpec) -> Adversary | None:
    """The spec's fault policy (``None`` when the scenario is fault-free)."""
    return build_adversary(spec.adversary) if spec.adversary else None


def _corruption_checks(
    spec: ScenarioSpec, adversary: Adversary | None, metrics
) -> None:
    """Fault-counter sanity shared by every E22 scenario."""
    if not isinstance(adversary, CorruptAdversary):
        return
    faults = metrics.per_adversary
    corrupted = faults.get("adversary_corrupted_messages", 0)
    erased = faults.get("adversary_erased_messages", 0)
    check(
        erased <= corrupted,
        f"{spec.name}: {erased} erasures exceed {corrupted} corruptions",
    )
    if adversary.rate == 0.0:
        check(
            corrupted == 0,
            f"{spec.name}: zero-rate adversary corrupted {corrupted} messages",
        )
    else:
        ratio = corrupted / metrics.messages_sent
        check(
            abs(ratio - adversary.rate) <= _RATIO_BAND * adversary.rate,
            f"{spec.name}: corrupted fraction {ratio:.4f} inconsistent with "
            f"rate {adversary.rate}",
        )


def _run_flood(spec: ScenarioSpec) -> dict[str, Any]:
    """One flood-max scenario: run the spec's code, pin its soundness contract."""
    graph = build_graph(spec.param("graph"))
    n = graph.number_of_nodes()
    adversary = _resolve_adversary(spec)
    patience = spec.param("patience")
    code = spec.param("code")
    seed = spec.param("run_seed")
    engine = spec.engine or "indexed"
    if code == "repetition":
        result = run_redundant_flood_max(
            graph, patience=patience, seed=seed, engine=engine, adversary=adversary
        )
    elif code == "checksum":
        result = run_coded_flood_max(
            graph, patience=patience, seed=seed, engine=engine, adversary=adversary
        )
    else:
        # The plain program needs an explicit cap under corruption: forged
        # labels add best-value increases the provable bound never counted.
        result = run_robust_flood_max(
            graph,
            patience=patience,
            seed=seed,
            engine=engine,
            adversary=adversary,
            max_rounds=_PLAIN_CORRUPT_ROUND_CAP,
        )
    recovered = result.converged and result.leader == n - 1
    corrupting = isinstance(adversary, CorruptAdversary) and adversary.rate > 0.0
    if code == "plain" and not corrupting:
        check(recovered, f"{spec.name}: fault-free run must elect the max label")
    elif code != "plain":
        # The coded variants' soundness restores the plain round bound too.
        bound = robust_flood_max_round_bound(n, patience)
        check(
            result.rounds <= bound,
            f"{spec.name}: used {result.rounds} rounds, provable bound is {bound}",
        )
        check(
            recovered,
            f"{spec.name}: {code} code failed to recover the true maximum "
            f"(leader {result.leader!r}, converged {result.converged})",
        )
    _corruption_checks(spec, adversary, result.metrics)
    ok = recovered if code != "plain" or not corrupting else not recovered
    return {
        "workload": "floodmax",
        "code": code,
        "adversary": spec.adversary or "none",
        "engine": engine,
        "n": n,
        "m": graph.number_of_edges(),
        "rounds": result.rounds,
        "converged": result.converged,
        "leader": result.leader,
        "recovered": recovered,
        "ok": ok,
        "metrics": result.metrics,
    }


def _run_spanner(spec: ScenarioSpec) -> dict[str, Any]:
    """One spanner scenario: plain vs checksummed-attach validity."""
    graph = build_graph(spec.param("graph"))
    n = graph.number_of_nodes()
    adversary = _resolve_adversary(spec)
    code = spec.param("code")
    runner = run_coded_clique_two_spanner if code == "checksum" else run_clique_two_spanner
    result = runner(
        graph,
        seed=spec.param("run_seed"),
        engine=spec.engine or "indexed",
        adversary=adversary,
    )
    # The level schedule is round-driven: corruption never stalls it.
    check(
        result.rounds == clique_spanner_round_bound(n),
        f"{spec.name}: round schedule drifted to {result.rounds} under faults",
    )
    valid = is_k_spanner(graph, result.edges, 2)
    corrupting = isinstance(adversary, CorruptAdversary) and adversary.rate > 0.0
    if code == "checksum" or not corrupting:
        # Checksummed attach frames keep coverage beliefs sound: forged
        # announcements are discarded, so corruption degrades to loss and
        # validity must hold (fault-free plain runs obviously too).
        check(valid, f"{spec.name}: spanner invalid ({code} code)")
    elif spec.adversary == _CORRUPT_HI and spec.param("run_seed") == _SPANNER_SEED:
        # Pinned demonstration: at this graph/seed the plain program accepts
        # forged attach centres and the output fails to 2-span.
        check(
            not valid,
            f"{spec.name}: expected the plain spanner to be poisoned by "
            f"forged attach announcements, but it validated",
        )
    _corruption_checks(spec, adversary, result.metrics)
    recovered = valid
    ok = valid if code == "checksum" or not corrupting else not valid
    return {
        "workload": "spanner",
        "code": code,
        "adversary": spec.adversary or "none",
        "engine": spec.engine or "indexed",
        "n": n,
        "m": graph.number_of_edges(),
        "rounds": result.rounds,
        "edges": len(result.edges),
        "valid": valid,
        "recovered": recovered,
        "ok": ok,
        "metrics": result.metrics,
    }


def _run_e22(spec: ScenarioSpec) -> dict[str, Any]:
    """Dispatch one E22 scenario to its workload runner."""
    if spec.param("workload") == "floodmax":
        return _run_flood(spec)
    return _run_spanner(spec)


def _verify_e22(results) -> dict[str, Any]:
    """Cross-scenario invariants: identity, parity, monotonicity, bit costs.

    ``run --adversary`` rewrites every scenario to one fault policy, which
    collapses the sweep; checks comparing *different* adversaries or codes
    are therefore guarded on the labels actually present, while the
    four-engine differential (same adversary, different engines) holds
    under any pin.
    """
    (
        plain_none,
        plain_zero,
        plain_lo,
        plain_hi,
        rep_none,
        rep_lo,
        rep_hi,
        rep_hi_batch,
        rep_hi_columnar,
        rep_hi_reference,
        sum_none,
        sum_lo,
        sum_hi,
        span_plain_none,
        span_plain_hi,
        span_coded_hi,
    ) = results
    # Four-engine differential under the same corruption seed: every
    # non-timing key must agree bit-for-bit, fault counters included.
    for other in (rep_hi_batch, rep_hi_columnar, rep_hi_reference):
        for key in rep_hi:
            if key.startswith("timing.") or key == "engine":
                continue
            check(
                rep_hi[key] == other[key],
                f"engines {rep_hi['engine']}/{other['engine']} disagree under "
                f"{rep_hi['adversary']} on {key}: "
                f"{rep_hi[key]!r} != {other[key]!r}",
            )
    if plain_none["adversary"] == "none" and plain_zero["adversary"] == "corrupt:0.0":
        # A zero-rate CorruptAdversary must reproduce fault-free physics
        # exactly; the only admissible difference is the presence of
        # zero-valued fault counters (and the adversary label itself).
        for key, value in plain_none.items():
            if key.startswith("timing.") or key == "adversary":
                continue
            check(
                plain_zero.get(key) == value,
                f"corrupt:0.0 diverges from the fault-free run on {key}: "
                f"{plain_zero.get(key)!r} != {value!r}",
            )
        check(
            plain_zero.get("metrics.adversary_corrupted_messages") == 0,
            "corrupt:0.0 corrupted a message",
        )
    if plain_lo["adversary"] != plain_hi["adversary"]:
        ratio_lo = (
            plain_lo["metrics.adversary_corrupted_messages"]
            / plain_lo["metrics.messages_sent"]
        )
        ratio_hi = (
            plain_hi["metrics.adversary_corrupted_messages"]
            / plain_hi["metrics.messages_sent"]
        )
        check(
            ratio_hi > ratio_lo,
            "higher corruption rate did not corrupt a larger message fraction",
        )
    headline = None
    if plain_hi["adversary"] == _CORRUPT_HI and rep_hi["adversary"] == _CORRUPT_HI:
        # The tier's reason to exist: under corrupt:0.1 the plain program
        # fails soundness while both codes recover the true maximum.
        check(
            not plain_hi["recovered"],
            "plain flood-max unexpectedly recovered the true maximum under "
            "corruption (the soundness failure this tier demonstrates)",
        )
        check(
            rep_hi["recovered"] and sum_hi["recovered"],
            "a coded flood-max failed to recover the true maximum",
        )
        headline = bool(
            not plain_hi["recovered"]
            and rep_hi["recovered"]
            and sum_hi["recovered"]
        )
    if (
        plain_none["adversary"] == "none"
        and rep_none["adversary"] == "none"
        and sum_none["adversary"] == "none"
    ):
        # The cost side of the tradeoff curve: both codes pay strictly more
        # bits than the plain program on identical traffic.  (Their relative
        # order depends on the payload width: a 32-bit checksum exceeds 3x
        # repetition of a one-word label, and only wins for wide payloads —
        # the reported bits pin the measured curve.)
        check(
            rep_none["metrics.bits_sent"] > plain_none["metrics.bits_sent"]
            and sum_none["metrics.bits_sent"] > plain_none["metrics.bits_sent"],
            "a coded flood-max did not cost more bits than the plain program",
        )
    return {
        "headline.codes_recover_where_plain_fails": headline,
        "floodmax.plain.corrupt10.leader": plain_hi.get("leader"),
        "floodmax.repetition.corrupt10.recovered": rep_hi.get("recovered"),
        "floodmax.checksum.corrupt10.recovered": sum_hi.get("recovered"),
        "floodmax.bits.plain": plain_none.get("metrics.bits_sent"),
        "floodmax.bits.checksum": sum_none.get("metrics.bits_sent"),
        "floodmax.bits.repetition": rep_none.get("metrics.bits_sent"),
        "spanner.plain.corrupt10.valid": span_plain_hi.get("valid"),
        "spanner.checksum.corrupt10.valid": span_coded_hi.get("valid"),
        "spanner.none.edges": span_plain_none.get("edges"),
    }


def _flood_spec(name: str, code: str, adversary: str | None, engine: str | None = None):
    """One flood-max scenario spec (shared graph/patience/seed)."""
    return ScenarioSpec.make(
        "E22",
        name,
        engine=engine,
        adversary=adversary,
        workload="floodmax",
        code=code,
        graph=_FLOOD_GRAPH,
        patience=_FLOOD_PATIENCE,
        run_seed=_E22_SEED,
    )


def _spanner_spec(name: str, code: str, adversary: str | None):
    """One spanner scenario spec (shared graph/seed)."""
    return ScenarioSpec.make(
        "E22",
        name,
        adversary=adversary,
        workload="spanner",
        code=code,
        graph=_SPANNER_GRAPH,
        run_seed=_SPANNER_SEED,
    )


register(
    Experiment(
        id="E22",
        title="corruption tier: coded robust workloads under payload bit-flips",
        headline="corrupt adversary: codes recover the true flood-max where the plain program is forged",
        columns=(
            ("workload", "workload", None),
            ("code", "code", None),
            ("adversary", "adversary", None),
            ("engine", "engine", None),
            ("rounds", "rounds", None),
            ("messages", "metrics.messages_sent", None),
            ("corrupted", "metrics.adversary_corrupted_messages", None),
            ("erased", "metrics.adversary_erased_messages", None),
            ("bits", "metrics.bits_sent", None),
            ("recovered", "recovered", None),
            ("ok", "ok", None),
        ),
        scenarios=[
            _flood_spec("floodmax plain none", "plain", None),
            _flood_spec("floodmax plain corrupt=0.00", "plain", "corrupt:0.0"),
            _flood_spec("floodmax plain corrupt=0.05", "plain", _CORRUPT_LO),
            _flood_spec("floodmax plain corrupt=0.10", "plain", _CORRUPT_HI),
            _flood_spec("floodmax repetition none", "repetition", None),
            _flood_spec("floodmax repetition corrupt=0.05", "repetition", _CORRUPT_LO),
            _flood_spec("floodmax repetition corrupt=0.10", "repetition", _CORRUPT_HI),
            _flood_spec(
                "floodmax repetition corrupt=0.10 batch",
                "repetition",
                _CORRUPT_HI,
                engine="batch",
            ),
            _flood_spec(
                "floodmax repetition corrupt=0.10 columnar",
                "repetition",
                _CORRUPT_HI,
                engine="columnar",
            ),
            _flood_spec(
                "floodmax repetition corrupt=0.10 reference",
                "repetition",
                _CORRUPT_HI,
                engine="reference",
            ),
            _flood_spec("floodmax checksum none", "checksum", None),
            _flood_spec("floodmax checksum corrupt=0.05", "checksum", _CORRUPT_LO),
            _flood_spec("floodmax checksum corrupt=0.10", "checksum", _CORRUPT_HI),
            _spanner_spec("spanner plain none", "plain", None),
            _spanner_spec("spanner plain corrupt=0.10", "plain", _CORRUPT_HI),
            _spanner_spec("spanner checksum corrupt=0.10", "checksum", _CORRUPT_HI),
        ],
        run_scenario=_run_e22,
        verify=_verify_e22,
        tags=("corruption", "robustness"),
    )
)
