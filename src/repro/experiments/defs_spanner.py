"""Registry definitions for the spanner experiments E01-E05 and E07.

Each experiment's workload sweep is declared as a list of
:class:`ScenarioSpec` and executed one scenario at a time by a module-level
runner function; the per-theorem invariants formerly asserted inside
``benchmarks/bench_e*.py`` live here (scenario-local ones in the runner,
cross-scenario ones in ``verify``), so the CLI enforces them too.
"""

from __future__ import annotations

import math
from typing import Any

from repro.core import (
    TwoSpannerOptions,
    WeightedVariant,
    client_server_two_spanner,
    one_plus_eps_spanner,
    run_directed_two_spanner,
    run_two_spanner,
)
from repro.experiments.families import build_graph
from repro.experiments.registry import Experiment, check, register
from repro.experiments.spec import ScenarioSpec
from repro.graphs import (
    assign_weights_from_choices,
    log_m_over_n,
    log_max_degree,
    random_split_instance,
)
from repro.spanner import (
    is_client_server_2_spanner,
    is_k_spanner,
    is_k_spanner_directed,
    lp_lower_bound_2spanner,
    lp_lower_bound_2spanner_directed,
    minimum_client_server_2_spanner_exact,
    minimum_k_spanner_exact,
    minimum_k_spanner_exact_directed,
    spanner_cost,
)


# --------------------------------------------------------------------------
# E01 — Theorem 1.3: approximation ratio O(log m/n)
# --------------------------------------------------------------------------

_E01_SEED = 11


def _e01_spec(name: str, graph: tuple, baseline: str) -> ScenarioSpec:
    return ScenarioSpec.make(
        "E01", name, graph=graph, baseline=baseline, run_seed=_E01_SEED
    )


def _run_e01(spec: ScenarioSpec) -> dict[str, Any]:
    graph = build_graph(spec.param("graph"))
    result = run_two_spanner(graph, seed=spec.param("run_seed"))
    check(is_k_spanner(graph, result.edges, 2), f"{spec.name}: invalid 2-spanner")
    kind = spec.param("baseline")
    if kind == "exact":
        baseline = float(len(minimum_k_spanner_exact(graph, 2)))
    elif kind == "analytic":
        # Complete graph: a single full star (n-1 edges) is optimal.
        baseline = float(graph.number_of_nodes() - 1)
    else:
        baseline = max(1.0, lp_lower_bound_2spanner(graph))
    ratio = result.size / baseline
    yardstick = log_m_over_n(graph)
    # The paper's guarantee: ratio = O(log m/n); 16 is the empirical envelope.
    check(ratio <= 16 * max(1.0, yardstick), f"{spec.name}: ratio {ratio:.3f} escapes envelope")
    return {
        "workload": spec.name,
        "m": graph.number_of_edges(),
        "baseline": baseline,
        "kind": kind,
        "size": result.size,
        "ratio": ratio,
        "log_m_over_n": yardstick,
        "metrics": result.metrics,
    }


def _verify_e01(results) -> dict[str, Any]:
    return {"worst_ratio": max(r["ratio"] for r in results), "scenarios": len(results)}


register(
    Experiment(
        id="E01",
        title="Theorem 1.3: distributed 2-spanner approximation ratio",
        headline="spanner size vs exact optimum / LP bound vs the log2(m/n) yardstick",
        targeted=True,
        columns=(
            ("workload", "workload", None),
            ("m", "m", None),
            ("opt/LP", "baseline", "g"),
            ("alg size", "size", None),
            ("ratio", "ratio", ".3f"),
            ("log2(m/n)", "log_m_over_n", ".3f"),
            ("baseline", "kind", None),
        ),
        scenarios=[
            _e01_spec("gnp n=14 p=0.45", ("connected_gnp", 14, 0.45, 1), "exact"),
            _e01_spec("gnp n=16 p=0.35", ("connected_gnp", 16, 0.35, 2), "exact"),
            _e01_spec("cluster 3x4", ("cluster", 3, 4, 3), "exact"),
            _e01_spec("clique n=12", ("complete", 12), "analytic"),
            _e01_spec("gnp n=40 p=0.25", ("connected_gnp", 40, 0.25, 4), "lp"),
            _e01_spec("gnp n=60 p=0.15", ("connected_gnp", 60, 0.15, 5), "lp"),
            _e01_spec("stars 4x6", ("overlapping_stars", 4, 6, 2, 6), "lp"),
        ],
        run_scenario=_run_e01,
        verify=_verify_e01,
    )
)


# --------------------------------------------------------------------------
# E02 — Theorem 1.3: O(log n log Delta) rounds
# --------------------------------------------------------------------------


def _run_e02(spec: ScenarioSpec) -> dict[str, Any]:
    graph = build_graph(spec.param("graph"))
    options = TwoSpannerOptions(densest_method="peeling")
    result = run_two_spanner(graph, seed=spec.param("run_seed"), options=options)
    check(is_k_spanner(graph, result.edges, 2), f"{spec.name}: invalid 2-spanner")
    n, delta = graph.number_of_nodes(), graph.max_degree()
    yardstick = math.log2(n) * math.log2(max(2, delta))
    return {
        "workload": spec.name,
        "n": n,
        "delta": delta,
        "iterations": result.iterations,
        "rounds": result.rounds,
        "yardstick": yardstick,
        "iter_over_yardstick": result.iterations / yardstick,
        "metrics": result.metrics,
    }


def _verify_e02(results) -> dict[str, Any]:
    ratios = [r["iter_over_yardstick"] for r in results]
    # Shape check: iteration counts stay polylog and do not grow linearly in
    # n (n grows 6x across the sweep).
    check(max(ratios) <= 10.0, f"iterations escaped the polylog envelope: {max(ratios):.3f}")
    check(
        results[-2]["iterations"] <= 4 * results[0]["iterations"] + 8,
        "iteration count grows super-polylogarithmically across the sweep",
    )
    return {"max_iter_over_yardstick": max(ratios)}


register(
    Experiment(
        id="E02",
        title="Theorem 1.3: rounds vs O(log n log Delta)",
        headline="iteration / round counts against the log2(n)*log2(Delta) yardstick",
        targeted=True,
        columns=(
            ("workload", "workload", None),
            ("n", "n", None),
            ("Delta", "delta", None),
            ("iterations", "iterations", None),
            ("sim rounds", "rounds", None),
            ("log2(n)*log2(D)", "yardstick", ".3f"),
            ("iters/yardstick", "iter_over_yardstick", ".3f"),
        ),
        scenarios=[
            ScenarioSpec.make("E02", name, graph=graph, run_seed=9)
            for name, graph in [
                ("gnp n=20", ("connected_gnp", 20, 0.30, 1)),
                ("gnp n=40", ("connected_gnp", 40, 0.20, 2)),
                ("gnp n=80", ("connected_gnp", 80, 0.12, 3)),
                ("gnp n=120", ("connected_gnp", 120, 0.08, 4)),
                ("ba n=100 m0=3", ("barabasi_albert", 100, 3, 5)),
            ]
        ],
        run_scenario=_run_e02,
        verify=_verify_e02,
    )
)


# --------------------------------------------------------------------------
# E03 — Theorem 4.9: directed 2-spanner keeps O(log m/n)
# --------------------------------------------------------------------------


def _run_e03(spec: ScenarioSpec) -> dict[str, Any]:
    graph = build_graph(spec.param("graph"))
    result = run_directed_two_spanner(graph, seed=spec.param("run_seed"))
    check(is_k_spanner_directed(graph, result.arcs, 2), f"{spec.name}: invalid directed 2-spanner")
    if spec.param("baseline") == "exact":
        baseline = float(len(minimum_k_spanner_exact_directed(graph, 2)))
    else:
        baseline = max(1.0, lp_lower_bound_2spanner_directed(graph))
    ratio = result.size / baseline
    return {
        "workload": spec.name,
        "m": graph.number_of_edges(),
        "baseline": baseline,
        "kind": spec.param("baseline"),
        "size": result.size,
        "ratio": ratio,
        "metrics": result.metrics,
    }


def _verify_e03(results) -> dict[str, Any]:
    worst = max(r["ratio"] for r in results)
    check(worst <= 24.0, f"directed ratio {worst:.3f} exceeds the envelope")
    return {"worst_ratio": worst}


register(
    Experiment(
        id="E03",
        title="Theorem 4.9: directed 2-spanner approximation",
        headline="directed spanner size vs exact optimum / directed LP bound",
        targeted=True,
        columns=(
            ("workload", "workload", None),
            ("m", "m", None),
            ("opt/LP", "baseline", "g"),
            ("alg size", "size", None),
            ("ratio", "ratio", ".3f"),
            ("baseline", "kind", None),
        ),
        scenarios=[
            ScenarioSpec.make("E03", name, graph=graph, baseline=kind, run_seed=7)
            for name, graph, kind in [
                ("digraph n=10 p=0.35", ("random_digraph", 10, 0.35, 1), "exact"),
                ("digraph n=11 p=0.30", ("random_digraph", 11, 0.30, 2), "exact"),
                ("tournament n=8", ("random_tournament", 8, 3), "exact"),
                ("bidirected K6", ("bidirected_complete", 6), "exact"),
                ("digraph n=30 p=0.15", ("random_digraph", 30, 0.15, 4), "lp"),
                ("tournament n=20", ("random_tournament", 20, 5), "lp"),
            ]
        ],
        run_scenario=_run_e03,
        verify=_verify_e03,
    )
)


# --------------------------------------------------------------------------
# E04 — Theorem 4.12: weighted 2-spanner
# --------------------------------------------------------------------------


def _run_e04(spec: ScenarioSpec) -> dict[str, Any]:
    graph = build_graph(spec.param("graph"))
    assign_weights_from_choices(
        graph, list(spec.param("weights")), seed=spec.param("weight_seed")
    )
    result = run_two_spanner(graph, variant=WeightedVariant(), seed=spec.param("run_seed"))
    check(is_k_spanner(graph, result.edges, 2), f"{spec.name}: invalid 2-spanner")
    opt = minimum_k_spanner_exact(graph, 2, use_weights=True)
    opt_cost = max(1e-9, spanner_cost(graph, opt))
    ratio = result.cost(graph) / opt_cost if opt_cost > 1e-6 else 1.0
    return {
        "weights": spec.name,
        "opt_cost": opt_cost,
        "alg_cost": result.cost(graph),
        "ratio": ratio,
        "log_delta": log_max_degree(graph),
        "iterations": result.iterations,
        "metrics": result.metrics,
    }


def _verify_e04(results) -> dict[str, Any]:
    worst = max(r["ratio"] for r in results)
    envelope = 16 * max(r["log_delta"] for r in results)
    check(worst <= envelope, f"weighted ratio {worst:.3f} exceeds 16*log2(Delta)")
    return {"worst_ratio": worst}


register(
    Experiment(
        id="E04",
        title="Theorem 4.12: weighted 2-spanner, cost vs exact optimum",
        headline="weighted spanner cost across weight spreads vs the O(log Delta) bound",
        targeted=True,
        columns=(
            ("weights", "weights", None),
            ("opt cost", "opt_cost", ".3f"),
            ("alg cost", "alg_cost", ".3f"),
            ("ratio", "ratio", ".3f"),
            ("log2(Delta)", "log_delta", ".3f"),
            ("iterations", "iterations", None),
        ),
        scenarios=[
            ScenarioSpec.make(
                "E04",
                name,
                graph=("connected_gnp", 13, 0.45, 3),
                weights=choices,
                weight_seed=4,
                run_seed=5,
            )
            for name, choices in [
                ("W=1 (uniform)", (1.0,)),
                ("W=8", (1.0, 2.0, 8.0)),
                ("W=64", (1.0, 8.0, 64.0)),
                ("with zero weights", (0.0, 1.0, 4.0)),
            ]
        ],
        run_scenario=_run_e04,
        verify=_verify_e04,
    )
)


# --------------------------------------------------------------------------
# E05 — Theorem 4.15: client-server 2-spanner
# --------------------------------------------------------------------------


def _run_e05(spec: ScenarioSpec) -> dict[str, Any]:
    graph = build_graph(spec.param("graph"))
    instance = random_split_instance(
        graph,
        client_fraction=spec.param("client_fraction"),
        server_fraction=spec.param("server_fraction"),
        seed=spec.param("split_seed"),
    )
    result = client_server_two_spanner(instance, seed=spec.param("run_seed"))
    check(is_client_server_2_spanner(instance, result.edges), f"{spec.name}: invalid CS 2-spanner")
    opt_size = max(1, len(minimum_client_server_2_spanner_exact(instance)))
    log_c_vc = math.log2(
        max(2.0, len(instance.clients) / max(1, len(instance.client_vertices())))
    )
    log_ds = math.log2(max(2, instance.server_max_degree()))
    return {
        "split": spec.name,
        "clients": len(instance.clients),
        "servers": len(instance.servers),
        "opt": opt_size,
        "size": result.size,
        "ratio": result.size / opt_size,
        "yardstick": min(log_c_vc, log_ds),
        "metrics": result.metrics,
    }


def _verify_e05(results) -> dict[str, Any]:
    worst = max(r["ratio"] for r in results)
    envelope = 16 * max(1.0, max(r["yardstick"] for r in results))
    check(worst <= envelope, f"client-server ratio {worst:.3f} exceeds the envelope")
    return {"worst_ratio": worst}


register(
    Experiment(
        id="E05",
        title="Theorem 4.15: client-server 2-spanner",
        headline="server-edge choices vs exact optimum across client/server splits",
        targeted=True,
        columns=(
            ("split", "split", None),
            ("|C|", "clients", None),
            ("|S|", "servers", None),
            ("opt", "opt", None),
            ("alg", "size", None),
            ("ratio", "ratio", ".3f"),
            ("min(log C/VC, log Ds)", "yardstick", ".3f"),
        ),
        scenarios=[
            ScenarioSpec.make(
                "E05",
                name,
                graph=("connected_gnp", 12, 0.5, 6),
                client_fraction=c_frac,
                server_fraction=s_frac,
                split_seed=7,
                run_seed=8,
            )
            for name, c_frac, s_frac in [
                ("clients 0.5 / servers 0.9", 0.5, 0.9),
                ("clients 0.7 / servers 0.7", 0.7, 0.7),
                ("clients 0.9 / servers 0.5", 0.9, 0.5),
                ("all clients / all servers", 1.0, 1.0),
            ]
        ],
        run_scenario=_run_e05,
        verify=_verify_e05,
    )
)


# --------------------------------------------------------------------------
# E07 — Theorem 1.2: (1+eps)-approximation in LOCAL
# --------------------------------------------------------------------------


def _run_e07(spec: ScenarioSpec) -> dict[str, Any]:
    graph = build_graph(spec.param("graph"))
    k, eps = spec.param("k"), spec.param("epsilon")
    result = one_plus_eps_spanner(graph, k=k, epsilon=eps, seed=spec.param("run_seed"))
    check(is_k_spanner(graph, result.edges, k), f"{spec.name}: invalid {k}-spanner")
    opt = len(minimum_k_spanner_exact(graph, k))
    ratio = result.size / opt
    # Within (1+eps) up to integrality slack.
    check(ratio <= (1 + eps) + 0.15, f"{spec.name}: ratio {ratio:.3f} above 1+eps")
    return {
        "setting": spec.name,
        "opt": opt,
        "size": result.size,
        "ratio": ratio,
        "one_plus_eps": 1 + eps,
        "r": result.r,
        "rounds_estimate": result.rounds_estimate,
    }


def _verify_e07(results) -> dict[str, Any]:
    return {"worst_ratio": max(r["ratio"] for r in results)}


register(
    Experiment(
        id="E07",
        title="Theorem 1.2: (1+eps)-approximation in LOCAL",
        headline="(1+eps)-approximate minimum k-spanner across an eps/k sweep",
        columns=(
            ("setting", "setting", None),
            ("opt", "opt", None),
            ("alg size", "size", None),
            ("ratio", "ratio", ".3f"),
            ("1+eps", "one_plus_eps", ".3f"),
            ("r", "r", None),
            ("round estimate", "rounds_estimate", None),
        ),
        scenarios=[
            ScenarioSpec.make(
                "E07",
                f"k={k} eps={eps}",
                graph=("connected_gnp", 11, 0.4, 3),
                k=k,
                epsilon=eps,
                run_seed=4,
            )
            for k, eps in [(2, 1.0), (2, 0.5), (2, 0.25), (3, 0.5)]
        ],
        run_scenario=_run_e07,
        verify=_verify_e07,
    )
)
