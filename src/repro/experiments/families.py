"""Graph-family registry: build deterministic instances from spec tuples.

A graph inside a :class:`~repro.experiments.spec.ScenarioSpec` is described
by a positional tuple ``(family, *args)`` — e.g. ``("connected_gnp", 40,
0.25, 4)`` — mirroring the generator signatures, so the spec stays a pure
primitive structure.  :func:`build_graph` rebuilds the instance inside
whichever worker process runs the scenario; all generators are seeded, so
the same tuple always yields the same graph.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from repro.graphs import (
    barabasi_albert_graph,
    bidirect,
    cluster_graph,
    complete_bipartite_graph,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    overlapping_stars_graph,
    path_graph,
    random_digraph,
    random_tournament,
    sparse_gnp_csr,
    sparse_gnp_graph,
)

FAMILIES: dict[str, Callable[..., Any]] = {
    # undirected
    "gnp": lambda n, p, seed: gnp_random_graph(n, p, seed=seed),
    "connected_gnp": lambda n, p, seed: connected_gnp_graph(n, p, seed=seed),
    "complete": complete_graph,
    "complete_bipartite": complete_bipartite_graph,
    "cluster": lambda clusters, size, seed: cluster_graph(clusters, size, seed=seed),
    "overlapping_stars": lambda stars, leaves, overlap, seed: overlapping_stars_graph(
        stars, leaves, overlap, seed=seed
    ),
    "barabasi_albert": lambda n, m, seed: barabasi_albert_graph(n, m, seed=seed),
    # O(n + m) geometric-skip sampler, connectivity-patched: the only G(n, p)
    # family usable at the E18 scale tier (n in the tens of thousands).
    "sparse_connected_gnp": lambda n, p, seed: sparse_gnp_graph(
        n, p, seed=seed, connect=True
    ),
    # Same sampler, but scattered straight into frozen CSR arrays (no
    # dict-of-sets intermediate): the E20 mega-scale family, usable at
    # n = 10^6 where the adjacency-dict representation's peak RSS would
    # dominate the run.
    "sparse_gnp_csr": lambda n, p, seed: sparse_gnp_csr(n, p, seed=seed, connect=True),
    "grid": grid_graph,
    "path": path_graph,
    "cycle": cycle_graph,
    # directed
    "random_digraph": lambda n, p, seed: random_digraph(n, p, seed=seed),
    "random_tournament": lambda n, seed: random_tournament(n, seed=seed),
    "bidirected_complete": lambda n: bidirect(complete_graph(n)),
}


def build_graph(family_spec: Sequence[Any]) -> Any:
    """Instantiate the graph described by a ``(family, *args)`` tuple."""
    family, *args = family_spec
    try:
        builder = FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(FAMILIES))
        raise KeyError(f"unknown graph family {family!r} (known: {known})") from None
    return builder(*args)
