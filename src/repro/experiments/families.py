"""Graph-family registry: build deterministic instances from spec tuples.

A graph inside a :class:`~repro.experiments.spec.ScenarioSpec` is described
by a positional tuple ``(family, *args)`` — e.g. ``("connected_gnp", 40,
0.25, 4)`` — mirroring the generator signatures, so the spec stays a pure
primitive structure.  :func:`build_graph` rebuilds the instance inside
whichever worker process runs the scenario; all generators are seeded, so
the same tuple always yields the same graph.

Frozen-CSR families are additionally memoized per worker process: scenarios
sharing a family tuple (the E20/E23 engine and lowering twins in
particular) reuse the same immutable
:class:`~repro.graphs.topology.CompiledTopology` instead of regenerating a
mega-scale graph once per scenario.  Only :class:`FrozenGraph` results are
cached — mutable :class:`~repro.graphs.graph.Graph` instances may be edited
by scenario runners (e.g. weight assignment in the spanner tier), so they
are always rebuilt.  Determinism is unaffected: a memo hit returns the
byte-identical arrays the generator would have rebuilt from the same seed.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Callable, Sequence
from typing import Any

from repro.graphs.topology import FrozenGraph

from repro.graphs import (
    barabasi_albert_csr,
    barabasi_albert_graph,
    bidirect,
    cluster_graph,
    complete_bipartite_graph,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    overlapping_stars_graph,
    path_graph,
    random_digraph,
    random_tournament,
    sparse_gnp_csr,
    sparse_gnp_graph,
)

FAMILIES: dict[str, Callable[..., Any]] = {
    # undirected
    "gnp": lambda n, p, seed: gnp_random_graph(n, p, seed=seed),
    "connected_gnp": lambda n, p, seed: connected_gnp_graph(n, p, seed=seed),
    "complete": complete_graph,
    "complete_bipartite": complete_bipartite_graph,
    "cluster": lambda clusters, size, seed: cluster_graph(clusters, size, seed=seed),
    "overlapping_stars": lambda stars, leaves, overlap, seed: overlapping_stars_graph(
        stars, leaves, overlap, seed=seed
    ),
    "barabasi_albert": lambda n, m, seed: barabasi_albert_graph(n, m, seed=seed),
    # Preferential attachment scattered straight into frozen CSR arrays —
    # the O(n + m) power-law family for the E23 lowered-kernel scenarios.
    # Same distribution as "barabasi_albert", different instances per seed.
    "barabasi_albert_csr": lambda n, m, seed: barabasi_albert_csr(n, m, seed=seed),
    # O(n + m) geometric-skip sampler, connectivity-patched: the only G(n, p)
    # family usable at the E18 scale tier (n in the tens of thousands).
    "sparse_connected_gnp": lambda n, p, seed: sparse_gnp_graph(
        n, p, seed=seed, connect=True
    ),
    # Same sampler, but scattered straight into frozen CSR arrays (no
    # dict-of-sets intermediate): the E20 mega-scale family, usable at
    # n = 10^6 where the adjacency-dict representation's peak RSS would
    # dominate the run.
    "sparse_gnp_csr": lambda n, p, seed: sparse_gnp_csr(n, p, seed=seed, connect=True),
    "grid": grid_graph,
    "path": path_graph,
    "cycle": cycle_graph,
    # directed
    "random_digraph": lambda n, p, seed: random_digraph(n, p, seed=seed),
    "random_tournament": lambda n, seed: random_tournament(n, seed=seed),
    "bidirected_complete": lambda n: bidirect(complete_graph(n)),
}


#: Per-worker memo of frozen-CSR instances, canonical-spec-hash -> graph.
#: Bounded: mega-scale topologies are tens-of-MB objects, so only the most
#: recently built few are retained (insertion-ordered dict as a tiny LRU).
_TOPOLOGY_MEMO: dict[str, FrozenGraph] = {}
_TOPOLOGY_MEMO_CAP = 4


def family_spec_hash(family_spec: Sequence[Any]) -> str:
    """Canonical content hash of a ``(family, *args)`` tuple (the memo key).

    Same recipe as :meth:`~repro.experiments.spec.ScenarioSpec.spec_hash`:
    SHA-256 over the sorted-key, whitespace-free JSON form, truncated to 16
    hex digits.  Depends only on the tuple contents, never on tuple-vs-list
    shape or process state.
    """
    canonical = json.dumps(list(family_spec), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def clear_graph_memo() -> None:
    """Drop every memoized topology (tests and memory-sensitive callers)."""
    _TOPOLOGY_MEMO.clear()


def build_graph(family_spec: Sequence[Any]) -> Any:
    """Instantiate the graph described by a ``(family, *args)`` tuple.

    Immutable :class:`~repro.graphs.topology.FrozenGraph` results are
    memoized per worker process under :func:`family_spec_hash`; mutable
    graphs are rebuilt on every call (scenario runners may edit them).
    """
    key = family_spec_hash(family_spec)
    hit = _TOPOLOGY_MEMO.get(key)
    if hit is not None:
        return hit
    family, *args = family_spec
    try:
        builder = FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(FAMILIES))
        raise KeyError(f"unknown graph family {family!r} (known: {known})") from None
    graph = builder(*args)
    if isinstance(graph, FrozenGraph):
        while len(_TOPOLOGY_MEMO) >= _TOPOLOGY_MEMO_CAP:
            _TOPOLOGY_MEMO.pop(next(iter(_TOPOLOGY_MEMO)))
        _TOPOLOGY_MEMO[key] = graph
    return graph
