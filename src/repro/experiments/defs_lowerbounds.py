"""Registry definitions for the lower-bound experiments E08-E12."""

from __future__ import annotations

from typing import Any

from repro.core import WeightedVariant, run_two_spanner
from repro.experiments.families import build_graph
from repro.experiments.registry import Experiment, check, register
from repro.experiments.spec import ScenarioSpec
from repro.lowerbounds import (
    build_construction_g,
    build_construction_gw,
    build_construction_gw_undirected,
    build_mvc_reduction,
    claim_2_2_holds,
    deterministic_gap_threshold,
    disjoint_case_spanner,
    exact_vertex_cover,
    greedy_matching_vertex_cover,
    has_zero_cost_spanner,
    has_zero_cost_spanner_undirected,
    is_vertex_cover,
    minimum_required_d_edges,
    random_disjoint_instance,
    random_far_from_disjoint_instance,
    random_intersecting_instance,
    simulate_reduction,
    spanner_to_vertex_cover,
    theorem_1_1_parameters,
    theorem_2_8_parameters,
)
from repro.spanner import is_k_spanner, is_k_spanner_directed, minimum_k_spanner_exact


# --------------------------------------------------------------------------
# E08 — Figure 1 + Claim 2.2 + Lemma 2.3: the randomised construction
# --------------------------------------------------------------------------


def _run_e08(spec: ScenarioSpec) -> dict[str, Any]:
    ell, beta = spec.param("ell"), spec.param("beta")
    n_bits = ell * ell
    disjoint = build_construction_g(ell, beta, random_disjoint_instance(n_bits, seed=1))
    intersecting = build_construction_g(
        ell, beta, random_intersecting_instance(n_bits, intersections=1, seed=2)
    )
    claim = all(
        claim_2_2_holds(cg, i, r)
        for cg in (disjoint, intersecting)
        for i in range(1, ell + 1)
        for r in range(1, ell + 1)
    )
    sparse = disjoint_case_spanner(disjoint)
    sparse_valid = is_k_spanner_directed(disjoint.graph, sparse, 5)
    forced = minimum_required_d_edges(intersecting)
    check(claim, f"{spec.name}: Claim 2.2 violated")
    check(sparse_valid, f"{spec.name}: disjoint-case spanner invalid")
    check(
        len(sparse) <= disjoint.sparse_spanner_bound(),
        f"{spec.name}: Lemma 2.3 upper bound violated",
    )
    return {
        "params": spec.name,
        "n": disjoint.n,
        "d_edges": len(disjoint.d_edges),
        "claim_2_2": claim,
        "sparse_valid": sparse_valid,
        "sparse_size": len(sparse),
        "sparse_bound": disjoint.sparse_spanner_bound(),
        "forced": forced,
        "gap": forced / max(1, len(sparse)),
    }


def _verify_e08(results) -> dict[str, Any]:
    # With beta > c*ell the single-intersection case already exceeds the
    # sparse bound (the second setting is the witness).
    check(
        results[1]["forced"] > results[1]["sparse_bound"],
        "intersection case does not exceed the sparse-spanner bound",
    )
    return {"max_gap": max(r["gap"] for r in results)}


register(
    Experiment(
        id="E08",
        title="Figure 1 / Lemma 2.3: spanner-size gap of G(ell, beta)",
        headline="sparse disjoint-case spanner vs forced dense edges of G(ell, beta)",
        columns=(
            ("params", "params", None),
            ("n", "n", None),
            ("|D|", "d_edges", None),
            ("Claim2.2", "claim_2_2", None),
            ("sparse valid", "sparse_valid", None),
            ("sparse size", "sparse_size", None),
            ("c*ell*beta", "sparse_bound", None),
            ("forced D edges", "forced", None),
            ("gap", "gap", ".3f"),
        ),
        scenarios=[
            ScenarioSpec.make("E08", f"ell={ell} beta={beta}", ell=ell, beta=beta)
            for ell, beta in [(3, 10), (3, 22), (4, 30)]
        ],
        run_scenario=_run_e08,
        verify=_verify_e08,
    )
)


# --------------------------------------------------------------------------
# E09 — Theorem 1.1: the two-party simulation
# --------------------------------------------------------------------------


def _run_e09(spec: ScenarioSpec) -> dict[str, Any]:
    n_target, case = spec.param("n_target"), spec.param("case")
    alpha = spec.param("alpha")
    ell, beta = theorem_1_1_parameters(n_target, alpha)
    n_bits = ell * ell
    if case == "disjoint":
        instance = random_disjoint_instance(n_bits, seed=n_target)
    else:
        instance = random_intersecting_instance(n_bits, 1, seed=n_target + 1)
    cg = build_construction_g(ell, beta, instance)
    report = simulate_reduction(cg, alpha=alpha)
    check(report.decision_correct, f"{spec.name}: reduction decided incorrectly")
    # The reference protocol really ships Theta(N) bits across the cut, and
    # the cut stays Theta(ell) (the construction is non-symmetric by design).
    check(
        report.cut_bits >= report.disjointness_bits_needed // 4,
        f"{spec.name}: cut communication below Omega(N)",
    )
    check(report.cut_edges == 3 * report.ell, f"{spec.name}: cut size is not Theta(ell)")
    return {
        "instance": spec.name,
        "n": report.n,
        "ell": report.ell,
        "beta": report.beta,
        "cut_edges": report.cut_edges,
        "cut_bits": report.cut_bits,
        "bits_needed": report.disjointness_bits_needed,
        "rounds": report.rounds,
        "implied_lb_rounds": report.implied_rounds_lower_bound,
        "theorem_yardstick": report.theorem_rounds_lower_bound,
    }


def _verify_e09(results) -> dict[str, Any]:
    # Larger constructions force more cut communication (monotone in n).
    check(
        results[-1]["cut_bits"] > results[0]["cut_bits"],
        "cut communication is not monotone in n",
    )
    return {"max_cut_bits": max(r["cut_bits"] for r in results)}


register(
    Experiment(
        id="E09",
        title="Theorem 1.1: Alice/Bob simulation on G(ell, beta)  (alpha = 1)",
        headline="bits forced across the Alice/Bob cut vs the Omega(N) requirement",
        columns=(
            ("instance", "instance", None),
            ("n", "n", None),
            ("ell", "ell", None),
            ("beta", "beta", None),
            ("cut edges", "cut_edges", None),
            ("cut bits measured", "cut_bits", None),
            ("bits needed (Omega(N))", "bits_needed", None),
            ("protocol rounds", "rounds", None),
            ("implied LB rounds", "implied_lb_rounds", ".3f"),
            ("thm yardstick", "theorem_yardstick", ".3f"),
        ),
        scenarios=[
            ScenarioSpec.make(
                "E09",
                f"n'={n_target} ({case})",
                n_target=n_target,
                case=case,
                alpha=1.0,
            )
            for n_target in (300, 700, 1500)
            for case in ("disjoint", "1 intersection")
        ],
        run_scenario=_run_e09,
        verify=_verify_e09,
    )
)


# --------------------------------------------------------------------------
# E10 — Lemma 2.6 + Theorem 2.8: the deterministic gap regime
# --------------------------------------------------------------------------


def _run_e10(spec: ScenarioSpec) -> dict[str, Any]:
    n_target, alpha = spec.param("n_target"), spec.param("alpha")
    ell, beta = theorem_2_8_parameters(n_target, alpha)
    n_bits = ell * ell
    disjoint = build_construction_g(ell, beta, random_disjoint_instance(n_bits, seed=3))
    far = build_construction_g(ell, beta, random_far_from_disjoint_instance(n_bits, seed=4))
    sparse = disjoint_case_spanner(disjoint)
    # Spot-check Claim 2.2 (full verification at this scale happens in E8 / tests).
    check(
        all(claim_2_2_holds(disjoint, i, i) for i in range(1, min(ell, 4) + 1)),
        f"{spec.name}: Claim 2.2 spot-check failed",
    )
    t, alpha_t = deterministic_gap_threshold(disjoint, alpha)
    forced = minimum_required_d_edges(far)
    lemma_bound = (beta**2) * (ell**2) // 12
    check(len(sparse) <= t, f"{spec.name}: Lemma 2.6 disjoint side violated")
    check(forced >= lemma_bound, f"{spec.name}: Lemma 2.6 far-from-disjoint side violated")
    check(forced > alpha_t, f"{spec.name}: Lemma 2.7 threshold does not separate the cases")
    return {
        "params": spec.name,
        "n": disjoint.n,
        "ell": ell,
        "beta": beta,
        "sparse_size": len(sparse),
        "threshold_t": t,
        "alpha_t": alpha_t,
        "forced": forced,
        "lemma_bound": lemma_bound,
        "gap_detectable": forced > alpha_t,
    }


register(
    Experiment(
        id="E10",
        title="Lemma 2.6 / Theorem 2.8: gap-disjointness regime (beta <= ell)",
        headline="deterministic-regime spanner-size gap and the Lemma 2.7 threshold",
        columns=(
            ("params", "params", None),
            ("n", "n", None),
            ("ell", "ell", None),
            ("beta", "beta", None),
            ("sparse size", "sparse_size", None),
            ("t=c*ell^2", "threshold_t", None),
            ("alpha*t", "alpha_t", ".3f"),
            ("forced D edges", "forced", None),
            ("beta^2*ell^2/12", "lemma_bound", None),
            ("gap detectable", "gap_detectable", None),
        ),
        scenarios=[
            ScenarioSpec.make(
                "E10", f"n'={n_target} alpha={alpha}", n_target=n_target, alpha=alpha
            )
            for n_target, alpha in [(1000, 1.0), (1600, 1.0), (2500, 2.0)]
        ],
        run_scenario=_run_e10,
    )
)


# --------------------------------------------------------------------------
# E11 — Figure 2 + Theorems 2.9 / 2.10: weighted constructions
# --------------------------------------------------------------------------


def _run_e11(spec: ScenarioSpec) -> dict[str, Any]:
    ell = spec.param("ell")
    construction = spec.param("construction")
    n_bits = ell * ell
    disjoint_inst = random_disjoint_instance(n_bits, seed=ell)
    intersect_inst = random_intersecting_instance(n_bits, 1, seed=ell + 1)
    if construction == "directed":
        gw_d = build_construction_gw(ell, disjoint_inst)
        gw_i = build_construction_gw(ell, intersect_inst)
        n = gw_d.graph.number_of_nodes()
        cut_edges = len(gw_d.cut_edges())
        zero_disjoint = has_zero_cost_spanner(gw_d, spec.param("k"))
        zero_intersecting = has_zero_cost_spanner(gw_i, spec.param("k"))
    else:
        k = spec.param("k")
        und_d = build_construction_gw_undirected(ell, disjoint_inst, k=k)
        und_i = build_construction_gw_undirected(ell, intersect_inst, k=k)
        n = und_d.graph.number_of_nodes()
        cut_edges = 3 * ell
        zero_disjoint = has_zero_cost_spanner_undirected(und_d)
        zero_intersecting = has_zero_cost_spanner_undirected(und_i)
    # Zero-cost spanner exists iff the inputs are disjoint.
    check(zero_disjoint is True, f"{spec.name}: disjoint case lost its zero-cost spanner")
    check(zero_intersecting is False, f"{spec.name}: intersecting case has a zero-cost spanner")
    return {
        "construction": spec.name,
        "n": n,
        "cut_edges": cut_edges,
        "zero_cost_disjoint": zero_disjoint,
        "zero_cost_intersecting": zero_intersecting,
    }


register(
    Experiment(
        id="E11",
        title="Figure 2 / Theorems 2.9-2.10: zero-cost spanner iff inputs disjoint",
        headline="weighted constructions G_w: zero-cost spanners exist iff inputs disjoint",
        columns=(
            ("construction", "construction", None),
            ("n", "n", None),
            ("cut edges", "cut_edges", None),
            ("zero-cost (disjoint)", "zero_cost_disjoint", None),
            ("zero-cost (intersecting)", "zero_cost_intersecting", None),
        ),
        scenarios=[
            ScenarioSpec.make(
                "E11",
                f"{construction} k={k}, ell={ell}",
                ell=ell,
                construction=construction,
                k=k,
            )
            for ell in (4, 8, 12)
            for construction, k in [("directed", 4), ("undirected", 4), ("undirected", 6)]
        ],
        run_scenario=_run_e11,
    )
)


# --------------------------------------------------------------------------
# E12 — Figure 3 + Claim 3.1 + Lemma 3.2: 2-spanner vs vertex cover
# --------------------------------------------------------------------------


def _run_e12(spec: ScenarioSpec) -> dict[str, Any]:
    graph = build_graph(spec.param("graph"))
    reduction = build_mvc_reduction(graph)
    if spec.param("solver") == "exact":
        mvc = len(exact_vertex_cover(graph))
        opt_spanner = minimum_k_spanner_exact(reduction.reduced, 2, use_weights=True)
        cost = sum(reduction.reduced.weight(*edge) for edge in opt_spanner)
        # Claim 3.1: the exact weighted 2-spanner cost of G_S equals MVC(G).
        check(cost == mvc, f"{spec.name}: spanner cost {cost} != MVC {mvc}")
        return {
            "workload": spec.name,
            "solver": "exact",
            "cover": mvc,
            "spanner_cost": float(cost),
            "greedy": None,
            "status": "equal",
        }
    result = run_two_spanner(
        reduction.reduced, variant=WeightedVariant(), seed=spec.param("run_seed")
    )
    check(is_k_spanner(reduction.reduced, result.edges, 2), f"{spec.name}: invalid 2-spanner")
    cover = spanner_to_vertex_cover(reduction, result.edges)
    check(is_vertex_cover(graph, cover), f"{spec.name}: output is not a vertex cover")
    cost = result.cost(reduction.reduced)
    # Lemma 3.2 transfer: the derived cover is bounded by the spanner cost.
    check(len(cover) <= cost + 1e-9, f"{spec.name}: cover exceeds spanner cost")
    return {
        "workload": spec.name,
        "solver": "distributed weighted 2-spanner",
        "cover": len(cover),
        "spanner_cost": cost,
        "greedy": len(greedy_matching_vertex_cover(graph)),
        "status": "cover<=cost",
    }


register(
    Experiment(
        id="E12",
        title="Figure 3 / Claim 3.1: weighted 2-spanner of G_S vs vertex cover of G",
        headline="MVC reduction: exact equality (Claim 3.1) and the Lemma 3.2 transfer",
        targeted=True,
        columns=(
            ("workload", "workload", None),
            ("solver", "solver", None),
            ("cover size", "cover", None),
            ("spanner cost", "spanner_cost", ".3f"),
            ("greedy 2-approx VC", "greedy", None),
            ("check", "status", None),
        ),
        scenarios=[
            ScenarioSpec.make("E12", name, graph=graph, solver="exact")
            for name, graph in [
                ("path n=6", ("path", 6)),
                ("cycle n=7", ("cycle", 7)),
                ("gnp n=8 p=0.35", ("connected_gnp", 8, 0.35, 1)),
            ]
        ]
        + [
            ScenarioSpec.make("E12", name, graph=graph, solver="distributed", run_seed=4)
            for name, graph in [
                ("gnp n=14 p=0.3", ("connected_gnp", 14, 0.3, 2)),
                ("gnp n=18 p=0.2", ("connected_gnp", 18, 0.2, 3)),
            ]
        ],
        run_scenario=_run_e12,
    )
)
