"""The thin pytest-benchmark wrapper over the experiment runner.

Every ``benchmarks/bench_e*.py`` reduces to one call::

    def test_e01_two_spanner_ratio(benchmark):
        bench_experiment(benchmark, "E01")

which runs the experiment through the orchestrator (so the same registry
scenarios, invariants and JSON schema back both pytest and the CLI), prints
the reproduced table (visible under ``pytest -s``), and records the
flattened per-scenario results plus the cross-scenario summary in
``benchmark.extra_info``.
"""

from __future__ import annotations

from typing import Any

from repro.experiments import registry
from repro.experiments.reporting import experiment_table, flatten_info
from repro.experiments.runner import run_experiments


def bench_experiment(
    benchmark,
    experiment_id: str,
    jobs: int = 1,
    scenario_filter: str | None = None,
) -> dict[str, Any]:
    """Run one experiment under pytest-benchmark and return the full report.

    ``scenario_filter`` restricts the run to scenarios whose name contains
    the substring (cross-scenario ``verify`` is then skipped, exactly as
    with the CLI's ``run --scenario``) — used by benchmark wrappers of
    tiers whose full sweep is too heavy for a timing harness (e.g. E20's
    n = 10^6 point).
    """
    experiment = registry.get_experiment(experiment_id)
    report = benchmark.pedantic(
        lambda: run_experiments(
            [experiment.id], jobs=jobs, scenario_filter=scenario_filter
        ),
        rounds=1,
        iterations=1,
    )
    entry = report["experiments"][0]
    results = [scenario["result"] for scenario in entry["scenarios"]]
    experiment_table(experiment, results)
    info: dict[str, Any] = {"experiment": experiment.id, "schema": report["schema"]}
    info.update(flatten_info(entry["summary"], prefix="summary"))
    for index, scenario in enumerate(entry["scenarios"]):
        # Index-based path segments: scenario names may contain dots, which
        # would make the dotted key convention ambiguous to split.
        prefix = f"scenarios.{index}"
        info[f"{prefix}.name"] = scenario["spec"]["name"]
        info[f"{prefix}.spec_hash"] = scenario["spec_hash"]
        info.update(flatten_info(scenario["result"], prefix=prefix))
    benchmark.extra_info.update(info)
    return report
