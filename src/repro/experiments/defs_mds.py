"""Registry definition for E06 — Theorem 5.1: guaranteed O(log Delta) MDS."""

from __future__ import annotations

import math
from typing import Any

from repro.baselines import (
    exact_dominating_set,
    expectation_randomized_mds,
    greedy_dominating_set,
)
from repro.core import run_mds
from repro.experiments.families import build_graph
from repro.experiments.registry import Experiment, check, register
from repro.experiments.spec import ScenarioSpec
from repro.graphs import is_dominating_set

# Largest n in the sweep (plus slack): the CONGEST message-size check below
# uses one shared budget so the column is comparable across workloads.
_MAX_N = 110


def _run_e06(spec: ScenarioSpec) -> dict[str, Any]:
    graph = build_graph(spec.param("graph"))
    result = run_mds(graph, seed=spec.param("run_seed"))
    check(is_dominating_set(graph, result.dominators), f"{spec.name}: not a dominating set")
    greedy = len(greedy_dominating_set(graph))
    expectation = len(expectation_randomized_mds(graph, seed=spec.param("baseline_seed")))
    metrics = result.metrics.as_dict()
    # Guaranteed-ratio algorithm stays within O(log Delta) of greedy (itself
    # ~ln Delta of OPT), and CONGEST messages stay within O(log n) bits.
    check(result.size <= 8 * greedy + 8, f"{spec.name}: MDS size escapes the greedy envelope")
    check(
        metrics["max_message_bits"] <= 32 * math.ceil(math.log2(_MAX_N)),
        f"{spec.name}: message exceeded the CONGEST budget",
    )
    opt = len(exact_dominating_set(graph)) if spec.param("exact") else None
    return {
        "workload": spec.name,
        "exact": opt,
        "size": result.size,
        "greedy": greedy,
        "expectation_only": expectation,
        "iterations": result.iterations,
        "metrics": result.metrics,
    }


def _verify_e06(results) -> dict[str, Any]:
    return {
        "scenarios": len(results),
        "max_message_bits": max(r["metrics.max_message_bits"] for r in results),
    }


register(
    Experiment(
        id="E06",
        title="Theorem 5.1: guaranteed O(log Delta) MDS in CONGEST",
        headline="MDS sizes vs exact / greedy / expectation-only baselines",
        targeted=True,
        columns=(
            ("workload", "workload", None),
            ("exact", "exact", None),
            ("paper alg", "size", None),
            ("greedy", "greedy", None),
            ("expectation-only", "expectation_only", None),
            ("iterations", "iterations", None),
            ("max msg bits", "metrics.max_message_bits", None),
        ),
        scenarios=[
            ScenarioSpec.make(
                "E06", name, graph=graph, exact=exact, run_seed=5, baseline_seed=6
            )
            for name, graph, exact in [
                ("gnp n=16 p=0.3", ("connected_gnp", 16, 0.3, 1), True),
                ("gnp n=18 p=0.25", ("connected_gnp", 18, 0.25, 2), True),
                ("gnp n=80 p=0.06", ("connected_gnp", 80, 0.06, 3), False),
                ("ba n=100", ("barabasi_albert", 100, 2, 4), False),
                ("grid 10x10", ("grid", 10, 10), False),
            ]
        ],
        run_scenario=_run_e06,
        verify=_verify_e06,
    )
)
