"""Registry definition for E23 — the vectorized program-lowering tier.

E23 pins the whole-round lowering layer (``repro.distributed.vectorize``):
the columnar engine detects lowerable flood-max runs and executes them with
zero per-node Python calls, and this tier proves the physics are unchanged.
Two twin pairs at n = 20000 on the exact E18/E20 anchor graph — fixed-budget
and retransmitting flood-max, each run once lowered and once with
``vectorize=False`` (the stepped per-node path) — must agree bit-for-bit on
every non-timing key.  The mega points then rerun the E20 scale sweep
(n = 2*10^5, 5*10^5, 10^6 on the freeze-direct CSR family) through the
lowered path, and one n = 20000 scenario runs lowered flood-max on the
O(n + m) ``barabasi_albert_csr`` power-law family.

Every scenario asserts that the lowering decision matched the spec
(``Simulator.lowered``), so a silent fallback to stepping can never
masquerade as a passing lowered run.  As with E20, wall time lives under
``timing.*`` — excluded from the determinism contract — and the
lowered-vs-stepped speedup *assertion* lives in
``benchmarks/bench_e23_vectorized.py`` behind the ``E23_MIN_SPEEDUP`` knob;
the registry ``verify`` hook only pins physics so CLI sweeps on loaded
machines never flake.
"""

from __future__ import annotations

import time
from typing import Any

from repro.core.flood_max import (
    FloodMaxProgram,
    RobustFloodMaxProgram,
    _summarise,
    robust_flood_max_round_bound,
)
from repro.distributed.models import broadcast_congest_model
from repro.distributed.simulator import Simulator
from repro.experiments.families import build_graph
from repro.experiments.registry import Experiment, check, register
from repro.experiments.spec import ScenarioSpec

_E23_SEED = 3

#: scenario name -> (family tuple, workload, budget, lowered, streaming).
#: ``workload`` is "fixed" (budget = round count) or "robust" (budget =
#: patience).  The n=20000 twins reuse the E18/E20 anchor graph verbatim;
#: the mega points reuse the E20 CSR family tuples, so the graph memo in
#: ``experiments.families`` shares one build between the tiers per worker.
_E23_SCENARIOS: dict[str, tuple[tuple[Any, ...], str, int, bool, bool]] = {
    "n=20000 lowered": (
        ("sparse_connected_gnp", 20000, 0.0005, 18), "fixed", 10, True, False,
    ),
    "n=20000 stepped": (
        ("sparse_connected_gnp", 20000, 0.0005, 18), "fixed", 10, False, False,
    ),
    "n=20000 robust lowered": (
        ("sparse_connected_gnp", 20000, 0.0005, 18), "robust", 10, True, False,
    ),
    "n=20000 robust stepped": (
        ("sparse_connected_gnp", 20000, 0.0005, 18), "robust", 10, False, False,
    ),
    "n=20000 ba lowered": (
        ("barabasi_albert_csr", 20000, 6, 18), "fixed", 10, True, False,
    ),
    "n=200000": (("sparse_gnp_csr", 200000, 6e-5, 20), "fixed", 12, True, True),
    "n=500000": (("sparse_gnp_csr", 500000, 2.6e-5, 21), "fixed", 12, True, True),
    "n=1000000": (("sparse_gnp_csr", 1000000, 1.4e-5, 22), "fixed", 12, True, True),
}

#: result keys the lowered/stepped twins may legitimately differ on.
_TWIN_EXEMPT = ("scenario", "mode")


def _run_e23(spec: ScenarioSpec) -> dict[str, Any]:
    graph = build_graph(spec.param("graph"))
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    workload = spec.param("workload")
    budget = spec.param("budget")
    lowered = bool(spec.param("lowered", True))
    if workload == "fixed":
        program = lambda v: FloodMaxProgram(v, budget)  # noqa: E731
        max_rounds = 10_000
    else:
        program = lambda v: RobustFloodMaxProgram(v, budget)  # noqa: E731
        max_rounds = robust_flood_max_round_bound(n, budget)
    sim = Simulator(
        graph,
        program,
        model=broadcast_congest_model(n),
        seed=spec.param("run_seed"),
        engine="columnar",
        streaming_metrics=bool(spec.param("streaming", False)),
        vectorize=lowered,
    )
    start = time.perf_counter()
    result = _summarise(sim.run(max_rounds=max_rounds))
    elapsed = time.perf_counter() - start
    check(
        sim.lowered == lowered,
        f"{spec.name}: lowering decision {sim.lowered} does not match the "
        f"spec's lowered={lowered}",
    )
    check(result.converged, f"{spec.name}: flood-max did not converge")
    check(
        result.leader == n - 1,
        f"{spec.name}: elected leader {result.leader!r}, expected the max label {n - 1}",
    )
    messages = result.metrics.messages_sent
    if workload == "fixed":
        check(
            result.rounds == budget,
            f"{spec.name}: used {result.rounds} rounds, the program budget is {budget}",
        )
        # Fixed-budget flood-max invariant: every vertex broadcasts in rounds
        # 0..budget-1, so exactly budget * 2m directed messages cross the edges.
        check(
            messages == budget * 2 * m,
            f"{spec.name}: {messages} messages, expected budget * 2m = {budget * 2 * m}",
        )
    return {
        "scenario": spec.name,
        "mode": "lowered" if lowered else "stepped",
        "workload": workload,
        "n": n,
        "m": m,
        "rounds": result.rounds,
        "leader": result.leader,
        "metrics": result.metrics,
        "timing": {
            "elapsed_s": elapsed,
            "messages_per_sec": messages / elapsed,
        },
    }


def _verify_e23(results) -> dict[str, Any]:
    by_name = {result["scenario"]: result for result in results}
    for left, right in (
        ("n=20000 lowered", "n=20000 stepped"),
        ("n=20000 robust lowered", "n=20000 robust stepped"),
    ):
        lowered = by_name.get(left)
        stepped = by_name.get(right)
        if lowered is None or stepped is None:
            continue
        # The tentpole contract: lowering must be physically invisible —
        # every non-timing key of the twins agrees bit-for-bit.
        for key in lowered:
            if key.startswith("timing.") or key in _TWIN_EXEMPT:
                continue
            check(
                lowered[key] == stepped[key],
                f"{left} / {right}: lowering changed {key}: "
                f"{lowered[key]!r} != {stepped[key]!r}",
            )
    summary: dict[str, Any] = {}
    for name, result in by_name.items():
        if result["n"] >= 100_000:
            summary[f"{name}.messages"] = result["metrics.messages_sent"]
            summary[f"{name}.leader"] = result["leader"]
    if len(results) == len(_E23_SCENARIOS):
        check(
            by_name["n=1000000"]["n"] == 1_000_000,
            "the E23 flagship scenario must run lowered at n = 10^6",
        )
    return summary


register(
    Experiment(
        id="E23",
        title="program lowering: vectorized whole-round flood-max kernels",
        headline="lowered columnar rounds with zero per-node Python calls",
        columns=(
            ("n", "n", None),
            ("m", "m", None),
            ("mode", "mode", None),
            ("workload", "workload", None),
            ("rounds", "rounds", None),
            ("messages", "metrics.messages_sent", None),
            ("seconds", "timing.elapsed_s", ".3f"),
            ("msg/sec", "timing.messages_per_sec", ".0f"),
        ),
        scenarios=[
            ScenarioSpec.make(
                "E23",
                name,
                engine="columnar",
                graph=graph,
                workload=workload,
                budget=budget,
                lowered=lowered,
                streaming=streaming,
                run_seed=_E23_SEED,
            )
            for name, (graph, workload, budget, lowered, streaming) in _E23_SCENARIOS.items()
        ],
        run_scenario=_run_e23,
        verify=_verify_e23,
    )
)
