"""The experiment registry: declarative scenario lists plus runner hooks.

Every experiment (E01-E21) registers one :class:`Experiment` object mapping
its id to

* ``scenarios`` — the declarative :class:`~repro.experiments.spec.ScenarioSpec`
  list (the sweep the experiment reproduces),
* ``run_scenario`` — a module-level function executing ONE spec and returning
  a JSON-able result dict (per-scenario invariants are checked here with
  :func:`check`, so they hold under pytest and the CLI alike),
* ``verify`` — optional cross-scenario checks over the ordered result list,
  returning a JSON-able summary dict,
* ``columns`` — the table layout ``(header, result key, format spec | None)``
  used by both the CLI and the pytest-benchmark wrappers.

Workers resolve specs back to runner functions through this registry (only
the spec itself ever crosses a process boundary), so everything stays
picklable under both fork and spawn start methods.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.experiments.spec import ScenarioSpec

Columns = tuple[tuple[str, str, str | None], ...]


class ExperimentCheckError(AssertionError):
    """A reproduced invariant failed (raised by scenario runners / verify)."""


def check(condition: bool, message: str) -> None:
    """Assert an experiment invariant, surviving ``python -O``."""
    if not condition:
        raise ExperimentCheckError(message)


@dataclass
class Experiment:
    """One registered experiment: scenarios, runner, checks, table layout.

    ``targeted`` records whether the experiment's workload issues targeted
    sends (``ctx.send``) — surfaced by ``list --json`` so tooling can tell
    traffic shapes apart without running anything.  Since the targeted
    fast path every engine carries both traffic shapes; the only remaining
    admission restriction is semantic (broadcast-only models reject
    ``ctx.send`` on every engine).
    """

    id: str
    title: str
    headline: str
    columns: Columns
    scenarios: list[ScenarioSpec]
    run_scenario: Callable[[ScenarioSpec], dict[str, Any]]
    verify: Callable[[Sequence[dict[str, Any]]], dict[str, Any]] | None = None
    tags: tuple[str, ...] = field(default=())
    targeted: bool = False


_REGISTRY: dict[str, Experiment] = {}
_LOADED = False


def register(experiment: Experiment) -> Experiment:
    """Add ``experiment`` to the registry, validating id/scenario uniqueness."""
    if experiment.id in _REGISTRY:
        raise ValueError(f"experiment {experiment.id} registered twice")
    names = [spec.name for spec in experiment.scenarios]
    if len(set(names)) != len(names):
        raise ValueError(f"experiment {experiment.id} has duplicate scenario names")
    for spec in experiment.scenarios:
        if spec.experiment != experiment.id:
            raise ValueError(
                f"scenario {spec.name!r} claims experiment {spec.experiment!r}, "
                f"registered under {experiment.id!r}"
            )
    _REGISTRY[experiment.id] = experiment
    return experiment


def load_all() -> None:
    """Import every definition module (idempotent; spawn-safe)."""
    global _LOADED
    if _LOADED:
        return
    from repro.experiments import (  # noqa: F401
        defs_baselines,
        defs_clique_listing,
        defs_corruption,
        defs_lowerbounds,
        defs_mds,
        defs_megascale,
        defs_robustness,
        defs_spanner,
        defs_substrate,
        defs_vectorized,
    )

    # Only after every import succeeded: a failed import must propagate again
    # on the next call, not leave a silently half-loaded registry behind.
    _LOADED = True


def experiment_ids() -> list[str]:
    """Sorted ids of every registered experiment (loads definitions)."""
    load_all()
    return sorted(_REGISTRY)


def get_experiment(experiment_id: str) -> Experiment:
    """Look up one experiment by (case-insensitive) id; raises ``KeyError``."""
    load_all()
    key = experiment_id.upper()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r} (known: {known})")
    return _REGISTRY[key]
